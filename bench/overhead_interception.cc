// §6.5 overheads.
//
// Part 1 (virtual time): end-to-end latency of every workload on a dedicated
// GPU submitted directly vs through Orion's interception + scheduler path
// with no best-effort clients. The paper reports <1% overhead; in the
// simulator the scheduling decisions add no device time, so the delta shows
// the policy itself does not reorder/stall a lone high-priority job.
//
// Part 2 (wall clock, google-benchmark): cost of the hot host-side paths —
// simulator event dispatch, device kernel launch/complete cycle, and the
// Orion Enqueue decision — the code the real system runs per intercepted
// CUDA call.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/orion_scheduler.h"
#include "src/profiler/profiler.h"

using namespace orion;

namespace {

void PrintInterceptionOverheadTable() {
  bench::PrintHeader("Overheads (Section 6.5)", "kernel-launch interception");
  Table table({"workload", "direct_ms", "intercepted_ms", "overhead_%"});
  for (auto model : bench::AllModels()) {
    for (auto task : {workloads::TaskType::kInference, workloads::TaskType::kTraining}) {
      const auto workload = workloads::MakeWorkload(model, task);

      harness::ExperimentConfig config;
      config.warmup_us = SecToUs(0.5);
      config.duration_us = SecToUs(5.0);
      harness::ClientConfig client;
      client.workload = workload;
      client.high_priority = true;
      client.arrivals = harness::ClientConfig::Arrivals::kClosedLoop;
      config.clients = {client};

      config.scheduler = harness::SchedulerKind::kDedicated;
      const auto direct = harness::RunExperiment(config);
      config.scheduler = harness::SchedulerKind::kOrion;
      const auto intercepted = harness::RunExperiment(config);

      const double d = direct.hp().latency.p50();
      const double i = intercepted.hp().latency.p50();
      table.AddRow({workloads::WorkloadName(workload), Cell(UsToMs(d), 3),
                    Cell(UsToMs(i), 3), Cell(100.0 * (i - d) / d, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n(paper: <1% across all jobs)\n\n";
}

void BM_SimulatorEventDispatch(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.ScheduleAfter(1.0, []() {});
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_DeviceKernelCycle(benchmark::State& state) {
  Simulator sim;
  gpusim::Device device(&sim, gpusim::DeviceSpec::V100_16GB());
  const auto stream = device.CreateStream();
  gpusim::KernelDesc kernel;
  kernel.name = "bench";
  kernel.duration_us = 10.0;
  kernel.compute_util = 0.5;
  kernel.membw_util = 0.2;
  kernel.geometry = {40, 1024, 64, 0};
  for (auto _ : state) {
    device.LaunchKernel(stream, kernel);
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceKernelCycle);

void BM_OrionEnqueueDecision(benchmark::State& state) {
  Simulator sim;
  runtime::GpuRuntime rt(&sim, gpusim::DeviceSpec::V100_16GB());
  profiler::WorkloadProfile profile;
  profile.request_latency_us = 10000.0;
  profile.RebuildIndex();
  core::OrionScheduler scheduler{core::OrionOptions{}};
  core::SchedClientInfo hp;
  hp.id = 0;
  hp.high_priority = true;
  hp.profile = &profile;
  core::SchedClientInfo be;
  be.id = 1;
  be.profile = &profile;
  scheduler.Attach(&sim, &rt, {hp, be});
  gpusim::KernelDesc kernel;
  kernel.name = "bench";
  kernel.duration_us = 10.0;
  kernel.compute_util = 0.2;
  kernel.membw_util = 0.7;
  kernel.geometry = {10, 1024, 64, 0};
  for (auto _ : state) {
    core::SchedOp op;
    op.op.type = runtime::OpType::kKernelLaunch;
    op.op.kernel = kernel;
    scheduler.Enqueue(1, std::move(op));
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrionEnqueueDecision);

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  PrintInterceptionOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
