// Table 1: average GPU utilization for the ten DNN workloads (five models x
// {inference, training}) running alone on a V100, at the paper's batch sizes.
//
// Columns mirror the paper: SM busy %, compute throughput %, memory
// bandwidth %, memory capacity %. Paper reference values are printed
// alongside for comparison.
#include <iostream>

#include "bench/bench_util.h"
#include "src/profiler/profiler.h"

using namespace orion;

namespace {

struct PaperRow {
  workloads::ModelId model;
  workloads::TaskType task;
  int sm_busy, compute, membw, memcap;
};

// Table 1 of the paper (V100-16GB).
const PaperRow kPaper[] = {
    {workloads::ModelId::kResNet50, workloads::TaskType::kInference, 24, 30, 22, 9},
    {workloads::ModelId::kMobileNetV2, workloads::TaskType::kInference, 6, 18, 21, 7},
    {workloads::ModelId::kResNet101, workloads::TaskType::kInference, 29, 24, 37, 9},
    {workloads::ModelId::kBert, workloads::TaskType::kInference, 95, 72, 28, 14},
    {workloads::ModelId::kTransformer, workloads::TaskType::kInference, 61, 52, 29, 10},
    {workloads::ModelId::kResNet50, workloads::TaskType::kTraining, 81, 48, 45, 32},
    {workloads::ModelId::kMobileNetV2, workloads::TaskType::kTraining, 71, 34, 49, 43},
    {workloads::ModelId::kResNet101, workloads::TaskType::kTraining, 85, 50, 43, 39},
    {workloads::ModelId::kBert, workloads::TaskType::kTraining, 61, 44, 21, 38},
    {workloads::ModelId::kTransformer, workloads::TaskType::kTraining, 49, 29, 30, 53},
};

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Table 1", "average GPU utilization of popular DNN workloads");

  const gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  Table table({"workload", "bs", "SMs_busy_%", "(paper)", "compute_%", "(paper)", "membw_%",
               "(paper)", "memcap_%", "(paper)"});
  for (const PaperRow& row : kPaper) {
    const auto spec = workloads::MakeWorkload(row.model, row.task);
    const auto profile = profiler::ProfileWorkload(device, spec);
    const double memcap = 100.0 *
                          static_cast<double>(workloads::ApproxModelStateBytes(spec)) /
                          static_cast<double>(device.memory_bytes);
    table.AddRow({workloads::WorkloadName(spec), Cell(spec.batch_size),
                  Cell(100.0 * profile.avg_sm_busy, 0), Cell(row.sm_busy),
                  Cell(100.0 * profile.avg_compute_util, 0), Cell(row.compute),
                  Cell(100.0 * profile.avg_membw_util, 0), Cell(row.membw), Cell(memcap, 0),
                  Cell(row.memcap)});
  }
  table.Print(std::cout);
  std::cout << "\nClaim under test: every workload leaves large fractions of compute\n"
               "throughput and memory bandwidth idle, inference more than training.\n";
  return 0;
}
