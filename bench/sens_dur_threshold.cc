// §6.4 sensitivity study: DUR_THRESHOLD sweep for ResNet101 inference
// (high-priority, Poisson) collocated with best-effort training.
//
// Paper shape: stable hp latency for thresholds <= ~3%; beyond that, hp
// latency grows roughly linearly while best-effort training throughput
// rises (less throttling). Paper quotes 23/26/30 ms inference latency and
// 8.7/9.26/9.75 it/s at 10%/15%/20%.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Sensitivity (Section 6.4)", "DUR_THRESHOLD sweep");

  const harness::ClientConfig hp = bench::InferenceClient(
      workloads::ModelId::kResNet101, harness::ClientConfig::Arrivals::kPoisson,
      trace::RequestsPerSecond(workloads::ModelId::kResNet101,
                               trace::CollocationCase::kInfTrainPoisson),
      true);
  const harness::ClientConfig be =
      bench::TrainingClient(workloads::ModelId::kResNet50, false);

  const auto ideal = bench::RunPair(hp, be, harness::SchedulerKind::kDedicated);

  Table table({"dur_threshold_%", "hp_p99_ms", "p99_vs_ideal", "be_it/s"});
  for (double pct : {1.0, 2.5, 5.0, 10.0, 15.0, 20.0}) {
    harness::ExperimentConfig config;
    config.seed = bench::GlobalBenchArgs().seed;
    config.scheduler = harness::SchedulerKind::kOrion;
    config.orion.dur_threshold_frac = pct / 100.0;
    config.warmup_us = bench::WarmupWindowUs();
    config.duration_us = bench::MeasureWindowUs();
    config.clients = {hp, be};
    const auto result = harness::RunExperiment(config);
    table.AddRow({Cell(pct, 1), Cell(UsToMs(result.hp().latency.p99()), 2),
                  Cell(result.hp().latency.p99() / ideal.hp().latency.p99(), 2),
                  Cell(bench::BeThroughput(result), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: flat hp latency below ~3%, then a roughly linear\n"
               "latency/throughput trade as the throttle loosens (paper §6.4).\n";
  return 0;
}
