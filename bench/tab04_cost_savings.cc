// Table 4: cost savings of collocating a Poisson-arrival inference job with
// each training job on one GPU (Orion) versus dedicating a GPU to each.
//
//   cost_savings = 2 * Throughput_collocated / Throughput_dedicated
//
// Paper: training throughput drops ~25-40% under collocation, yielding
// 1.26x-1.49x cost savings. The high-priority inference job here is the
// same model as in Fig 7 (each training job collocated with the matching
// Poisson inference client; the paper averages across inference jobs, we
// use ResNet50 inference as the representative high-priority client).
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Table 4", "training cost savings under Orion collocation");

  const harness::ClientConfig hp = bench::InferenceClient(
      workloads::ModelId::kResNet50, harness::ClientConfig::Arrivals::kPoisson,
      trace::RequestsPerSecond(workloads::ModelId::kResNet50,
                               trace::CollocationCase::kInfTrainPoisson),
      true);

  struct PaperRow {
    workloads::ModelId model;
    double dedicated, collocated, savings;
  };
  const PaperRow paper[] = {
      {workloads::ModelId::kResNet50, 10.3, 7.45, 1.45},
      {workloads::ModelId::kMobileNetV2, 12.5, 8.78, 1.4},
      {workloads::ModelId::kResNet101, 6.3, 4.7, 1.49},
      {workloads::ModelId::kBert, 4.91, 3.1, 1.26},
      {workloads::ModelId::kTransformer, 6.0, 3.9, 1.3},
  };

  Table table({"training_job", "dedicated_it/s", "collocated_it/s", "cost_savings",
               "paper_savings"});
  for (const PaperRow& row : paper) {
    const harness::ClientConfig be = bench::TrainingClient(row.model, false);
    const auto ideal = bench::RunPair(hp, be, harness::SchedulerKind::kDedicated);
    const auto orion = bench::RunPair(hp, be, harness::SchedulerKind::kOrion);
    const double dedicated = bench::BeThroughput(ideal);
    const double collocated = bench::BeThroughput(orion);
    table.AddRow({workloads::WorkloadName(be.workload), Cell(dedicated, 2),
                  Cell(collocated, 2), Cell(harness::CostSavings(dedicated, collocated), 2),
                  Cell(row.savings, 2)});
  }
  table.Print(std::cout);
  std::cout << "\n(cost_savings > 1 means one shared GPU beats two dedicated GPUs per\n"
               "unit of training work while the inference job keeps its SLO; see Fig 7)\n";
  return 0;
}
