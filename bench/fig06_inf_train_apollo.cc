// Figures 6a/6b: high-priority inference driven by the (synthetic) Apollo
// autonomous-driving trace, collocated with each best-effort training job.
// Reports p99 latency per technique (mean and spread across the five
// collocated training jobs) and the throughput split.
//
// Paper shape: temporal sharing has very high tail latency (HOL blocking);
// Streams/MPS are better but unprioritised; REEF averages 3.44x ideal p99;
// Orion stays within ~14% of ideal while adding best-effort throughput.
#include "bench/collocation_bench.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 6", "inference-training collocation, Apollo trace arrivals");
  bench::MatrixOptions options;
  options.hp_arrivals = harness::ClientConfig::Arrivals::kApollo;
  options.rate_case = trace::CollocationCase::kInfTrainPoisson;  // same mean rates
  options.partners_are_training = true;
  bench::RunCollocationMatrix(options);
  return 0;
}
