// Extension bench (memory oversubscription study): Orion vs nvshare-style
// time-quantum sharing vs naive always-page sharing vs dedicated GPUs as the
// collocation's aggregate model state grows past device memory.
//
// Every shared arm runs with the unified-memory pager (src/memsub): model
// state is demand-paged at 2 MiB granularity and fault traffic rides the
// real copy engine. The arms differ in policy:
//
//   * dedicated — each job on its own full GPU (no paging): the ceiling.
//   * mps       — MPS-like spatial sharing, both jobs page freely. Under
//                 oversubscription their cyclic scans evict each other (the
//                 LRU sequential-scan pathology): every iteration pays its
//                 full working set over PCIe.
//   * nvshare-tq — same sharing, but the thrash detector flips the GPU to
//                 exclusive time quanta sized from the measured swap cost:
//                 each tenant pages its state in once per quantum and then
//                 runs uninterrupted, amortising the paging bill.
//   * orion     — Orion's scheduler with the high-priority job's state
//                 pinned device-resident (§5.1.3: the cluster manager
//                 guarantees latency-critical state fits) and PCIe priority
//                 scheduling, so hp never faults and its copies overtake
//                 best-effort paging bursts.
//
// Sweep: oversubscription factor 1.0x–2.5x (device memory = aggregate state
// / factor) for a training mix, an inference mix, and an LLM-style
// transformer mix. At 1.0x the pager must be inert — identical results to a
// run without it. From 1.5x the study expects nvshare-TQ to beat naive
// paging on aggregate throughput while Orion holds the hp job's p99 inside
// its SLO. CI greps the ACCEPTANCE line.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace orion;

namespace {

struct Mix {
  std::string name;
  harness::ClientConfig hp;
  harness::ClientConfig be;
  // Window stretch for heavy mixes: the training mix's one-time paging bill
  // (initial thrash + working-set page-in + dirty writebacks, ~2s of PCIe)
  // would fill a --quick window, hiding the steady-state regimes the sweep
  // compares. Iterations are 30–200ms, so the window must amortise both.
  double window_scale = 1.0;
};

// Mixes are sized for the regime nvshare targets (each tenant's working set
// fits the device *alone* but not *jointly*): the hp job touches its full
// state every request, while the best-effort job's per-request hot set is a
// fraction of its registered footprint (params + live activations; cold
// activations / allocator slack are registered but rarely touched). Across
// the 1.5x–2.5x sweep each tenant's hot set stays under device memory —
// exclusive quanta run fault-free after one page-in — but together they
// overflow it, so shared paging hits the LRU sequential-scan pathology.
std::vector<Mix> Mixes() {
  std::vector<Mix> mixes;
  {
    Mix mix;
    mix.name = "train";
    mix.hp.workload = workloads::MakeWorkload(workloads::ModelId::kMobileNetV2,
                                              workloads::TaskType::kTraining, 32);
    mix.hp.high_priority = true;
    mix.be.workload = workloads::MakeWorkload(workloads::ModelId::kResNet101,
                                              workloads::TaskType::kTraining, 32);
    mix.be.paging_ws_fraction = 0.58;
    mix.window_scale = 4.0;
    mixes.push_back(std::move(mix));
  }
  {
    Mix mix;
    mix.name = "infer";
    mix.hp = bench::InferenceClient(workloads::ModelId::kMobileNetV2,
                                    harness::ClientConfig::Arrivals::kClosedLoop, 0.0,
                                    /*high_priority=*/true);
    mix.be.workload = workloads::MakeWorkload(workloads::ModelId::kResNet101,
                                              workloads::TaskType::kInference, 16);
    mix.be.paging_ws_fraction = 0.60;
    mixes.push_back(std::move(mix));
  }
  {
    // LLM story: a latency-critical transformer serving job sharing the GPU
    // with a fine-tune of the same model.
    Mix mix;
    mix.name = "llm";
    mix.hp = bench::InferenceClient(workloads::ModelId::kTransformer,
                                    harness::ClientConfig::Arrivals::kClosedLoop, 0.0,
                                    /*high_priority=*/true);
    mix.be.workload = workloads::MakeWorkload(workloads::ModelId::kTransformer,
                                              workloads::TaskType::kTraining, 2);
    mix.be.paging_ws_fraction = 0.58;
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

constexpr std::size_t kPageBytes = std::size_t{2} * 1024 * 1024;

// Orion keeps the hp job's p99 within this multiple of its dedicated-GPU p99
// while the best-effort job pages (compute interference + PCIe contention,
// never hp faults: hp state is pinned).
constexpr double kHpSloMultiplier = 3.0;

std::size_t RoundUpToPages(std::size_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
}

harness::ExperimentConfig BaseConfig(const Mix& mix, std::size_t memory_bytes) {
  harness::ExperimentConfig config;
  config.device = gpusim::DeviceSpec::V100_16GB();
  config.device.memory_bytes = memory_bytes;
  config.seed = bench::GlobalBenchArgs().seed;
  config.warmup_us = mix.window_scale * bench::WarmupWindowUs();
  config.duration_us = mix.window_scale * bench::MeasureWindowUs();
  config.clients = {mix.hp, mix.be};
  return config;
}

harness::ExperimentConfig PagingConfig(const Mix& mix, std::size_t memory_bytes,
                                       harness::SchedulerKind scheduler) {
  harness::ExperimentConfig config = BaseConfig(mix, memory_bytes);
  config.scheduler = scheduler;
  config.paging.enabled = true;
  if (scheduler == harness::SchedulerKind::kOrion) {
    config.paging.pin_high_priority = true;
    config.pcie_priority_scheduling = true;
  }
  return config;
}

// Requests completed across the whole run (warmup included): the thrash
// regimes are slow enough that a --quick measurement window can contain zero
// completions, so the TQ-vs-naive-paging comparison uses whole-run counts.
std::size_t TotalCompleted(const harness::ExperimentResult& result) {
  std::size_t total = 0;
  for (const auto& client : result.clients) {
    total += client.completed_total;
  }
  return total;
}

bool SameResults(const harness::ExperimentResult& a, const harness::ExperimentResult& b) {
  if (a.clients.size() != b.clients.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    // Exact equality, doubles included: the pager's inert path adds no
    // events and moves no bytes, so a fitting collocation must replay
    // bit-identically with paging on or off.
    if (a.clients[i].completed != b.clients[i].completed ||
        a.clients[i].latency.p50() != b.clients[i].latency.p50() ||
        a.clients[i].latency.p99() != b.clients[i].latency.p99()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (memory oversubscription)",
                     "Orion vs nvshare time-quantum vs naive paging vs dedicated");

  const bool quick = bench::GlobalBenchArgs().quick;
  const std::vector<double> factors =
      quick ? std::vector<double>{1.0, 2.0} : std::vector<double>{1.0, 1.5, 2.0, 2.5};

  bool inert_ok = true;
  bool tq_beats_paging = true;
  bool hp_slo_ok = true;

  for (const Mix& mix : Mixes()) {
    const std::size_t aggregate = RoundUpToPages(workloads::ApproxModelStateBytes(mix.hp.workload)) +
                                  RoundUpToPages(workloads::ApproxModelStateBytes(mix.be.workload));

    // Dedicated reference: one full GPU per job, memory never constrained.
    harness::ExperimentConfig ded_config = BaseConfig(mix, gpusim::DeviceSpec::V100_16GB().memory_bytes);
    ded_config.scheduler = harness::SchedulerKind::kDedicated;
    const auto dedicated = harness::RunExperiment(ded_config);

    std::cout << "-- Mix " << mix.name << ": hp " << workloads::WorkloadName(mix.hp.workload)
              << " + be " << workloads::WorkloadName(mix.be.workload) << ", aggregate "
              << Cell(static_cast<double>(aggregate) / 1e9, 1) << " GB (dedicated: "
              << Cell(dedicated.TotalThroughput(), 1) << " req/s total, hp p99 "
              << Cell(UsToMs(dedicated.hp().latency.p99()), 2) << " ms) --\n";

    Table table({"oversub", "scheduler", "total_req/s", "hp_p99_ms", "be_req/s", "faults",
                 "paged_GB", "tq_excl"});
    for (const double factor : factors) {
      // Device memory shrinks instead of the models growing: same sweep, one
      // profile. Page-aligned so 1.0x fits exactly.
      const std::size_t memory =
          static_cast<std::size_t>(static_cast<double>(aggregate) / factor) / kPageBytes *
          kPageBytes;

      std::size_t mps_total = 0;
      std::size_t tq_total = 0;
      for (const harness::SchedulerKind kind :
           {harness::SchedulerKind::kMps, harness::SchedulerKind::kTimeQuantum,
            harness::SchedulerKind::kOrion}) {
        const auto result = harness::RunExperiment(PagingConfig(mix, memory, kind));
        const double paged_gb =
            static_cast<double>(result.paging.fault_bytes_h2d +
                                result.paging.writeback_bytes_d2h) /
            1e9;
        table.AddRow({Cell(factor, 2), result.scheduler_name,
                      Cell(result.TotalThroughput(), 1),
                      Cell(UsToMs(result.hp().latency.p99()), 2),
                      Cell(bench::BeThroughput(result), 1), Cell(result.paging.faults),
                      Cell(paged_gb, 1), Cell(result.tq_exclusive_entries)});
        if (kind == harness::SchedulerKind::kMps) {
          mps_total = TotalCompleted(result);
        } else if (kind == harness::SchedulerKind::kTimeQuantum) {
          tq_total = TotalCompleted(result);
        }

        if (factor == 1.0) {
          // Inertness: the same run without the pager must be bit-identical.
          harness::ExperimentConfig plain = PagingConfig(mix, memory, kind);
          plain.paging = memsub::PagingOptions{};
          if (!SameResults(result, harness::RunExperiment(plain))) {
            inert_ok = false;
            std::cout << "  [inertness violated: " << mix.name << "/"
                      << result.scheduler_name << " diverged at 1.0x]\n";
          }
        }
        if (factor >= 1.5 && kind == harness::SchedulerKind::kOrion) {
          if (result.hp().latency.p99() >
              kHpSloMultiplier * dedicated.hp().latency.p99()) {
            hp_slo_ok = false;
            std::cout << "  [hp SLO violated: " << mix.name << " @" << factor << "x p99 "
                      << UsToMs(result.hp().latency.p99()) << " ms vs dedicated "
                      << UsToMs(dedicated.hp().latency.p99()) << " ms]\n";
          }
        }
      }
      if (factor >= 1.5 && tq_total <= mps_total) {
        tq_beats_paging = false;
        std::cout << "  [tq did not beat naive paging: " << mix.name << " @" << factor
                  << "x tq " << tq_total << " vs mps " << mps_total
                  << " completed requests]\n";
      }
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Instrumented arm (only with --trace-out / --metrics-out): the training
  // mix at 2x under nvshare-TQ, with streaming flushes when
  // --flush-period-ms was given. The trace carries memsub fault bursts and
  // tq enter_exclusive markers on the device timeline.
  if (bench::TelemetryRequested()) {
    std::cout << "-- Telemetry arm: train mix @2.0x under nvshare-tq --\n";
    telemetry::Hub hub;
    if (!bench::GlobalBenchArgs().trace_out.empty()) {
      hub.EnableTracing();
    }
    if (bench::AttributionRequested()) {
      hub.EnableAttribution();
    }
    const Mix mix = Mixes().front();
    const std::size_t aggregate = RoundUpToPages(workloads::ApproxModelStateBytes(mix.hp.workload)) +
                                  RoundUpToPages(workloads::ApproxModelStateBytes(mix.be.workload));
    harness::ExperimentConfig config =
        PagingConfig(mix, aggregate / 2 / kPageBytes * kPageBytes,
                     harness::SchedulerKind::kTimeQuantum);
    config.telemetry = &hub;
    config.telemetry_flush = bench::FlushOptions();
    const auto result = harness::RunExperiment(config);
    std::cout << "total " << Cell(result.TotalThroughput(), 1) << " req/s, "
              << result.paging.faults << " faults, " << result.tq_exclusive_entries
              << " exclusive entries, " << result.telemetry_flushes
              << " streamed flushes\n";
    bench::ExportTelemetry(hub);
  }

  const char* inert = inert_ok ? "yes" : "no";
  const char* tq = tq_beats_paging ? "yes" : "no";
  const char* slo = hp_slo_ok ? "yes" : "no";
  std::cout << "ACCEPTANCE oversub: pager-inert@1.0x=" << inert
            << " tq-beats-paging@>=1.5x=" << tq << " orion-hp-slo@>=1.5x=" << slo << "\n";
  return inert_ok && tq_beats_paging && hp_slo_ok ? 0 : 1;
}
