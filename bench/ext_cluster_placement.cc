// Extension bench (paper §7): cluster-manager co-design.
//
// Six jobs must be packed onto three GPUs, two per GPU. The profile-aware
// placement engine pairs jobs with complementary compute/memory signatures;
// the baseline round-robins. Both placements are then *simulated* (each GPU
// pair runs under Orion) and judged by the real outcome: aggregate
// normalised throughput and high-priority latency.
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/placement.h"
#include "src/common/check.h"

using namespace orion;

namespace {

struct JobSpec {
  workloads::ModelId model;
  workloads::TaskType task;
  bool high_priority;
};

harness::ClientConfig ToClient(const JobSpec& job) {
  if (job.task == workloads::TaskType::kTraining) {
    return bench::TrainingClient(job.model, job.high_priority);
  }
  return bench::InferenceClient(job.model, harness::ClientConfig::Arrivals::kPoisson,
                                trace::RequestsPerSecond(
                                    job.model, trace::CollocationCase::kInfTrainPoisson),
                                job.high_priority);
}

// Simulates one GPU's pair and returns (hp-side normalised throughput sum).
double SimulatePair(const JobSpec& a, const JobSpec& b) {
  const harness::ClientConfig first = ToClient(a);
  const harness::ClientConfig second = ToClient(b);
  // Exactly one hp client per GPU: if neither is, promote the first.
  harness::ClientConfig hp = first;
  harness::ClientConfig be = second;
  if (!hp.high_priority && second.high_priority) {
    std::swap(hp, be);
  }
  hp.high_priority = true;
  be.high_priority = false;
  const auto ideal = bench::RunPair(hp, be, harness::SchedulerKind::kDedicated);
  const auto orion = bench::RunPair(hp, be, harness::SchedulerKind::kOrion,
                                    gpusim::DeviceSpec::V100_16GB(),
                                    bench::OrionOptionsFor(hp, be));
  const double hp_norm = orion.hp().throughput_rps / std::max(1e-9, ideal.hp().throughput_rps);
  const double be_norm =
      bench::BeThroughput(orion) / std::max(1e-9, bench::BeThroughput(ideal));
  return hp_norm + be_norm;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 7)", "profile-aware cluster placement");

  using workloads::ModelId;
  using workloads::TaskType;
  const JobSpec jobs[] = {
      {ModelId::kResNet50, TaskType::kInference, true},    // latency-critical
      {ModelId::kBert, TaskType::kInference, true},        // latency-critical
      {ModelId::kResNet101, TaskType::kTraining, true},    // important training
      {ModelId::kMobileNetV2, TaskType::kTraining, false},
      {ModelId::kTransformer, TaskType::kTraining, false},
      {ModelId::kResNet50, TaskType::kTraining, false},
  };

  std::vector<cluster::JobSignature> signatures;
  for (const JobSpec& job : jobs) {
    signatures.push_back(cluster::MakeSignature(
        gpusim::DeviceSpec::V100_16GB(),
        workloads::MakeWorkload(job.model, job.task), job.high_priority));
  }

  std::cout << "job signatures (from offline profiles):\n";
  Table sig_table({"job", "compute_int", "memory_int", "compute_frac", "state_GB"});
  for (const auto& sig : signatures) {
    sig_table.AddRow({sig.name + (sig.high_priority ? " [hp]" : ""),
                      Cell(sig.compute_intensity, 2), Cell(sig.memory_intensity, 2),
                      Cell(sig.compute_bound_fraction, 2),
                      Cell(static_cast<double>(sig.state_bytes) / (1 << 30), 1)});
  }
  sig_table.Print(std::cout);

  cluster::PlacementOptions options;
  options.num_gpus = 3;
  const auto aware = cluster::PlacementEngine::Place(signatures, options);
  const auto naive = cluster::PlacementEngine::PlaceRoundRobin(signatures, options);
  ORION_CHECK(aware.has_value() && naive.has_value());

  auto evaluate = [&](const cluster::Placement& placement, const char* name) {
    std::cout << "\n" << name << ":\n";
    double total = 0.0;
    for (std::size_t g = 0; g < placement.gpu_jobs.size(); ++g) {
      const auto& pair = placement.gpu_jobs[g];
      ORION_CHECK(pair.size() == 2);
      const double norm = SimulatePair(jobs[pair[0]], jobs[pair[1]]);
      total += norm;
      std::cout << "  GPU" << g << ": " << signatures[pair[0]].name << " + "
                << signatures[pair[1]].name << "  -> aggregate " << Cell(norm, 2)
                << "x of dedicated\n";
    }
    std::cout << "  predicted interference " << Cell(placement.predicted_interference, 2)
              << ", simulated cluster aggregate " << Cell(total, 2) << " (max 6.00)\n";
    return total;
  };
  const double aware_total = evaluate(*aware, "profile-aware placement");
  const double naive_total = evaluate(*naive, "round-robin placement");
  std::cout << "\nprofile-aware beats round-robin by "
            << Cell(100.0 * (aware_total - naive_total) / naive_total, 1)
            << "% simulated aggregate throughput.\n";
  return 0;
}
