// Extension bench (latency attribution study): the SLO-miss blame ledger
// must point at the right subsystem as the bottleneck moves.
//
// Three single-knob regimes run the same harness with attribution enabled
// (DESIGN.md §15) and check that the dominant blame phase of the
// high-priority service's missed requests tracks the injected bottleneck:
//
//   * queue-bound        — the hp service alone, offered 2x its measured
//                          dedicated capacity: misses are waiting-in-line,
//                          blame must land on kQueue.
//   * interference-bound — a closed-loop hp service collocated with a
//                          ResNet101 training tenant under plain stream
//                          sharing (fits in memory, so no paging): misses
//                          are head-of-line blocking behind the tenant's
//                          multi-ms kernels, blame must land on
//                          kInterference.
//   * paging-bound       — a large-footprint hp service alone on a device
//                          with memory for only 60% of its state, pager on
//                          without pinning: every request re-faults its
//                          working set over PCIe, blame must land on
//                          kPaging.
//
// A fourth arm checks the observer contract: the same collocation run with
// attribution on, attribution off, and no telemetry hub at all must agree
// bit-for-bit on completions and latency percentiles (the ledger never feeds
// back into the simulation). CI greps the ACCEPTANCE line.
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace orion;

namespace {

constexpr std::size_t kPageBytes = std::size_t{2} * 1024 * 1024;

std::size_t RoundUpToPages(std::size_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
}

// Dedicated-GPU baseline of one client: measured capacity (closed-loop
// throughput) and p50 latency, the anchors the regimes' offered load and SLO
// are set from.
struct Baseline {
  double capacity_rps = 0.0;
  DurationUs p50_us = 0.0;
};

Baseline MeasureDedicated(const harness::ClientConfig& client) {
  harness::ExperimentConfig config;
  config.scheduler = harness::SchedulerKind::kDedicated;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.seed = bench::GlobalBenchArgs().seed;
  harness::ClientConfig closed = client;
  closed.arrivals = harness::ClientConfig::Arrivals::kClosedLoop;
  closed.rps = 0.0;
  config.clients = {closed};
  const harness::ExperimentResult result = harness::RunExperiment(config);
  Baseline baseline;
  baseline.capacity_rps = result.clients[0].throughput_rps;
  baseline.p50_us = result.clients[0].latency.p50();
  return baseline;
}

struct Regime {
  std::string name;
  attribution::Phase expected = attribution::Phase::kQueue;
  harness::ExperimentConfig config;
  std::string hp_label;  // service name in the attribution registry
};

struct RegimeOutcome {
  harness::ExperimentResult result;
  attribution::Phase blame = attribution::Phase::kExecute;
  std::size_t misses = 0;
  bool ok = false;
};

RegimeOutcome RunRegime(const Regime& regime, telemetry::Hub* hub) {
  RegimeOutcome outcome;
  harness::ExperimentConfig config = regime.config;
  config.telemetry = hub;
  outcome.result = harness::RunExperiment(config);
  if (hub != nullptr && hub->attribution_enabled()) {
    const attribution::ScopeStats& e2e =
        hub->attribution().Service(regime.hp_label).e2e();
    outcome.blame = e2e.DominantBlame();
    outcome.misses = e2e.misses;
    outcome.ok = outcome.misses > 0 && outcome.blame == regime.expected;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (latency attribution)",
                     "SLO-miss blame ledger vs injected bottleneck");

  // --- Anchor each regime's load and SLO on measured dedicated baselines. ---
  harness::ClientConfig queue_hp = bench::InferenceClient(
      workloads::ModelId::kResNet50, harness::ClientConfig::Arrivals::kPoisson,
      0.0, /*high_priority=*/true);
  // The collocated regimes run closed-loop (one request in flight, next
  // issued on completion): client-side queueing stays near zero, so the
  // miss blame isolates the injected bottleneck rather than the backlog
  // that any slow request accumulates behind an open arrival process.
  harness::ClientConfig interference_hp = bench::InferenceClient(
      workloads::ModelId::kMobileNetV2, harness::ClientConfig::Arrivals::kClosedLoop,
      0.0, /*high_priority=*/true);
  harness::ClientConfig paging_hp = bench::InferenceClient(
      workloads::ModelId::kBert, harness::ClientConfig::Arrivals::kClosedLoop,
      0.0, /*high_priority=*/true);
  const Baseline queue_base = MeasureDedicated(queue_hp);
  const Baseline interference_base = MeasureDedicated(interference_hp);
  const Baseline paging_base = MeasureDedicated(paging_hp);

  harness::ClientConfig train_be;
  train_be.workload = workloads::MakeWorkload(workloads::ModelId::kResNet101,
                                              workloads::TaskType::kTraining, 32);
  train_be.paging_ws_fraction = 0.6;

  std::vector<Regime> regimes;
  {
    // 2x overload, nobody else on the GPU: pure queueing delay.
    Regime regime;
    regime.name = "queue-bound";
    regime.expected = attribution::Phase::kQueue;
    queue_hp.rps = 2.0 * queue_base.capacity_rps;
    queue_hp.slo_us = 3.0 * queue_base.p50_us;
    regime.config.scheduler = harness::SchedulerKind::kMps;
    regime.config.clients = {queue_hp};
    regime.hp_label = workloads::WorkloadName(queue_hp.workload) + "/hp";
    regimes.push_back(std::move(regime));
  }
  {
    // Closed loop, heavyweight training tenant, everything fits in memory.
    // Plain stream sharing has no priorities, so the small hp kernels queue
    // behind the tenant's multi-ms training kernels (the paper's Fig. 7
    // head-of-line blocking): the service window stretches far past the
    // isolated cost.
    Regime regime;
    regime.name = "interference-bound";
    regime.expected = attribution::Phase::kInterference;
    interference_hp.slo_us = 1.25 * interference_base.p50_us;
    regime.config.scheduler = harness::SchedulerKind::kStreams;
    regime.config.clients = {interference_hp, train_be};
    regime.hp_label = workloads::WorkloadName(interference_hp.workload) + "/hp";
    regimes.push_back(std::move(regime));
  }
  {
    // The large-footprint hp service alone on a device with memory for only
    // 60% of its state, pager on with no pinning: the cyclic working-set
    // scan against a smaller LRU re-faults every page of every request (the
    // sequential-scan pathology), so the miss is pure PCIe fault stall with
    // no collocated tenant to share the blame.
    Regime regime;
    regime.name = "paging-bound";
    regime.expected = attribution::Phase::kPaging;
    paging_hp.slo_us = 1.5 * paging_base.p50_us;
    regime.config.scheduler = harness::SchedulerKind::kMps;
    regime.config.clients = {paging_hp};
    const std::size_t footprint =
        RoundUpToPages(workloads::ApproxModelStateBytes(paging_hp.workload));
    regime.config.device.memory_bytes =
        static_cast<std::size_t>(footprint * 0.6) / kPageBytes * kPageBytes;
    regime.config.paging.enabled = true;
    regime.hp_label = workloads::WorkloadName(paging_hp.workload) + "/hp";
    regimes.push_back(std::move(regime));
  }
  for (Regime& regime : regimes) {
    regime.config.warmup_us = bench::WarmupWindowUs();
    regime.config.duration_us = bench::MeasureWindowUs();
    regime.config.seed = bench::GlobalBenchArgs().seed;
  }

  // --- Blame arms: one shared hub so --attr-out exports all regimes. ---
  telemetry::Hub hub;
  if (!bench::GlobalBenchArgs().trace_out.empty()) {
    hub.EnableTracing();
  }
  hub.EnableAttribution();
  Table table({"regime", "completed", "misses", "hp p50 ms", "hp p99 ms",
               "dominant blame", "expected", "ok"});
  std::vector<bool> regime_ok;
  std::vector<RegimeOutcome> outcomes;
  for (const Regime& regime : regimes) {
    RegimeOutcome outcome = RunRegime(regime, &hub);
    const harness::ClientResult& hp = outcome.result.hp();
    table.AddRow({regime.name, Cell(hp.completed), Cell(outcome.misses),
                  Cell(UsToMs(hp.latency.p50()), 2), Cell(UsToMs(hp.latency.p99()), 2),
                  attribution::PhaseName(outcome.blame),
                  attribution::PhaseName(regime.expected), outcome.ok ? "yes" : "no"});
    regime_ok.push_back(outcome.ok);
    outcomes.push_back(std::move(outcome));
  }
  table.Print(std::cout);
  std::cout << "\n";

  // --- Observer contract: attribution must not perturb the simulation. ---
  // The interference regime reruns (a) with a fresh attribution-enabled hub,
  // (b) with a hub whose attribution is off, (c) with no hub; all three and
  // the blame arm above must agree bit-for-bit.
  bool inert_ok = true;
  {
    const Regime& regime = regimes[1];
    telemetry::Hub attr_hub;
    attr_hub.EnableAttribution();
    telemetry::Hub plain_hub;
    const RegimeOutcome with_attr = RunRegime(regime, &attr_hub);
    const RegimeOutcome with_hub = RunRegime(regime, &plain_hub);
    const RegimeOutcome bare = RunRegime(regime, nullptr);
    const harness::ClientResult& blame_hp = outcomes[1].result.hp();
    for (const RegimeOutcome* other : {&with_attr, &with_hub, &bare}) {
      const harness::ClientResult& hp = other->result.hp();
      // Exact double equality on purpose: the ledger is a pure observer, so
      // instrumented runs must replay the identical event sequence.
      if (hp.completed != blame_hp.completed ||
          hp.latency.p50() != blame_hp.latency.p50() ||
          hp.latency.p99() != blame_hp.latency.p99() ||
          hp.slo_misses != blame_hp.slo_misses) {
        inert_ok = false;
      }
    }
    std::cout << "observer contract (attr-on vs attr-off vs no hub, bitwise): "
              << (inert_ok ? "bit-identical" : "DIVERGED") << "\n\n";
  }

  bench::ExportTelemetry(hub);

  std::cout << "ACCEPTANCE attribution: queue-bound=" << (regime_ok[0] ? "yes" : "no")
            << " interference-bound=" << (regime_ok[1] ? "yes" : "no")
            << " paging-bound=" << (regime_ok[2] ? "yes" : "no")
            << " inert=" << (inert_ok ? "yes" : "no") << "\n";
  return 0;
}
