// Extension bench (paper §7, Discussion): applicability to LLMs.
//
// The paper observes that the token-generation phase of LLM inference is
// memory-bound and underutilizes SMs and compute throughput, so Orion's
// resource-aware policy should collocate it with computationally intensive
// workloads. This bench quantifies that: an LLM-decode service (high
// priority) collocated with a compute-heavy best-effort training job, under
// Ideal / MPS / REEF / Orion.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 7)", "LLM token-generation collocation");

  // The device every leg of the bench runs on — classification included.
  // Classifying on a fixed V100 while simulating another spec misclassifies
  // kernels whose roofline crossover moves with the compute/bandwidth ratio.
  // A100 40 GB: the decode service's ~19 GB of state cannot share a V100
  // 16 GB with a trainer at all (the §5.1.3 memory check rightly aborts).
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::A100_40GB();

  // High-priority: LLM decode service, Poisson arrivals.
  harness::ClientConfig hp;
  hp.workload =
      workloads::MakeWorkload(workloads::ModelId::kLlmDecode, workloads::TaskType::kInference);
  hp.high_priority = true;
  hp.arrivals = harness::ClientConfig::Arrivals::kPoisson;
  hp.rps = 1.0;

  // Best-effort: ResNet50 training (compute-heavy kernels).
  const harness::ClientConfig be = bench::TrainingClient(workloads::ModelId::kResNet50, false);

  // Show the decode profile first: memory-bound share of one decode step
  // (the serving engine's iteration unit), classified per device — the
  // crossover differs between specs, so the share is a device property.
  for (const gpusim::DeviceSpec& spec :
       {gpusim::DeviceSpec::V100_16GB(), device}) {
    const auto kernels = workloads::BuildLlmDecodeStepKernels(
        spec, workloads::LlmModelConfig{}, /*batch=*/1, /*context_tokens=*/256);
    int memory = 0;
    double total_us = 0.0;
    for (const auto& kernel : kernels) {
      total_us += kernel.duration_us;
      if (gpusim::ClassifyKernel(kernel) == gpusim::ResourceProfile::kMemoryBound) {
        ++memory;
      }
    }
    std::cout << spec.name << " decode step: " << kernels.size() << " kernels, "
              << Cell(100.0 * memory / kernels.size(), 0) << "% memory-bound, "
              << Cell(UsToMs(total_us), 2) << " ms of kernel time\n";
  }
  std::cout << "\n";

  Table table({"technique", "decode_p99_ms", "p99_vs_ideal", "train_it/s", "gpu_compute_%"});
  double ideal_p99 = 0.0;
  for (auto scheduler :
       {harness::SchedulerKind::kDedicated, harness::SchedulerKind::kMps,
        harness::SchedulerKind::kReef, harness::SchedulerKind::kOrion}) {
    const auto result = bench::RunPair(hp, be, scheduler, device);
    const double p99 = UsToMs(result.hp().latency.p99());
    if (scheduler == harness::SchedulerKind::kDedicated) {
      ideal_p99 = p99;
    }
    table.AddRow({harness::SchedulerKindName(scheduler), Cell(p99, 1),
                  Cell(ideal_p99 > 0 ? p99 / ideal_p99 : 0.0, 2),
                  Cell(bench::BeThroughput(result), 2),
                  Cell(100.0 * result.utilization.compute, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: decode kernels are memory-bound, training convs are\n"
               "compute-bound, so Orion's opposite-profile rule collocates them with\n"
               "little decode-latency damage while the trainer makes progress.\n";
  return 0;
}
