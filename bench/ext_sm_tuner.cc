// Extension bench: SM_THRESHOLD auto-tuning (§5.1.1).
//
// For a throughput-oriented high-priority job (training), the paper tunes
// SM_THRESHOLD via binary search over [0, max best-effort kernel size],
// keeping the most aggressive value whose high-priority throughput stays
// within tolerance of dedicated. This bench prints the search trace and the
// final latency/throughput trade for a train-train pair.
#include <iostream>

#include "bench/bench_util.h"
#include "src/harness/sm_tuner.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 5.1.1)", "SM_THRESHOLD binary-search auto-tuning");

  harness::ExperimentConfig config;
  config.seed = bench::GlobalBenchArgs().seed;
  config.scheduler = harness::SchedulerKind::kOrion;
  config.warmup_us = bench::WarmupWindowUs();
  config.clients = {bench::TrainingClient(workloads::ModelId::kResNet50, true),
                    bench::TrainingClient(workloads::ModelId::kMobileNetV2, false)};

  const harness::SmTunerResult tuned = harness::TuneSmThreshold(config);

  std::cout << "search trace (hp floor: within 16% of dedicated "
            << Cell(tuned.hp_dedicated_metric, 2) << " it/s):\n";
  Table trace({"probe_threshold", "hp_it/s", "acceptable"});
  for (const auto& step : tuned.steps) {
    trace.AddRow({Cell(step.threshold), Cell(step.hp_metric, 2),
                  step.acceptable ? "yes" : "no"});
  }
  trace.Print(std::cout);

  std::cout << "\nchosen SM_THRESHOLD: " << tuned.best_threshold << "\n";

  // Compare default vs tuned on a full-length run.
  config.duration_us = bench::MeasureWindowUs();
  Table table({"configuration", "hp_it/s", "hp_vs_ideal", "be_it/s"});
  config.orion.sm_threshold = 0;  // default: device SM count
  const auto def = harness::RunExperiment(config);
  config.orion.sm_threshold = tuned.best_threshold;
  const auto tuned_run = harness::RunExperiment(config);
  table.AddRow({"default (= num SMs)", Cell(def.hp().throughput_rps, 2),
                Cell(def.hp().throughput_rps / tuned.hp_dedicated_metric, 2),
                Cell(bench::BeThroughput(def), 2)});
  table.AddRow({"tuned", Cell(tuned_run.hp().throughput_rps, 2),
                Cell(tuned_run.hp().throughput_rps / tuned.hp_dedicated_metric, 2),
                Cell(bench::BeThroughput(tuned_run), 2)});
  table.Print(std::cout);
  std::cout << "\nFor throughput-oriented hp jobs the tuner can raise SM_THRESHOLD above\n"
               "the conservative default, admitting more best-effort work while the hp\n"
               "training job stays within its throughput floor (§5.1.1).\n";
  return 0;
}
