// Figure 4: fraction of compute-intensive vs memory-intensive vs unknown
// kernels per workload (inference request, left; training minibatch, right),
// plus the kernel-duration ranges the paper quotes (10s-100s of µs for
// inference, 100s-1000s for training).
#include <iostream>

#include "bench/bench_util.h"
#include "src/gpusim/kernel.h"
#include "src/workloads/models.h"

using namespace orion;

namespace {

void Report(workloads::TaskType task, const char* title) {
  std::cout << title << "\n";
  Table table({"workload", "kernels", "compute_%", "memory_%", "unknown_%", "min_us",
               "median_us", "max_us"});
  const gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  for (auto model : bench::AllModels()) {
    const auto spec = workloads::MakeWorkload(model, task);
    const auto kernels = workloads::BuildKernels(device, spec);
    int compute = 0;
    int memory = 0;
    int unknown = 0;
    LatencyRecorder durations;
    for (const auto& kernel : kernels) {
      durations.Add(kernel.duration_us);
      switch (gpusim::ClassifyKernel(kernel)) {
        case gpusim::ResourceProfile::kComputeBound:
          ++compute;
          break;
        case gpusim::ResourceProfile::kMemoryBound:
          ++memory;
          break;
        case gpusim::ResourceProfile::kUnknown:
          ++unknown;
          break;
      }
    }
    const double n = static_cast<double>(kernels.size());
    table.AddRow({workloads::WorkloadName(spec), Cell(kernels.size()),
                  Cell(100.0 * compute / n, 1), Cell(100.0 * memory / n, 1),
                  Cell(100.0 * unknown / n, 1), Cell(durations.min(), 1),
                  Cell(durations.p50(), 1), Cell(durations.max(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 4", "compute- vs memory-intensive kernel mix per workload");
  Report(workloads::TaskType::kInference, "-- inference request (paper: kernels 10s-100s us)");
  Report(workloads::TaskType::kTraining,
         "-- training minibatch (paper: kernels 100s-1000s us; unknowns in update phase)");
  std::cout << "Claim under test: every DNN job mixes both kernel classes, so\n"
               "opposite-profile collocation opportunities exist across jobs.\n";
  return 0;
}
