// Extension bench (paper §5.1.3): memory oversubscription for collocations
// that exceed GPU memory.
//
// Two big-batch training jobs (~20 GB aggregate) share a 16 GB V100. The
// high-priority job's state is pinned device-resident (Orion's §5.1.3
// stance); the best-effort job's state is demand-paged by the unified-memory
// pager (src/memsub), so its per-iteration swap traffic is *measured* —
// page faults riding the real copy engine — rather than assumed. The old
// closed-form prediction (stream exactly the memory deficit per iteration,
// perfectly overlapped) is kept as the `deficit_GB` cross-check column: it
// is the lower bound an ideal layer-by-layer prefetcher would pay, while the
// pager shows what LRU demand paging actually costs once the best-effort
// job's cyclic scan stops fitting (every touched page misses — the
// sequential-scan pathology that motivates nvshare's time-quantum fallback,
// see bench/ext_memory_oversub).
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 5.1.3)", "memory swapping for oversized collocations");

  Table table({"batch", "aggregate_GB", "deficit_GB", "paged_GB/it", "faults/it", "hp_it/s",
               "hp_vs_ideal", "be_it/s"});
  for (int batch : {32, 40, 48, 56}) {
    harness::ClientConfig hp;
    hp.workload =
        workloads::MakeWorkload(workloads::ModelId::kResNet50, workloads::TaskType::kTraining,
                                batch);
    hp.high_priority = true;
    harness::ClientConfig be;
    be.workload = workloads::MakeWorkload(workloads::ModelId::kResNet101,
                                          workloads::TaskType::kTraining, batch);
    be.allow_swapping = true;

    harness::ExperimentConfig config;
    config.seed = bench::GlobalBenchArgs().seed;
    config.warmup_us = bench::WarmupWindowUs();
    config.duration_us = bench::MeasureWindowUs();
    config.clients = {hp, be};

    config.scheduler = harness::SchedulerKind::kDedicated;
    const auto ideal = harness::RunExperiment(config);

    config.scheduler = harness::SchedulerKind::kOrion;
    config.orion = bench::OrionOptionsFor(hp, be);
    config.paging.enabled = true;
    config.paging.pin_high_priority = true;
    // §5.1.3's other half: without PCIe priority the hp job's input copies
    // share the link fairly with the scan's paging flood.
    config.pcie_priority_scheduling = true;
    const auto orion = harness::RunExperiment(config);

    const double aggregate_gb =
        (static_cast<double>(workloads::ApproxModelStateBytes(hp.workload)) +
         static_cast<double>(workloads::ApproxModelStateBytes(be.workload))) /
        1e9;
    // Pager telemetry, normalised per best-effort iteration. The hp job is
    // pinned, so every fault below belongs to the best-effort scan.
    const harness::ClientResult* be_result = nullptr;
    for (const auto& client : orion.clients) {
      if (!client.high_priority) {
        be_result = &client;
      }
    }
    const double be_iters =
        be_result != nullptr ? static_cast<double>(be_result->completed_total) : 0.0;
    const double paged_gb_per_it =
        be_iters > 0.0 ? static_cast<double>(orion.paging.fault_bytes_h2d +
                                             orion.paging.writeback_bytes_d2h) /
                             1e9 / be_iters
                       : 0.0;
    const double faults_per_it =
        be_iters > 0.0 ? static_cast<double>(orion.paging.faults) / be_iters : 0.0;
    table.AddRow({Cell(batch), Cell(aggregate_gb, 1),
                  Cell(static_cast<double>(orion.memory_deficit_bytes) / 1e9, 1),
                  Cell(paged_gb_per_it, 1), Cell(faults_per_it, 0),
                  Cell(orion.hp().throughput_rps, 2),
                  Cell(orion.hp().throughput_rps / ideal.hp().throughput_rps, 2),
                  Cell(bench::BeThroughput(orion), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nOnce the pair stops fitting (deficit > 0), the best-effort job pays PCIe\n"
               "time for its measured page faults while the pinned high-priority job stays\n"
               "protected by Orion's policy. `deficit_GB` is the closed-form lower bound\n"
               "(stream exactly the overflow, perfectly overlapped); `paged_GB/it` is what\n"
               "LRU demand paging actually moves — a cyclic scan that exceeds its frames\n"
               "misses on every page, so the gap between the columns is the price of\n"
               "demand paging over ideal prefetching (§5.1.3 discussion).\n";
  return 0;
}
