// Extension bench (paper §5.1.3): layer-by-layer offloading for collocations
// that exceed GPU memory.
//
// Two big-batch training jobs (~20 GB aggregate) share a 16 GB V100. The
// best-effort job streams its non-resident state in per iteration. We sweep
// the batch size to show the cost of swapping growing with the deficit, and
// show the high-priority job staying protected under Orion.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 5.1.3)", "memory swapping for oversized collocations");

  Table table({"batch", "aggregate_GB", "deficit_GB", "hp_it/s", "hp_vs_ideal", "be_it/s"});
  for (int batch : {32, 40, 48, 56}) {
    harness::ClientConfig hp;
    hp.workload =
        workloads::MakeWorkload(workloads::ModelId::kResNet50, workloads::TaskType::kTraining,
                                batch);
    hp.high_priority = true;
    harness::ClientConfig be;
    be.workload = workloads::MakeWorkload(workloads::ModelId::kResNet101,
                                          workloads::TaskType::kTraining, batch);
    be.allow_swapping = true;

    harness::ExperimentConfig config;
    config.seed = bench::GlobalBenchArgs().seed;
    config.warmup_us = bench::WarmupWindowUs();
    config.duration_us = bench::MeasureWindowUs();
    config.clients = {hp, be};

    config.scheduler = harness::SchedulerKind::kDedicated;
    const auto ideal = harness::RunExperiment(config);

    config.scheduler = harness::SchedulerKind::kOrion;
    config.orion = bench::OrionOptionsFor(hp, be);
    const auto orion = harness::RunExperiment(config);

    const double aggregate_gb =
        (static_cast<double>(workloads::ApproxModelStateBytes(hp.workload)) +
         static_cast<double>(workloads::ApproxModelStateBytes(be.workload))) /
        1e9;
    table.AddRow({Cell(batch), Cell(aggregate_gb, 1),
                  Cell(static_cast<double>(orion.memory_deficit_bytes) / 1e9, 1),
                  Cell(orion.hp().throughput_rps, 2),
                  Cell(orion.hp().throughput_rps / ideal.hp().throughput_rps, 2),
                  Cell(bench::BeThroughput(orion), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nOnce the pair stops fitting (deficit > 0), the best-effort job pays\n"
               "PCIe time for its per-iteration swap-ins while the high-priority job's\n"
               "throughput stays protected by Orion's policy.\n";
  return 0;
}
