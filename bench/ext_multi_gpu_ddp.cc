// Extension bench (paper §7): multi-GPU data-parallel training on the
// shared-node interconnect.
//
// Two claims:
//   1. Scaling — with a fixed global batch, DDP iteration time drops as GPUs
//      are added (per-GPU compute shrinks; the gradient all-reduce, sized by
//      parameter bytes, is the non-scaling part). Runs on a DGX-style
//      NVLink-pairs node.
//   2. Interference — a collocated bandwidth-hungry best-effort client
//      (back-to-back H2D copies on one DDP GPU) inflates all-reduce time
//      when the ring crosses the shared PCIe root, but not when the ring
//      runs entirely over NVLink. This is the multi-GPU face of the paper's
//      PCIe-contention discussion (§5.1.3).
#include <iostream>
#include <sstream>

#include "bench/bench_util.h"
#include "src/harness/multi_gpu.h"

using namespace orion;

namespace {

constexpr int kGlobalBatch = 32;
constexpr int kIterations = 8;

harness::MultiGpuConfig BaseConfig(interconnect::NodeTopology topology, int num_gpus) {
  harness::MultiGpuConfig config;
  config.topology = std::move(topology);
  config.ddp.model = workloads::ModelId::kResNet50;
  config.ddp.num_gpus = num_gpus;
  config.ddp.global_batch_size = kGlobalBatch;
  config.iterations = kIterations;
  return config;
}

std::string RingName(const std::vector<int>& ring) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    os << (i > 0 ? "-" : "") << ring[i];
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 7)", "multi-GPU DDP over the node interconnect");

  // --- Claim 1: fixed-global-batch scaling on an NVLink-pairs node. ---
  std::cout << "ResNet50 DDP, global batch " << kGlobalBatch << ", " << kIterations
            << " iterations, 4-GPU NVLink-pairs node:\n\n";
  Table scaling({"gpus", "ring", "iter_ms", "allreduce_ms", "speedup", "ideal"});
  double one_gpu_ms = 0.0;
  harness::MultiGpuResult four_gpu;
  for (const int gpus : {1, 2, 4}) {
    const auto result =
        harness::RunDdpExperiment(BaseConfig(interconnect::NodeTopology::NvLinkPairs(4), gpus));
    const double iter_ms = UsToMs(result.iteration_us.mean());
    if (gpus == 1) {
      one_gpu_ms = iter_ms;
    }
    if (gpus == 4) {
      four_gpu = result;
    }
    scaling.AddRow({Cell(gpus), RingName(result.ring), Cell(iter_ms, 2),
                    Cell(result.allreduce_us.count() > 0 ? UsToMs(result.allreduce_us.mean()) : 0.0, 3),
                    Cell(one_gpu_ms / iter_ms, 2), Cell(static_cast<double>(gpus), 2)});
  }
  scaling.Print(std::cout);
  std::cout << "\nSpeedup trails ideal by the all-reduce time plus launch overhead; the\n"
               "all-reduce does not shrink with GPU count (same parameter bytes).\n\n";

  // Per-link traffic of the 4-GPU run: each ring-link direction carries
  // 2*(N-1)/N of the gradient bytes per all-reduced bucket round-trip.
  Table traffic({"link", "kind", "fwd_MB", "bwd_MB"});
  for (const auto& link : four_gpu.link_traffic) {
    traffic.AddRow({link.name, interconnect::LinkKindName(link.kind),
                    Cell(link.forward_bytes / (1 << 20), 1),
                    Cell(link.backward_bytes / (1 << 20), 1)});
  }
  traffic.Print(std::cout);
  std::cout << "\nGradient bytes/iteration: " << Cell(four_gpu.param_bytes / double(1 << 20), 1)
            << " MB in " << four_gpu.buckets_per_iteration << " buckets; ring "
            << RingName(four_gpu.ring) << " crosses PCIe between the NVLink pairs.\n\n";

  // --- Claim 2: a PCIe bandwidth hog hurts a PCIe ring, not an NVLink ring. ---
  std::cout << "2-GPU DDP vs. a collocated H2D bandwidth hog on GPU 0 (32 MB copies,\n"
               "closed loop):\n\n";
  Table interference({"topology", "hog", "allreduce_ms", "iter_ms", "hog_copies"});
  for (const bool nvlink : {false, true}) {
    for (const bool hog : {false, true}) {
      auto config = BaseConfig(nvlink ? interconnect::NodeTopology::NvLinkPairs(2)
                                      : interconnect::NodeTopology::PcieOnly(2),
                               2);
      if (hog) {
        config.hog = harness::BandwidthHogConfig{};
      }
      const auto result = harness::RunDdpExperiment(config);
      interference.AddRow({nvlink ? "NVLink pair" : "PCIe only", hog ? "yes" : "no",
                           Cell(UsToMs(result.allreduce_us.mean()), 3),
                           Cell(UsToMs(result.iteration_us.mean()), 2),
                           Cell(result.hog_copies)});
    }
  }
  interference.Print(std::cout);
  std::cout << "\nOn the PCIe-only node the ring shares both host links with the hog's\n"
               "copies (fair-share per link direction), inflating every bucket's\n"
               "all-reduce; the NVLink ring never touches PCIe and is unaffected.\n";

  // --- Instrumented arm (only with --trace-out / --metrics-out): the 4-GPU
  // scaling run again with a telemetry hub attached. The trace holds one
  // kernel track per GPU plus collective/fabric async spans; the metrics CSV
  // mirrors the run's "ddp.*" counters/histograms.
  if (bench::TelemetryRequested()) {
    std::cout << "\n-- Telemetry arm: instrumented 4-GPU run --\n";
    telemetry::Hub hub;
    if (!bench::GlobalBenchArgs().trace_out.empty()) {
      hub.EnableTracing();
    }
    auto config = BaseConfig(interconnect::NodeTopology::NvLinkPairs(4), 4);
    config.telemetry = &hub;
    const auto result = harness::RunDdpExperiment(config);
    std::cout << "iterations: " << result.iterations
              << "  iter_ms: " << Cell(UsToMs(result.iteration_us.mean()), 2)
              << "  allreduce_ms: " << Cell(UsToMs(result.allreduce_us.mean()), 3)
              << "\n";
    bench::ExportTelemetry(hub);
  }
  return 0;
}
