// Extension bench: fault tolerance of the collocation under injected faults
// (src/fault).
//
// The paper evaluates Orion on a healthy device with fresh profiles; this
// bench measures how gracefully the collocation degrades when that
// assumption breaks. Two arms:
//
//   1. Single-GPU collocation (ResNet50 inference hp + two training be
//      clients) under one fault scenario per fault class — device
//      degradation, best-effort client crash, client hang with a runaway
//      kernel, and poisoned profiles — reporting hp p99 and aggregate be
//      throughput against the fault-free run.
//   2. 4-GPU DDP training under interconnect faults — a link flap that the
//      collective engine waits out, and a GPU death that shrinks the ring —
//      reporting iteration time, detection/re-formation counts, and the
//      surviving world size.
//
// Everything is deterministic: the fault plan lives on the simulated clock
// and the seeds are fixed, so repeated runs print identical tables.
#include <iostream>

#include "bench/bench_util.h"
#include "src/harness/multi_gpu.h"

using namespace orion;

namespace {

constexpr DurationUs kWarmup = SecToUs(1.0);
constexpr DurationUs kWindow = SecToUs(10.0);

harness::ExperimentConfig CollocationConfig() {
  harness::ExperimentConfig config;
  config.scheduler = harness::SchedulerKind::kOrion;
  config.warmup_us = kWarmup;
  config.duration_us = kWindow;
  config.clients = {
      bench::InferenceClient(workloads::ModelId::kResNet50,
                             harness::ClientConfig::Arrivals::kPoisson,
                             trace::RequestsPerSecond(workloads::ModelId::kResNet50,
                                                      trace::CollocationCase::kInfTrainPoisson),
                             /*high_priority=*/true),
      bench::TrainingClient(workloads::ModelId::kResNet50, /*high_priority=*/false),
      bench::TrainingClient(workloads::ModelId::kMobileNetV2, /*high_priority=*/false),
  };
  return config;
}

double BeThroughput(const harness::ExperimentResult& result) {
  double total = 0.0;
  for (const auto& client : result.clients) {
    if (!client.high_priority) {
      total += client.throughput_rps;
    }
  }
  return total;
}

harness::MultiGpuConfig DdpConfig() {
  harness::MultiGpuConfig config;
  config.topology = interconnect::NodeTopology::FullNvLink(4);
  config.ddp.model = workloads::ModelId::kResNet50;
  config.ddp.num_gpus = 4;
  config.ddp.global_batch_size = 32;
  config.iterations = 8;
  config.collective.step_timeout_us = 200.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (fault tolerance)",
                     "graceful degradation under injected faults");

  // --- Arm 1: single-GPU collocation, one scenario per fault class. ---
  std::cout << "ResNet50 inference (hp, Poisson) + ResNet50/MobileNetV2 training (be),\n"
            << "Orion, " << UsToSec(kWindow) << " s window. Faults injected mid-window:\n\n";

  struct Scenario {
    const char* name;
    harness::ExperimentConfig config;
  };
  std::vector<Scenario> scenarios;

  scenarios.push_back({"fault-free", CollocationConfig()});

  {
    Scenario s{"device degrade", CollocationConfig()};
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kDeviceDegrade;
    e.at_us = SecToUs(5.0);
    e.gpu = 0;
    e.sms_lost = 40;       // 80 -> 40 SMs
    e.membw_factor = 0.7;  // 30% of memory bandwidth gone
    s.config.fault_plan.events.push_back(e);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"be client crash", CollocationConfig()};
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kClientCrash;
    e.at_us = SecToUs(5.0);
    e.client = 1;
    s.config.fault_plan.events.push_back(e);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"be client hang", CollocationConfig()};
    s.config.orion.runaway_timeout_factor = 4.0;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kClientHang;
    e.at_us = SecToUs(5.0);
    e.client = 1;
    e.runaway_us = SecToUs(0.5);  // 500 ms runaway kernel
    s.config.fault_plan.events.push_back(e);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"profile poison", CollocationConfig()};
    s.config.orion.conservative_profile_miss = true;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kProfilePoison;
    e.at_us = SecToUs(3.0);
    e.perturb_factor = 1.5;
    e.drop_fraction = 0.3;
    e.seed = 7;
    s.config.fault_plan.events.push_back(e);
    scenarios.push_back(std::move(s));
  }

  Table collocation(
      {"scenario", "hp_p99_ms", "vs_ok", "be_iters_s", "quarantined", "runaway"});
  double baseline_p99 = 0.0;
  for (const Scenario& scenario : scenarios) {
    const harness::ExperimentResult result = harness::RunExperiment(scenario.config);
    const double p99_ms = UsToMs(result.hp().latency.p99());
    if (baseline_p99 == 0.0) {
      baseline_p99 = p99_ms;
    }
    collocation.AddRow({scenario.name, Cell(p99_ms, 2), Cell(p99_ms / baseline_p99, 2),
                        Cell(BeThroughput(result), 2), Cell(result.clients_quarantined),
                        Cell(result.runaway_quarantines)});
  }
  collocation.Print(std::cout);
  std::cout << "\nCrash/hang quarantine recredits the DUR_THRESHOLD budget, so hp p99\n"
               "never trails the fault-free run; device degradation is the one fault\n"
               "that must cost latency (the hardware itself shrank).\n\n";

  // --- Arm 2: DDP training under interconnect faults. ---
  std::cout << "ResNet50 DDP, 4-GPU full-NVLink node, 8 iterations, collective step\n"
               "timeout 200 us:\n\n";

  struct DdpScenario {
    const char* name;
    harness::MultiGpuConfig config;
  };
  std::vector<DdpScenario> ddp_scenarios;
  ddp_scenarios.push_back({"fault-free", DdpConfig()});
  {
    // Mid-backward of iteration 1, where gradient buckets are in flight.
    // 2.8 ms is inside the engine's give-up patience (200µs × (1+2+4+8) =
    // 3 ms), so the flap is waited out rather than declared a death.
    DdpScenario s{"link flap 2.8ms", DdpConfig()};
    const auto ring = s.config.topology.PreferredRing({0, 1, 2, 3});
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kLinkDown;
    e.at_us = 25000.0;
    e.link = s.config.topology.NvLinkBetween(ring[0], ring[1]);
    e.dir = fault::LinkDir::kBoth;
    e.duration_us = 2800.0;
    s.config.fault_plan.events.push_back(e);
    ddp_scenarios.push_back(std::move(s));
  }
  {
    DdpScenario s{"gpu 3 death", DdpConfig()};
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kGpuDown;
    e.at_us = 25000.0;  // mid-allreduce: inflight sends are cancelled too
    e.gpu = 3;
    s.config.fault_plan.events.push_back(e);
    ddp_scenarios.push_back(std::move(s));
  }

  Table ddp({"scenario", "iter_ms", "timeouts", "reformations", "world"});
  for (const DdpScenario& scenario : ddp_scenarios) {
    const harness::MultiGpuResult result = harness::RunDdpExperiment(scenario.config);
    ddp.AddRow({scenario.name,
                Cell(result.iteration_us.count() > 0 ? UsToMs(result.iteration_us.mean()) : 0.0,
                     2),
                Cell(result.step_timeouts), Cell(result.ring_reformations),
                Cell(result.completed ? result.final_world_size : 0)});
  }
  ddp.Print(std::cout);
  std::cout << "\nA flap is waited out (timeouts, no re-formation); a GPU death re-forms\n"
               "the ring and training continues at world size 3. A world of 0 would mean\n"
               "the run stalled — the pre-fault-subsystem behaviour.\n";
  return 0;
}
