// Extension bench: the online serving front-end (src/serving, DESIGN.md §9)
// over the shared-GPU cluster. Four arms:
//
//   1. Load sweep × routing policy — SLO attainment and p99 latency of a
//      two-replica ResNet50 service as offered load grows, under round-robin,
//      least-outstanding and interference-aware routing (a be BERT service
//      shares one of the GPUs, so routing around interference matters).
//   2. Dynamic batching ablation — same service, batching on vs off: the
//      sub-linear roofline batch cost raises capacity at a small latency
//      price at low load.
//   3. Autoscaler ablation — a 3x load step beyond two replicas' capacity,
//      fixed fleet vs autoscaled: attainment recovered vs replica-seconds
//      spent.
//   4. Failover — kill one of the GPUs mid-run: requests fail over to the
//      survivor, a replacement provisions over PCIe, and the SLO-violation
//      spike stays bounded.
//
// Deterministic: same seed, same tables. `--quick` shrinks the windows for
// the CI smoke run.
#include <iostream>

#include "bench/bench_util.h"
#include "src/serving/serving.h"

using namespace orion;

namespace {

using workloads::MakeWorkload;
using workloads::ModelId;
using workloads::TaskType;

serving::ModelServiceConfig ResNetService(double rps, int replicas) {
  serving::ModelServiceConfig cfg;
  cfg.workload = MakeWorkload(ModelId::kResNet50, TaskType::kInference);
  cfg.tier = serving::PriorityTier::kLatencyCritical;
  cfg.slo_us = MsToUs(60.0);
  cfg.rps = rps;
  cfg.initial_replicas = replicas;
  cfg.max_replicas = 4;
  return cfg;
}

serving::ModelServiceConfig BertBackground() {
  serving::ModelServiceConfig cfg;
  cfg.workload = MakeWorkload(ModelId::kBert, TaskType::kInference);
  cfg.tier = serving::PriorityTier::kBestEffort;
  cfg.slo_us = MsToUs(500.0);
  cfg.rps = 15.0;
  cfg.max_replicas = 1;
  return cfg;
}

serving::ServingConfig BaseConfig(double rps) {
  serving::ServingConfig config;
  config.num_gpus = 2;
  config.max_replicas_per_gpu = 2;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.seed = bench::GlobalBenchArgs().seed;
  config.models = {ResNetService(rps, /*replicas=*/2), BertBackground()};
  return config;
}

const serving::ModelServingResult& Hp(const serving::ServingResult& result) {
  return result.models[0];
}

void LoadSweepArm() {
  std::cout << "-- Arm 1: load sweep x routing policy --\n"
            << "ResNet50 (hp, Poisson, 60 ms SLO, 2 replicas / 2 GPUs) with a be\n"
            << "BERT service collocated on one GPU. p99 in ms.\n\n";
  const std::vector<double> loads = {100.0, 200.0, 300.0, 400.0};
  const std::vector<serving::RoutePolicy> policies = {
      serving::RoutePolicy::kRoundRobin, serving::RoutePolicy::kLeastOutstanding,
      serving::RoutePolicy::kInterferenceAware};
  Table table({"offered rps", "policy", "attainment", "p50 ms", "p99 ms", "shed"});
  for (const double rps : loads) {
    for (const serving::RoutePolicy policy : policies) {
      serving::ServingConfig config = BaseConfig(rps);
      config.policy = policy;
      const serving::ServingResult result = serving::RunServing(config);
      table.AddRow({Cell(rps, 0), serving::RoutePolicyName(policy),
                    Cell(Hp(result).slo_attainment), Cell(UsToMs(Hp(result).latency.p50())),
                    Cell(UsToMs(Hp(result).latency.p99())), Cell(Hp(result).shed)});
    }
  }
  table.Print(std::cout);
}

void BatchingArm() {
  std::cout << "\n-- Arm 2: dynamic batching ablation --\n"
            << "Same service at 300 rps, admission off so capacity is visible\n"
            << "as throughput rather than shed volume.\n\n";
  Table table({"batching", "throughput rps", "mean batch", "attainment", "p99 ms"});
  for (const bool enabled : {false, true}) {
    serving::ServingConfig config = BaseConfig(300.0);
    config.admission.enabled = false;
    config.batching.enabled = enabled;
    const serving::ServingResult result = serving::RunServing(config);
    table.AddRow({enabled ? "on" : "off", Cell(Hp(result).throughput_rps, 1),
                  Cell(Hp(result).mean_batch_size), Cell(Hp(result).slo_attainment),
                  Cell(UsToMs(Hp(result).latency.p99()))});
  }
  table.Print(std::cout);
}

void AutoscalerArm() {
  std::cout << "\n-- Arm 3: autoscaler ablation --\n"
            << "Offered load 3x two replicas' unbatched capacity; fixed fleet vs\n"
            << "autoscaled (4 GPUs available). replica-s = active-replica seconds.\n\n";
  Table table({"fleet", "attainment", "p99 ms", "shed", "final replicas", "replica-s"});
  for (const bool autoscale : {false, true}) {
    serving::ServingConfig config = BaseConfig(600.0);
    config.num_gpus = 4;
    if (autoscale) {
      config.autoscaler.enabled = true;
      config.autoscaler.eval_period_us = SecToUs(0.25);
    }
    const serving::ServingResult result = serving::RunServing(config);
    table.AddRow({autoscale ? "autoscaled" : "fixed", Cell(Hp(result).slo_attainment),
                  Cell(UsToMs(Hp(result).latency.p99())), Cell(Hp(result).shed),
                  Cell(Hp(result).final_replicas), Cell(result.replica_seconds, 1)});
  }
  table.Print(std::cout);
}

void FailoverArm() {
  std::cout << "\n-- Arm 4: failover (kill a GPU mid-run) --\n"
            << "GPU 0 dies a third of the way into the window. Queued and\n"
            << "in-flight requests re-route; a replacement provisions over PCIe.\n\n";
  Table table({"arm", "attainment", "p99 ms", "failed over", "dropped", "replacements"});
  for (const bool kill : {false, true}) {
    serving::ServingConfig config = BaseConfig(250.0);
    config.num_gpus = 3;  // room for the replacement (one hp replica per GPU)
    if (kill) {
      fault::FaultEvent death;
      death.kind = fault::FaultKind::kGpuDown;
      death.at_us = config.warmup_us + config.duration_us / 3.0;
      death.gpu = 0;
      config.fault_plan.events.push_back(death);
    }
    const serving::ServingResult result = serving::RunServing(config);
    table.AddRow({kill ? "gpu death" : "healthy", Cell(Hp(result).slo_attainment),
                  Cell(UsToMs(Hp(result).latency.p99())), Cell(Hp(result).failed_over),
                  Cell(Hp(result).dropped), Cell(result.replacements)});
  }
  table.Print(std::cout);
}

// Instrumented arm, run only when --trace-out / --metrics-out was given:
// one interference-aware run at 250 rps with a telemetry hub attached. The
// summary rows below are read from the ServingResult, which RunServing
// assembles from the hub's metric registry — so the CSV written next to the
// trace reproduces exactly these numbers.
void TelemetryArm() {
  std::cout << "\n-- Telemetry arm: instrumented run (250 rps, 2 GPUs) --\n";
  telemetry::Hub hub;
  if (!bench::GlobalBenchArgs().trace_out.empty()) {
    hub.EnableTracing();
  }
  serving::ServingConfig config = BaseConfig(250.0);
  config.telemetry = &hub;
  const serving::ServingResult result = serving::RunServing(config);
  Table table({"service", "offered", "completed", "shed", "dropped",
               "attainment", "p99 ms"});
  for (const serving::ModelServingResult& model : result.models) {
    table.AddRow({model.name, Cell(model.offered), Cell(model.completed),
                  Cell(model.shed), Cell(model.dropped), Cell(model.slo_attainment),
                  Cell(UsToMs(model.latency.p99()))});
  }
  table.Print(std::cout);
  bench::ExportTelemetry(hub);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (online serving)",
                     "SLO-aware routing, batching, autoscaling and failover");
  LoadSweepArm();
  BatchingArm();
  AutoscalerArm();
  FailoverArm();
  if (bench::TelemetryRequested()) {
    TelemetryArm();
  }
  return 0;
}
