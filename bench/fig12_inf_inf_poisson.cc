// Figure 12: inference-inference collocation with Poisson arrivals for both
// jobs (Table 3 Poisson rates).
//
// Paper shape: Orion keeps hp p99 within ~15% of ideal while lifting
// aggregate inference throughput up to 7.3x over a dedicated GPU.
#include "bench/collocation_bench.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 12", "inference-inference collocation, Poisson arrivals");
  bench::MatrixOptions options;
  options.hp_arrivals = harness::ClientConfig::Arrivals::kPoisson;
  options.rate_case = trace::CollocationCase::kInfInfPoisson;
  options.partners_are_training = false;
  options.be_arrivals = harness::ClientConfig::Arrivals::kPoisson;
  options.be_rate_case = trace::CollocationCase::kInfInfPoisson;
  bench::RunCollocationMatrix(options);
  return 0;
}
