// Figure 11: inference-inference collocation, Apollo-trace arrivals for the
// high-priority vision model, uniform arrivals (Table 3 rates) for the
// best-effort inference job.
//
// Paper shape: Streams/MPS p99 ~1.89x ideal with high variance; REEF 1.86x;
// Orion within ~22% of ideal. This is artifact experiment E2.
#include "bench/collocation_bench.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 11", "inference-inference collocation, Apollo trace");
  bench::MatrixOptions options;
  options.hp_arrivals = harness::ClientConfig::Arrivals::kApollo;
  options.rate_case = trace::CollocationCase::kInfInfUniform;
  options.partners_are_training = false;
  options.be_arrivals = harness::ClientConfig::Arrivals::kUniform;
  options.be_rate_case = trace::CollocationCase::kInfInfUniform;
  bench::RunCollocationMatrix(options);
  return 0;
}
