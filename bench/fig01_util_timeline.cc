// Figure 1: GPU compute-throughput and memory-bandwidth utilization over
// time for one MobileNetV2 training iteration (batch size 96).
//
// The paper's point: utilization is bursty — individual operators saturate
// one resource while leaving the other idle, and the averages (red dotted
// lines in the figure) stay low. We print a bucketed timeline plus the
// averages.
#include <iostream>

#include "bench/bench_util.h"
#include "src/profiler/profiler.h"
#include "src/runtime/gpu_runtime.h"
#include "src/sim/simulator.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 1", "MobileNetV2 training (bs=96) utilization timeline");

  const gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  const auto spec = workloads::MakeWorkload(workloads::ModelId::kMobileNetV2,
                                            workloads::TaskType::kTraining, 96);

  // Replay one iteration alone (the profiler is exactly this run).
  profiler::ProfileOptions opts;
  opts.warmup_requests = 1;
  opts.measured_requests = 1;
  const auto profile = profiler::ProfileWorkload(device, spec, opts);

  // Re-run a single iteration with a fresh device to get a clean timeline.
  Simulator sim;
  runtime::GpuRuntime rt(&sim, device);
  const auto stream = rt.CreateStream();
  const auto ops = workloads::BuildRequestOps(device, spec);
  // Submit with host pacing like the real framework would.
  std::size_t next = 0;
  std::function<void()> submit = [&]() {
    if (next >= ops.size()) {
      return;
    }
    rt.Submit(ops[next], stream, nullptr);
    ++next;
    sim.ScheduleAfter(opts.launch_overhead_us, submit);
  };
  submit();
  sim.RunUntilIdle();

  const TimeUs end = sim.now();
  constexpr int kBuckets = 50;
  const auto timeline = rt.device().utilization().Timeline(0.0, end, kBuckets);

  Table table({"t_ms", "compute_%", "membw_%", "sm_busy_%"});
  for (const auto& sample : timeline) {
    table.AddRow({Cell(UsToMs(sample.start), 2), Cell(100.0 * sample.compute, 1),
                  Cell(100.0 * sample.membw, 1), Cell(100.0 * sample.sm_busy, 1)});
  }
  table.Print(std::cout);

  const auto avg = rt.device().utilization().AverageOver(0.0, end);
  std::cout << "\niteration time: " << UsToMs(end) << " ms ("
            << profile.kernels.size() << " kernels)\n";
  std::cout << "averages (paper: compute <40%, membw <55%): compute "
            << 100.0 * avg.compute << "%, membw " << 100.0 * avg.membw << "%, SM busy "
            << 100.0 * avg.sm_busy << "%\n";
  // ASCII sparkline of compute utilization to show burstiness.
  std::cout << "\ncompute utilization sparkline:\n";
  const char* levels = " .:-=+*#%@";
  for (const auto& sample : timeline) {
    const int level = std::min(9, static_cast<int>(sample.compute * 10));
    std::cout << levels[level];
  }
  std::cout << "\nmemory bandwidth sparkline:\n";
  for (const auto& sample : timeline) {
    const int level = std::min(9, static_cast<int>(sample.membw * 10));
    std::cout << levels[level];
  }
  std::cout << "\n";
  return 0;
}
