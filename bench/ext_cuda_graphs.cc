// Extension bench (paper §7): CUDA graphs vs interception granularity.
//
// CUDA graphs submit whole kernel graphs with one host call — great for
// launch overhead, but an intercepting scheduler can then only gate graphs,
// not kernels. This bench quantifies both sides of the trade the paper's
// Discussion describes:
//   1. dedicated runs: graphs cut host launch overhead (bigger effect the
//      more host-bound the job is),
//   2. collocation: a best-effort job submitting graphs loses Orion's
//      fine-grained interleaving (the policy judges 32-kernel blobs), so
//      either the hp job's tail or the best-effort throughput suffers.
// The paper proposes implementing Orion's policy at the driver level to
// interleave kernels from multiple graphs; this bench is the quantitative
// case for that.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 7)", "CUDA graphs vs kernel-level interception");

  // --- Part 1: dedicated host-overhead savings. ---
  std::cout << "-- dedicated runs: per-request p50 with eager launches vs captured graphs\n";
  Table table({"workload", "host_overhead_us", "eager_ms", "graphs_ms", "speedup"});
  for (auto overhead : {6.0, 20.0}) {
    for (auto model : {workloads::ModelId::kMobileNetV2, workloads::ModelId::kResNet50}) {
      harness::ExperimentConfig config;
      config.seed = bench::GlobalBenchArgs().seed;
      config.scheduler = harness::SchedulerKind::kDedicated;
      config.warmup_us = SecToUs(0.3);
      config.duration_us = SecToUs(4.0);
      config.launch_overhead_us = overhead;
      harness::ClientConfig client;
      client.workload = workloads::MakeWorkload(model, workloads::TaskType::kInference);
      client.high_priority = true;
      config.clients = {client};
      const auto eager = harness::RunExperiment(config);
      config.clients[0].use_cuda_graphs = true;
      const auto graphs = harness::RunExperiment(config);
      table.AddRow({workloads::WorkloadName(client.workload), Cell(overhead, 0),
                    Cell(UsToMs(eager.hp().latency.p50()), 2),
                    Cell(UsToMs(graphs.hp().latency.p50()), 2),
                    Cell(eager.hp().latency.p50() / graphs.hp().latency.p50(), 2)});
    }
  }
  table.Print(std::cout);

  // --- Part 2: what graphs cost the scheduler. ---
  std::cout << "\n-- inf-train under Orion: best-effort trainer eager vs graph-captured\n";
  harness::ExperimentConfig config;
  config.seed = bench::GlobalBenchArgs().seed;
  config.scheduler = harness::SchedulerKind::kOrion;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.clients.push_back(bench::InferenceClient(
      workloads::ModelId::kResNet50, harness::ClientConfig::Arrivals::kPoisson,
      trace::RequestsPerSecond(workloads::ModelId::kResNet50,
                               trace::CollocationCase::kInfTrainPoisson),
      true));
  config.clients.push_back(bench::TrainingClient(workloads::ModelId::kResNet50, false));

  Table coll({"be_submission", "hp_p99_ms", "be_it/s"});
  const auto eager = harness::RunExperiment(config);
  config.clients[1].use_cuda_graphs = true;
  const auto graphs = harness::RunExperiment(config);
  coll.AddRow({"eager (per kernel)", Cell(UsToMs(eager.hp().latency.p99()), 2),
               Cell(bench::BeThroughput(eager), 2)});
  coll.AddRow({"cuda graphs (32-kernel)", Cell(UsToMs(graphs.hp().latency.p99()), 2),
               Cell(bench::BeThroughput(graphs), 2)});
  coll.Print(std::cout);
  std::cout << "\nGraphs help a job running alone but blunt the interception point:\n"
            << "Orion can only gate whole graphs, so collocation quality drops — the\n"
            << "paper's argument for pushing the policy into the driver/hardware.\n";
  return 0;
}
