// Extension bench: datacenter-scale serving (src/datacenter, DESIGN.md §12).
// Three arms over the two-level control plane (global front-end router over
// per-node engines joined by a NIC/ToR star network):
//
//   1. Node-count scaling sweep — the same per-node load served by 1..8
//      nodes x 2 GPUs: SLO attainment holds as the cluster grows, request
//      and response traffic scale with the node count, and the N=1 row is
//      exactly the single-node serving engine.
//   2. Kill-a-node failover — one of four nodes dies a third into the
//      window: its NIC goes dark (in-flight transfers abort and re-route),
//      every replica on it is lost, survivors absorb the orphans and
//      replacements provision across the network.
//   3. Diurnal 24h-compressed mix — three services with staggered diurnal
//      peaks (trace::DiurnalMix) plus MMPP bursts, a full synthetic "day"
//      compressed into the measurement window.
//
// Deterministic: same seed, same tables. `--quick` shrinks the windows for
// the CI smoke run.
#include <iostream>

#include "bench/bench_util.h"
#include "src/datacenter/cluster.h"
#include "src/serving/serving.h"
#include "src/trace/diurnal.h"

using namespace orion;

namespace {

using workloads::MakeWorkload;
using workloads::ModelId;
using workloads::TaskType;

serving::ModelServiceConfig ResNetService(double rps, int replicas, int max_replicas) {
  serving::ModelServiceConfig cfg;
  cfg.workload = MakeWorkload(ModelId::kResNet50, TaskType::kInference);
  cfg.tier = serving::PriorityTier::kLatencyCritical;
  cfg.slo_us = MsToUs(60.0);
  cfg.rps = rps;
  cfg.initial_replicas = replicas;
  cfg.max_replicas = max_replicas;
  return cfg;
}

datacenter::ClusterConfig BaseCluster(int num_nodes, double rps_per_node) {
  datacenter::ClusterConfig config;
  config.cluster.num_nodes = num_nodes;
  config.cluster.gpus_per_node = 2;
  config.serving.warmup_us = bench::WarmupWindowUs();
  config.serving.duration_us = bench::MeasureWindowUs();
  config.serving.seed = bench::GlobalBenchArgs().seed;
  config.lp_threads = bench::LpThreads();
  // One replica per GPU so every node carries load from the start.
  config.serving.models = {ResNetService(rps_per_node * num_nodes,
                                         /*replicas=*/2 * num_nodes,
                                         /*max_replicas=*/2 * num_nodes + 2)};
  return config;
}

const serving::ModelServingResult& Hp(const datacenter::ClusterResult& result) {
  return result.serving.models[0];
}

void ScalingArm() {
  std::cout << "-- Arm 1: node-count scaling sweep --\n"
            << "ResNet50 (hp, Poisson, 60 ms SLO) at 180 rps per node, one replica\n"
            << "per GPU, 2 GPUs per node. The N=1 row is the single-node serving\n"
            << "engine verbatim (no network is modeled). MB = NIC bytes moved.\n\n";
  Table table({"nodes", "offered rps", "attainment", "p50 ms", "p99 ms", "forwarded",
               "req MB", "resp MB"});
  for (const int nodes : {1, 2, 4, 8}) {
    const datacenter::ClusterResult result = datacenter::RunCluster(BaseCluster(nodes, 180.0));
    table.AddRow({Cell(nodes), Cell(180.0 * nodes, 0), Cell(Hp(result).slo_attainment),
                  Cell(UsToMs(Hp(result).latency.p50())),
                  Cell(UsToMs(Hp(result).latency.p99())), Cell(result.requests_forwarded),
                  Cell(result.request_bytes_moved / 1e6, 1),
                  Cell(result.response_bytes_moved / 1e6, 1)});
  }
  table.Print(std::cout);
}

void NodeFailoverArm() {
  std::cout << "\n-- Arm 2: kill a node mid-run --\n"
            << "4 nodes x 3 GPUs (the fleet fills 8 of 12, leaving free GPUs for\n"
            << "re-placement); node 1 dies a third into the window. Its NIC goes\n"
            << "dark, in-flight transfers abort and re-route, every replica on it\n"
            << "is lost, and replacements provision on survivors' free GPUs.\n\n";
  Table table({"arm", "attainment", "p99 ms", "failed over", "dropped", "replacements",
               "nodes alive"});
  for (const bool kill : {false, true}) {
    datacenter::ClusterConfig config = BaseCluster(4, 180.0);
    config.cluster.gpus_per_node = 3;
    if (kill) {
      fault::FaultEvent death;
      death.kind = fault::FaultKind::kNodeDown;
      death.at_us = config.serving.warmup_us + config.serving.duration_us / 3.0;
      death.node = 1;
      config.serving.fault_plan.events.push_back(death);
    }
    const datacenter::ClusterResult result = datacenter::RunCluster(config);
    table.AddRow({kill ? "node death" : "healthy", Cell(Hp(result).slo_attainment),
                  Cell(UsToMs(Hp(result).latency.p99())), Cell(Hp(result).failed_over),
                  Cell(Hp(result).dropped), Cell(result.serving.replacements),
                  Cell(result.nodes_alive_end)});
  }
  table.Print(std::cout);
}

void DiurnalArm() {
  std::cout << "\n-- Arm 3: diurnal 24h-compressed mix --\n"
            << "Three services on 4 nodes x 2 GPUs, each with a sinusoidal daily\n"
            << "wave (3:1 peak-to-trough) compressed into the measurement window,\n"
            << "peaks staggered across services, MMPP bursts on the hp service.\n"
            << "The autoscaler rides the wave.\n\n";
  datacenter::ClusterConfig config = BaseCluster(4, 0.0);
  const DurationUs day = config.serving.duration_us;  // a compressed "24h"
  trace::DiurnalShape shape;
  shape.period_us = day;
  shape.peak_to_trough = 3.0;
  trace::DiurnalMix mix(shape);
  trace::DiurnalConfig resnet;
  resnet.mean_rps = 500.0;
  resnet.burst.burst_factor = 3.0;
  resnet.burst.burst_fraction = 0.1;
  resnet.burst.mean_burst_us = day / 100.0;
  mix.AddService("resnet50", resnet);
  trace::DiurnalConfig bert;
  bert.mean_rps = 30.0;
  bert.shape.phase_rad = 2.0;  // peak offset from the resnet wave
  mix.AddService("bert", bert);
  trace::DiurnalConfig mobilenet;
  mobilenet.mean_rps = 200.0;
  mobilenet.shape.phase_rad = 4.0;
  mix.AddService("mobilenet", mobilenet);

  auto Diurnal = [&](ModelId model, serving::PriorityTier tier, DurationUs slo_us,
                     std::size_t i) {
    serving::ModelServiceConfig cfg;
    cfg.workload = MakeWorkload(model, TaskType::kInference);
    cfg.tier = tier;
    cfg.slo_us = slo_us;
    cfg.arrivals = serving::ArrivalKind::kDiurnal;
    cfg.diurnal = mix.service_config(i);
    cfg.rps = cfg.diurnal.mean_rps;
    cfg.initial_replicas = 2;
    cfg.max_replicas = 8;
    return cfg;
  };
  config.serving.models = {
      Diurnal(ModelId::kResNet50, serving::PriorityTier::kLatencyCritical, MsToUs(60.0), 0),
      Diurnal(ModelId::kBert, serving::PriorityTier::kBestEffort, MsToUs(500.0), 1),
      Diurnal(ModelId::kMobileNetV2, serving::PriorityTier::kLatencyCritical, MsToUs(40.0), 2),
  };
  config.serving.autoscaler.enabled = true;
  config.serving.autoscaler.eval_period_us = day / 50.0;

  const datacenter::ClusterResult result = datacenter::RunCluster(config);
  Table table({"service", "mean rps", "offered", "attainment", "p99 ms", "shed",
               "final replicas"});
  for (std::size_t m = 0; m < result.serving.models.size(); ++m) {
    const serving::ModelServingResult& model = result.serving.models[m];
    table.AddRow({mix.service_name(m), Cell(mix.service_config(m).mean_rps, 0),
                  Cell(model.offered), Cell(model.slo_attainment),
                  Cell(UsToMs(model.latency.p99())), Cell(model.shed),
                  Cell(model.final_replicas)});
  }
  table.Print(std::cout);
  std::cout << "\nscale ups: " << result.serving.scale_ups
            << "  scale downs: " << result.serving.scale_downs
            << "  replica-s: " << Cell(result.serving.replica_seconds, 1) << "\n";
}

// Instrumented arm (only with --trace-out / --metrics-out): the failover
// scenario with a telemetry hub attached, so node tracks ("n<i>/gpu<j>"),
// route/dispatch/scale reason attributes and the datacenter.* counters land
// in the exported artefacts.
void TelemetryArm() {
  std::cout << "\n-- Telemetry arm: instrumented node-death run --\n";
  telemetry::Hub hub;
  if (!bench::GlobalBenchArgs().trace_out.empty()) {
    hub.EnableTracing();
  }
  datacenter::ClusterConfig config = BaseCluster(4, 180.0);
  fault::FaultEvent death;
  death.kind = fault::FaultKind::kNodeDown;
  death.at_us = config.serving.warmup_us + config.serving.duration_us / 3.0;
  death.node = 1;
  config.serving.fault_plan.events.push_back(death);
  config.serving.telemetry = &hub;
  const datacenter::ClusterResult result = datacenter::RunCluster(config);
  std::cout << "attainment " << Cell(Hp(result).slo_attainment) << ", "
            << result.requests_forwarded << " requests forwarded, "
            << result.nodes_alive_end << "/4 nodes alive\n";
  bench::ExportTelemetry(hub);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (datacenter serving)",
                     "multi-node clusters, node faults, diurnal load");
  ScalingArm();
  NodeFailoverArm();
  DiurnalArm();
  if (bench::TelemetryRequested()) {
    TelemetryArm();
  }
  return 0;
}
