// Figure 2: motivational experiment — existing GPU collocation techniques
// leave performance on the table.
//
// Three job pairs whose aggregate requirements fit on one V100 (high-priority
// first, best-effort second), each client issuing one request at a time in a
// closed loop. For each sharing technique the stacked bars are the two jobs'
// throughputs, normalised to their dedicated-GPU (Ideal) throughput.
//
// Shape to reproduce: Temporal/MPS/Streams/Tick-Tock land far below ideal
// aggregate; REEF keeps hp high but starves the best-effort job; Orion gets
// close to ideal on both.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 2", "existing collocation techniques vs Orion (closed loop)");

  using workloads::ModelId;
  struct PairSpec {
    const char* name;
    harness::ClientConfig hp, be;
  };
  const PairSpec pairs[] = {
      {"rn50-inf + mnv2-train",
       bench::InferenceClient(ModelId::kResNet50, harness::ClientConfig::Arrivals::kClosedLoop,
                              0.0, true),
       bench::TrainingClient(ModelId::kMobileNetV2, false)},
      {"rn101-train + bert-train", bench::TrainingClient(ModelId::kResNet101, true),
       bench::TrainingClient(ModelId::kBert, false)},
      {"transf-inf + rn50-train",
       bench::InferenceClient(ModelId::kTransformer,
                              harness::ClientConfig::Arrivals::kClosedLoop, 0.0, true),
       bench::TrainingClient(ModelId::kResNet50, false)},
  };
  const harness::SchedulerKind schedulers[] = {
      harness::SchedulerKind::kDedicated, harness::SchedulerKind::kMig,
      harness::SchedulerKind::kTemporal,  harness::SchedulerKind::kStreams,
      harness::SchedulerKind::kMps,       harness::SchedulerKind::kTickTock,
      harness::SchedulerKind::kReef,      harness::SchedulerKind::kOrion,
  };

  for (const PairSpec& pair : pairs) {
    std::cout << "-- pair: " << pair.name << " (bold = high-priority job)\n";
    // Dedicated throughputs for normalisation.
    const auto ideal = bench::RunPair(pair.hp, pair.be, harness::SchedulerKind::kDedicated);
    const double hp_ideal = ideal.hp().throughput_rps;
    const double be_ideal = bench::BeThroughput(ideal);

    Table table({"technique", "hp_tput_rps", "hp_norm", "be_tput_rps", "be_norm",
                 "aggregate_norm"});
    for (const auto scheduler : schedulers) {
      // Tick-Tock only supports two training jobs.
      const bool hp_is_inference =
          pair.hp.workload.task == workloads::TaskType::kInference;
      if (scheduler == harness::SchedulerKind::kTickTock && hp_is_inference) {
        table.AddRow({harness::SchedulerKindName(scheduler), "-", "-", "-", "-",
                      "(train-train only)"});
        continue;
      }
      const core::OrionOptions orion_options =
          scheduler == harness::SchedulerKind::kOrion
              ? bench::OrionOptionsFor(pair.hp, pair.be)
              : core::OrionOptions{};
      const auto result = bench::RunPair(pair.hp, pair.be, scheduler,
                                         gpusim::DeviceSpec::V100_16GB(), orion_options);
      const double hp_tput = result.hp().throughput_rps;
      const double be_tput = bench::BeThroughput(result);
      const double hp_norm = hp_ideal > 0 ? hp_tput / hp_ideal : 0.0;
      const double be_norm = be_ideal > 0 ? be_tput / be_ideal : 0.0;
      table.AddRow({harness::SchedulerKindName(scheduler), Cell(hp_tput, 2),
                    Cell(hp_norm, 2), Cell(be_tput, 2), Cell(be_norm, 2),
                    Cell((hp_norm + be_norm) / 2.0, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
