// Figure 13: generalisation to a new GPU and more clients — five inference
// jobs (one high-priority + four best-effort, all Poisson) sharing an
// A100-40GB. Compared: MPS, REEF, Orion (the paper omits temporal/streams
// here because their tail latency is orders of magnitude worse).
//
// Paper shape: MPS ~2.2x ideal p99, REEF ~1.21x, Orion within ~9%.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 13", "five inference clients on an A100-40GB");

  const gpusim::DeviceSpec device = gpusim::DeviceSpec::A100_40GB();
  const harness::SchedulerKind schedulers[] = {
      harness::SchedulerKind::kDedicated,
      harness::SchedulerKind::kMps,
      harness::SchedulerKind::kReef,
      harness::SchedulerKind::kOrion,
  };

  for (auto hp_model : bench::AllModels()) {
    // The four best-effort clients serve the other four models.
    harness::ExperimentConfig config;
    config.seed = bench::GlobalBenchArgs().seed;
    config.device = device;
    config.warmup_us = bench::WarmupWindowUs();
    config.duration_us = bench::MeasureWindowUs();
    config.clients.push_back(bench::InferenceClient(
        hp_model, harness::ClientConfig::Arrivals::kPoisson,
        trace::RequestsPerSecond(hp_model, trace::CollocationCase::kInfInfPoisson), true));
    for (auto be_model : bench::AllModels()) {
      if (be_model == hp_model) {
        continue;
      }
      config.clients.push_back(bench::InferenceClient(
          be_model, harness::ClientConfig::Arrivals::kPoisson,
          trace::RequestsPerSecond(be_model, trace::CollocationCase::kInfInfPoisson), false));
    }

    std::cout << "-- high-priority: "
              << workloads::WorkloadName(config.clients.front().workload)
              << " + 4 best-effort inference clients\n";
    Table table({"technique", "hp_p99_ms", "p99_vs_ideal", "hp_tput_rps", "be_tput_sum"});
    double ideal_p99 = 0.0;
    for (const auto scheduler : schedulers) {
      config.scheduler = scheduler;
      const auto result = harness::RunExperiment(config);
      const double p99 = UsToMs(result.hp().latency.p99());
      if (scheduler == harness::SchedulerKind::kDedicated) {
        ideal_p99 = p99;
      }
      table.AddRow({harness::SchedulerKindName(scheduler), Cell(p99, 2),
                    Cell(ideal_p99 > 0 ? p99 / ideal_p99 : 0.0, 2),
                    Cell(result.hp().throughput_rps, 1), Cell(bench::BeThroughput(result), 1)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
