// Figures 7a/7b: high-priority inference with Poisson arrivals (Table 3
// rates) collocated with each best-effort training job.
//
// Paper shape: REEF p99 ~2.5x ideal on average; Orion within ~14% of ideal
// with low variance across collocations, while raising aggregate throughput
// up to 2.3x over a dedicated GPU. This is artifact experiment E1/claim C1.
#include "bench/collocation_bench.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 7", "inference-training collocation, Poisson arrivals");
  bench::MatrixOptions options;
  options.hp_arrivals = harness::ClientConfig::Arrivals::kPoisson;
  options.rate_case = trace::CollocationCase::kInfTrainPoisson;
  options.partners_are_training = true;
  bench::RunCollocationMatrix(options);
  return 0;
}
