// Extension bench: LLM serving with continuous batching and KV-cache
// pressure (DESIGN.md §13). Three arms plus an instrumented telemetry run:
//
//   1. Continuous vs request-level batching at matched load — the Orca
//      claim: iteration-level scheduling removes the head-of-line cost of
//      decoding a batch to its longest generation, so TPOT p99 drops
//      strictly at every load level while TTFT and goodput hold or improve.
//   2. KV-cache oversubscription — shrink the per-replica KV budget below
//      the working set: the engine preempts-with-recompute (vLLM-style),
//      trading recompute prefills for admission of new sequences. Goodput
//      degrades gracefully instead of deadlocking.
//   3. Determinism — the same seeded run twice must produce identical
//      token/eviction/latency numbers (the per-token invariant suite pins
//      the same property at test scale).
//
// Deterministic: same seed, same tables. `--quick` shrinks the windows for
// the CI smoke run; `--trace-out` attaches a telemetry hub and writes the
// decode-step span timeline.
#include <iostream>

#include "bench/bench_util.h"
#include "src/serving/serving.h"

using namespace orion;

namespace {

using workloads::MakeWorkload;
using workloads::ModelId;
using workloads::TaskType;

serving::ModelServiceConfig LlmService(double rps, bool continuous) {
  serving::ModelServiceConfig cfg;
  cfg.workload = MakeWorkload(ModelId::kLlmDecode, TaskType::kInference);
  cfg.tier = serving::PriorityTier::kLatencyCritical;
  cfg.rps = rps;
  cfg.llm.enabled = true;
  cfg.llm.continuous = continuous;
  cfg.llm.model.layers = 4;
  cfg.llm.model.hidden = 1024;
  cfg.llm.model.heads = 8;
  cfg.llm.prompt_tokens = 128;
  cfg.llm.min_decode_tokens = 8;
  cfg.llm.max_decode_tokens = 64;
  cfg.llm.ttft_slo_us = MsToUs(100.0);
  cfg.llm.tpot_slo_us = MsToUs(5.0);
  cfg.initial_replicas = 2;
  cfg.max_replicas = 2;
  return cfg;
}

serving::ServingConfig BaseConfig(double rps, bool continuous) {
  serving::ServingConfig config;
  config.num_gpus = 2;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.seed = bench::GlobalBenchArgs().seed;
  // A realistic dynamic-batcher linger so the request-level baseline forms
  // multi-sequence batches (its best practice — and the thing that holds
  // short generations hostage). Continuous batching ignores the linger:
  // iteration-level steps self-chain.
  config.batching.max_queue_delay_us = MsToUs(25.0);
  config.models = {LlmService(rps, continuous)};
  return config;
}

const serving::ModelServingResult& Llm(const serving::ServingResult& result) {
  return result.models[0];
}

// Goodput: SLO-meeting completions per second over the window.
double GoodputRps(const serving::ServingResult& result) {
  return static_cast<double>(Llm(result).slo_met) / UsToSec(result.window_us);
}

void BatchingModeArm() {
  std::cout << "-- Arm 1: continuous vs request-level batching --\n"
            << "One LLM service (128-token prompts, 8..64 decode tokens, 2\n"
            << "replicas / 2 GPUs). Request-level decodes every batch to its\n"
            << "longest generation; continuous joins/leaves between steps.\n\n";
  Table table({"offered rps", "mode", "goodput rps", "ttft p99 ms", "tpot p99 ms",
               "mean batch", "attainment"});
  const std::vector<double> loads = {40.0, 80.0, 120.0};
  bool continuous_dominates = true;
  for (const double rps : loads) {
    double request_level_tpot = 0.0;
    for (const bool continuous : {false, true}) {
      serving::ServingConfig config = BaseConfig(rps, continuous);
      // Admission off for this arm: shedding against the TTFT SLO keeps the
      // request-level queue near-empty (a multi-hundred-ms batch blows the
      // predicted wait), so the baseline would never form the multi-sequence
      // batches whose head-of-line cost this arm measures.
      config.admission.enabled = false;
      const serving::ServingResult result = serving::RunServing(config);
      const serving::ModelServingResult& m = Llm(result);
      if (continuous) {
        continuous_dominates =
            continuous_dominates && m.tpot.p99() < request_level_tpot;
      } else {
        request_level_tpot = m.tpot.p99();
      }
      table.AddRow({Cell(rps, 0), continuous ? "continuous" : "request-level",
                    Cell(GoodputRps(result), 1), Cell(UsToMs(m.ttft.p99()), 2),
                    Cell(UsToMs(m.tpot.p99()), 2), Cell(m.mean_batch_size),
                    Cell(m.slo_attainment)});
    }
  }
  table.Print(std::cout);
  std::cout << "\ncontinuous TPOT p99 strictly below request-level at every load: "
            << (continuous_dominates ? "yes" : "NO — regression") << "\n";
}

void KvPressureArm() {
  std::cout << "\n-- Arm 2: KV-cache oversubscription --\n"
            << "Single replica at 40 rps (within its compute capacity); the\n"
            << "KV budget shrinks from plentiful to under two full-length\n"
            << "sequences. Evictions preempt the newest sequence, which\n"
            << "recomputes its context on rejoin.\n\n";
  Table table({"kv budget (seqs)", "evictions", "prefills", "completed",
               "goodput rps", "tpot p99 ms"});
  // Max footprint of one sequence: full prompt plus the longest generation.
  const std::size_t per_seq_bytes =
      workloads::LlmKvBytesPerToken(LlmService(1.0, true).llm.model) * (128u + 64u);
  // 1.8 footprints sits in the eviction band: two sequences join (at
  // prompt+1 tokens each) but cannot both decode to their full length, so
  // mid-flight extends overflow and preempt. Below ~1.5 joins themselves are
  // refused and the cache never overflows — pressure shows up as queueing.
  for (const double budget_seqs : {16.0, 4.0, 1.8}) {
    serving::ServingConfig config = BaseConfig(40.0, /*continuous=*/true);
    config.num_gpus = 1;
    config.models[0].initial_replicas = 1;
    config.models[0].max_replicas = 1;
    config.models[0].llm.kv_capacity_bytes =
        static_cast<std::size_t>(budget_seqs * static_cast<double>(per_seq_bytes));
    const serving::ServingResult result = serving::RunServing(config);
    const serving::ModelServingResult& m = Llm(result);
    table.AddRow({Cell(budget_seqs, 1), Cell(m.kv_evictions), Cell(m.prefills),
                  Cell(m.completed), Cell(GoodputRps(result), 1),
                  Cell(UsToMs(m.tpot.p99()), 2)});
  }
  table.Print(std::cout);
}

void DeterminismArm() {
  std::cout << "\n-- Arm 3: determinism --\n";
  const serving::ServingResult a = serving::RunServing(BaseConfig(120.0, true));
  const serving::ServingResult b = serving::RunServing(BaseConfig(120.0, true));
  const bool identical = Llm(a).tokens == Llm(b).tokens &&
                         Llm(a).decode_steps == Llm(b).decode_steps &&
                         Llm(a).kv_evictions == Llm(b).kv_evictions &&
                         Llm(a).completed == Llm(b).completed &&
                         Llm(a).ttft.p99() == Llm(b).ttft.p99() &&
                         Llm(a).tpot.p99() == Llm(b).tpot.p99();
  std::cout << "same-seed rerun (tokens / steps / evictions / ttft / tpot): "
            << (identical ? "bit-identical" : "DIVERGED") << "\n";
}

// Instrumented arm, run only when --trace-out / --metrics-out was given:
// one continuous-batching run with the hub attached; the trace carries the
// step:<service> decode-step slices and kv-evict markers.
void TelemetryArm() {
  std::cout << "\n-- Telemetry arm: instrumented run (120 rps, continuous) --\n";
  telemetry::Hub hub;
  if (!bench::GlobalBenchArgs().trace_out.empty()) {
    hub.EnableTracing();
  }
  if (bench::AttributionRequested()) {
    hub.EnableAttribution();
  }
  serving::ServingConfig config = BaseConfig(120.0, /*continuous=*/true);
  config.telemetry = &hub;
  const serving::ServingResult result = serving::RunServing(config);
  const serving::ModelServingResult& m = Llm(result);
  Table table({"tokens", "prefills", "decode steps", "evictions", "ttft p99 ms",
               "tpot p99 ms"});
  table.AddRow({Cell(m.tokens), Cell(m.prefills), Cell(m.decode_steps),
                Cell(m.kv_evictions), Cell(UsToMs(m.ttft.p99()), 2),
                Cell(UsToMs(m.tpot.p99()), 2)});
  table.Print(std::cout);
  bench::ExportTelemetry(hub);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (LLM serving)",
                     "continuous batching, KV-cache pressure, per-token SLOs");
  BatchingModeArm();
  KvPressureArm();
  DeterminismArm();
  if (bench::TelemetryRequested()) {
    TelemetryArm();
  }
  return 0;
}
