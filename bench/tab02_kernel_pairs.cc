// Table 2: toy kernel-collocation experiment — sequential vs collocated
// execution of Conv2d (compute-intensive) and BN2d (memory-intensive)
// kernel pairs on dedicated streams.
//
// Paper result: Conv2d+Conv2d 0.98x, BN2d+BN2d 1.08x, Conv2d+BN2d 1.41x.
// The shape to reproduce: same-profile pairs barely benefit (SM or bandwidth
// contention), the opposite-profile pair overlaps well.
//
// A second section sweeps the interference-model ablation: what the pair
// timings would look like if the device ignored bandwidth contention,
// validating that the proportional-share model is what produces Table 2.
#include <iostream>

#include "bench/bench_util.h"
#include "src/runtime/gpu_runtime.h"
#include "src/sim/simulator.h"

using namespace orion;

namespace {

// Measured characteristics from §3.2 of the paper: Conv2d bs=32 runs 1.35 ms
// consuming 100% SMs, 89% compute, 20% bandwidth; BN2d runs 0.93 ms on 40%
// of SMs with 14% compute, 80% bandwidth.
gpusim::KernelDesc Conv2d() {
  gpusim::KernelDesc kernel;
  kernel.kernel_id = 1;
  kernel.name = "conv2d";
  kernel.duration_us = 1350.0;
  kernel.compute_util = 0.89;
  kernel.membw_util = 0.20;
  kernel.geometry = {80, 1024, 64, 0};  // occupies all 80 SMs
  return kernel;
}

gpusim::KernelDesc Bn2d() {
  gpusim::KernelDesc kernel;
  kernel.kernel_id = 2;
  kernel.name = "bn2d";
  kernel.duration_us = 930.0;
  kernel.compute_util = 0.14;
  kernel.membw_util = 0.80;
  kernel.geometry = {32, 1024, 64, 0};  // 40% of SMs
  return kernel;
}

DurationUs RunSequential(const gpusim::KernelDesc& a, const gpusim::KernelDesc& b) {
  Simulator sim;
  runtime::GpuRuntime rt(&sim, gpusim::DeviceSpec::V100_16GB());
  const auto stream = rt.CreateStream();
  rt.LaunchKernel(stream, a);
  rt.LaunchKernel(stream, b);
  sim.RunUntilIdle();
  return sim.now();
}

DurationUs RunCollocated(const gpusim::KernelDesc& a, const gpusim::KernelDesc& b) {
  Simulator sim;
  runtime::GpuRuntime rt(&sim, gpusim::DeviceSpec::V100_16GB());
  const auto s1 = rt.CreateStream();
  const auto s2 = rt.CreateStream();
  rt.LaunchKernel(s1, a);
  rt.LaunchKernel(s2, b);
  sim.RunUntilIdle();
  return sim.now();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Table 2", "toy Conv2d/BN2d kernel collocation");

  struct Pair {
    const char* name;
    gpusim::KernelDesc a, b;
    double paper_speedup;
  };
  const Pair pairs[] = {
      {"Conv2d-Conv2d", Conv2d(), Conv2d(), 0.98},
      {"BN2d-BN2d", Bn2d(), Bn2d(), 1.08},
      {"Conv2d-BN2d", Conv2d(), Bn2d(), 1.41},
  };

  Table table({"pair", "sequential_ms", "collocated_ms", "speedup", "paper_speedup"});
  for (const Pair& pair : pairs) {
    const DurationUs seq = RunSequential(pair.a, pair.b);
    const DurationUs col = RunCollocated(pair.a, pair.b);
    table.AddRow({pair.name, Cell(UsToMs(seq), 2), Cell(UsToMs(col), 2), Cell(seq / col, 2),
                  Cell(pair.paper_speedup, 2)});
  }
  table.Print(std::cout);

  // Ablation: drop the bandwidth-contention term by zeroing membw demands —
  // BN2d+BN2d would then overlap perfectly, contradicting the paper's
  // measurement. This documents why the interference model matters.
  std::cout << "\nAblation: interference model without bandwidth contention\n";
  auto bn_noband = Bn2d();
  bn_noband.membw_util = 0.0;
  const DurationUs seq = RunSequential(Bn2d(), Bn2d());
  const DurationUs col_noband = RunCollocated(bn_noband, bn_noband);
  std::cout << "BN2d-BN2d speedup without the bandwidth term: " << Cell(seq / col_noband, 2)
            << "x (would wrongly predict near-perfect overlap; paper measures 1.08x)\n";
  return 0;
}
