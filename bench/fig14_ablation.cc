// Figure 14: Orion policy breakdown — which policy ingredient contributes
// what, for the inf-train Poisson use case. The paper's ladder:
//   GPU Streams -> + stream priorities -> + compute/memory profiles ->
//   + kernel size (SM_THRESHOLD) -> Orion; and finally Orion minus stream
//   priorities (to show priorities become marginal once the policy is on,
//   so Orion also works where priorities are unavailable, e.g. MPS mode).
//
// We report p95 latency like the paper's figure.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

namespace {

harness::ExperimentResult Run(harness::SchedulerKind kind, core::OrionOptions options) {
  harness::ExperimentConfig config;
  config.seed = bench::GlobalBenchArgs().seed;
  config.scheduler = kind;
  config.orion = options;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.clients.push_back(bench::InferenceClient(
      workloads::ModelId::kResNet50, harness::ClientConfig::Arrivals::kPoisson,
      trace::RequestsPerSecond(workloads::ModelId::kResNet50,
                               trace::CollocationCase::kInfTrainPoisson),
      true));
  config.clients.push_back(bench::TrainingClient(workloads::ModelId::kResNet50, false));
  return harness::RunExperiment(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 14", "Orion performance-analysis breakdown (inf-train Poisson)");

  struct Step {
    const char* name;
    harness::SchedulerKind kind;
    core::OrionOptions options;
  };
  auto orion_with = [](bool priorities, bool profiles, bool sm, bool dur) {
    core::OrionOptions options;
    options.use_stream_priorities = priorities;
    options.use_profile_check = profiles;
    options.use_sm_check = sm;
    options.use_dur_throttle = dur;
    return options;
  };
  const Step steps[] = {
      {"ideal (dedicated)", harness::SchedulerKind::kDedicated, {}},
      // Rung 1, like the paper: per-client streams, all default priority
      // (the §6.1 Streams baseline does use a high-priority stream; Fig 14
      // starts one step earlier). Modelled as Orion with every policy
      // ingredient off.
      {"gpu streams (no prio)", harness::SchedulerKind::kOrion,
       orion_with(false, false, false, false)},
      {"+ stream priorities", harness::SchedulerKind::kOrion,
       orion_with(true, false, false, false)},
      {"+ compute/mem profiles", harness::SchedulerKind::kOrion,
       orion_with(true, true, false, true)},
      {"+ kernel size (orion)", harness::SchedulerKind::kOrion,
       orion_with(true, true, true, true)},
      {"orion - stream priorities", harness::SchedulerKind::kOrion,
       orion_with(false, true, true, true)},
  };

  Table table({"configuration", "p95_ms", "p99_ms", "be_it/s"});
  for (const Step& step : steps) {
    const auto result = Run(step.kind, step.options);
    table.AddRow({step.name, Cell(UsToMs(result.hp().latency.p95()), 2),
                  Cell(UsToMs(result.hp().latency.p99()), 2),
                  Cell(bench::BeThroughput(result), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: priorities help streams (~25% p95); profiles cut ~48% more;\n"
               "the SM-size rule up to ~54% more; removing priorities from full Orion\n"
               "changes little (so Orion works without hardware stream priorities).\n";
  return 0;
}
