// Minimal JSON emitter for the perf benches (BENCH_*.json artefacts).
//
// The perf trajectory lives in machine-readable JSON files next to the
// human-readable tables the benches print: one object per bench binary,
// one entry per measurement, written atomically at the end of the run so a
// crashed bench never leaves a half-written artefact. Kept deliberately
// tiny (objects, arrays, numbers, strings — no parsing) so the benches do
// not grow a dependency for what `python3 -m json.tool` validates in CI.
#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace orion {
namespace bench {

// A JSON value tree. Keys keep insertion order (measurement order is the
// natural reading order for a perf log, and stable output diffs cleanly).
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kObject) {}

  static JsonValue Number(double v) { return JsonValue(Kind::kNumber, v); }
  static JsonValue String(std::string v) {
    JsonValue value(Kind::kString, 0.0);
    value.string_ = std::move(v);
    return value;
  }
  static JsonValue Bool(bool v) { return JsonValue(Kind::kBool, v ? 1.0 : 0.0); }
  static JsonValue Array() { return JsonValue(Kind::kArray, 0.0); }

  // Object access: creates the key (in insertion order) on first use.
  JsonValue& operator[](const std::string& key) {
    for (auto& entry : members_) {
      if (entry.first == key) {
        return *entry.second;
      }
    }
    members_.emplace_back(key, std::make_unique<JsonValue>());
    return *members_.back().second;
  }

  // Convenience setters so call sites read like assignments.
  JsonValue& operator=(double v) { return Assign(Kind::kNumber, v, ""); }
  JsonValue& operator=(int v) { return Assign(Kind::kNumber, v, ""); }
  JsonValue& operator=(std::size_t v) {
    return Assign(Kind::kNumber, static_cast<double>(v), "");
  }
  JsonValue& operator=(bool v) { return Assign(Kind::kBool, v ? 1.0 : 0.0, ""); }
  JsonValue& operator=(const char* v) { return Assign(Kind::kString, 0.0, v); }
  JsonValue& operator=(const std::string& v) { return Assign(Kind::kString, 0.0, v); }

  JsonValue& Append() {
    kind_ = Kind::kArray;
    elements_.push_back(std::make_unique<JsonValue>());
    return *elements_.back();
  }

  void Dump(std::ostream& out, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNumber: {
        if (!std::isfinite(number_)) {
          out << "null";  // JSON has no inf/nan
          break;
        }
        char buf[32];
        // Shortest round-trippable-enough form: integers print bare.
        if (number_ == static_cast<double>(static_cast<long long>(number_)) &&
            std::fabs(number_) < 1e15) {
          std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(number_));
        } else {
          std::snprintf(buf, sizeof(buf), "%.6g", number_);
        }
        out << buf;
        break;
      }
      case Kind::kBool:
        out << (number_ != 0.0 ? "true" : "false");
        break;
      case Kind::kString:
        out << '"' << Escaped(string_) << '"';
        break;
      case Kind::kArray:
        if (elements_.empty()) {
          out << "[]";
          break;
        }
        out << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out << inner;
          elements_[i]->Dump(out, indent + 1);
          out << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        out << pad << ']';
        break;
      case Kind::kObject:
        if (members_.empty()) {
          out << "{}";
          break;
        }
        out << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out << inner << '"' << Escaped(members_[i].first) << "\": ";
          members_[i].second->Dump(out, indent + 1);
          out << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        out << pad << '}';
        break;
    }
  }

  // Writes the tree to `path` via a temp file + rename (atomic on POSIX).
  bool WriteFile(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) {
        return false;
      }
      Dump(out);
      out << '\n';
      if (!out) {
        return false;
      }
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
  }

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool };

  JsonValue(Kind kind, double number) : kind_(kind), number_(number) {}

  JsonValue& Assign(Kind kind, double number, std::string str) {
    kind_ = kind;
    number_ = number;
    string_ = std::move(str);
    members_.clear();
    elements_.clear();
    return *this;
  }

  static std::string Escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  }

  Kind kind_;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> members_;
  std::vector<std::unique_ptr<JsonValue>> elements_;
};

}  // namespace bench
}  // namespace orion

#endif  // BENCH_BENCH_JSON_H_
