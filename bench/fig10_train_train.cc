// Figure 10: training-training collocation — average throughput of the
// high-priority (bold) and best-effort (faint) training jobs under each
// technique, plus the §6.2.2 makespan/cost study.
//
// Paper shape: MPS/Streams lose ~1.7x of hp throughput to interference;
// Tick-Tock is worst (barrier synchronisation, 1.93x); REEF protects hp
// (within 8%) but starves the best-effort job; Orion keeps hp within ~16%
// of ideal while the best-effort job progresses, reducing makespan ~1.29x.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figure 10", "training-training collocation throughput");

  using workloads::ModelId;
  struct PairSpec {
    ModelId hp, be;
  };
  const PairSpec pairs[] = {
      {ModelId::kResNet50, ModelId::kMobileNetV2},
      {ModelId::kResNet101, ModelId::kTransformer},
      {ModelId::kBert, ModelId::kMobileNetV2},
      {ModelId::kMobileNetV2, ModelId::kResNet50},
      {ModelId::kTransformer, ModelId::kBert},
  };
  const harness::SchedulerKind schedulers[] = {
      harness::SchedulerKind::kDedicated, harness::SchedulerKind::kStreams,
      harness::SchedulerKind::kMps,       harness::SchedulerKind::kTickTock,
      harness::SchedulerKind::kReef,      harness::SchedulerKind::kOrion,
  };

  // Per-scheduler aggregates across pairs (normalised to dedicated).
  OnlineStats hp_norm[6];
  OnlineStats be_norm[6];

  for (const PairSpec& pair : pairs) {
    const auto hp = bench::TrainingClient(pair.hp, true);
    const auto be = bench::TrainingClient(pair.be, false);
    const auto ideal = bench::RunPair(hp, be, harness::SchedulerKind::kDedicated);
    const double hp_ideal = ideal.hp().throughput_rps;
    const double be_ideal = bench::BeThroughput(ideal);

    // Per §5.1.1, SM_THRESHOLD is tuned when the hp job is training.
    const core::OrionOptions orion_options = bench::OrionOptionsFor(hp, be);
    std::cout << "-- hp: " << workloads::WorkloadName(hp.workload)
              << "  be: " << workloads::WorkloadName(be.workload)
              << "  (orion SM_THRESHOLD tuned to " << orion_options.sm_threshold << ")\n";
    Table table({"technique", "hp_it/s", "hp_vs_ideal", "be_it/s", "be_vs_ideal"});
    for (std::size_t s = 0; s < std::size(schedulers); ++s) {
      const auto result = bench::RunPair(hp, be, schedulers[s],
                                         gpusim::DeviceSpec::V100_16GB(), orion_options);
      const double hp_tput = result.hp().throughput_rps;
      const double be_tput = bench::BeThroughput(result);
      const double hpn = hp_ideal > 0 ? hp_tput / hp_ideal : 0;
      const double ben = be_ideal > 0 ? be_tput / be_ideal : 0;
      hp_norm[s].Add(hpn);
      be_norm[s].Add(ben);
      table.AddRow({harness::SchedulerKindName(schedulers[s]), Cell(hp_tput, 2),
                    Cell(hpn, 2), Cell(be_tput, 2), Cell(ben, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "-- summary across pairs (fraction of dedicated-GPU throughput)\n";
  Table summary({"technique", "hp_mean", "be_mean"});
  for (std::size_t s = 0; s < std::size(schedulers); ++s) {
    summary.AddRow({harness::SchedulerKindName(schedulers[s]), Cell(hp_norm[s].mean(), 2),
                    Cell(be_norm[s].mean(), 2)});
  }
  summary.Print(std::cout);

  // Makespan study (§6.2.2): complete N iterations of each job in a pair on
  // one GPU. Sequential = run them one after the other at dedicated speed;
  // collocated = run together until the slower one finishes, then the
  // remainder at dedicated speed. Uses the measured throughputs above.
  std::cout << "\n-- makespan: 1000 iterations each, hp=resnet50-train be=mobilenetv2-train\n";
  {
    const auto hp = bench::TrainingClient(ModelId::kResNet50, true);
    const auto be = bench::TrainingClient(ModelId::kMobileNetV2, false);
    const auto ideal = bench::RunPair(hp, be, harness::SchedulerKind::kDedicated);
    const auto orion = bench::RunPair(hp, be, harness::SchedulerKind::kOrion,
                                      gpusim::DeviceSpec::V100_16GB(),
                                      bench::OrionOptionsFor(hp, be));
    const auto mps = bench::RunPair(hp, be, harness::SchedulerKind::kMps);
    constexpr double kIters = 1000.0;
    const double t_seq =
        kIters / ideal.hp().throughput_rps + kIters / bench::BeThroughput(ideal);
    auto collocated_makespan = [&](const harness::ExperimentResult& r,
                                   const harness::ExperimentResult& ded) {
      const double t_hp = kIters / r.hp().throughput_rps;
      const double t_be = kIters / bench::BeThroughput(r);
      if (t_hp >= t_be) {
        // be finishes first; hp continues alone at dedicated speed.
        const double done = t_be * r.hp().throughput_rps;
        return t_be + (kIters - done) / ded.hp().throughput_rps;
      }
      const double done = t_hp * bench::BeThroughput(r);
      return t_hp + (kIters - done) / bench::BeThroughput(ded);
    };
    const double t_orion = collocated_makespan(orion, ideal);
    const double t_mps = collocated_makespan(mps, ideal);
    Table table({"schedule", "makespan_s", "savings_vs_sequential"});
    table.AddRow({"sequential (1 GPU)", Cell(t_seq, 1), Cell(1.0, 2)});
    table.AddRow({"mps (1 GPU)", Cell(t_mps, 1), Cell(t_seq / t_mps, 2)});
    table.AddRow({"orion (1 GPU)", Cell(t_orion, 1), Cell(t_seq / t_orion, 2)});
    table.Print(std::cout);
    std::cout << "(paper: Orion reduces makespan/cost ~1.29x, MPS only ~1.14x)\n";
  }
  return 0;
}
