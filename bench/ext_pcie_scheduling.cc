// Extension bench (paper §5.1.3): PCIe-aware memory-operation scheduling.
//
// Orion submits memory ops directly to the device; the paper notes it could
// additionally schedule each cudaMemcpy by PCIe bandwidth demand. This bench
// measures the effect: a high-priority vision inference job (whose every
// request starts with an input H2D copy) collocated with a data-heavy
// best-effort training job (large per-iteration input copies). With FIFO
// copies the inference input can queue behind a multi-megabyte training
// batch; priority scheduling lets it jump the queue.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

namespace {

harness::ExperimentResult Run(bool pcie_priority) {
  harness::ExperimentConfig config;
  config.seed = bench::GlobalBenchArgs().seed;
  config.scheduler = harness::SchedulerKind::kOrion;
  config.pcie_priority_scheduling = pcie_priority;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.clients.push_back(bench::InferenceClient(
      workloads::ModelId::kResNet50, harness::ClientConfig::Arrivals::kPoisson, 40.0, true));
  // Large-batch vision training: ~38 MB input copy per iteration (~3 ms on
  // PCIe 3.0), the worst realistic queue-blocker.
  config.clients.push_back(bench::TrainingClient(workloads::ModelId::kMobileNetV2, false));
  return harness::RunExperiment(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Extension (Section 5.1.3)", "PCIe-aware copy scheduling");

  const auto fifo = Run(false);
  const auto prio = Run(true);

  Table table({"copy_engine", "hp_p50_ms", "hp_p99_ms", "be_it/s"});
  table.AddRow({"FIFO (default)", Cell(UsToMs(fifo.hp().latency.p50()), 2),
                Cell(UsToMs(fifo.hp().latency.p99()), 2), Cell(bench::BeThroughput(fifo), 2)});
  table.AddRow({"priority-aware", Cell(UsToMs(prio.hp().latency.p50()), 2),
                Cell(UsToMs(prio.hp().latency.p99()), 2), Cell(bench::BeThroughput(prio), 2)});
  table.Print(std::cout);
  std::cout << "\nPriority-aware copies remove the head-of-line blocking a best-effort\n"
               "job's bulk input transfers impose on the high-priority job's input copy\n"
               "(in-flight transfers still complete; only queued order changes).\n";
  return 0;
}
