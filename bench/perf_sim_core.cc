// Perf bench: simulation-core throughput baseline (BENCH_simcore.json).
//
// Every layer of the reproduction — kernel dispatch, fabric transfers,
// serving timers, telemetry spans — funnels through Simulator::Step, and
// trace-driven replay at scale is gated on how fast that hot path turns
// events over. This bench pins the perf trajectory with four microbenches
// plus a wall-clock measurement of the online-serving smoke run:
//
//   event_loop_heap_small  self-rescheduling timer chains, 8-byte captures
//                          (the scattered-deadline heap path)
//   event_loop_heap_large  same, 48-byte captures (exercises the callback
//                          small-buffer storage; std::function heap-allocates
//                          captures this size)
//   event_loop_fifo        zero-delay bursts at one timestamp (the dominant
//                          same-time-FIFO cascade: completion -> poll -> submit)
//   event_loop_cancel      schedule/cancel churn (linger timers, watchdogs,
//                          fabric completion reschedules are all cancel-heavy)
//   fabric_churn           8-GPU NVLink-pair fabric under transfer churn with
//                          link flaps and cancels (incremental rebalance path)
//   serving_inprocess      repeated serving::RunServing of the ext_online_serving
//                          base configuration at --quick windows
//   cluster_serving_lpN    repeated datacenter::RunCluster of a 4-node x 2-GPU
//                          cluster with lp_threads = N for N in {1, 2, 4, 8}
//                          (the parallel logical-process engine; results are
//                          bit-identical across N, only wall clock may differ)
//   ext_online_serving     wall clock of the sibling binary with --quick, when
//                          it is present next to this one
//
// Wall-clock numbers are real time (std::chrono::steady_clock), everything
// else is deterministic. Each JSON row records the lp_threads it ran with
// (1 for the single-threaded benches). Results go to BENCH_simcore.json
// (see --out) via the bench_json writer; CI validates the JSON and archives
// it per commit — baseline only, no gating thresholds yet. On a single-CPU
// runner the lpN rows measure synchronization overhead, not speedup; no
// threshold asserts a parallel speedup anywhere.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/datacenter/cluster.h"
#include "src/interconnect/fabric.h"
#include "src/interconnect/topology.h"
#include "src/serving/serving.h"
#include "src/sim/simulator.h"

using namespace orion;

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Deterministic 64-bit LCG (same constants as common/rng's splitmix seeding);
// the benches must not consume the experiment RNG streams.
std::uint64_t Lcg(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 16;
}

struct Measurement {
  std::string name;
  std::size_t events = 0;    // events processed (or transfers, runs)
  double wall_ms_min = 0.0;  // best of `repeats` (least scheduler noise)
  double wall_ms_mean = 0.0;
  int repeats = 0;
  int lp_threads = 1;   // LP worker threads the bench ran with (1 = sequential)
  double extra = -1.0;  // bench-specific: see per-bench comment
};

std::vector<Measurement>& AllMeasurements() {
  static std::vector<Measurement> measurements;
  return measurements;
}

// Runs `body` (which returns the number of events it processed) `repeats`
// times and records min/mean wall time plus derived rates.
template <typename Body>
Measurement& Measure(const std::string& name, int repeats, Body body) {
  Measurement m;
  m.name = name;
  m.repeats = repeats;
  double total = 0.0;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const Clock::time_point start = Clock::now();
    const std::size_t events = body();
    const double ms = ElapsedMs(start);
    total += ms;
    if (r == 0 || ms < best) {
      best = ms;
    }
    m.events = events;
  }
  m.wall_ms_min = best;
  m.wall_ms_mean = total / repeats;
  AllMeasurements().push_back(m);
  const double per_sec = m.events / (m.wall_ms_min * 1e-3);
  std::cout << "  " << name << ": " << m.events << " events, "
            << m.wall_ms_min << " ms (best of " << repeats << "), "
            << static_cast<std::uint64_t>(per_sec) << " events/s, "
            << (m.wall_ms_min * 1e6 / m.events) << " ns/event\n";
  return AllMeasurements().back();
}

// --- Event-loop microbenches -------------------------------------------

// Self-rescheduling timer chains with pseudo-random deadlines: the classic
// discrete-event heap workload (every device completion / arrival process
// looks like this). `Pad` sizes the callback capture.
template <std::size_t PadBytes>
std::size_t RunHeapChains(std::size_t total_events, std::size_t num_chains) {
  struct Chain {
    Simulator* sim;
    std::uint64_t rng;
    std::size_t* budget;
  };
  struct Pad {
    unsigned char bytes[PadBytes];
  };
  Simulator sim;
  std::size_t budget = total_events;
  std::vector<Chain> chains(num_chains);
  // Self-scheduling needs a named callable; a struct keeps the capture size
  // exact so both variants measure what they claim.
  struct Pump {
    Chain* chain;
    Pad pad;
    void operator()() const {
      Chain& c = *chain;
      if (*c.budget == 0) {
        return;
      }
      --*c.budget;
      const double delay = 0.5 + static_cast<double>(Lcg(c.rng) & 0xffffff) / (1 << 24);
      c.sim->ScheduleAfter(delay, Pump{chain, pad});
    }
  };
  for (std::size_t i = 0; i < num_chains; ++i) {
    chains[i] = Chain{&sim, 0x9e3779b97f4a7c15ULL * (i + 1), &budget};
    sim.ScheduleAfter(1.0 + static_cast<double>(i) * 1e-3, Pump{&chains[i], Pad{}});
  }
  return sim.RunUntilIdle();
}

// Zero-delay cascades: one driver per timestamp fans out a burst of
// same-timestamp events, the pattern bursty completions and poll wake-ups
// produce. Exercises the same-time-FIFO fast path.
std::size_t RunFifoBursts(std::size_t total_events, std::size_t burst) {
  struct Driver {
    Simulator* sim;
    std::size_t* budget;
    std::size_t burst;
  };
  Simulator sim;
  std::size_t budget = total_events;
  Driver driver{&sim, &budget, burst};
  struct Pump {
    Driver* d;
    void operator()() const {
      if (*d->budget == 0) {
        return;
      }
      const std::size_t fan = std::min(d->burst, *d->budget);
      *d->budget -= fan;
      for (std::size_t i = 0; i + 1 < fan; ++i) {
        d->sim->ScheduleAfter(0.0, []() {});
      }
      d->sim->ScheduleAfter(1.0, Pump{d});
    }
  };
  sim.ScheduleAfter(1.0, Pump{&driver});
  return sim.RunUntilIdle();
}

// Schedule/cancel churn: K staggered timers per round, 3 of 4 cancelled
// before they fire (linger timers, watchdogs, completion reschedules).
// Returns scheduled events; `extra` records the cancel count.
std::size_t RunCancelChurn(std::size_t rounds, std::size_t timers_per_round,
                           std::size_t* cancels_out) {
  Simulator sim;
  std::vector<EventHandle> handles;
  handles.reserve(timers_per_round);
  std::size_t fired = 0;
  std::size_t cancels = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    handles.clear();
    for (std::size_t i = 0; i < timers_per_round; ++i) {
      handles.push_back(
          sim.ScheduleAfter(1.0 + static_cast<double>(i), [&fired]() { ++fired; }));
    }
    for (std::size_t i = 0; i < timers_per_round; ++i) {
      if (i % 4 != 0) {
        sim.Cancel(handles[i]);
        ++cancels;
      }
    }
    sim.RunUntilIdle();
  }
  *cancels_out = cancels;
  return rounds * timers_per_round;
}

// Headline event-loop bench: the simulator's real per-completion profile,
// taken from how orion_scheduler + the device model actually drive the
// loop. Each device completion (heap pop) triggers a same-timestamp
// poll -> submit -> telemetry cascade (ring events), schedules the next
// completion (heap push) and re-arms a watchdog whose previous instance is
// cancelled — the mix the pure heap/fifo/cancel benches isolate.
std::size_t RunMixedLoad(std::size_t total_completions, std::size_t streams,
                         std::size_t* events_out) {
  struct Stream {
    Simulator* sim;
    std::uint64_t rng;
    std::size_t* budget;
    EventHandle watchdog;
  };
  Simulator sim;
  std::size_t budget = total_completions;
  std::vector<Stream> pool(streams);
  struct Completion {
    Stream* st;
    void operator()() const {
      Stream& s = *st;
      if (*s.budget == 0) {
        return;
      }
      --*s.budget;
      // Same-timestamp control-plane cascade (poll, submit, span close).
      for (int i = 0; i < 3; ++i) {
        s.sim->ScheduleAfter(0.0, []() {});
      }
      // Next completion for this stream.
      const double delay = 1.0 + static_cast<double>(Lcg(s.rng) & 0xffff) / (1 << 16);
      s.sim->ScheduleAfter(delay, Completion{st});
      // Re-armed watchdog: the prior one practically never fires.
      s.sim->Cancel(s.watchdog);
      s.watchdog = s.sim->ScheduleAfter(delay * 16.0, []() {});
    }
  };
  for (std::size_t i = 0; i < streams; ++i) {
    pool[i] = Stream{&sim, 0x2545f4914f6cdd1dULL * (i + 1), &budget, EventHandle()};
    sim.ScheduleAfter(1.0 + static_cast<double>(i) * 1e-3, Completion{&pool[i]});
  }
  const std::size_t ran = sim.RunUntilIdle();
  *events_out = ran;
  return ran;
}

// --- Fabric churn -------------------------------------------------------

// Transfer churn over an 8-GPU NVLink-pair node: a steady in-flight
// population with completions immediately replaced, periodic link flaps and
// cancels. Measures the enqueue/complete/fault rebalance path; returns the
// number of simulator events processed.
std::size_t RunFabricChurn(std::size_t total_transfers, std::size_t in_flight,
                           std::size_t* completed_out) {
  Simulator sim;
  interconnect::Fabric fabric(&sim, interconnect::NodeTopology::NvLinkPairs(8));
  std::uint64_t rng = 0x243f6a8885a308d3ULL;
  std::size_t started = 0;
  std::uint64_t flap_link = 0;

  struct Churn {
    Simulator* sim;
    interconnect::Fabric* fabric;
    std::uint64_t* rng;
    std::size_t* started;
    std::uint64_t* flap_link;
    std::size_t total;

    void StartOne() const {
      if (*started >= total) {
        return;
      }
      ++*started;
      const int src = static_cast<int>(Lcg(*rng) % 8);
      int dst = static_cast<int>(Lcg(*rng) % 8);
      if (dst == src) {
        dst = (dst + 1) % 8;
      }
      const std::size_t bytes = (64 + (Lcg(*rng) % 4032)) << 10;  // 64KB..4MB
      const std::uint64_t n = *started;
      Churn self = *this;
      const interconnect::TransferId id =
          fabric->StartTransfer(src, dst, bytes, [self]() { self.StartOne(); });
      if (n % 13 == 0) {
        // Cancel shortly after it starts streaming (post-setup).
        sim->ScheduleAfter(10.0, [self, id]() { self.fabric->CancelTransfer(id); });
      }
      if (n % 97 == 0) {
        // Flap one PCIe direction: degrade, then restore.
        const interconnect::LinkId link =
            self.fabric->topology().PcieLink(static_cast<int>(*self.flap_link % 8));
        ++*self.flap_link;
        self.fabric->SetLinkFactor(link, true, 0.25);
        sim->ScheduleAfter(50.0, [self, link]() {
          self.fabric->SetLinkFactor(link, true, 1.0);
        });
      }
    }
  };

  Churn churn{&sim, &fabric, &rng, &started, &flap_link, total_transfers};
  for (std::size_t i = 0; i < in_flight; ++i) {
    churn.StartOne();
  }
  const std::size_t events = sim.RunUntilIdle();
  *completed_out = fabric.transfers_completed();
  return events;
}

// --- Serving wall clock -------------------------------------------------

// The ext_online_serving base configuration (2 GPUs, hp ResNet50 + be BERT)
// at --quick windows; one run per repeat, interference-aware routing.
serving::ServingConfig ServingQuickConfig() {
  serving::ModelServiceConfig resnet;
  resnet.workload =
      workloads::MakeWorkload(workloads::ModelId::kResNet50, workloads::TaskType::kInference);
  resnet.tier = serving::PriorityTier::kLatencyCritical;
  resnet.slo_us = MsToUs(60.0);
  resnet.rps = 300.0;
  resnet.initial_replicas = 2;
  resnet.max_replicas = 4;

  serving::ModelServiceConfig bert;
  bert.workload =
      workloads::MakeWorkload(workloads::ModelId::kBert, workloads::TaskType::kInference);
  bert.tier = serving::PriorityTier::kBestEffort;
  bert.slo_us = MsToUs(500.0);
  bert.rps = 15.0;
  bert.max_replicas = 1;

  serving::ServingConfig config;
  config.num_gpus = 2;
  config.max_replicas_per_gpu = 2;
  config.policy = serving::RoutePolicy::kInterferenceAware;
  // The --quick windows of bench_util, independent of this binary's flags so
  // the measurement is comparable across runs.
  config.warmup_us = bench::kWarmupUs * 0.25;
  config.duration_us = bench::kDurationUs * 0.125;
  config.seed = bench::GlobalBenchArgs().seed;
  config.models = {resnet, bert};
  return config;
}

// A 4-node x 2-GPU datacenter cluster (ResNet50 at 180 rps per node, one
// replica per GPU) at --quick windows — the ext_datacenter_serving scaling
// arm's shape, small enough to repeat. `lp_threads` selects the engine: 1 is
// the sequential loop, >1 the conservative parallel LP engine. All thread
// counts produce bit-identical ClusterResults, so the rows measure pure
// engine overhead/speedup on identical work.
datacenter::ClusterConfig ClusterQuickConfig(int lp_threads) {
  serving::ModelServiceConfig resnet;
  resnet.workload =
      workloads::MakeWorkload(workloads::ModelId::kResNet50, workloads::TaskType::kInference);
  resnet.tier = serving::PriorityTier::kLatencyCritical;
  resnet.slo_us = MsToUs(60.0);
  resnet.rps = 180.0 * 4;
  resnet.initial_replicas = 8;
  resnet.max_replicas = 10;

  datacenter::ClusterConfig config;
  config.cluster.num_nodes = 4;
  config.cluster.gpus_per_node = 2;
  config.serving.policy = serving::RoutePolicy::kInterferenceAware;
  // Fixed --quick-sized windows (like ServingQuickConfig) so the rows are
  // comparable across full and quick runs.
  config.serving.warmup_us = bench::kWarmupUs * 0.25;
  config.serving.duration_us = bench::kDurationUs * 0.125;
  config.serving.seed = bench::GlobalBenchArgs().seed;
  config.serving.models = {resnet};
  config.lp_threads = lp_threads;
  return config;
}

// Times the sibling ext_online_serving binary with --quick, if present.
// Returns wall ms, or -1 when the binary is missing (e.g. bench run from an
// install tree).
double TimeSiblingServingBench(const char* argv0) {
  std::string dir(argv0);
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  const std::string cmd = dir + "/ext_online_serving --quick > /dev/null 2>&1";
  // Probe once (also warms caches); non-zero status means "not available".
  if (std::system(cmd.c_str()) != 0) {
    return -1.0;
  }
  const Clock::time_point start = Clock::now();
  if (std::system(cmd.c_str()) != 0) {
    return -1.0;
  }
  return ElapsedMs(start);
}

}  // namespace

int main(int argc, char** argv) {
  // --out=PATH is specific to this bench; strip it before the shared parser.
  std::string out_path = "BENCH_simcore.json";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  bench::ParseBenchArgs(&argc, argv);
  const bool quick = bench::GlobalBenchArgs().quick;
  const int repeats = quick ? 3 : 5;

  bench::PrintHeader("BENCH_simcore", "simulation-core throughput baseline");
  std::cout << (quick ? "(--quick: reduced event budgets)\n" : "") << "\n";

  const std::size_t scale = quick ? 1 : 4;

  {
    std::size_t ran = 0;
    Measurement& m = Measure("event_loop_mixed", repeats, [&]() {
      return RunMixedLoad(scale * 200 * 1000, 256, &ran);
    });
    m.extra = static_cast<double>(ran);  // extra = total events run
  }
  Measure("event_loop_heap_small", repeats,
          [&]() { return RunHeapChains<8>(scale * 1000 * 1000, 256); });
  Measure("event_loop_heap_large", repeats,
          [&]() { return RunHeapChains<48>(scale * 500 * 1000, 256); });
  Measure("event_loop_fifo", repeats,
          [&]() { return RunFifoBursts(scale * 1000 * 1000, 64); });
  {
    std::size_t cancels = 0;
    Measurement& m = Measure("event_loop_cancel", repeats, [&]() {
      return RunCancelChurn(scale * 2000, 512, &cancels);
    });
    m.extra = static_cast<double>(cancels);  // extra = cancelled events
  }
  {
    std::size_t completed = 0;
    Measurement& m = Measure("fabric_churn", repeats, [&]() {
      return RunFabricChurn(scale * 25 * 1000, 64, &completed);
    });
    m.extra = static_cast<double>(completed);  // extra = transfers completed
  }
  {
    const serving::ServingConfig config = ServingQuickConfig();
    Measurement& m = Measure("serving_inprocess", repeats, [&]() {
      const serving::ServingResult result = serving::RunServing(config);
      ORION_CHECK(result.models[0].completed > 0);
      return result.models[0].completed + result.models[1].completed;
    });
    m.extra = m.wall_ms_min;  // extra = ms per run (same thing here)
  }
  for (const int lp_threads : {1, 2, 4, 8}) {
    const datacenter::ClusterConfig config = ClusterQuickConfig(lp_threads);
    std::size_t completed = 0;
    Measurement& m =
        Measure("cluster_serving_lp" + std::to_string(lp_threads), repeats, [&]() {
          const datacenter::ClusterResult result = datacenter::RunCluster(config);
          ORION_CHECK(result.requests_forwarded > 0);
          completed = result.serving.models[0].completed;
          return completed;
        });
    m.lp_threads = lp_threads;
    m.extra = static_cast<double>(completed);  // extra = requests completed
  }
  {
    const double wall = TimeSiblingServingBench(argv[0]);
    Measurement m;
    m.name = "ext_online_serving_quick";
    m.repeats = 1;
    m.events = wall >= 0.0 ? 1 : 0;  // events = runs measured
    m.wall_ms_min = wall;
    m.wall_ms_mean = wall;
    AllMeasurements().push_back(m);
    if (wall >= 0.0) {
      std::cout << "  ext_online_serving --quick: " << wall << " ms wall\n";
    } else {
      std::cout << "  ext_online_serving --quick: binary not found, skipped\n";
    }
  }

  bench::JsonValue root;
  root["bench"] = "perf_sim_core";
  root["quick"] = quick;
  root["seed"] = bench::GlobalBenchArgs().seed;
  bench::JsonValue& results = root["results"];
  results = bench::JsonValue::Array();
  for (const Measurement& m : AllMeasurements()) {
    bench::JsonValue& entry = results.Append();
    entry["name"] = m.name;
    entry["events"] = m.events;
    entry["repeats"] = m.repeats;
    entry["lp_threads"] = m.lp_threads;
    entry["wall_ms_min"] = m.wall_ms_min;
    entry["wall_ms_mean"] = m.wall_ms_mean;
    if (m.events > 0 && m.wall_ms_min > 0.0) {
      entry["events_per_sec"] = m.events / (m.wall_ms_min * 1e-3);
      entry["ns_per_event"] = m.wall_ms_min * 1e6 / static_cast<double>(m.events);
    }
    if (m.extra >= 0.0) {
      entry["extra"] = m.extra;
    }
  }
  if (root.WriteFile(out_path)) {
    std::cout << "\nwrote " << out_path << "\n";
  } else {
    std::cerr << "\nfailed to write " << out_path << "\n";
    return 1;
  }
  return 0;
}
