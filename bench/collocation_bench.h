// Shared driver for the inf-train (Figures 6-7) and inf-inf (Figures 11-12)
// collocation matrices: every high-priority model is collocated with every
// partner workload under every sharing technique; we report the p99 latency
// of the high-priority job (mean and spread across partners, like the
// paper's error bars) and the throughput split.
#ifndef BENCH_COLLOCATION_BENCH_H_
#define BENCH_COLLOCATION_BENCH_H_

#include <iostream>
#include <vector>

#include "bench/bench_util.h"

namespace orion {
namespace bench {

inline const std::vector<harness::SchedulerKind>& CollocationSchedulers() {
  static const std::vector<harness::SchedulerKind> kSchedulers = {
      harness::SchedulerKind::kDedicated, harness::SchedulerKind::kTemporal,
      harness::SchedulerKind::kStreams,   harness::SchedulerKind::kMps,
      harness::SchedulerKind::kReef,      harness::SchedulerKind::kOrion,
  };
  return kSchedulers;
}

struct MatrixOptions {
  // Arrival process + per-model rates for the high-priority inference job.
  harness::ClientConfig::Arrivals hp_arrivals = harness::ClientConfig::Arrivals::kPoisson;
  trace::CollocationCase rate_case = trace::CollocationCase::kInfTrainPoisson;
  // Partner workloads: training jobs (inf-train) or inference jobs (inf-inf).
  bool partners_are_training = true;
  // Best-effort inference arrivals (inf-inf only).
  harness::ClientConfig::Arrivals be_arrivals = harness::ClientConfig::Arrivals::kUniform;
  trace::CollocationCase be_rate_case = trace::CollocationCase::kInfInfUniform;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
};

// Runs the full matrix and prints one table per high-priority model plus a
// cross-model summary of p99-vs-ideal ratios.
inline void RunCollocationMatrix(const MatrixOptions& options) {
  OnlineStats orion_vs_ideal;
  OnlineStats reef_vs_ideal;

  for (auto hp_model : AllModels()) {
    const double hp_rps = trace::RequestsPerSecond(hp_model, options.rate_case);
    const harness::ClientConfig hp =
        InferenceClient(hp_model, options.hp_arrivals, hp_rps, /*high_priority=*/true);

    // Partner set: all models except (for inf-inf) the hp model itself.
    std::vector<harness::ClientConfig> partners;
    for (auto be_model : AllModels()) {
      if (options.partners_are_training) {
        partners.push_back(TrainingClient(be_model, false));
      } else if (be_model != hp_model) {
        partners.push_back(InferenceClient(be_model, options.be_arrivals,
                                           trace::RequestsPerSecond(be_model,
                                                                    options.be_rate_case),
                                           false));
      }
    }

    std::cout << "-- high-priority: " << workloads::WorkloadName(hp.workload) << " @ "
              << hp_rps << " rps (mean across " << partners.size() << " collocated "
              << (options.partners_are_training ? "training" : "inference") << " jobs)\n";

    Table table({"technique", "p99_ms_mean", "p99_ms_std", "p99_vs_ideal", "hp_tput_rps",
                 "be_tput_mean"});
    double ideal_p99 = 0.0;
    for (const auto scheduler : CollocationSchedulers()) {
      OnlineStats p99;
      OnlineStats hp_tput;
      OnlineStats be_tput;
      for (const auto& be : partners) {
        const auto result = RunPair(hp, be, scheduler, options.device);
        p99.Add(UsToMs(result.hp().latency.p99()));
        hp_tput.Add(result.hp().throughput_rps);
        be_tput.Add(BeThroughput(result));
      }
      if (scheduler == harness::SchedulerKind::kDedicated) {
        ideal_p99 = p99.mean();
      }
      const double ratio = ideal_p99 > 0 ? p99.mean() / ideal_p99 : 0.0;
      if (scheduler == harness::SchedulerKind::kOrion) {
        orion_vs_ideal.Add(ratio);
      }
      if (scheduler == harness::SchedulerKind::kReef) {
        reef_vs_ideal.Add(ratio);
      }
      table.AddRow({harness::SchedulerKindName(scheduler), Cell(p99.mean(), 2),
                    Cell(p99.stddev(), 2), Cell(ratio, 2), Cell(hp_tput.mean(), 1),
                    Cell(be_tput.mean(), 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "summary across all high-priority models:\n"
            << "  Orion p99 / ideal: mean " << Cell(orion_vs_ideal.mean(), 2) << "x (max "
            << Cell(orion_vs_ideal.max(), 2) << "x)\n"
            << "  REEF  p99 / ideal: mean " << Cell(reef_vs_ideal.mean(), 2) << "x (max "
            << Cell(reef_vs_ideal.max(), 2) << "x)\n";
}

}  // namespace bench
}  // namespace orion

#endif  // BENCH_COLLOCATION_BENCH_H_
