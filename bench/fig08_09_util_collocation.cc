// Figures 8 and 9: GPU compute-throughput (Fig 8) and memory-bandwidth
// (Fig 9) utilization of a ResNet50 inference job running alone vs
// collocated (under Orion) with a ResNet50 training job. The inference job
// receives uniform arrivals at 100 rps.
//
// Paper numbers: Orion raises average compute utilization 7% -> 36%, memory
// bandwidth 10% -> 47%, SM utilization 11% -> 49%. The shape to reproduce:
// Orion fills the inference job's fine-grained idle gaps.
#include <iostream>

#include "bench/bench_util.h"

using namespace orion;

namespace {

harness::ExperimentResult Run(bool collocated, telemetry::Hub* hub = nullptr) {
  harness::ExperimentConfig config;
  config.seed = bench::GlobalBenchArgs().seed;
  config.warmup_us = bench::WarmupWindowUs();
  config.duration_us = bench::MeasureWindowUs();
  config.scheduler =
      collocated ? harness::SchedulerKind::kOrion : harness::SchedulerKind::kDedicated;
  config.telemetry = hub;
  config.clients.push_back(bench::InferenceClient(workloads::ModelId::kResNet50,
                                                  harness::ClientConfig::Arrivals::kUniform,
                                                  100.0, true));
  if (collocated) {
    config.clients.push_back(bench::TrainingClient(workloads::ModelId::kResNet50, false));
  }
  return harness::RunExperiment(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(&argc, argv);
  bench::PrintHeader("Figures 8-9",
                     "ResNet50 inference utilization: alone vs collocated with training");

  const auto alone = Run(false);
  const auto collocated = Run(true);

  Table table({"metric", "alone_%", "collocated_%", "paper_alone_%", "paper_coll_%"});
  table.AddRow({"compute throughput", Cell(100.0 * alone.utilization.compute, 1),
                Cell(100.0 * collocated.utilization.compute, 1), "7", "36"});
  table.AddRow({"memory bandwidth", Cell(100.0 * alone.utilization.membw, 1),
                Cell(100.0 * collocated.utilization.membw, 1), "10", "47"});
  table.AddRow({"SM utilization", Cell(100.0 * alone.utilization.sm_busy, 1),
                Cell(100.0 * collocated.utilization.sm_busy, 1), "11", "49"});
  table.Print(std::cout);

  std::cout << "\nhigh-priority inference under collocation: p99 "
            << Cell(UsToMs(collocated.hp().latency.p99()), 2) << " ms vs alone "
            << Cell(UsToMs(alone.hp().latency.p99()), 2) << " ms; best-effort training at "
            << Cell(bench::BeThroughput(collocated), 2) << " iters/s\n";

  // Instrumented arm (only with --trace-out / --metrics-out): re-run the
  // collocated configuration with a telemetry hub. The trace shows the kernel
  // timeline alongside the Orion scheduler's decision markers; the CSV holds
  // the "orion.*" scheduler counters and "harness.*" per-client metrics.
  if (bench::TelemetryRequested()) {
    std::cout << "\n-- Telemetry arm: instrumented collocated run --\n";
    telemetry::Hub hub;
    if (!bench::GlobalBenchArgs().trace_out.empty()) {
      hub.EnableTracing();
    }
    const auto traced = Run(true, &hub);
    std::cout << "hp completed: " << traced.hp().completed
              << "  be kernels submitted: "
              << hub.metrics().CounterValue("orion.be_kernels_submitted") << "\n";
    bench::ExportTelemetry(hub);
  }
  return 0;
}
