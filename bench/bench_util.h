// Shared helpers for the per-figure/table bench binaries.
//
// Every binary in bench/ regenerates one artefact of the paper's evaluation
// (see DESIGN.md's experiment index) and prints the same rows/series the
// paper reports. Absolute numbers come from the simulator and differ from
// the authors' testbed; the shapes are the reproduction target.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/table.h"
#include "src/harness/experiment.h"
#include "src/harness/sm_tuner.h"
#include "src/telemetry/exporters.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/request_rates.h"

namespace orion {
namespace bench {

// Measurement window used by the collocation benches. Long enough for a few
// hundred inference requests and dozens of training iterations per run.
constexpr DurationUs kWarmupUs = SecToUs(1.0);
constexpr DurationUs kDurationUs = SecToUs(15.0);

// Flags shared by every bench binary. Parsed once by ParseBenchArgs; the
// accessors below fold them into the standard measurement windows so
// individual benches stay flag-free.
struct BenchArgs {
  bool quick = false;        // --quick: ~8x shorter windows, for CI smoke runs
  std::uint64_t seed = 42;   // --seed=N: experiment seed
  double window_scale = 1.0; // --window-scale=X: multiply both windows by X
  std::string trace_out;     // --trace-out=P: write a Chrome/Perfetto trace
  std::string metrics_out;   // --metrics-out=P: write a metrics CSV snapshot
  std::string attr_out;      // --attr-out=P: write the per-service latency
                             // attribution (SLO blame ledger) as CSV
  double flush_period_ms = 0.0;  // --flush-period-ms=X: stream exports during
                                 // the run every X ms of sim time (0 = only
                                 // at the end)
  int lp_threads = 1;  // --lp-threads=N: parallel LP simulation for the
                       // datacenter-capable benches (N worker threads; 1 =
                       // sequential). Results are bit-identical at any N.
};

inline BenchArgs& GlobalBenchArgs() {
  static BenchArgs args;
  return args;
}

// Parses --quick / --seed=N / --window-scale=X / --help and removes them
// from argv. Leftover --benchmark_* flags are kept for binaries that forward
// to google benchmark (overhead_interception); any other leftover flag is an
// error. Call first thing in main().
inline void ParseBenchArgs(int* argc, char** argv) {
  BenchArgs& args = GlobalBenchArgs();
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick") {
      args.quick = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (arg.rfind("--window-scale=", 0) == 0) {
      args.window_scale = std::strtod(argv[i] + 15, nullptr);
      if (args.window_scale <= 0.0) {
        std::cerr << "--window-scale must be > 0\n";
        std::exit(2);
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      args.trace_out = std::string(arg.substr(12));
    } else if (arg == "--trace-out" && i + 1 < *argc) {
      args.trace_out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      args.metrics_out = std::string(arg.substr(14));
    } else if (arg == "--metrics-out" && i + 1 < *argc) {
      args.metrics_out = argv[++i];
    } else if (arg.rfind("--attr-out=", 0) == 0) {
      args.attr_out = std::string(arg.substr(11));
    } else if (arg == "--attr-out" && i + 1 < *argc) {
      args.attr_out = argv[++i];
    } else if (arg.rfind("--lp-threads=", 0) == 0) {
      args.lp_threads = static_cast<int>(std::strtol(argv[i] + 13, nullptr, 10));
      if (args.lp_threads < 1) {
        std::cerr << "--lp-threads must be >= 1\n";
        std::exit(2);
      }
    } else if (arg.rfind("--flush-period-ms=", 0) == 0) {
      args.flush_period_ms = std::strtod(argv[i] + 18, nullptr);
      if (args.flush_period_ms < 0.0) {
        std::cerr << "--flush-period-ms must be >= 0\n";
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "Usage: " << argv[0]
                << " [--quick] [--seed=N] [--window-scale=X]"
                   " [--trace-out=P] [--metrics-out=P] [--attr-out=P]"
                   " [--flush-period-ms=X] [--lp-threads=N]\n"
                << "  --quick           ~8x shorter measurement windows (CI smoke)\n"
                << "  --seed=N          experiment seed (default 42)\n"
                << "  --window-scale=X  multiply warmup+measurement windows by X\n"
                << "  --trace-out=P     write a Chrome/Perfetto trace of one run to P\n"
                << "  --metrics-out=P   write that run's metrics snapshot as CSV to P\n"
                << "  --attr-out=P      write that run's per-service latency attribution\n"
                   "                    (SLO-miss blame ledger) as CSV to P\n"
                << "  --flush-period-ms=X  also rewrite those artefacts every X ms of\n"
                   "                    simulated time during the run (streaming export)\n"
                << "  --lp-threads=N    run multi-node simulations as N parallel logical\n"
                   "                    processes (datacenter-capable benches; results are\n"
                   "                    bit-identical to --lp-threads=1)\n";
      std::exit(0);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      argv[kept++] = argv[i];  // google-benchmark flag: leave for the caller
    } else {
      std::cerr << "unknown argument: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  *argc = kept;
}

// Worker threads for the parallel LP simulation (datacenter-capable benches
// pass this through to ClusterConfig::lp_threads; 1 = sequential engine).
inline int LpThreads() { return GlobalBenchArgs().lp_threads; }

// True when --trace-out or --metrics-out was given, i.e. the bench should
// run one arm with a telemetry hub attached.
inline bool TelemetryRequested() {
  const BenchArgs& args = GlobalBenchArgs();
  return !args.trace_out.empty() || !args.metrics_out.empty() || !args.attr_out.empty();
}

// True when --attr-out was given: the instrumented arm should also call
// Hub::EnableAttribution() so per-request latency ledgers are kept.
inline bool AttributionRequested() { return !GlobalBenchArgs().attr_out.empty(); }

// Writes the hub's trace/metrics to the --trace-out / --metrics-out paths
// (whichever were given) and prints where they went. Call once, after the
// instrumented run.
inline void ExportTelemetry(telemetry::Hub& hub) {
  const BenchArgs& args = GlobalBenchArgs();
  if (!args.trace_out.empty()) {
    telemetry::ExportChromeTrace(hub, args.trace_out);
    std::cout << "wrote trace: " << args.trace_out
              << " (open in https://ui.perfetto.dev)\n";
  }
  if (!args.metrics_out.empty()) {
    telemetry::ExportMetricsCsv(hub.metrics(), args.metrics_out);
    std::cout << "wrote metrics: " << args.metrics_out << "\n";
  }
  if (!args.attr_out.empty()) {
    attribution::ExportAttributionCsv(hub.attribution(), args.attr_out);
    std::cout << "wrote attribution: " << args.attr_out
              << " (render with tools/attribution_report.py)\n";
  }
}

// Streaming-export options for the instrumented arm: folds the
// --flush-period-ms / --trace-out / --metrics-out flags into the harness's
// telemetry_flush config (disabled unless all relevant flags were given).
inline telemetry::StreamingExporter::Options FlushOptions() {
  const BenchArgs& args = GlobalBenchArgs();
  telemetry::StreamingExporter::Options options;
  options.period_us = MsToUs(args.flush_period_ms);
  options.trace_path = args.trace_out;
  options.metrics_path = args.metrics_out;
  return options;
}

// Standard windows with --quick / --window-scale applied.
inline DurationUs WarmupWindowUs() {
  const BenchArgs& args = GlobalBenchArgs();
  return kWarmupUs * (args.quick ? 0.25 : 1.0) * args.window_scale;
}

inline DurationUs MeasureWindowUs() {
  const BenchArgs& args = GlobalBenchArgs();
  return kDurationUs * (args.quick ? 0.125 : 1.0) * args.window_scale;
}

inline harness::ClientConfig InferenceClient(workloads::ModelId model,
                                             harness::ClientConfig::Arrivals arrivals,
                                             double rps, bool high_priority) {
  harness::ClientConfig client;
  client.workload = workloads::MakeWorkload(model, workloads::TaskType::kInference);
  client.high_priority = high_priority;
  client.arrivals = arrivals;
  client.rps = rps;
  return client;
}

inline harness::ClientConfig TrainingClient(workloads::ModelId model, bool high_priority) {
  harness::ClientConfig client;
  client.workload = workloads::MakeWorkload(model, workloads::TaskType::kTraining);
  client.high_priority = high_priority;
  client.arrivals = harness::ClientConfig::Arrivals::kClosedLoop;
  return client;
}

inline harness::ExperimentResult RunPair(const harness::ClientConfig& hp,
                                         const harness::ClientConfig& be,
                                         harness::SchedulerKind scheduler,
                                         const gpusim::DeviceSpec& device =
                                             gpusim::DeviceSpec::V100_16GB(),
                                         const core::OrionOptions& orion_options = {}) {
  harness::ExperimentConfig config;
  config.device = device;
  config.scheduler = scheduler;
  config.orion = orion_options;
  config.warmup_us = WarmupWindowUs();
  config.duration_us = MeasureWindowUs();
  config.seed = GlobalBenchArgs().seed;
  config.clients = {hp, be};
  return harness::RunExperiment(config);
}

// Orion options for a collocation: when the high-priority job is
// throughput-oriented (training), tune SM_THRESHOLD with the §5.1.1 binary
// search (the paper does the same for the train-train experiments);
// otherwise keep the conservative defaults.
inline core::OrionOptions OrionOptionsFor(const harness::ClientConfig& hp,
                                          const harness::ClientConfig& be,
                                          const gpusim::DeviceSpec& device =
                                              gpusim::DeviceSpec::V100_16GB()) {
  core::OrionOptions options;
  // §5.1.1: SM_THRESHOLD is tuned when the high-priority job is
  // throughput-oriented — training, or closed-loop inference (Fig. 2).
  const bool throughput_oriented =
      hp.workload.task == workloads::TaskType::kTraining ||
      hp.arrivals == harness::ClientConfig::Arrivals::kClosedLoop;
  if (!throughput_oriented) {
    return options;
  }
  harness::ExperimentConfig config;
  config.device = device;
  config.scheduler = harness::SchedulerKind::kOrion;
  config.warmup_us = WarmupWindowUs();
  config.seed = GlobalBenchArgs().seed;
  config.clients = {hp, be};
  options.sm_threshold = harness::TuneSmThreshold(config).best_threshold;
  return options;
}

// Best-effort throughput of a two-client result.
inline double BeThroughput(const harness::ExperimentResult& result) {
  double throughput = 0.0;
  for (const auto& client : result.clients) {
    if (!client.high_priority) {
      throughput += client.throughput_rps;
    }
  }
  return throughput;
}

inline void PrintHeader(const std::string& artefact, const std::string& title) {
  std::cout << "\n=== " << artefact << ": " << title << " ===\n"
            << "(simulated V100 unless stated; shapes, not absolute numbers, "
               "are the reproduction target)\n\n";
}

// All five models in the paper's order.
inline std::vector<workloads::ModelId> AllModels() {
  return {workloads::ModelId::kResNet50, workloads::ModelId::kMobileNetV2,
          workloads::ModelId::kResNet101, workloads::ModelId::kBert,
          workloads::ModelId::kTransformer};
}

}  // namespace bench
}  // namespace orion

#endif  // BENCH_BENCH_UTIL_H_
