#include "src/serving/admission.h"

#include "src/common/check.h"

namespace orion {
namespace serving {

AdmissionController::AdmissionController(const AdmissionConfig& config) : config_(config) {
  ORION_CHECK(config.lc_slack > 0.0);
  ORION_CHECK(config.be_slack > 0.0);
}

bool AdmissionController::Admit(const Request& request, PriorityTier tier,
                                DurationUs predicted_wait_us, DurationUs service_us) const {
  if (!config_.enabled) {
    return true;
  }
  const double slack =
      tier == PriorityTier::kLatencyCritical ? config_.lc_slack : config_.be_slack;
  const DurationUs slo = request.deadline_us - request.arrival_us;
  const TimeUs predicted_completion = request.arrival_us + predicted_wait_us + service_us;
  return predicted_completion <= request.arrival_us + slack * slo;
}

}  // namespace serving
}  // namespace orion
