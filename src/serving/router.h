// Front-end router: picks a replica for each admitted request.
//
// Three pluggable policies:
//   * round-robin         — rotates over the model's active replicas,
//                           load-blind (the baseline).
//   * least-outstanding   — fewest queued + in-flight requests; classic
//                           join-shortest-queue.
//   * interference-aware  — least predicted *time* to drain the replica's
//                           outstanding work, where each replica's work is
//                           scaled by its current interference slowdown
//                           (cluster::PairInterference pressure from its GPU
//                           co-residents). Two replicas with equal queue
//                           lengths are not equal if one shares its GPU with
//                           a memory-hungry co-resident — this policy is the
//                           serving-tier consumer of the placement engine's
//                           interference predictions.
//
// All ties break towards the lowest replica id, so routing is deterministic.
#ifndef SRC_SERVING_ROUTER_H_
#define SRC_SERVING_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/common/time_types.h"
#include "src/serving/request.h"

namespace orion {
namespace serving {

enum class RoutePolicy : std::uint8_t {
  kRoundRobin,
  kLeastOutstanding,
  kInterferenceAware,
};

const char* RoutePolicyName(RoutePolicy policy);

// The RouteReason (request.h) a fresh Pick would report, given the
// candidate count.
RouteReason PickReason(RoutePolicy policy, std::size_t num_candidates);

// What the router sees of one candidate replica.
struct ReplicaView {
  int replica_id = -1;
  std::size_t queued = 0;          // waiting in the replica's batcher
  std::size_t in_flight = 0;       // in the batch currently on the device
  DurationUs outstanding_us = 0.0;  // predicted drain time incl. slowdown
};

class Router {
 public:
  Router(RoutePolicy policy, std::size_t num_models);

  // Returns the chosen candidate's index (not replica id). `candidates` must
  // be non-empty and sorted by replica_id ascending (the engine guarantees
  // this); `model` selects the round-robin cursor.
  std::size_t Pick(std::size_t model, const std::vector<ReplicaView>& candidates);

  RoutePolicy policy() const { return policy_; }

 private:
  RoutePolicy policy_;
  std::vector<std::uint64_t> rr_cursor_;  // one per model service
};

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_ROUTER_H_
