#include "src/serving/serving.h"

// The serving engine itself lives in src/datacenter/cluster_engine.cc since
// the datacenter split: a global control plane (arrivals, admission, node
// routing, limbo, autoscaling, faults, accounting) over per-node engines
// (src/datacenter/node_engine.h). RunServing is defined there as the
// num_nodes == 1 special case. This file keeps the pure helpers on the
// public serving types.

namespace orion {
namespace serving {

const char* PriorityTierName(PriorityTier tier) {
  switch (tier) {
    case PriorityTier::kLatencyCritical:
      return "latency-critical";
    case PriorityTier::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

std::size_t ServingResult::TotalOffered() const {
  std::size_t total = 0;
  for (const ModelServingResult& model : models) {
    total += model.offered;
  }
  return total;
}

std::size_t ServingResult::TotalCompleted() const {
  std::size_t total = 0;
  for (const ModelServingResult& model : models) {
    total += model.completed;
  }
  return total;
}

std::size_t ServingResult::TotalShed() const {
  std::size_t total = 0;
  for (const ModelServingResult& model : models) {
    total += model.shed;
  }
  return total;
}

double ServingResult::MeanAttainment() const {
  std::size_t offered = 0;
  std::size_t met = 0;
  for (const ModelServingResult& model : models) {
    offered += model.offered;
    met += model.slo_met;
  }
  return offered > 0 ? static_cast<double>(met) / static_cast<double>(offered) : 1.0;
}

}  // namespace serving
}  // namespace orion
