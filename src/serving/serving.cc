#include "src/serving/serving.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "src/cluster/placement.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/serving/batch_cost.h"
#include "src/sim/simulator.h"
#include "src/trace/arrivals.h"

namespace orion {
namespace serving {

namespace {

std::unique_ptr<trace::ArrivalProcess> MakeArrivals(ArrivalKind kind, double rps) {
  switch (kind) {
    case ArrivalKind::kUniform:
      return trace::MakeUniform(rps);
    case ArrivalKind::kPoisson:
      return trace::MakePoisson(rps);
    case ArrivalKind::kApollo:
      return trace::MakeApollo(rps);
  }
  ORION_CHECK_MSG(false, "unknown arrival kind");
  return nullptr;
}

class ServingEngine {
 public:
  explicit ServingEngine(const ServingConfig& config)
      : config_(config),
        router_(config.policy, config.models.size()),
        admission_(config.admission),
        horizon_(config.warmup_us + config.duration_us) {
    ORION_CHECK(config.num_gpus >= 1);
    ORION_CHECK(config.max_replicas_per_gpu >= 1);
    ORION_CHECK_MSG(!config.models.empty(), "serving needs at least one model service");
    gpus_.resize(static_cast<std::size_t>(config.num_gpus));
    Rng root(config.seed);
    for (std::size_t m = 0; m < config.models.size(); ++m) {
      const ModelServiceConfig& cfg = config.models[m];
      ORION_CHECK(cfg.rps > 0.0);
      ORION_CHECK(cfg.slo_us > 0.0);
      ORION_CHECK(cfg.initial_replicas >= 1);
      ORION_CHECK(cfg.min_replicas >= 1);
      ORION_CHECK(cfg.max_replicas >= cfg.initial_replicas);
      models_.push_back(std::make_unique<ModelState>(
          cfg,
          BatchCostModel(config.device, cfg.workload,
                         cfg.tier == PriorityTier::kLatencyCritical,
                         config.launch_overhead_us),
          MakeArrivals(cfg.arrivals, cfg.rps), root.Fork(m)));
    }
    BindTelemetry();
  }

  ServingResult Run() {
    for (std::size_t m = 0; m < models_.size(); ++m) {
      for (int i = 0; i < models_[m]->cfg.initial_replicas; ++i) {
        ORION_CHECK_MSG(AddReplica(m, /*immediate=*/true),
                        "initial serving fleet does not fit on the cluster");
      }
      ScheduleArrival(m);
    }
    ArmFaults();
    if (config_.autoscaler.enabled) {
      sim_.ScheduleAfter(config_.autoscaler.eval_period_us, [this] { EvalAutoscaler(); });
    }
    sim_.RunUntil(horizon_);
    return Finalize();
  }

 private:
  struct ReplicaState {
    explicit ReplicaState(const BatchingConfig& batching) : batcher(batching) {}

    int id = -1;
    std::size_t model = 0;
    int gpu = -1;
    enum class State { kProvisioning, kActive, kDraining, kDead } state = State::kProvisioning;
    DynamicBatcher batcher;
    std::vector<Request> in_flight;
    bool busy = false;
    TimeUs busy_until = 0.0;
    TimeUs batch_start = 0.0;
    EventHandle completion;
    EventHandle linger;
    TimeUs active_since = 0.0;
    double busy_in_eval_window_us = 0.0;  // autoscaler utilization signal
  };

  struct GpuState {
    bool alive = true;
    std::size_t used_bytes = 0;
    std::vector<int> replicas;  // ids, all non-dead states
  };

  struct ModelState {
    ModelState(const ModelServiceConfig& config, BatchCostModel cost_model,
               std::unique_ptr<trace::ArrivalProcess> arrival_process, Rng arrival_rng)
        : cfg(config),
          cost(std::move(cost_model)),
          arrivals(std::move(arrival_process)),
          rng(arrival_rng) {}

    ModelServiceConfig cfg;
    BatchCostModel cost;
    std::unique_ptr<trace::ArrivalProcess> arrivals;
    Rng rng;
    // Admitted requests with no active replica to queue at (all replicas
    // provisioning after a failover); drained on the next activation.
    std::deque<Request> limbo;
    std::vector<int> replicas;  // every replica id ever created

    // Service label for metrics and trace tracks: the workload name, with a
    // "#<index>" suffix when two services share a workload.
    std::string label;
    telemetry::TrackId track = -1;  // per-request span track; -1 = tracing off

    // All counters are registry instruments labeled {service=label}, bound
    // in BindTelemetry — the registry is the source of truth the
    // ServingResult is assembled from, so an exported CSV snapshot
    // reproduces the run's printed numbers exactly.

    // Whole-run counters (accounting identity).
    telemetry::Counter* total_offered = nullptr;
    telemetry::Counter* total_completed = nullptr;
    telemetry::Counter* total_shed = nullptr;
    telemetry::Counter* total_dropped = nullptr;

    // Measurement-window counters.
    telemetry::Counter* offered = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* slo_met = nullptr;
    telemetry::Counter* shed = nullptr;
    telemetry::Counter* dropped = nullptr;
    telemetry::Counter* failed_over = nullptr;
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* batched_requests = nullptr;
    telemetry::Histogram* latency = nullptr;   // e2e µs, window only
    telemetry::Histogram* queueing = nullptr;  // arrival → service start

    // Autoscaler evaluation-window counters (reset every eval period, so
    // they stay plain fields rather than monotonic registry counters).
    std::size_t w_arrivals = 0;
    std::size_t w_completions = 0;
    std::size_t w_slo_met = 0;
    std::size_t w_shed = 0;
  };

  // Binds every instrument against the hub registry (a private registry
  // when no hub is configured) and registers the trace tracks.
  void BindTelemetry() {
    hub_ = config_.telemetry;
    metrics_ = hub_ != nullptr ? &hub_->metrics() : &local_metrics_;
    const bool tracing = hub_ != nullptr && hub_->tracing();
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      model.label = workloads::WorkloadName(model.cfg.workload);
      for (std::size_t prev = 0; prev < m; ++prev) {
        if (models_[prev]->label == model.label) {
          model.label += "#" + std::to_string(m);
          break;
        }
      }
      const telemetry::Labels by_service = {{"service", model.label}};
      model.total_offered = metrics_->GetCounter("serving.offered_total", by_service);
      model.total_completed = metrics_->GetCounter("serving.completed_total", by_service);
      model.total_shed = metrics_->GetCounter("serving.shed_total", by_service);
      model.total_dropped = metrics_->GetCounter("serving.dropped_total", by_service);
      model.offered = metrics_->GetCounter("serving.offered", by_service);
      model.completed = metrics_->GetCounter("serving.completed", by_service);
      model.slo_met = metrics_->GetCounter("serving.slo_met", by_service);
      model.shed = metrics_->GetCounter("serving.shed", by_service);
      model.dropped = metrics_->GetCounter("serving.dropped", by_service);
      model.failed_over = metrics_->GetCounter("serving.failed_over", by_service);
      model.batches = metrics_->GetCounter("serving.batches", by_service);
      model.batched_requests = metrics_->GetCounter("serving.batched_requests", by_service);
      model.latency = metrics_->GetHistogram("serving.latency_us", by_service);
      model.queueing = metrics_->GetHistogram("serving.queueing_us", by_service);
      if (tracing) {
        model.track = hub_->spans().Track("service:" + model.label);
      }
    }
    scale_ups_ = metrics_->GetCounter("serving.scale_ups");
    scale_downs_ = metrics_->GetCounter("serving.scale_downs");
    scale_failures_ = metrics_->GetCounter("serving.scale_failures");
    faults_injected_ = metrics_->GetCounter("serving.faults_injected");
    faults_skipped_ = metrics_->GetCounter("serving.faults_skipped");
    replicas_lost_ = metrics_->GetCounter("serving.replicas_lost");
    replacements_ = metrics_->GetCounter("serving.replacements");
    replacement_failures_ = metrics_->GetCounter("serving.replacement_failures");
    replica_seconds_ = metrics_->GetCounter("serving.replica_seconds");
    if (tracing) {
      control_track_ = hub_->spans().Track("serving-control");
      gpu_tracks_.reserve(gpus_.size());
      for (std::size_t g = 0; g < gpus_.size(); ++g) {
        gpu_tracks_.push_back(hub_->spans().Track("gpu" + std::to_string(g)));
      }
    }
  }

  void Mark(const std::string& name, telemetry::Labels args) {
    if (control_track_ >= 0) {
      hub_->spans().Instant(control_track_, name, sim_.now(), std::move(args));
    }
  }

  bool InWindow(TimeUs t) const { return t >= config_.warmup_us && t <= horizon_; }

  // --- Arrivals, admission, routing. ---

  void ScheduleArrival(std::size_t m) {
    ModelState& model = *models_[m];
    const DurationUs dt = model.arrivals->NextInterarrival(model.rng);
    sim_.ScheduleAfter(dt, [this, m] {
      OnArrival(m);
      ScheduleArrival(m);
    });
  }

  void OnArrival(std::size_t m) {
    ModelState& model = *models_[m];
    const TimeUs now = sim_.now();
    Request request;
    request.id = next_request_id_++;
    request.model = static_cast<int>(m);
    request.arrival_us = now;
    request.deadline_us = now + model.cfg.slo_us;
    model.total_offered->Inc();
    ++model.w_arrivals;
    if (InWindow(now)) {
      model.offered->Inc();
    }

    std::vector<ReplicaView> views;
    std::vector<int> ids;
    BuildViews(m, &views, &ids);
    if (views.empty()) {
      HandleNoReplica(m, std::move(request));
      return;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < views.size(); ++i) {
      if (views[i].outstanding_us < views[best].outstanding_us) {
        best = i;
      }
    }
    const DurationUs best_wait = views[best].outstanding_us;
    const int est_batch = EstimatedBatch(views[best].queued);
    const DurationUs service = model.cost.BatchServiceUs(est_batch);
    if (!admission_.Admit(request, model.cfg.tier, best_wait, service)) {
      request.outcome = RequestOutcome::kShed;
      model.total_shed->Inc();
      ++model.w_shed;
      if (InWindow(now)) {
        model.shed->Inc();
      }
      Mark("shed", {{"service", model.label}});
      return;
    }
    EnqueueAt(ids[router_.Pick(m, views)], std::move(request));
  }

  // Batch size the next dispatch will likely use (admission's service-time
  // estimate): the queue ahead plus this request, capped by the batcher.
  int EstimatedBatch(std::size_t queued_ahead) const {
    if (!config_.batching.enabled) {
      return 1;
    }
    return std::min<int>(config_.batching.max_batch_size,
                         static_cast<int>(queued_ahead) + 1);
  }

  void HandleNoReplica(std::size_t m, Request request) {
    ModelState& model = *models_[m];
    if (PendingReplicas(m) > 0) {
      model.limbo.push_back(std::move(request));
      return;
    }
    model.total_dropped->Inc();
    if (InWindow(sim_.now())) {
      model.dropped->Inc();
    }
    Mark("drop", {{"service", model.label}});
  }

  int PendingReplicas(std::size_t m) const {
    int pending = 0;
    for (const int id : models_[m]->replicas) {
      if (replicas_[static_cast<std::size_t>(id)].state == ReplicaState::State::kProvisioning) {
        ++pending;
      }
    }
    return pending;
  }

  // Active replicas of `m`, sorted by id (the order replicas were created).
  void BuildViews(std::size_t m, std::vector<ReplicaView>* views, std::vector<int>* ids) {
    views->clear();
    ids->clear();
    for (const int id : models_[m]->replicas) {
      const ReplicaState& r = replicas_[static_cast<std::size_t>(id)];
      if (r.state != ReplicaState::State::kActive) {
        continue;
      }
      ReplicaView view;
      view.replica_id = id;
      view.queued = r.batcher.size();
      view.in_flight = r.in_flight.size();
      view.outstanding_us = OutstandingUs(r);
      views->push_back(view);
      ids->push_back(id);
    }
  }

  // Predicted time to drain everything ahead of a new arrival at `r`.
  DurationUs OutstandingUs(const ReplicaState& r) const {
    const ModelState& model = *models_[r.model];
    const TimeUs now = sim_.now();
    DurationUs work = r.busy ? std::max(0.0, r.busy_until - now) : 0.0;
    const std::size_t queued = r.batcher.size();
    if (queued > 0) {
      const int batch = std::min<int>(config_.batching.enabled
                                          ? config_.batching.max_batch_size
                                          : 1,
                                      static_cast<int>(queued));
      work += static_cast<double>(queued) * model.cost.PerRequestUs(batch) * Slowdown(r);
    }
    return work;
  }

  // Interference feedback: summed PairInterference with the running
  // co-residents of r's GPU, mapped through the tier's slowdown curve.
  double Slowdown(const ReplicaState& r) const {
    const GpuState& gpu = gpus_[static_cast<std::size_t>(r.gpu)];
    double pressure = 0.0;
    for (const int other_id : gpu.replicas) {
      if (other_id == r.id) {
        continue;
      }
      const ReplicaState& other = replicas_[static_cast<std::size_t>(other_id)];
      if (other.state != ReplicaState::State::kActive &&
          other.state != ReplicaState::State::kDraining) {
        continue;  // provisioning replicas hold memory but run no kernels yet
      }
      pressure += cluster::PairInterference(models_[r.model]->cost.signature(),
                                            models_[other.model]->cost.signature());
    }
    return InterferenceSlowdown(models_[r.model]->cfg.tier, pressure);
  }

  // --- Batching and service. ---

  void EnqueueAt(int replica_id, Request request) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    r.batcher.Enqueue(std::move(request), sim_.now());
    TryDispatch(replica_id);
  }

  void TryDispatch(int replica_id) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    if (r.busy || r.batcher.empty() ||
        (r.state != ReplicaState::State::kActive &&
         r.state != ReplicaState::State::kDraining)) {
      return;
    }
    if (r.batcher.ShouldDispatch(sim_.now())) {
      sim_.Cancel(r.linger);
      StartBatch(replica_id);
      return;
    }
    // Linger for more requests: wake at the oldest request's delay bound.
    sim_.Cancel(r.linger);
    r.linger = sim_.ScheduleAt(r.batcher.LingerDeadline(),
                               [this, replica_id] { TryDispatch(replica_id); });
  }

  void StartBatch(int replica_id) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    ModelState& model = *models_[r.model];
    const TimeUs now = sim_.now();
    r.batcher.TakeBatchInto(&r.in_flight);  // reuses the replica's buffer
    for (Request& request : r.in_flight) {
      request.start_service_us = now;
    }
    const int batch = static_cast<int>(r.in_flight.size());
    const DurationUs service = model.cost.BatchServiceUs(batch) * Slowdown(r);
    r.busy = true;
    r.batch_start = now;
    r.busy_until = now + service;
    r.completion = sim_.ScheduleAfter(service, [this, replica_id] {
      OnBatchComplete(replica_id);
    });
  }

  void OnBatchComplete(int replica_id) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    ModelState& model = *models_[r.model];
    const TimeUs now = sim_.now();
    const bool in_window = InWindow(now);
    const int batch_size = static_cast<int>(r.in_flight.size());
    for (const Request& request : r.in_flight) {
      model.total_completed->Inc();
      ++model.w_completions;
      const bool met = now <= request.deadline_us;
      if (met) {
        ++model.w_slo_met;
      }
      if (in_window) {
        model.completed->Inc();
        if (met) {
          model.slo_met->Inc();
        }
        model.latency->Add(now - request.arrival_us);
        model.queueing->Add(request.start_service_us - request.arrival_us);
      }
      if (model.track >= 0) {
        // Request lifecycle: a "request" slice enclosing nested queue and
        // execute phases, one virtual-thread row per request, plus a flow
        // arrow from the execute phase to the device batch that served it.
        const auto row = static_cast<std::int64_t>(request.id);
        hub_->spans().Complete(model.track, row, "request", request.arrival_us, now,
                               {{"slo_met", met ? "1" : "0"},
                                {"failovers", std::to_string(request.failovers)}},
                               "request");
        hub_->spans().Complete(model.track, row, "queue", request.arrival_us,
                               request.start_service_us, {}, "queue");
        hub_->spans().Complete(model.track, row, "execute", request.start_service_us,
                               now, {}, "execute");
        hub_->spans().FlowStart(model.track, row, request.id, request.start_service_us);
        hub_->spans().FlowEnd(gpu_tracks_[static_cast<std::size_t>(r.gpu)], replica_id,
                              request.id, r.batch_start);
      }
    }
    if (model.track >= 0) {
      hub_->spans().Complete(gpu_tracks_[static_cast<std::size_t>(r.gpu)], replica_id,
                             "batch:" + model.label, r.batch_start, now,
                             {{"batch_size", std::to_string(batch_size)},
                              {"replica", std::to_string(replica_id)}},
                             "batch");
    }
    if (in_window) {
      model.batches->Inc();
      model.batched_requests->Inc(static_cast<double>(batch_size));
    }
    r.busy_in_eval_window_us += now - r.batch_start;
    r.in_flight.clear();
    r.busy = false;
    if (r.state == ReplicaState::State::kDraining && r.batcher.empty()) {
      RetireReplica(replica_id);
      return;
    }
    TryDispatch(replica_id);
  }

  // --- Replica lifecycle and placement. ---

  bool AddReplica(std::size_t m, bool immediate = false) {
    ModelState& model = *models_[m];
    std::vector<cluster::GpuResidents> residents(gpus_.size());
    for (std::size_t g = 0; g < gpus_.size(); ++g) {
      residents[g].alive = gpus_[g].alive;
      residents[g].used_bytes = gpus_[g].used_bytes;
      for (const int id : gpus_[g].replicas) {
        const ReplicaState& other = replicas_[static_cast<std::size_t>(id)];
        residents[g].jobs.push_back(models_[other.model]->cost.signature());
      }
    }
    const auto gpu = cluster::PlacementEngine::BestGpuFor(
        model.cost.signature(), residents, config_.device.memory_bytes,
        config_.max_replicas_per_gpu);
    if (!gpu.has_value()) {
      return false;
    }
    const int id = static_cast<int>(replicas_.size());
    replicas_.push_back(ReplicaState(config_.batching));
    ReplicaState& r = replicas_.back();
    r.id = id;
    r.model = m;
    r.gpu = *gpu;
    gpus_[static_cast<std::size_t>(*gpu)].used_bytes += model.cost.state_bytes();
    gpus_[static_cast<std::size_t>(*gpu)].replicas.push_back(id);
    model.replicas.push_back(id);
    if (immediate) {
      r.state = ReplicaState::State::kActive;
      r.active_since = sim_.now();
    } else {
      r.state = ReplicaState::State::kProvisioning;
      sim_.ScheduleAfter(model.cost.ProvisionUs(), [this, id] { ActivateReplica(id); });
    }
    return true;
  }

  void ActivateReplica(int replica_id) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    if (r.state != ReplicaState::State::kProvisioning) {
      return;  // killed while provisioning
    }
    r.state = ReplicaState::State::kActive;
    r.active_since = sim_.now();
    ModelState& model = *models_[r.model];
    Mark("replica-active", {{"service", model.label},
                            {"replica", std::to_string(replica_id)},
                            {"gpu", std::to_string(r.gpu)}});
    while (!model.limbo.empty()) {
      Request request = std::move(model.limbo.front());
      model.limbo.pop_front();
      std::vector<ReplicaView> views;
      std::vector<int> ids;
      BuildViews(r.model, &views, &ids);
      EnqueueAt(ids[router_.Pick(r.model, views)], std::move(request));
    }
  }

  // Stops routing to the least-loaded active replica; it retires once empty.
  // Returns false when the model has no active replica to remove.
  bool RemoveOneReplica(std::size_t m) {
    int victim = -1;
    std::size_t victim_load = 0;
    for (const int id : models_[m]->replicas) {
      const ReplicaState& r = replicas_[static_cast<std::size_t>(id)];
      if (r.state != ReplicaState::State::kActive) {
        continue;
      }
      const std::size_t load = r.batcher.size() + r.in_flight.size();
      if (victim < 0 || load < victim_load) {
        victim = id;
        victim_load = load;
      }
    }
    if (victim < 0) {
      return false;
    }
    ReplicaState& r = replicas_[static_cast<std::size_t>(victim)];
    r.state = ReplicaState::State::kDraining;
    if (!r.busy && r.batcher.empty()) {
      RetireReplica(victim);
    }
    return true;
  }

  void ReleaseFromGpu(ReplicaState& r) {
    GpuState& gpu = gpus_[static_cast<std::size_t>(r.gpu)];
    gpu.used_bytes -= models_[r.model]->cost.state_bytes();
    gpu.replicas.erase(std::find(gpu.replicas.begin(), gpu.replicas.end(), r.id));
  }

  void AccountReplicaTime(const ReplicaState& r) {
    const TimeUs start = std::max(r.active_since, config_.warmup_us);
    const TimeUs end = std::min(sim_.now(), horizon_);
    if (end > start) {
      replica_seconds_->Inc(UsToSec(end - start));
    }
  }

  void RetireReplica(int replica_id) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    ORION_CHECK(!r.busy && r.batcher.empty());
    sim_.Cancel(r.linger);
    AccountReplicaTime(r);
    ReleaseFromGpu(r);
    r.state = ReplicaState::State::kDead;
  }

  // --- Faults and failover. ---

  void ArmFaults() {
    for (const fault::FaultEvent& event : config_.fault_plan.events) {
      switch (event.kind) {
        case fault::FaultKind::kGpuDown:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyGpuDown(event); });
          break;
        case fault::FaultKind::kClientCrash:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyReplicaCrash(event); });
          break;
        default:
          // Device/link/profile faults act below this abstraction level.
          faults_skipped_->Inc();
          break;
      }
    }
  }

  void ApplyGpuDown(const fault::FaultEvent& event) {
    if (event.gpu < 0 || event.gpu >= static_cast<int>(gpus_.size()) ||
        !gpus_[static_cast<std::size_t>(event.gpu)].alive) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    Mark("gpu-down", {{"gpu", std::to_string(event.gpu)}});
    GpuState& gpu = gpus_[static_cast<std::size_t>(event.gpu)];
    gpu.alive = false;
    const std::vector<int> victims = gpu.replicas;  // KillReplica mutates the list
    for (const int id : victims) {
      KillReplica(id);
    }
  }

  void ApplyReplicaCrash(const fault::FaultEvent& event) {
    if (event.client < 0 || event.client >= static_cast<int>(replicas_.size()) ||
        replicas_[static_cast<std::size_t>(event.client)].state ==
            ReplicaState::State::kDead) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    KillReplica(event.client);
  }

  // Replica death: orphaned requests re-route to surviving replicas of the
  // model (or limbo/drop), and a replacement is provisioned on a surviving
  // GPU. The batch on the device at the instant of death is lost with it —
  // its requests restart from the queue of whichever replica inherits them.
  void KillReplica(int replica_id) {
    ReplicaState& r = replicas_[static_cast<std::size_t>(replica_id)];
    ORION_CHECK(r.state != ReplicaState::State::kDead);
    const std::size_t m = r.model;
    ModelState& model = *models_[m];
    sim_.Cancel(r.completion);
    sim_.Cancel(r.linger);
    std::vector<Request> orphans = std::move(r.in_flight);
    r.in_flight.clear();
    for (Request& request : r.batcher.Drain()) {
      orphans.push_back(std::move(request));
    }
    const bool was_running = r.state == ReplicaState::State::kActive ||
                             r.state == ReplicaState::State::kDraining;
    if (was_running) {
      AccountReplicaTime(r);
    }
    r.busy = false;
    ReleaseFromGpu(r);
    r.state = ReplicaState::State::kDead;
    replicas_lost_->Inc();
    Mark("replica-killed", {{"service", model.label},
                            {"replica", std::to_string(replica_id)},
                            {"gpu", std::to_string(r.gpu)}});

    const bool in_window = InWindow(sim_.now());
    for (Request& request : orphans) {
      ++request.failovers;
      if (in_window) {
        model.failed_over->Inc();
      }
      std::vector<ReplicaView> views;
      std::vector<int> ids;
      BuildViews(m, &views, &ids);
      if (views.empty()) {
        if (PendingReplicas(m) > 0 || (config_.replace_lost_replicas && was_running)) {
          model.limbo.push_back(std::move(request));
        } else {
          model.total_dropped->Inc();
          if (in_window) {
            model.dropped->Inc();
          }
          Mark("drop", {{"service", model.label}});
        }
        continue;
      }
      EnqueueAt(ids[router_.Pick(m, views)], std::move(request));
    }

    if (config_.replace_lost_replicas) {
      if (AddReplica(m)) {
        replacements_->Inc();
      } else {
        replacement_failures_->Inc();
      }
    }
  }

  // --- Autoscaling. ---

  void EvalAutoscaler() {
    const TimeUs now = sim_.now();
    const DurationUs period = config_.autoscaler.eval_period_us;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      ModelWindowSignals signals;
      signals.arrivals = model.w_arrivals;
      signals.completions = model.w_completions;
      signals.slo_met = model.w_slo_met;
      signals.shed = model.w_shed;
      signals.min_replicas = model.cfg.min_replicas;
      signals.max_replicas = model.cfg.max_replicas;
      signals.pending_replicas = PendingReplicas(m);
      double busy = 0.0;
      int active = 0;
      for (const int id : model.replicas) {
        ReplicaState& r = replicas_[static_cast<std::size_t>(id)];
        if (r.state != ReplicaState::State::kActive &&
            r.state != ReplicaState::State::kDraining) {
          continue;
        }
        if (r.busy) {  // account the running batch's elapsed part
          r.busy_in_eval_window_us += now - r.batch_start;
          r.batch_start = now;
        }
        busy += r.busy_in_eval_window_us;
        r.busy_in_eval_window_us = 0.0;
        ++active;
      }
      signals.active_replicas = active;
      signals.utilization = active > 0 ? busy / (period * static_cast<double>(active)) : 0.0;

      switch (Decide(config_.autoscaler, signals)) {
        case ScaleDecision::kUp:
          if (AddReplica(m)) {
            scale_ups_->Inc();
            Mark("scale-up", {{"service", model.label}});
          } else {
            scale_failures_->Inc();
            Mark("scale-failure", {{"service", model.label}});
          }
          break;
        case ScaleDecision::kDown:
          if (RemoveOneReplica(m)) {
            scale_downs_->Inc();
            Mark("scale-down", {{"service", model.label}});
          }
          break;
        case ScaleDecision::kHold:
          break;
      }
      model.w_arrivals = 0;
      model.w_completions = 0;
      model.w_slo_met = 0;
      model.w_shed = 0;
    }
    sim_.ScheduleAfter(period, [this] { EvalAutoscaler(); });
  }

  // --- Results. ---

  ServingResult Finalize() {
    ServingResult result;
    result.window_us = config_.duration_us;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      ModelServingResult out;
      out.name = workloads::WorkloadName(model.cfg.workload);
      out.tier = model.cfg.tier;
      out.offered = static_cast<std::size_t>(model.offered->AsCount());
      out.completed = static_cast<std::size_t>(model.completed->AsCount());
      out.slo_met = static_cast<std::size_t>(model.slo_met->AsCount());
      out.shed = static_cast<std::size_t>(model.shed->AsCount());
      out.dropped = static_cast<std::size_t>(model.dropped->AsCount());
      out.failed_over = static_cast<std::size_t>(model.failed_over->AsCount());
      // Clamped: completions of pre-window arrivals can push the windowed
      // ratio a hair over 1 at light load.
      out.slo_attainment =
          out.offered > 0 ? std::min(1.0, static_cast<double>(out.slo_met) /
                                              static_cast<double>(out.offered))
                          : 1.0;
      out.throughput_rps =
          static_cast<double>(out.completed) / UsToSec(config_.duration_us);
      out.latency = model.latency->window();
      out.queueing = model.queueing->window();
      out.batches = static_cast<std::size_t>(model.batches->AsCount());
      out.mean_batch_size =
          out.batches > 0 ? model.batched_requests->value() /
                                static_cast<double>(out.batches)
                          : 0.0;
      out.total_offered = static_cast<std::size_t>(model.total_offered->AsCount());
      out.total_completed = static_cast<std::size_t>(model.total_completed->AsCount());
      out.total_shed = static_cast<std::size_t>(model.total_shed->AsCount());
      out.total_dropped = static_cast<std::size_t>(model.total_dropped->AsCount());
      std::size_t left = model.limbo.size();
      for (const int id : model.replicas) {
        ReplicaState& r = replicas_[static_cast<std::size_t>(id)];
        left += r.batcher.size() + r.in_flight.size();
        if (r.state == ReplicaState::State::kActive) {
          ++out.final_replicas;
          AccountReplicaTime(r);
        } else if (r.state == ReplicaState::State::kDraining) {
          AccountReplicaTime(r);
        }
      }
      out.left_in_system = left;
      // Export the closing term of the accounting identity so a metrics
      // snapshot alone can verify
      //   offered_total == completed_total + shed_total + dropped_total
      //                    + left_in_system.
      metrics_->GetGauge("serving.left_in_system", {{"service", model.label}})
          ->Set(static_cast<double>(left));
      metrics_->GetGauge("serving.final_replicas", {{"service", model.label}})
          ->Set(static_cast<double>(out.final_replicas));
      ORION_CHECK_MSG(out.total_offered == out.total_completed + out.total_shed +
                                               out.total_dropped + out.left_in_system,
                      "request accounting identity violated for " << out.name);
      result.models.push_back(std::move(out));
    }
    result.scale_ups = static_cast<std::size_t>(scale_ups_->AsCount());
    result.scale_downs = static_cast<std::size_t>(scale_downs_->AsCount());
    result.scale_failures = static_cast<std::size_t>(scale_failures_->AsCount());
    result.faults_injected = static_cast<std::size_t>(faults_injected_->AsCount());
    result.faults_skipped = static_cast<std::size_t>(faults_skipped_->AsCount());
    result.replicas_lost = static_cast<std::size_t>(replicas_lost_->AsCount());
    result.replacements = static_cast<std::size_t>(replacements_->AsCount());
    result.replacement_failures =
        static_cast<std::size_t>(replacement_failures_->AsCount());
    result.replica_seconds = replica_seconds_->value();
    for (const GpuState& gpu : gpus_) {
      if (gpu.alive) {
        ++result.gpus_alive_end;
      }
    }
    metrics_->GetGauge("serving.gpus_alive")
        ->Set(static_cast<double>(result.gpus_alive_end));
    return result;
  }

  ServingConfig config_;
  Simulator sim_;
  Router router_;
  AdmissionController admission_;
  TimeUs horizon_;
  std::vector<GpuState> gpus_;
  std::vector<std::unique_ptr<ModelState>> models_;
  std::vector<ReplicaState> replicas_;
  std::uint64_t next_request_id_ = 0;

  // Telemetry (bound in BindTelemetry; metrics_ falls back to the private
  // registry when no hub is configured, so the instruments are never null).
  telemetry::Hub* hub_ = nullptr;
  telemetry::MetricRegistry local_metrics_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  telemetry::TrackId control_track_ = -1;
  std::vector<telemetry::TrackId> gpu_tracks_;
  telemetry::Counter* scale_ups_ = nullptr;
  telemetry::Counter* scale_downs_ = nullptr;
  telemetry::Counter* scale_failures_ = nullptr;
  telemetry::Counter* faults_injected_ = nullptr;
  telemetry::Counter* faults_skipped_ = nullptr;
  telemetry::Counter* replicas_lost_ = nullptr;
  telemetry::Counter* replacements_ = nullptr;
  telemetry::Counter* replacement_failures_ = nullptr;
  telemetry::Counter* replica_seconds_ = nullptr;  // replica-seconds accrue monotonically
};

}  // namespace

const char* PriorityTierName(PriorityTier tier) {
  switch (tier) {
    case PriorityTier::kLatencyCritical:
      return "latency-critical";
    case PriorityTier::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

std::size_t ServingResult::TotalOffered() const {
  std::size_t total = 0;
  for (const ModelServingResult& model : models) {
    total += model.offered;
  }
  return total;
}

std::size_t ServingResult::TotalCompleted() const {
  std::size_t total = 0;
  for (const ModelServingResult& model : models) {
    total += model.completed;
  }
  return total;
}

std::size_t ServingResult::TotalShed() const {
  std::size_t total = 0;
  for (const ModelServingResult& model : models) {
    total += model.shed;
  }
  return total;
}

double ServingResult::MeanAttainment() const {
  std::size_t offered = 0;
  std::size_t met = 0;
  for (const ModelServingResult& model : models) {
    offered += model.offered;
    met += model.slo_met;
  }
  return offered > 0 ? static_cast<double>(met) / static_cast<double>(offered) : 1.0;
}

ServingResult RunServing(const ServingConfig& config) {
  ServingEngine engine(config);
  return engine.Run();
}

}  // namespace serving
}  // namespace orion
