#include "src/serving/autoscaler.h"

#include "src/common/check.h"

namespace orion {
namespace serving {

const char* ScaleDecisionName(ScaleDecision decision) {
  switch (decision) {
    case ScaleDecision::kHold:
      return "hold";
    case ScaleDecision::kUp:
      return "up";
    case ScaleDecision::kDown:
      return "down";
  }
  return "unknown";
}

double WindowAttainment(const ModelWindowSignals& signals) {
  if (signals.completions == 0) {
    return signals.arrivals == 0 ? 1.0 : 0.0;
  }
  return static_cast<double>(signals.slo_met) / static_cast<double>(signals.completions);
}

ScaleDecision Decide(const AutoscalerConfig& config, const ModelWindowSignals& signals) {
  ORION_CHECK(signals.min_replicas >= 0);
  ORION_CHECK(signals.max_replicas >= signals.min_replicas);
  if (!config.enabled) {
    return ScaleDecision::kHold;
  }
  const int total = signals.active_replicas + signals.pending_replicas;
  const double attainment = WindowAttainment(signals);

  const bool overloaded = signals.shed > 0 || attainment < config.target_attainment ||
                          signals.utilization > config.scale_up_utilization;
  if (overloaded && total < signals.max_replicas && signals.pending_replicas == 0) {
    return ScaleDecision::kUp;
  }

  const bool healthy = signals.shed == 0 && attainment >= config.target_attainment &&
                       signals.utilization < config.scale_down_utilization;
  if (healthy && signals.pending_replicas == 0 && signals.active_replicas > signals.min_replicas) {
    return ScaleDecision::kDown;
  }
  return ScaleDecision::kHold;
}

}  // namespace serving
}  // namespace orion
