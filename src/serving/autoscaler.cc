#include "src/serving/autoscaler.h"

#include "src/common/check.h"

namespace orion {
namespace serving {

const char* ScaleDecisionName(ScaleDecision decision) {
  switch (decision) {
    case ScaleDecision::kHold:
      return "hold";
    case ScaleDecision::kUp:
      return "up";
    case ScaleDecision::kDown:
      return "down";
  }
  return "unknown";
}

double WindowAttainment(const ModelWindowSignals& signals) {
  if (signals.completions == 0) {
    return signals.arrivals == 0 ? 1.0 : 0.0;
  }
  return static_cast<double>(signals.slo_met) / static_cast<double>(signals.completions);
}

const char* ScaleReasonName(ScaleReason reason) {
  switch (reason) {
    case ScaleReason::kNone:
      return "none";
    case ScaleReason::kShedding:
      return "shedding";
    case ScaleReason::kAttainment:
      return "attainment-below-target";
    case ScaleReason::kUtilizationHigh:
      return "utilization-high";
    case ScaleReason::kIdleHealthy:
      return "idle-and-healthy";
  }
  return "unknown";
}

ScaleDecision Decide(const AutoscalerConfig& config, const ModelWindowSignals& signals) {
  ScaleReason reason = ScaleReason::kNone;
  return DecideWithReason(config, signals, &reason);
}

ScaleDecision DecideWithReason(const AutoscalerConfig& config,
                               const ModelWindowSignals& signals, ScaleReason* reason) {
  ORION_CHECK(signals.min_replicas >= 0);
  ORION_CHECK(signals.max_replicas >= signals.min_replicas);
  *reason = ScaleReason::kNone;
  if (!config.enabled) {
    return ScaleDecision::kHold;
  }
  const int total = signals.active_replicas + signals.pending_replicas;
  const double attainment = WindowAttainment(signals);

  const bool overloaded = signals.shed > 0 || attainment < config.target_attainment ||
                          signals.utilization > config.scale_up_utilization;
  if (overloaded && total < signals.max_replicas && signals.pending_replicas == 0) {
    *reason = signals.shed > 0                             ? ScaleReason::kShedding
              : attainment < config.target_attainment      ? ScaleReason::kAttainment
                                                           : ScaleReason::kUtilizationHigh;
    return ScaleDecision::kUp;
  }

  const bool healthy = signals.shed == 0 && attainment >= config.target_attainment &&
                       signals.utilization < config.scale_down_utilization;
  if (healthy && signals.pending_replicas == 0 && signals.active_replicas > signals.min_replicas) {
    *reason = ScaleReason::kIdleHealthy;
    return ScaleDecision::kDown;
  }
  return ScaleDecision::kHold;
}

}  // namespace serving
}  // namespace orion
