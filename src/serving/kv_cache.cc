#include "src/serving/kv_cache.h"

#include "src/common/check.h"

namespace orion {
namespace serving {

KvCacheAllocator::KvCacheAllocator(const KvCacheConfig& config) : config_(config) {
  ORION_CHECK(config.block_tokens >= 1);
  ORION_CHECK(config.bytes_per_token > 0);
  total_blocks_ = config.capacity_bytes / block_bytes();
}

int KvCacheAllocator::BlocksForTokens(int tokens) const {
  ORION_CHECK(tokens >= 0);
  return (tokens + config_.block_tokens - 1) / config_.block_tokens;
}

bool KvCacheAllocator::TryReserve(std::uint64_t seq, int tokens) {
  ORION_CHECK(tokens >= 1);
  const auto it = seqs_.find(seq);
  const int current = it != seqs_.end() ? it->second : 0;
  ORION_CHECK_MSG(tokens >= current, "KV reservations never shrink in place");
  const int needed =
      BlocksForTokens(tokens) - BlocksForTokens(current);
  if (static_cast<std::size_t>(needed) > free_blocks()) {
    return false;  // no partial effect
  }
  used_blocks_ += static_cast<std::size_t>(needed);
  live_tokens_ += static_cast<std::size_t>(tokens - current);
  if (it != seqs_.end()) {
    it->second = tokens;
  } else {
    seqs_.emplace(seq, tokens);
  }
  CheckIdentity();
  return true;
}

void KvCacheAllocator::Free(std::uint64_t seq) {
  const auto it = seqs_.find(seq);
  ORION_CHECK_MSG(it != seqs_.end(), "freeing a sequence with no KV reservation");
  used_blocks_ -= static_cast<std::size_t>(BlocksForTokens(it->second));
  live_tokens_ -= static_cast<std::size_t>(it->second);
  seqs_.erase(it);
  CheckIdentity();
}

int KvCacheAllocator::SequenceTokens(std::uint64_t seq) const {
  const auto it = seqs_.find(seq);
  return it != seqs_.end() ? it->second : 0;
}

void KvCacheAllocator::CheckIdentity() const {
  std::size_t blocks = 0;
  std::size_t tokens = 0;
  for (const auto& [seq, reserved] : seqs_) {
    (void)seq;
    blocks += static_cast<std::size_t>(BlocksForTokens(reserved));
    tokens += static_cast<std::size_t>(reserved);
  }
  ORION_CHECK_MSG(blocks == used_blocks_ && tokens == live_tokens_,
                  "KV-cache identity violated: allocated blocks do not match "
                  "live sequence tokens");
  ORION_CHECK_MSG(used_blocks_ <= total_blocks_,
                  "KV-cache allocation exceeds its device-memory budget");
}

}  // namespace serving
}  // namespace orion
