#include "src/serving/batch_cost.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace serving {

namespace {

// Process start + CUDA context creation before the weights stream in.
constexpr DurationUs kReplicaStartFixedUs = 50e3;  // 50 ms

}  // namespace

BatchCostModel::BatchCostModel(const gpusim::DeviceSpec& device,
                               const workloads::WorkloadSpec& workload, bool high_priority,
                               DurationUs launch_overhead_us)
    : device_(device),
      workload_(workload),
      launch_overhead_us_(launch_overhead_us),
      signature_(cluster::MakeSignature(device, workload, high_priority)) {
  ORION_CHECK_MSG(workload.task == workloads::TaskType::kInference,
                  "serving replicas run inference workloads");
  ORION_CHECK(workload.batch_size >= 1);
}

DurationUs BatchCostModel::BatchServiceUs(int batch) const {
  ORION_CHECK(batch >= 1);
  const auto index = static_cast<std::size_t>(batch);
  if (index < cache_.size() && cache_[index] > 0.0) {
    return cache_[index];
  }
  workloads::WorkloadSpec batched = workload_;
  batched.batch_size = workload_.batch_size * batch;
  const auto kernels = workloads::BuildKernels(device_, batched);
  DurationUs total = 0.0;
  for (const auto& kernel : kernels) {
    total += kernel.duration_us;
  }
  total += launch_overhead_us_ * static_cast<double>(kernels.size());
  if (index >= cache_.size()) {
    cache_.resize(index + 1, 0.0);
  }
  cache_[index] = total;
  return total;
}

DurationUs BatchCostModel::PerRequestUs(int batch) const {
  return BatchServiceUs(batch) / static_cast<double>(std::max(1, batch));
}

DurationUs BatchCostModel::ProvisionUs() const {
  const double bytes = static_cast<double>(state_bytes());
  const double pcie_bytes_per_us = device_.pcie_gbps * 1e9 / 1e6;
  return kReplicaStartFixedUs + bytes / pcie_bytes_per_us + device_.pcie_latency_us;
}

double InterferenceSlowdown(PriorityTier tier, double pressure) {
  ORION_CHECK(pressure >= 0.0);
  // Calibrated against the collocation benches: Orion keeps hp p99 within
  // ~15% of ideal for typical pairs (pressure ~1), while a be job collocated
  // against an hp job keeps roughly 70-85% of its dedicated throughput.
  const double alpha = tier == PriorityTier::kLatencyCritical ? 0.10 : 0.30;
  return 1.0 + alpha * pressure;
}

}  // namespace serving
}  // namespace orion
