// Batch service-time model for the serving tier.
//
// The serving simulator does not replay kernels — a replica serves a batch
// as one opaque busy interval. The interval's length comes from the same
// analytic roofline the kernel-level simulator uses: a batch of k requests
// is the workload's kernel sequence at batch size k * per_request_batch,
// summed, plus the host launch overhead per kernel. Because the roofline
// charges small kernels for the SMs they cannot fill, batching is naturally
// sub-linear: cost(k) < k * cost(1), which is exactly the throughput/latency
// trade the dynamic batcher navigates.
//
// The model also exposes the job signature (cluster::JobSignature) the
// placement engine and the interference-aware router consume, and the
// replica provisioning time (weights over PCIe plus process start).
#ifndef SRC_SERVING_BATCH_COST_H_
#define SRC_SERVING_BATCH_COST_H_

#include <vector>

#include "src/cluster/placement.h"
#include "src/gpusim/device_spec.h"
#include "src/serving/request.h"
#include "src/workloads/models.h"

namespace orion {
namespace serving {

class BatchCostModel {
 public:
  // `workload` describes one request (its batch_size is the per-request
  // batch); `launch_overhead_us` is the host cost per submitted kernel.
  BatchCostModel(const gpusim::DeviceSpec& device, const workloads::WorkloadSpec& workload,
                 bool high_priority, DurationUs launch_overhead_us);

  // Device-busy time to serve a batch of `batch` requests. Cached per batch
  // size; deterministic.
  DurationUs BatchServiceUs(int batch) const;

  // Amortised per-request cost when serving at batch size `batch` — the
  // router's and admission controller's unit of outstanding work.
  DurationUs PerRequestUs(int batch) const;

  // Offline profile summary for placement and interference prediction.
  const cluster::JobSignature& signature() const { return signature_; }

  // GPU memory one replica pins (weights + activations).
  std::size_t state_bytes() const { return signature_.state_bytes; }

  // Replaces the workload-derived state estimate. LLM services size their
  // replicas by the model's weights (workloads::LlmWeightBytes): the
  // workload heuristic bakes in a KV-cache guess that the serving engine now
  // accounts explicitly per replica, and double-counting it would make a
  // V100 reject every placement. Placement, provisioning and the GPU memory
  // shard all read the overridden value.
  void OverrideStateBytes(std::size_t bytes) { signature_.state_bytes = bytes; }

  // Cold-start time of a new replica: process launch plus streaming the
  // model state over PCIe.
  DurationUs ProvisionUs() const;

 private:
  gpusim::DeviceSpec device_;
  workloads::WorkloadSpec workload_;
  DurationUs launch_overhead_us_;
  cluster::JobSignature signature_;
  mutable std::vector<DurationUs> cache_;  // index = batch size, 0 unused
};

// Interference feedback: by how much a replica's service slows down given
// the summed PairInterference `pressure` with its GPU co-residents. The hp
// stream is protected by the underlying Orion scheduler (it only pays the
// residual §6.2-style overhead); the be stream yields to hp kernels and
// absorbs most of the contention.
double InterferenceSlowdown(PriorityTier tier, double pressure);

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_BATCH_COST_H_
