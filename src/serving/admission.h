// SLO-aware admission control: early rejection of doomed requests.
//
// A request that will miss its deadline anyway is worse than a rejected one:
// it burns device time and pushes every request behind it past *its*
// deadline too (the queueing cascade that melts p99 at saturation). The
// controller predicts a request's completion time as the best candidate
// replica's outstanding-work drain time plus the request's own service cost,
// and sheds the request at arrival when that prediction exceeds the
// deadline.
//
// Priority tiers map to Orion's streams: best-effort services are shed more
// eagerly (configurable slack < 1) so latency-critical traffic keeps its
// headroom during overload — the serving-tier analogue of the scheduler
// prioritising the hp stream.
#ifndef SRC_SERVING_ADMISSION_H_
#define SRC_SERVING_ADMISSION_H_

#include "src/common/time_types.h"
#include "src/serving/request.h"

namespace orion {
namespace serving {

struct AdmissionConfig {
  bool enabled = true;
  // Shed when predicted completion > arrival + slack * slo. 1.0 sheds
  // exactly at the predicted deadline miss; lower values shed earlier.
  double lc_slack = 1.0;   // latency-critical services
  double be_slack = 0.7;   // best-effort services yield headroom first
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  // `predicted_wait_us` is the best replica's predicted drain time;
  // `service_us` the request's own (batch-amortised) service cost. Returns
  // true to admit.
  bool Admit(const Request& request, PriorityTier tier, DurationUs predicted_wait_us,
             DurationUs service_us) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
};

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_ADMISSION_H_
