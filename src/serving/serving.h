// Online serving front-end over the shared-GPU cluster (DESIGN.md §9).
//
// The kernel-level simulator answers "what happens inside one GPU"; this
// subsystem answers the question one level up: given a cluster of
// Orion-managed GPUs and open-loop request streams for several models, how
// do routing, dynamic batching, SLO-aware admission, autoscaling and
// failover shape end-to-end latency and SLO attainment?
//
// The model is a discrete-event simulation at replica granularity:
//   * each model service owns an arrival process (trace::ArrivalProcess) and
//     a latency SLO, and maps to an Orion stream class via its PriorityTier;
//   * replicas are placed on GPUs by cluster::PlacementEngine::BestGpuFor
//     (least added PairInterference, one latency-critical replica per GPU,
//     memory- and slot-capacity constrained);
//   * a replica serves one batch at a time; the batch's device-busy time
//     comes from the roofline cost model (batch_cost.h) scaled by the
//     interference slowdown its GPU co-residents induce;
//   * the router, admission controller, batcher and autoscaler are the
//     pluggable policy components (router.h, admission.h, batcher.h,
//     autoscaler.h);
//   * fault::FaultPlan events drive failover: kGpuDown kills a GPU and every
//     replica on it, kClientCrash kills one replica process. Queued and
//     in-flight requests of dead replicas re-route to survivors and each
//     lost replica triggers a re-placement on the surviving GPUs.
//
// Everything is seeded and event-ordered, so same-config same-seed runs are
// bit-identical (determinism_test).
#ifndef SRC_SERVING_SERVING_H_
#define SRC_SERVING_SERVING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/fault/fault_plan.h"
#include "src/gpusim/device_spec.h"
#include "src/telemetry/telemetry.h"
#include "src/serving/admission.h"
#include "src/serving/autoscaler.h"
#include "src/serving/batcher.h"
#include "src/serving/llm_cost.h"
#include "src/serving/request.h"
#include "src/serving/router.h"
#include "src/trace/diurnal.h"
#include "src/workloads/models.h"

namespace orion {
namespace serving {

// Open-loop arrival shapes for a service's request stream. (Closed-loop
// arrivals are a client-side notion and make no sense for a front-end.)
// kDiurnal is the non-stationary shape for multi-hour datacenter runs: a
// sinusoidal daily wave with MMPP bursts (trace::DiurnalArrivals),
// parameterized by ModelServiceConfig::diurnal.
enum class ArrivalKind : std::uint8_t { kUniform, kPoisson, kApollo, kDiurnal };

struct ModelServiceConfig {
  workloads::WorkloadSpec workload;  // per-request work; task must be inference
  PriorityTier tier = PriorityTier::kLatencyCritical;
  DurationUs slo_us = MsToUs(50.0);
  // Autoregressive LLM serving (llm.enabled): requests become sequences with
  // a prefill pass and per-token decode steps, batching turns iteration-level
  // (llm.continuous), KV-cache memory is accounted per replica, and slo_us is
  // superseded by the per-token TTFT/TPOT SLOs in `llm`. The workload must be
  // kLlmDecode (its signature still drives placement and interference).
  LlmServiceConfig llm;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double rps = 50.0;
  // kDiurnal parameters (shape, bursts). When diurnal.mean_rps <= 0 the
  // service's `rps` above is used as the long-run mean rate.
  trace::DiurnalConfig diurnal;
  int initial_replicas = 1;
  int min_replicas = 1;
  int max_replicas = 4;
};

struct ServingConfig {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  int num_gpus = 4;
  int max_replicas_per_gpu = 2;
  DurationUs launch_overhead_us = 6.0;  // host cost per submitted kernel

  std::vector<ModelServiceConfig> models;
  RoutePolicy policy = RoutePolicy::kLeastOutstanding;
  BatchingConfig batching;
  AdmissionConfig admission;
  AutoscalerConfig autoscaler;

  // Replica deaths (kGpuDown / kClientCrash, where `client` is the replica
  // id) drive failover; other fault kinds are counted as skipped.
  fault::FaultPlan fault_plan;
  // Provision a replacement replica on a surviving GPU for every replica
  // lost to a fault (independent of the autoscaler).
  bool replace_lost_replicas = true;

  DurationUs warmup_us = SecToUs(1.0);
  DurationUs duration_us = SecToUs(20.0);  // measurement window after warmup
  std::uint64_t seed = 42;

  // Optional telemetry sink (src/telemetry). When set, every counter the
  // engine keeps lives in the hub's metric registry as "serving.*" metrics
  // labeled by service (the ServingResult is assembled FROM the registry, so
  // an exported CSV reproduces the printed numbers exactly), and with
  // tracing enabled each request becomes nested request/queue/execute slices
  // on its service's track, each batch a slice on its GPU's track (flow
  // arrows link a request to the batch that served it), and shed/drop/
  // failover/scaling decisions become instant markers on a control track.
  telemetry::Hub* telemetry = nullptr;
};

// Per-service results. Window counters cover the measurement window only;
// the total_* counters cover the whole run and satisfy
//   total_offered == total_completed + total_shed + total_dropped + left_in_system.
struct ModelServingResult {
  std::string name;
  PriorityTier tier = PriorityTier::kLatencyCritical;

  std::size_t offered = 0;      // arrivals in the window
  std::size_t completed = 0;    // completions in the window
  std::size_t slo_met = 0;      // completions in the window within deadline
  std::size_t shed = 0;         // admission rejections in the window
  std::size_t dropped = 0;      // lost in the window (no surviving replica)
  std::size_t failed_over = 0;  // re-routes after replica death in the window
  double slo_attainment = 0.0;  // slo_met / offered
  double throughput_rps = 0.0;
  LatencyRecorder latency;      // e2e µs, window only
  LatencyRecorder queueing;     // arrival → service start, window only
  std::size_t batches = 0;              // batches served in the window
  double mean_batch_size = 0.0;
  int final_replicas = 0;       // active at the horizon

  // LLM services only (zero otherwise). slo_met above then counts
  // completions whose TTFT **and** TPOT SLOs both held.
  std::size_t tokens = 0;        // decode tokens produced in the window
  std::size_t prefills = 0;      // sequences prefilled in the window
  std::size_t decode_steps = 0;  // continuous-batching iterations in the window
  std::size_t kv_evictions = 0;  // preempt-with-recompute events in the window
  LatencyRecorder ttft;          // arrival → first token, µs, window only
  LatencyRecorder tpot;          // mean inter-token µs after the first, window only

  std::size_t total_offered = 0;
  std::size_t total_completed = 0;
  std::size_t total_shed = 0;
  std::size_t total_dropped = 0;
  std::size_t left_in_system = 0;  // queued or in flight at the horizon
};

struct ServingResult {
  std::vector<ModelServingResult> models;
  DurationUs window_us = 0.0;

  // Autoscaler activity over the whole run.
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t scale_failures = 0;  // wanted a replica, no GPU could host it

  // Failover accounting.
  std::size_t faults_injected = 0;
  std::size_t faults_skipped = 0;
  std::size_t replicas_lost = 0;
  std::size_t replacements = 0;          // re-placements after replica death
  std::size_t replacement_failures = 0;  // no surviving GPU could host one
  std::size_t gpus_alive_end = 0;

  // Active-replica time integrated over the window, in replica-seconds: the
  // fleet cost the autoscaler is trying to minimise.
  double replica_seconds = 0.0;

  std::size_t TotalOffered() const;
  std::size_t TotalCompleted() const;
  std::size_t TotalShed() const;
  double MeanAttainment() const;  // offered-weighted across services
};

// Runs the single-node serving simulation. Since the datacenter subsystem
// landed this is the N=1 special case of datacenter::RunCluster (defined in
// src/datacenter/cluster_engine.cc; callers must link orion_datacenter) and
// reproduces the pre-split engine's results exactly.
ServingResult RunServing(const ServingConfig& config);

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_SERVING_H_
