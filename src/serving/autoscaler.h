// Autoscaler: per-model replica-count control from windowed load signals.
//
// Every evaluation period the engine hands the autoscaler one window's worth
// of per-model signals — arrivals, completions, SLO attainment, shed count,
// and mean replica busy fraction — and gets back a hold/up/down decision.
// Scale-ups go through the placement engine (serving.cc picks the GPU with
// the least added interference); scale-downs drain the least-loaded replica
// before releasing its GPU memory. The decision logic is pure so tests can
// table-drive it.
//
// Signals are deliberately redundant: shedding or poor attainment catches
// overload *after* it hurts, high busy fraction catches it *before* (the
// queue is still absorbing the excess), and both must look healthy before a
// replica is surrendered.
#ifndef SRC_SERVING_AUTOSCALER_H_
#define SRC_SERVING_AUTOSCALER_H_

#include <cstddef>

#include "src/common/time_types.h"

namespace orion {
namespace serving {

struct AutoscalerConfig {
  bool enabled = false;
  DurationUs eval_period_us = SecToUs(0.5);
  double target_attainment = 0.95;     // scale up when the window dips below
  double scale_up_utilization = 0.85;  // mean replica busy fraction
  double scale_down_utilization = 0.35;
};

// One model service's signals over the last evaluation window.
struct ModelWindowSignals {
  std::size_t arrivals = 0;
  std::size_t completions = 0;
  std::size_t slo_met = 0;
  std::size_t shed = 0;
  double utilization = 0.0;  // mean busy fraction across active replicas
  int active_replicas = 0;
  int pending_replicas = 0;  // still provisioning (count against max, and
                             // block further scale-ups until they land)
  int min_replicas = 1;
  int max_replicas = 1;
};

enum class ScaleDecision { kHold, kUp, kDown };

const char* ScaleDecisionName(ScaleDecision decision);

// Which signal drove a decision — exported as the `reason` attribute on the
// serving control track's scale-up/-down instants so a trace answers not
// just *that* the fleet scaled but *why*.
enum class ScaleReason {
  kNone,             // hold
  kShedding,         // requests were shed in the window
  kAttainment,       // window attainment below target
  kUtilizationHigh,  // mean busy fraction above the scale-up bound
  kIdleHealthy,      // healthy and idle enough to surrender a replica
};

const char* ScaleReasonName(ScaleReason reason);

// SLO attainment of the window: slo_met / completions. A window with
// arrivals but no completions is treated as attainment 0 (the service is
// drowning); an idle window as attainment 1.
double WindowAttainment(const ModelWindowSignals& signals);

ScaleDecision Decide(const AutoscalerConfig& config, const ModelWindowSignals& signals);

// As Decide, and reports the dominant signal behind the decision (the first
// overload trigger in shed → attainment → utilization order; kIdleHealthy
// for scale-downs, kNone for holds).
ScaleDecision DecideWithReason(const AutoscalerConfig& config,
                               const ModelWindowSignals& signals, ScaleReason* reason);

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_AUTOSCALER_H_
