#include "src/serving/batcher.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace serving {

const char* DispatchReasonName(DispatchReason reason) {
  switch (reason) {
    case DispatchReason::kBatchingOff:
      return "batching-off";
    case DispatchReason::kFullBatch:
      return "full-batch";
    case DispatchReason::kLingerExpired:
      return "linger-expired";
    case DispatchReason::kDrain:
      return "drain";
    case DispatchReason::kContinuous:
      return "continuous";
  }
  return "unknown";
}

DynamicBatcher::DynamicBatcher(const BatchingConfig& config) : config_(config) {
  ORION_CHECK(config.max_batch_size >= 1);
  ORION_CHECK(config.max_queue_delay_us >= 0.0);
}

void DynamicBatcher::Enqueue(Request request, TimeUs now) {
  request.enqueue_us = now;
  if (config_.edf) {
    // Keep the queue in (deadline, id) order. Insertion from the back: the
    // common case (deadlines arrive roughly sorted) is O(1).
    auto pos = queue_.end();
    while (pos != queue_.begin()) {
      const Request& prev = *(pos - 1);
      if (prev.deadline_us < request.deadline_us ||
          (prev.deadline_us == request.deadline_us && prev.id < request.id)) {
        break;
      }
      --pos;
    }
    queue_.insert(pos, request);
    return;
  }
  queue_.push_back(request);
}

bool DynamicBatcher::ShouldDispatch(TimeUs now) const {
  if (queue_.empty()) {
    return false;
  }
  if (!config_.enabled) {
    return true;
  }
  if (static_cast<int>(queue_.size()) >= config_.max_batch_size) {
    return true;
  }
  return now >= LingerDeadline();
}

DispatchReason DynamicBatcher::WhyDispatch(TimeUs now) const {
  if (!config_.enabled) {
    return DispatchReason::kBatchingOff;
  }
  if (static_cast<int>(queue_.size()) >= config_.max_batch_size) {
    return DispatchReason::kFullBatch;
  }
  (void)now;
  return DispatchReason::kLingerExpired;
}

TimeUs DynamicBatcher::LingerDeadline() const {
  ORION_CHECK(!queue_.empty());
  if (!config_.edf) {
    return queue_.front().enqueue_us + config_.max_queue_delay_us;
  }
  // Deadline order is not enqueue order: scan for the oldest enqueue. EDF
  // queues are short (bounded by a few batches), so O(n) here is fine.
  TimeUs oldest = queue_.front().enqueue_us;
  for (const Request& request : queue_) {
    oldest = std::min(oldest, request.enqueue_us);
  }
  return oldest + config_.max_queue_delay_us;
}

std::vector<Request> DynamicBatcher::TakeBatch() {
  std::vector<Request> batch;
  TakeBatchInto(&batch);
  return batch;
}

void DynamicBatcher::TakeBatchInto(std::vector<Request>* out) {
  ORION_CHECK(!queue_.empty());
  const int take = config_.enabled ? config_.max_batch_size : 1;
  out->clear();  // keeps capacity: a replica's reused buffer stops allocating
  out->reserve(std::min<std::size_t>(static_cast<std::size_t>(take), queue_.size()));
  while (!queue_.empty() && static_cast<int>(out->size()) < take) {
    out->push_back(queue_.front());
    queue_.pop_front();
  }
}

std::vector<Request> DynamicBatcher::Drain() {
  std::vector<Request> all(queue_.begin(), queue_.end());
  queue_.clear();
  return all;
}

const Request& DynamicBatcher::Front() const {
  ORION_CHECK(!queue_.empty());
  return queue_.front();
}

Request DynamicBatcher::PopFront() {
  ORION_CHECK(!queue_.empty());
  Request request = std::move(queue_.front());
  queue_.pop_front();
  return request;
}

void DynamicBatcher::Requeue(Request request) {
  if (config_.edf) {
    // Same (deadline, id) order as Enqueue, but scanning from the FRONT:
    // a requeued sequence's deadline is old, so its slot is near the head.
    auto pos = queue_.begin();
    while (pos != queue_.end()) {
      if (pos->deadline_us > request.deadline_us ||
          (pos->deadline_us == request.deadline_us && pos->id > request.id)) {
        break;
      }
      ++pos;
    }
    queue_.insert(pos, std::move(request));
    return;
  }
  queue_.push_front(std::move(request));
}

}  // namespace serving
}  // namespace orion
