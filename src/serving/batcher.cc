#include "src/serving/batcher.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace serving {

DynamicBatcher::DynamicBatcher(const BatchingConfig& config) : config_(config) {
  ORION_CHECK(config.max_batch_size >= 1);
  ORION_CHECK(config.max_queue_delay_us >= 0.0);
}

void DynamicBatcher::Enqueue(Request request, TimeUs now) {
  request.enqueue_us = now;
  queue_.push_back(request);
}

bool DynamicBatcher::ShouldDispatch(TimeUs now) const {
  if (queue_.empty()) {
    return false;
  }
  if (!config_.enabled) {
    return true;
  }
  if (static_cast<int>(queue_.size()) >= config_.max_batch_size) {
    return true;
  }
  return now >= LingerDeadline();
}

TimeUs DynamicBatcher::LingerDeadline() const {
  ORION_CHECK(!queue_.empty());
  return queue_.front().enqueue_us + config_.max_queue_delay_us;
}

std::vector<Request> DynamicBatcher::TakeBatch() {
  std::vector<Request> batch;
  TakeBatchInto(&batch);
  return batch;
}

void DynamicBatcher::TakeBatchInto(std::vector<Request>* out) {
  ORION_CHECK(!queue_.empty());
  const int take = config_.enabled ? config_.max_batch_size : 1;
  out->clear();  // keeps capacity: a replica's reused buffer stops allocating
  out->reserve(std::min<std::size_t>(static_cast<std::size_t>(take), queue_.size()));
  while (!queue_.empty() && static_cast<int>(out->size()) < take) {
    out->push_back(queue_.front());
    queue_.pop_front();
  }
}

std::vector<Request> DynamicBatcher::Drain() {
  std::vector<Request> all(queue_.begin(), queue_.end());
  queue_.clear();
  return all;
}

}  // namespace serving
}  // namespace orion
