// Online serving request model.
//
// The serving front-end (serving.h) sits one level above the per-GPU Orion
// scheduler: its unit of work is a whole inference request, not a kernel.
// Each request belongs to one model service, carries the arrival timestamp
// and the latency deadline derived from the service's SLO, and ends in
// exactly one terminal outcome. Priority tiers map onto Orion's two stream
// classes: latency-critical services run in the hp stream of their GPU
// (small interference penalty, one per GPU), best-effort services in the be
// stream (they harvest leftover capacity and absorb most of the contention).
#ifndef SRC_SERVING_REQUEST_H_
#define SRC_SERVING_REQUEST_H_

#include <cstdint>

#include "src/common/time_types.h"
#include "src/telemetry/attribution/ledger.h"

namespace orion {
namespace serving {

// Maps to the Orion stream the replica's kernels run in (§5.1.2).
enum class PriorityTier : std::uint8_t {
  kLatencyCritical,  // hp stream: protected, one such replica per GPU
  kBestEffort,       // be stream: harvests idle capacity, absorbs contention
};

const char* PriorityTierName(PriorityTier tier);

// Terminal state of a request. Every admitted or shed request ends in
// exactly one of these; the accounting identity
//   offered == completed + shed + dropped + left_in_system
// is asserted by the engine at the end of every run.
enum class RequestOutcome : std::uint8_t {
  kPending,    // still queued or in flight
  kCompleted,  // served (SLO met or violated — recorded separately)
  kShed,       // rejected at admission (predicted deadline miss)
  kDropped,    // lost: no surviving or pending replica could take it
};

// Why a request landed on its replica; recorded as the `route_reason`
// attribute on request spans so a trace distinguishes a first-choice pick
// from a failover rehome or a limbo drain.
enum class RouteReason : std::uint8_t {
  kOnlyCandidate,      // a single active replica — no choice to make
  kRoundRobin,         // round-robin cursor pick
  kLeastOutstanding,   // fewest queued + in-flight
  kInterferenceAware,  // least slowdown-scaled drain time
  kFailoverRehome,     // re-routed after its replica or node died
  kLimboDrain,         // parked in limbo, drained when a replica activated
};

const char* RouteReasonName(RouteReason reason);

struct Request {
  std::uint64_t id = 0;
  int model = -1;              // index into ServingConfig::models
  int node = -1;               // datacenter node serving it (-1: single-node)
  TimeUs arrival_us = 0.0;
  // Arrival + the service's SLO. For LLM services this is the TTFT deadline
  // (arrival + ttft_slo_us): EDF queues then order sequences by the per-token
  // deadline that admission also gates on.
  TimeUs deadline_us = 0.0;
  TimeUs enqueue_us = 0.0;     // last time it entered a replica queue
  TimeUs start_service_us = 0.0;
  int failovers = 0;           // times re-routed after a replica death
  RouteReason route_reason = RouteReason::kOnlyCandidate;
  RequestOutcome outcome = RequestOutcome::kPending;

  // LLM sequence state (services with ModelServiceConfig::llm.enabled; zero
  // otherwise). A sequence's live KV context is prompt_tokens + generated.
  int prompt_tokens = 0;       // prompt length (prefill input)
  int target_tokens = 0;       // decode tokens this request wants
  int generated = 0;           // decode tokens produced so far
  int evictions = 0;           // KV-pressure preemptions (recompute on rejoin)
  TimeUs first_token_us = -1.0;  // TTFT landmark; < 0 until the first token

  // Per-request latency attribution (DESIGN.md §15). Inert unless the run's
  // telemetry hub has attribution enabled; the engines drive its phase
  // transitions and finalize it at completion.
  attribution::LatencyLedger ledger;
};

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_REQUEST_H_
