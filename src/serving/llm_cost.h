// LLM serving configuration and per-phase cost model (DESIGN.md §13).
//
// An LLM service replaces the fixed-cost request of the base serving engine
// with an autoregressive sequence: a prefill pass over the prompt produces
// the first token (TTFT), then one decode step per further token (TPOT).
// The costs come from the same roofline builder as everything else
// (workloads::BuildLlmPrefillKernels / BuildLlmDecodeStepKernels): prefill
// is compute-bound, decode memory-bound — the phase split Orion's scheduler
// keys on (§7) and Orca/vLLM exploit.
//
// SLOs are per-token: TTFT (arrival → first token) and TPOT (mean inter-
// token time after the first). Admission, routing, autoscaling and
// ServingResult all consume these instead of the per-request deadline.
#ifndef SRC_SERVING_LLM_COST_H_
#define SRC_SERVING_LLM_COST_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time_types.h"
#include "src/gpusim/device_spec.h"
#include "src/serving/request.h"
#include "src/workloads/models.h"

namespace orion {
namespace serving {

// Per-service LLM parameters; ModelServiceConfig::llm. With enabled unset
// the service keeps the classic fixed-cost request semantics.
struct LlmServiceConfig {
  bool enabled = false;
  // Iteration-level (Orca-style) batching: finished sequences leave and
  // queued sequences join between decode steps. With continuous unset the
  // service runs request-level batching — every sequence in a batch decodes
  // to the longest target before anything completes (the baseline
  // ext_llm_serving compares against).
  bool continuous = true;

  workloads::LlmModelConfig model;
  int prompt_tokens = 128;      // prompt length of every request
  int min_decode_tokens = 8;    // per-request decode target, sampled
  int max_decode_tokens = 64;   //   uniformly in [min, max]
  int kv_block_tokens = 16;     // KV-cache allocation granularity

  // KV-cache budget per replica. 0 = whatever device memory remains free on
  // the replica's GPU at placement time; a positive value caps it (the knob
  // the KV-pressure experiments turn down to force eviction).
  std::size_t kv_capacity_bytes = 0;

  // Per-token SLOs. A completion meets its SLO iff TTFT and TPOT both hold.
  DurationUs ttft_slo_us = MsToUs(200.0);
  DurationUs tpot_slo_us = MsToUs(20.0);
};

// Prefill/total decomposition of a request-level batch (the baseline path):
// every sequence's first token lands at prefill_us, everything completes at
// total_us.
struct LlmBatchBreakdown {
  DurationUs prefill_us = 0.0;
  DurationUs total_us = 0.0;
};

// Deterministic, cached per-phase service times. Contexts are bucketed up to
// the KV block size so the cache stays small while costs still grow with
// cache length (longer contexts stream more KV bytes per step).
class LlmCostModel {
 public:
  LlmCostModel(const gpusim::DeviceSpec& device, const LlmServiceConfig& service,
               DurationUs launch_overhead_us);

  // One sequence's prefill pass over `context_tokens` prompt (+ recomputed)
  // tokens, producing its first token.
  DurationUs PrefillUs(int context_tokens) const;

  // One decode step for `batch` sequences at mean context `context_tokens`.
  DurationUs DecodeStepUs(int batch, int context_tokens) const;

  // Step cost at a typical operating point (`batch` sequences halfway
  // through their generation): the router's and admission controller's unit
  // of outstanding work.
  DurationUs TypicalStepUs(int batch) const;

  // Service time of a request-level batch: all prefills up front, then every
  // sequence decodes until the LONGEST target finishes (stragglers pad the
  // batch — the head-of-line cost continuous batching removes).
  LlmBatchBreakdown RequestLevelBatchUs(const std::vector<Request>& batch) const;

  std::size_t kv_bytes_per_token() const { return kv_bytes_per_token_; }
  const LlmServiceConfig& service() const { return service_; }

 private:
  DurationUs KernelsUs(const std::vector<gpusim::KernelDesc>& kernels) const;
  int ContextBucket(int context_tokens) const;

  gpusim::DeviceSpec device_;
  LlmServiceConfig service_;
  DurationUs launch_overhead_us_;
  std::size_t kv_bytes_per_token_;
  mutable std::map<int, DurationUs> prefill_cache_;            // by context bucket
  mutable std::map<std::uint64_t, DurationUs> step_cache_;     // by (batch, bucket)
};

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_LLM_COST_H_
