#include "src/serving/router.h"

#include "src/common/check.h"

namespace orion {
namespace serving {

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastOutstanding:
      return "least-outstanding";
    case RoutePolicy::kInterferenceAware:
      return "interference-aware";
  }
  return "unknown";
}

const char* RouteReasonName(RouteReason reason) {
  switch (reason) {
    case RouteReason::kOnlyCandidate:
      return "only-candidate";
    case RouteReason::kRoundRobin:
      return "round-robin";
    case RouteReason::kLeastOutstanding:
      return "least-outstanding";
    case RouteReason::kInterferenceAware:
      return "interference-aware";
    case RouteReason::kFailoverRehome:
      return "failover-rehome";
    case RouteReason::kLimboDrain:
      return "limbo-drain";
  }
  return "unknown";
}

RouteReason PickReason(RoutePolicy policy, std::size_t num_candidates) {
  if (num_candidates <= 1) {
    return RouteReason::kOnlyCandidate;
  }
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return RouteReason::kRoundRobin;
    case RoutePolicy::kLeastOutstanding:
      return RouteReason::kLeastOutstanding;
    case RoutePolicy::kInterferenceAware:
      return RouteReason::kInterferenceAware;
  }
  return RouteReason::kOnlyCandidate;
}

Router::Router(RoutePolicy policy, std::size_t num_models)
    : policy_(policy), rr_cursor_(num_models, 0) {}

std::size_t Router::Pick(std::size_t model, const std::vector<ReplicaView>& candidates) {
  ORION_CHECK_MSG(!candidates.empty(), "router needs at least one candidate replica");
  ORION_CHECK(model < rr_cursor_.size());
  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      return static_cast<std::size_t>(rr_cursor_[model]++ % candidates.size());
    case RoutePolicy::kLeastOutstanding: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const std::size_t load = candidates[i].queued + candidates[i].in_flight;
        const std::size_t best_load = candidates[best].queued + candidates[best].in_flight;
        if (load < best_load) {
          best = i;
        }
      }
      return best;
    }
    case RoutePolicy::kInterferenceAware: {
      std::size_t best = 0;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        if (candidates[i].outstanding_us < candidates[best].outstanding_us) {
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace serving
}  // namespace orion
