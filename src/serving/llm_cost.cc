#include "src/serving/llm_cost.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace serving {

LlmCostModel::LlmCostModel(const gpusim::DeviceSpec& device, const LlmServiceConfig& service,
                           DurationUs launch_overhead_us)
    : device_(device),
      service_(service),
      launch_overhead_us_(launch_overhead_us),
      kv_bytes_per_token_(workloads::LlmKvBytesPerToken(service.model)) {
  ORION_CHECK(service.prompt_tokens >= 1);
  ORION_CHECK(service.min_decode_tokens >= 0);
  ORION_CHECK(service.max_decode_tokens >= service.min_decode_tokens);
  ORION_CHECK(service.kv_block_tokens >= 1);
  ORION_CHECK(service.ttft_slo_us > 0.0 && service.tpot_slo_us > 0.0);
}

DurationUs LlmCostModel::KernelsUs(const std::vector<gpusim::KernelDesc>& kernels) const {
  DurationUs total = 0.0;
  for (const gpusim::KernelDesc& kernel : kernels) {
    total += kernel.duration_us;
  }
  return total + launch_overhead_us_ * static_cast<double>(kernels.size());
}

int LlmCostModel::ContextBucket(int context_tokens) const {
  const int block = service_.kv_block_tokens;
  const int bucket = ((std::max(1, context_tokens) + block - 1) / block) * block;
  return bucket;
}

DurationUs LlmCostModel::PrefillUs(int context_tokens) const {
  const int bucket = ContextBucket(context_tokens);
  const auto it = prefill_cache_.find(bucket);
  if (it != prefill_cache_.end()) {
    return it->second;
  }
  const DurationUs cost =
      KernelsUs(workloads::BuildLlmPrefillKernels(device_, service_.model, bucket));
  prefill_cache_.emplace(bucket, cost);
  return cost;
}

DurationUs LlmCostModel::DecodeStepUs(int batch, int context_tokens) const {
  ORION_CHECK(batch >= 1);
  const int bucket = ContextBucket(context_tokens);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(batch) << 32) | static_cast<std::uint64_t>(bucket);
  const auto it = step_cache_.find(key);
  if (it != step_cache_.end()) {
    return it->second;
  }
  const DurationUs cost =
      KernelsUs(workloads::BuildLlmDecodeStepKernels(device_, service_.model, batch, bucket));
  step_cache_.emplace(key, cost);
  return cost;
}

DurationUs LlmCostModel::TypicalStepUs(int batch) const {
  const int mid_context = service_.prompt_tokens + service_.max_decode_tokens / 2;
  return DecodeStepUs(std::max(1, batch), mid_context);
}

LlmBatchBreakdown LlmCostModel::RequestLevelBatchUs(const std::vector<Request>& batch) const {
  LlmBatchBreakdown out;
  int max_target = 0;
  for (const Request& request : batch) {
    out.prefill_us += PrefillUs(request.prompt_tokens);
    max_target = std::max(max_target, request.target_tokens);
  }
  out.total_us = out.prefill_us;
  // The whole batch steps together until the longest generation finishes:
  // prefill produced the first token, then max_target further decode steps
  // (target_tokens counts tokens AFTER the first); short sequences ride
  // along as dead rows. Context grows with the step.
  const int size = static_cast<int>(batch.size());
  for (int t = 1; t <= max_target; ++t) {
    long context_sum = 0;
    for (const Request& request : batch) {
      context_sum += request.prompt_tokens + std::min(t, request.target_tokens);
    }
    out.total_us += DecodeStepUs(size, static_cast<int>(context_sum / size));
  }
  return out;
}

}  // namespace serving
}  // namespace orion
