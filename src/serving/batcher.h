// Dynamic batcher: per-replica request queue with batch-forming policy.
//
// Classic serving-system batching (Triton/Clipper style): a free replica
// dispatches immediately when a full batch is waiting, otherwise it lingers
// up to `max_queue_delay_us` measured from the oldest queued request's
// enqueue time, trading a bounded latency hit for the sub-linear batch cost
// the roofline gives (batch_cost.h). With batching disabled every dispatch
// takes exactly one request.
//
// Queue order is FIFO by default. With `edf` set, the queue is kept in
// earliest-deadline-first order instead (ties break FIFO by request id), so
// under overload the batch drains the requests that can still make their
// SLO before the ones that are already doomed — the request-level analogue
// of deadline scheduling. Linger semantics are unchanged: the bound is
// still measured from the oldest *enqueue* time in the queue, whatever its
// position after deadline sorting.
//
// The batcher is pure queue logic — the serving engine owns the clock and
// the linger timers, which keeps this class directly unit-testable.
#ifndef SRC_SERVING_BATCHER_H_
#define SRC_SERVING_BATCHER_H_

#include <deque>
#include <vector>

#include "src/common/time_types.h"
#include "src/serving/request.h"

namespace orion {
namespace serving {

struct BatchingConfig {
  bool enabled = true;
  int max_batch_size = 8;
  DurationUs max_queue_delay_us = 2000.0;  // linger bound from oldest enqueue
  bool edf = false;  // earliest-deadline-first queue order (default FIFO)
};

// Why a dispatch fired; recorded as the `reason` attribute on batch spans.
enum class DispatchReason : std::uint8_t {
  kBatchingOff,    // batching disabled: every free replica takes one request
  kFullBatch,      // a full batch was waiting
  kLingerExpired,  // the oldest request hit its queue-delay bound
  kDrain,          // draining a retiring replica
  kContinuous,     // iteration-level LLM step (no linger: steps self-chain)
};

const char* DispatchReasonName(DispatchReason reason);

class DynamicBatcher {
 public:
  explicit DynamicBatcher(const BatchingConfig& config);

  void Enqueue(Request request, TimeUs now);

  // True when a free replica should dispatch right now: a full batch is
  // waiting, the oldest request has lingered long enough, or batching is off.
  bool ShouldDispatch(TimeUs now) const;

  // The reason ShouldDispatch(now) holds. Only meaningful when it does.
  DispatchReason WhyDispatch(TimeUs now) const;

  // Absolute time at which the oldest queued request's linger bound expires.
  // Only meaningful when !empty().
  TimeUs LingerDeadline() const;

  // Removes and returns the next batch (up to max_batch_size requests, FIFO
  // or deadline order per config.edf).
  std::vector<Request> TakeBatch();
  // Allocation-free variant for the dispatch hot path: fills `out` (cleared
  // first, capacity retained) with the same batch TakeBatch would return.
  void TakeBatchInto(std::vector<Request>* out);

  // Removes and returns everything queued (failover re-routing).
  std::vector<Request> Drain();

  // Head access for continuous (iteration-level) batching: the engine joins
  // sequences one at a time, stopping at the first that does not fit in the
  // KV cache, so it peeks before popping. Only meaningful when !empty().
  const Request& Front() const;
  Request PopFront();

  // Puts an evicted (or KV-rejected) sequence back at the head of the line:
  // front of a FIFO queue, (deadline, id) position under EDF — an evicted
  // sequence keeps its original deadline, so EDF naturally resumes it before
  // newer arrivals. enqueue_us is preserved (linger fairness).
  void Requeue(Request request);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  const BatchingConfig& config() const { return config_; }

 private:
  BatchingConfig config_;
  std::deque<Request> queue_;
};

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_BATCHER_H_
