// Block-granularity KV-cache accounting for LLM serving (DESIGN.md §13).
//
// vLLM-style paged allocation against a fixed device-memory budget: each
// live sequence holds ceil(tokens / block_tokens) blocks, grown one token at
// a time as decode steps produce tokens and released in full when the
// sequence finishes, is evicted under pressure, or dies with its replica.
// Reservations are all-or-nothing — a failed TryReserve leaves no partial
// state, which is what makes eviction decisions at the engine level clean.
//
// The allocator ORION_CHECKs its byte identity after every mutation:
//   used_blocks == Σ_{live sequences} ceil(tokens / block_tokens)
//   used_bytes  <= capacity_bytes
// This is the LLM analogue of the serving engine's request accounting
// identity, and the property the seeded churn test (kv_cache_property_test)
// hammers on.
#ifndef SRC_SERVING_KV_CACHE_H_
#define SRC_SERVING_KV_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace orion {
namespace serving {

struct KvCacheConfig {
  int block_tokens = 16;             // tokens per allocation block
  std::size_t bytes_per_token = 0;   // workloads::LlmKvBytesPerToken
  std::size_t capacity_bytes = 0;    // device-memory budget for this cache
};

class KvCacheAllocator {
 public:
  explicit KvCacheAllocator(const KvCacheConfig& config);

  // Grows (or creates) sequence `seq`'s reservation to cover `tokens`
  // tokens. Returns false — with NO state change — when the needed blocks
  // exceed free capacity. Reservations never shrink except through Free.
  bool TryReserve(std::uint64_t seq, int tokens);

  // Releases every block `seq` holds (completion, eviction, replica death).
  void Free(std::uint64_t seq);

  bool Holds(std::uint64_t seq) const { return seqs_.count(seq) > 0; }
  int SequenceTokens(std::uint64_t seq) const;

  int BlocksForTokens(int tokens) const;

  std::size_t used_blocks() const { return used_blocks_; }
  std::size_t total_blocks() const { return total_blocks_; }
  std::size_t free_blocks() const { return total_blocks_ - used_blocks_; }
  std::size_t used_bytes() const { return used_blocks_ * block_bytes(); }
  std::size_t capacity_bytes() const { return config_.capacity_bytes; }
  std::size_t block_bytes() const {
    return static_cast<std::size_t>(config_.block_tokens) * config_.bytes_per_token;
  }
  std::size_t live_sequences() const { return seqs_.size(); }
  std::size_t live_tokens() const { return live_tokens_; }
  const KvCacheConfig& config() const { return config_; }

 private:
  // Recomputes the block sum over live sequences and ORION_CHECKs it against
  // used_blocks_ (and capacity). Live sets are small (≤ a replica's batch),
  // so the O(live) walk after every mutation is cheap.
  void CheckIdentity() const;

  KvCacheConfig config_;
  std::size_t total_blocks_ = 0;
  std::size_t used_blocks_ = 0;
  std::size_t live_tokens_ = 0;
  std::map<std::uint64_t, int> seqs_;  // seq id -> reserved tokens (ordered: determinism)
};

}  // namespace serving
}  // namespace orion

#endif  // SRC_SERVING_KV_CACHE_H_
