#include "src/telemetry/attribution/report.h"

#include <cstdio>
#include <fstream>

#include "src/common/check.h"

namespace orion {
namespace attribution {
namespace {

// Fixed-precision, locale-independent formatting; same rationale as the
// other telemetry exporters (byte-stable CSVs across same-seed runs).
std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

void WriteScope(std::ostream& out, const std::string& service, const std::string& tier,
                const char* scope, const ScopeStats& stats) {
  if (stats.count == 0) return;
  out << service << ',' << tier << ',' << scope << ",total," << stats.count << ','
      << Num(stats.total.mean() * static_cast<double>(stats.count)) << ','
      << Num(stats.total.mean()) << ',' << Num(stats.total.p50()) << ','
      << Num(stats.total.p95()) << ',' << Num(stats.total.p99()) << ',' << stats.misses
      << '\n';
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const Phase p = PhaseFromIndex(i);
    out << service << ',' << tier << ',' << scope << ',' << PhaseName(p) << ','
        << stats.count << ',' << Num(stats.phase_sum_us[i]) << ','
        << Num(stats.phase_sum_us[i] / static_cast<double>(stats.count)) << ','
        << Num(stats.phase[i].p50()) << ',' << Num(stats.phase[i].p95()) << ','
        << Num(stats.phase[i].p99()) << ',' << stats.blame[i] << '\n';
  }
}

}  // namespace

Phase DominantPhase(const double phases[kNumPhases]) {
  Phase best = Phase::kExecute;
  double best_us = 0.0;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const Phase p = PhaseFromIndex(i);
    if (p == Phase::kExecute) continue;
    if (phases[i] > best_us) {
      best_us = phases[i];
      best = p;
    }
  }
  return best;
}

void ScopeStats::Record(const double phases[kNumPhases], double total_us, bool miss) {
  ++count;
  total.Add(total_us);
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    phase[i].Add(phases[i]);
    phase_sum_us[i] += phases[i];
  }
  if (miss) {
    ++misses;
    ++blame[PhaseIndex(DominantPhase(phases))];
  }
}

Phase ScopeStats::DominantBlame() const {
  Phase best = Phase::kExecute;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (blame[i] > best_count) {
      best_count = blame[i];
      best = PhaseFromIndex(i);
    }
  }
  return best;
}

void WriteAttributionCsv(const AttributionRegistry& registry, std::ostream& out) {
  out << "service,tier,scope,phase,count,sum_us,mean_us,p50_us,p95_us,p99_us,"
         "blame_misses\n";
  for (const auto& [service, attr] : registry.services()) {
    WriteScope(out, service, attr.tier(), "e2e", attr.e2e());
    WriteScope(out, service, attr.tier(), "ttft", attr.ttft());
    WriteScope(out, service, attr.tier(), "tpot", attr.tpot());
  }
}

void ExportAttributionCsv(const AttributionRegistry& registry, const std::string& path) {
  std::ofstream os(path);
  ORION_CHECK_MSG(os.good(), "cannot open attribution output file " << path);
  WriteAttributionCsv(registry, os);
  ORION_CHECK_MSG(os.good(), "failed writing attribution to " << path);
}

}  // namespace attribution
}  // namespace orion
