// Aggregation of per-request LatencyLedgers into per-service SLO-miss blame
// reports, plus the CSV exporter (tools/attribution_report.py renders the
// CSV into top-N blame tables).
//
// One ServiceAttribution per service (model label on the serving path,
// client label on the harness path), owned by the hub's AttributionRegistry.
// Each holds up to three scopes:
//
//   e2e    every request's full phase decomposition (always recorded)
//   ttft   time-to-first-token decomposition (LLM services only)
//   tpot   decode-tail decomposition, first token -> completion (LLM only)
//
// A scope tracks, per phase: a LatencyRecorder (exact percentiles), the
// running sum, and a blame counter — for every request that missed its SLO,
// the *dominant* phase (largest non-execute contribution) takes the blame.
// kExecute is excluded from blame because pure isolated execute time is the
// workload's own cost; if nothing else contributed, the blame falls back to
// kExecute, which reads as "the SLO is infeasible for this model".
#ifndef SRC_TELEMETRY_ATTRIBUTION_REPORT_H_
#define SRC_TELEMETRY_ATTRIBUTION_REPORT_H_

#include <cstddef>
#include <map>
#include <ostream>
#include <string>

#include "src/common/stats.h"
#include "src/telemetry/attribution/ledger.h"

namespace orion {
namespace attribution {

// Picks the blame phase for one request's phase vector: the largest
// contribution excluding kExecute; kExecute itself when nothing else
// contributed (infeasible SLO).
Phase DominantPhase(const double phases[kNumPhases]);

// Per-(service, scope) aggregate.
struct ScopeStats {
  std::size_t count = 0;
  std::size_t misses = 0;
  LatencyRecorder total;
  LatencyRecorder phase[kNumPhases];
  double phase_sum_us[kNumPhases] = {};
  // Blame counts over SLO-missing requests only: blame[p] = number of
  // misses whose dominant phase was p.
  std::size_t blame[kNumPhases] = {};

  void Record(const double phases[kNumPhases], double total_us, bool miss);
  // The phase with the highest blame count (ties: lowest phase index);
  // kExecute when there were no misses.
  Phase DominantBlame() const;
};

class ServiceAttribution {
 public:
  void set_tier(const std::string& tier) { tier_ = tier; }
  const std::string& tier() const { return tier_; }

  void RecordE2e(const double phases[kNumPhases], double total_us, bool miss) {
    e2e_.Record(phases, total_us, miss);
  }
  void RecordTtft(const double phases[kNumPhases], double total_us, bool miss) {
    ttft_.Record(phases, total_us, miss);
  }
  void RecordTpot(const double phases[kNumPhases], double total_us, bool miss) {
    tpot_.Record(phases, total_us, miss);
  }

  const ScopeStats& e2e() const { return e2e_; }
  const ScopeStats& ttft() const { return ttft_; }
  const ScopeStats& tpot() const { return tpot_; }

 private:
  std::string tier_;
  ScopeStats e2e_;
  ScopeStats ttft_;
  ScopeStats tpot_;
};

// Owned by telemetry::Hub. Ordered by service name so exports are
// deterministic.
class AttributionRegistry {
 public:
  // Returns the ServiceAttribution for `service`, creating it on first use.
  // References stay valid for the registry's lifetime (node-based map).
  ServiceAttribution& Service(const std::string& service) { return services_[service]; }

  const std::map<std::string, ServiceAttribution>& services() const { return services_; }
  bool empty() const { return services_.empty(); }

 private:
  std::map<std::string, ServiceAttribution> services_;
};

// CSV schema (one row per service/scope/phase, plus a phase="total" row per
// scope carrying the scope's overall latency distribution and miss count):
//   service,tier,scope,phase,count,sum_us,mean_us,p50_us,p95_us,p99_us,blame_misses
// Rows are emitted in (service, scope, phase-index) order — deterministic.
void WriteAttributionCsv(const AttributionRegistry& registry, std::ostream& out);

// Writes the CSV to `path`; aborts (ORION_CHECK) on I/O error, matching the
// other telemetry exporters.
void ExportAttributionCsv(const AttributionRegistry& registry, const std::string& path);

}  // namespace attribution
}  // namespace orion

#endif  // SRC_TELEMETRY_ATTRIBUTION_REPORT_H_
