// Per-request latency attribution: the LatencyLedger.
//
// A ledger rides inside each serving::Request (and, on the harness path,
// inside ClientDriver) and decomposes the request's end-to-end latency into
// named, mutually exclusive phases:
//
//   kQueue        admission + batcher queue wait (replica busy serving
//                 someone, or request parked in no-replica limbo on first
//                 arrival)
//   kLinger       the slice of queue wait spent while the target replica sat
//                 *idle* — batch linger: the batcher holding the request back
//                 waiting for companions (max_queue_delay_us), not capacity
//   kNetRequest   front-end -> node wire time (datacenter fabric), including
//                 re-forward legs after failover
//   kNetResponse  node -> front-end wire time
//   kExecute      pure execute time, priced from the *isolated* roofline
//                 profile (what the batch/step would cost with the GPU alone)
//   kInterference actual service time minus isolated time: the stall caused
//                 by collocated tenants (slowdown model / shared-GPU
//                 contention). The Orion scheduler's dispatch records
//                 (orion.collocated_be_us) identify the tenant responsible.
//   kPaging       unified-memory fault stall (memsub::UnifiedMemoryPager
//                 pending-fault intervals)
//   kPreempt      preemption + recompute: KV-cache evict-with-recompute
//                 requeue wait, failover limbo, and work thrown away when a
//                 replica dies mid-batch
//   kResidual     whatever the instrumentation failed to classify. By
//                 construction every interval between ledger marks is charged
//                 to exactly one phase, so the residual is FP rounding only;
//                 Finalize() returns it and callers ORION_CHECK it against a
//                 tolerance.
//
// Identity contract: after Finalize(arrival, complete),
//     sum(phase_us) == complete - arrival        (within FP tolerance)
// for every request, including requests that were evicted, re-routed across
// node deaths, or re-queued — the ledger's internal mark always advances
// monotonically with the simulation clock and every [mark, now] interval is
// charged somewhere, so re-queue paths cannot silently lose (or double-count)
// time.
//
// The ledger is a pure observer: it never feeds back into simulation
// arithmetic or event ordering. Engines only touch it when attribution is
// enabled on the telemetry hub (telemetry::Hub::EnableAttribution), so a
// null / attribution-off hub keeps runs bit-identical at zero cost — the
// same contract the rest of src/telemetry honors.
#ifndef SRC_TELEMETRY_ATTRIBUTION_LEDGER_H_
#define SRC_TELEMETRY_ATTRIBUTION_LEDGER_H_

#include <algorithm>
#include <cstddef>

#include "src/common/time_types.h"

namespace orion {
namespace attribution {

enum class Phase : int {
  kQueue = 0,
  kLinger,
  kNetRequest,
  kNetResponse,
  kExecute,
  kInterference,
  kPaging,
  kPreempt,
  kResidual,
};

constexpr std::size_t kNumPhases = 9;

constexpr std::size_t PhaseIndex(Phase p) { return static_cast<std::size_t>(p); }

inline const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kQueue:        return "queue";
    case Phase::kLinger:       return "linger";
    case Phase::kNetRequest:   return "net_request";
    case Phase::kNetResponse:  return "net_response";
    case Phase::kExecute:      return "execute";
    case Phase::kInterference: return "interference";
    case Phase::kPaging:       return "paging";
    case Phase::kPreempt:      return "preempt";
    case Phase::kResidual:     return "residual";
  }
  return "?";
}

inline Phase PhaseFromIndex(std::size_t i) { return static_cast<Phase>(static_cast<int>(i)); }

// The per-request ledger. Plain value type (copied with the request across
// fabric transfers and failover re-routes). All mutators are no-ops until
// Begin() — engines guard calls behind the hub's attribution flag anyway,
// but the active_ check makes a stray hook harmless.
class LatencyLedger {
 public:
  // Starts the clock at the request's first arrival. Subsequent time accrues
  // to kQueue until the first transition.
  void Begin(TimeUs now) {
    active_ = true;
    mark_us_ = now;
    open_ = Phase::kQueue;
  }

  bool active() const { return active_; }

  // Charges [mark, now] to the currently open phase, then opens `next`.
  void Advance(TimeUs now, Phase next) { AdvanceInto(now, open_, next); }

  // Charges [mark, now] to `into` (regardless of the open phase), then opens
  // `next`. Used when the elapsed interval is reclassified after the fact —
  // e.g. a replica death turning in-flight execute time into wasted kPreempt.
  void AdvanceInto(TimeUs now, Phase into, Phase next) {
    if (!active_) return;
    phase_us_[PhaseIndex(into)] += now - mark_us_;
    mark_us_ = now;
    open_ = next;
  }

  // Entering a batcher queue. Charges the preceding interval to the open
  // phase (wire time for a forwarded request, kPreempt for a failover
  // orphan), opens kQueue, and snapshots the replica's cumulative idle time
  // so LeaveQueue can split the wait into capacity-bound kQueue vs
  // idle-replica kLinger.
  void EnterQueue(TimeUs now, DurationUs replica_idle_us) {
    if (!active_) return;
    Advance(now, Phase::kQueue);
    queue_idle_snapshot_us_ = replica_idle_us;
  }

  // Leaving the queue for dispatch (or being drained by a replica death —
  // then `next` is kPreempt). If the open phase is kQueue, the elapsed wait
  // splits into kLinger (the part the replica spent idle, i.e. the batcher
  // lingering for companions) and kQueue (the part the replica was busy).
  // A KV-evicted sequence re-queued via DynamicBatcher::Requeue never went
  // through EnterQueue, so its open phase is kPreempt and the whole rejoin
  // wait is charged there (recompute wait, not admission queueing).
  void LeaveQueue(TimeUs now, DurationUs replica_idle_us, Phase next) {
    if (!active_) return;
    const DurationUs elapsed = now - mark_us_;
    if (open_ == Phase::kQueue) {
      const DurationUs linger = std::min(
          std::max(replica_idle_us - queue_idle_snapshot_us_, 0.0), elapsed);
      phase_us_[PhaseIndex(Phase::kLinger)] += linger;
      phase_us_[PhaseIndex(Phase::kQueue)] += elapsed - linger;
    } else {
      phase_us_[PhaseIndex(open_)] += elapsed;
    }
    mark_us_ = now;
    open_ = next;
  }

  // Charges one completed execution step [mark, now]: min(iso_us, elapsed)
  // to kExecute (the isolated-roofline price) and the rest to kInterference
  // (actual minus isolated = collocation stall). The phase stays open on
  // kExecute so continuous-batching callers can charge step after step.
  void ChargeExecStep(TimeUs now, DurationUs iso_us) {
    if (!active_) return;
    const DurationUs elapsed = now - mark_us_;
    const DurationUs execute = std::min(std::max(iso_us, 0.0), elapsed);
    phase_us_[PhaseIndex(Phase::kExecute)] += execute;
    phase_us_[PhaseIndex(Phase::kInterference)] += elapsed - execute;
    mark_us_ = now;
    open_ = Phase::kExecute;
  }

  // LLM: snapshots the phase vector at first-token delivery, so TTFT can be
  // attributed separately from the decode tail (TPOT). Continuous batching
  // calls this right after the step that produced the first token was
  // charged, so the snapshot sums exactly to TTFT.
  void MarkFirstToken() {
    if (!active_) return;
    for (std::size_t i = 0; i < kNumPhases; ++i) ttft_phase_us_[i] = phase_us_[i];
    ttft_marked_ = true;
  }

  bool ttft_marked() const { return ttft_marked_; }

  // LLM request-level batching delivers the whole batch at once; the first
  // token's timestamp is interpolated inside the batch. Called after
  // Finalize with frac = (first_token - exec_begin) / exec_duration: the
  // pre-execute phases belong entirely to TTFT, execute/interference split
  // proportionally, and the response wire leg is all decode tail.
  void SynthesizeFirstToken(double frac) {
    frac = std::min(std::max(frac, 0.0), 1.0);
    for (std::size_t i = 0; i < kNumPhases; ++i) ttft_phase_us_[i] = phase_us_[i];
    ttft_phase_us_[PhaseIndex(Phase::kExecute)] *= frac;
    ttft_phase_us_[PhaseIndex(Phase::kInterference)] *= frac;
    ttft_phase_us_[PhaseIndex(Phase::kPaging)] *= frac;
    ttft_phase_us_[PhaseIndex(Phase::kNetResponse)] = 0.0;
    ttft_phase_us_[PhaseIndex(Phase::kResidual)] = 0.0;
    ttft_marked_ = true;
  }

  // Splits the finalized phase vector at the first-token snapshot:
  // ttft[i] + tpot[i] == phase_us[i] for every phase (ttft all-zero when no
  // first token was marked). Phases only ever accumulate, so the subtraction
  // is non-negative up to FP rounding, which the max() clamps.
  void SplitTtft(double ttft[kNumPhases], double tpot[kNumPhases]) const {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      ttft[i] = ttft_marked_ ? ttft_phase_us_[i] : 0.0;
      tpot[i] = std::max(phase_us_[i] - ttft[i], 0.0);
    }
  }

  // Closes the open phase at `complete` and reconciles against the measured
  // e2e: any difference lands in kResidual and is returned so the caller can
  // ORION_CHECK it against an FP tolerance. After Finalize the phase vector
  // is final: sum == complete - arrival exactly.
  DurationUs Finalize(TimeUs arrival, TimeUs complete) {
    if (!active_) return 0.0;
    Advance(complete, open_);
    const DurationUs e2e = complete - arrival;
    DurationUs sum = 0.0;
    for (std::size_t i = 0; i < kNumPhases; ++i) sum += phase_us_[i];
    const DurationUs residual = e2e - sum;
    phase_us_[PhaseIndex(Phase::kResidual)] += residual;
    return residual;
  }

  const double* phases() const { return phase_us_; }
  double phase(Phase p) const { return phase_us_[PhaseIndex(p)]; }
  Phase open_phase() const { return open_; }

 private:
  double phase_us_[kNumPhases] = {};
  double ttft_phase_us_[kNumPhases] = {};
  TimeUs mark_us_ = 0.0;
  DurationUs queue_idle_snapshot_us_ = 0.0;
  Phase open_ = Phase::kQueue;
  bool active_ = false;
  bool ttft_marked_ = false;
};

}  // namespace attribution
}  // namespace orion

#endif  // SRC_TELEMETRY_ATTRIBUTION_LEDGER_H_
