// Telemetry exporters: CSV metric snapshots and merged Chrome/Perfetto
// traces.
//
// WriteMetricsCsv renders a MetricRegistry snapshot as one CSV row per
// metric (counters and gauges fill `value`; histograms fill the
// count/mean/percentile columns from their current window).
//
// WriteChromeTrace merges the hub's kernel execution tracks (one Chrome
// process per device, one thread per stream) with the cross-layer spans of
// the SpanTracer (one process per span track) into a single JSON array
// loadable by chrome://tracing and https://ui.perfetto.dev — request
// lifecycles, scheduler decisions, collectives, fabric transfers and fault
// markers on the same timeline as the kernels they explain. Span tracks take
// pids [0, N); kernel tracks follow at kKernelPidBase so device lanes group
// together below the logical tracks.
//
// Both exporters are deterministic: rows are sorted, events keep the
// simulator's event order, and timestamps are printed with fixed precision.
#ifndef SRC_TELEMETRY_EXPORTERS_H_
#define SRC_TELEMETRY_EXPORTERS_H_

#include <iosfwd>
#include <string>

#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"

namespace orion {
namespace telemetry {

// First pid used for kernel (device) tracks in a merged trace.
inline constexpr int kKernelPidBase = 1000;

void WriteMetricsCsv(const MetricRegistry& metrics, std::ostream& os);

// Spans only (no kernel tracks).
void WriteChromeTrace(const SpanTracer& spans, std::ostream& os);

// Full merge: spans + kernel tracks.
void WriteChromeTrace(const Hub& hub, std::ostream& os);

// File-writing convenience used by the bench binaries; aborts on I/O errors
// (a bench asked to export must not silently drop the artefact).
void ExportMetricsCsv(const MetricRegistry& metrics, const std::string& path);
void ExportChromeTrace(const Hub& hub, const std::string& path);

// Streaming telemetry export: periodically rewrites the --trace-out /
// --metrics-out artefacts DURING a long run instead of only at its end, so a
// multi-hour sweep can be inspected (or salvaged after a crash) mid-flight.
// Each flush truncates and rewrites the file with the hub's state so far —
// both exporters emit self-contained snapshots, so the file is valid after
// every flush. Flushes ride the discrete-event clock and only read the hub;
// they never perturb the simulation (same-seed runs stay bit-identical with
// or without a streamer attached).
class StreamingExporter {
 public:
  struct Options {
    DurationUs period_us = 0.0;  // 0 = disabled (Start() is a no-op)
    std::string trace_path;      // empty = skip trace flushes
    std::string metrics_path;    // empty = skip metrics flushes
  };

  StreamingExporter(Simulator* sim, const Hub* hub, Options options);
  StreamingExporter(const StreamingExporter&) = delete;
  StreamingExporter& operator=(const StreamingExporter&) = delete;
  ~StreamingExporter();

  // Schedules the first flush one period from now.
  void Start();
  // Cancels the pending flush (the destructor also stops).
  void Stop();

  std::size_t flushes() const { return flushes_; }

 private:
  void Flush();

  Simulator* sim_;
  const Hub* hub_;
  Options options_;
  EventHandle next_flush_;
  std::size_t flushes_ = 0;
};

}  // namespace telemetry
}  // namespace orion

#endif  // SRC_TELEMETRY_EXPORTERS_H_
