// Unified telemetry hub: one handle bundling the metric registry, the
// cross-layer span tracer and the multi-device kernel trace collector.
//
// A harness or bench creates one Hub per run and passes it down through the
// configs (ExperimentConfig / MultiGpuConfig / ServingConfig all carry a
// `telemetry::Hub*`, null by default). Layers instrument against the hub:
//
//   * counters/gauges/histograms → hub->metrics()  (always cheap)
//   * spans / instants / flows   → hub->spans()    (only when tracing())
//   * kernel execution records   → hub->kernels()  (installed by harnesses
//     onto every simulated device when tracing is enabled)
//
// The null-object default keeps instrumentation zero-cost: every site guards
// on `hub == nullptr` (no sink installed) and on `hub->tracing()` for span
// emission, so an uninstrumented run does no string formatting and allocates
// nothing. No wall-clock is ever read — all timestamps come from the
// discrete-event simulator — so same-seed runs export byte-identical traces.
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include "src/gpusim/trace_export.h"
#include "src/telemetry/attribution/report.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span_tracer.h"

namespace orion {
namespace telemetry {

class Hub {
 public:
  Hub() = default;
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }

  gpusim::TraceCollector& kernels() { return kernels_; }
  const gpusim::TraceCollector& kernels() const { return kernels_; }

  // Span/kernel collection is opt-in (metrics are always on): benches enable
  // it when a --trace-out path was given, tests when they assert on spans.
  void EnableTracing() { tracing_ = true; }
  bool tracing() const { return tracing_; }

  attribution::AttributionRegistry& attribution() { return attribution_; }
  const attribution::AttributionRegistry& attribution() const { return attribution_; }

  // Per-request latency attribution is opt-in like tracing: when disabled the
  // engines never touch a request's LatencyLedger, so runs stay bit-identical
  // to an uninstrumented build at zero cost.
  void EnableAttribution() { attribution_enabled_ = true; }
  bool attribution_enabled() const { return attribution_enabled_; }

 private:
  MetricRegistry metrics_;
  SpanTracer spans_;
  gpusim::TraceCollector kernels_;
  attribution::AttributionRegistry attribution_;
  bool tracing_ = false;
  bool attribution_enabled_ = false;
};

}  // namespace telemetry
}  // namespace orion

#endif  // SRC_TELEMETRY_TELEMETRY_H_
