#include "src/telemetry/span_tracer.h"

#include <utility>

namespace orion {
namespace telemetry {

TrackId SpanTracer::Track(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) {
      return static_cast<TrackId>(i);
    }
  }
  tracks_.push_back(name);
  return static_cast<TrackId>(tracks_.size() - 1);
}

void SpanTracer::Complete(TrackId track, std::int64_t tid, const std::string& name,
                          TimeUs start, TimeUs end, Labels args,
                          const std::string& category) {
  TraceEvent event;
  event.kind = TraceEventKind::kComplete;
  event.track = track;
  event.tid = tid;
  event.name = name;
  event.category = category;
  event.ts = start;
  event.dur = end - start;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void SpanTracer::AsyncBegin(TrackId track, std::uint64_t id, const std::string& name,
                            TimeUs ts, Labels args, const std::string& category) {
  TraceEvent event;
  event.kind = TraceEventKind::kAsyncBegin;
  event.track = track;
  event.id = id;
  event.name = name;
  event.category = category;
  event.ts = ts;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void SpanTracer::AsyncEnd(TrackId track, std::uint64_t id, const std::string& name,
                          TimeUs ts, Labels args, const std::string& category) {
  TraceEvent event;
  event.kind = TraceEventKind::kAsyncEnd;
  event.track = track;
  event.id = id;
  event.name = name;
  event.category = category;
  event.ts = ts;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void SpanTracer::Instant(TrackId track, const std::string& name, TimeUs ts, Labels args,
                         const std::string& category) {
  TraceEvent event;
  event.kind = TraceEventKind::kInstant;
  event.track = track;
  event.name = name;
  event.category = category;
  event.ts = ts;
  event.args = std::move(args);
  events_.push_back(std::move(event));
}

void SpanTracer::FlowStart(TrackId track, std::int64_t tid, std::uint64_t flow_id,
                           TimeUs ts, const std::string& name) {
  TraceEvent event;
  event.kind = TraceEventKind::kFlowStart;
  event.track = track;
  event.tid = tid;
  event.id = flow_id;
  event.name = name;
  event.category = "flow";
  event.ts = ts;
  events_.push_back(std::move(event));
}

void SpanTracer::FlowEnd(TrackId track, std::int64_t tid, std::uint64_t flow_id, TimeUs ts,
                         const std::string& name) {
  TraceEvent event;
  event.kind = TraceEventKind::kFlowEnd;
  event.track = track;
  event.tid = tid;
  event.id = flow_id;
  event.name = name;
  event.category = "flow";
  event.ts = ts;
  events_.push_back(std::move(event));
}

}  // namespace telemetry
}  // namespace orion
