#include "src/telemetry/metrics.h"

#include "src/common/check.h"

namespace orion {
namespace telemetry {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string MetricRegistry::EncodeKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        key += ',';
      }
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

MetricRegistry::Metric* MetricRegistry::GetOrCreate(const std::string& name,
                                                    const Labels& labels, MetricKind kind) {
  const std::string key = EncodeKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    ORION_CHECK_MSG(it->second->kind == kind,
                    "metric " << key << " already registered as "
                              << MetricKindName(it->second->kind));
    return it->second.get();
  }
  auto metric = std::make_unique<Metric>();
  metric->name = name;
  metric->labels = labels;
  metric->kind = kind;
  Metric* raw = metric.get();
  metrics_.emplace(key, std::move(metric));
  return raw;
}

const MetricRegistry::Metric* MetricRegistry::Find(const std::string& name,
                                                   const Labels& labels) const {
  const std::string key = EncodeKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(key);
  return it != metrics_.end() ? it->second.get() : nullptr;
}

Counter* MetricRegistry::GetCounter(const std::string& name, const Labels& labels) {
  return &GetOrCreate(name, labels, MetricKind::kCounter)->counter;
}

Gauge* MetricRegistry::GetGauge(const std::string& name, const Labels& labels) {
  return &GetOrCreate(name, labels, MetricKind::kGauge)->gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name, const Labels& labels) {
  return &GetOrCreate(name, labels, MetricKind::kHistogram)->histogram;
}

double MetricRegistry::CounterValue(const std::string& name, const Labels& labels) const {
  const Metric* metric = Find(name, labels);
  return metric != nullptr && metric->kind == MetricKind::kCounter ? metric->counter.value()
                                                                   : 0.0;
}

double MetricRegistry::GaugeValue(const std::string& name, const Labels& labels) const {
  const Metric* metric = Find(name, labels);
  return metric != nullptr && metric->kind == MetricKind::kGauge ? metric->gauge.value() : 0.0;
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name,
                                               const Labels& labels) const {
  const Metric* metric = Find(name, labels);
  return metric != nullptr && metric->kind == MetricKind::kHistogram ? &metric->histogram
                                                                     : nullptr;
}

std::vector<MetricRow> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(metrics_.size());
  for (const auto& [key, metric] : metrics_) {
    (void)key;
    MetricRow row;
    row.name = metric->name;
    row.labels = metric->labels;
    row.kind = metric->kind;
    switch (metric->kind) {
      case MetricKind::kCounter:
        row.value = metric->counter.value();
        break;
      case MetricKind::kGauge:
        row.value = metric->gauge.value();
        break;
      case MetricKind::kHistogram: {
        const LatencyRecorder& window = metric->histogram.window();
        row.count = window.count();
        row.value = window.mean();
        row.p50 = window.p50();
        row.p95 = window.p95();
        row.p99 = window.p99();
        row.min = window.min();
        row.max = window.max();
        for (const double sample : window.samples()) {
          row.sum += sample;
        }
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void MetricRegistry::ResetWindows() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, metric] : metrics_) {
    (void)key;
    if (metric->kind == MetricKind::kHistogram) {
      metric->histogram.ResetWindow();
    }
  }
}

}  // namespace telemetry
}  // namespace orion
