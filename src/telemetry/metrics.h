// Metric registry: labeled counters, gauges and per-window histograms.
//
// One registry per run is the shared structured sink the ROADMAP asks for:
// every layer (scheduler, serving engine, collective engine, fault injector,
// harness) registers its counters here instead of hand-rolling private result
// fields, and the exporters (exporters.h) turn a snapshot into CSV rows.
//
// Semantics:
//   * A metric is identified by (name, labels). GetCounter/GetGauge/
//     GetHistogram return a stable pointer — the same (name, labels) pair
//     always yields the same object, so instrumentation sites can bind once
//     and increment without lookups on the hot path.
//   * Counters only grow; gauges are set/added freely; histograms record a
//     resettable measurement window (exact percentiles via LatencyRecorder)
//     plus whole-run streaming moments (OnlineStats), so windows can be
//     snapshotted at sim-time boundaries without losing lifetime stats.
//   * Everything is deterministic: registration order does not affect
//     Snapshot(), which sorts by (name, labels).
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"

namespace orion {
namespace telemetry {

// Ordered key=value pairs attached to a metric (and to trace-span args).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing count (events, requests, bytes).
class Counter {
 public:
  void Inc(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }
  // Convenience for counters that count discrete events.
  std::uint64_t AsCount() const { return static_cast<std::uint64_t>(std::llround(value_)); }

 private:
  double value_ = 0.0;
};

// Point-in-time value (replicas active, bytes resident, utilization).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Distribution with a resettable window (exact percentiles) and whole-run
// streaming moments that survive window resets.
class Histogram {
 public:
  void Add(double value) {
    window_.Add(value);
    lifetime_.Add(value);
  }
  const LatencyRecorder& window() const { return window_; }
  const OnlineStats& lifetime() const { return lifetime_; }
  void ResetWindow() { window_ = LatencyRecorder(); }

 private:
  LatencyRecorder window_;
  OnlineStats lifetime_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// Flat, export-friendly view of one metric at snapshot time.
struct MetricRow {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;      // counter / gauge value; histogram window mean
  std::size_t count = 0;   // histogram window sample count
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // histogram window percentiles
  double min = 0.0, max = 0.0, sum = 0.0;  // histogram window extremes / total
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Stable pointers, valid for the registry's lifetime. Re-registering the
  // same (name, labels) returns the existing instrument; registering it as a
  // different kind aborts (one name, one kind).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  // Lookup without creating; 0.0 / nullptr when absent (tests, finalizers).
  double CounterValue(const std::string& name, const Labels& labels = {}) const;
  double GaugeValue(const std::string& name, const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name, const Labels& labels = {}) const;

  // Deterministic snapshot, sorted by (name, labels).
  std::vector<MetricRow> Snapshot() const;

  // Sim-time window boundary: resets every histogram's window recorder
  // (lifetime moments, counters and gauges are untouched).
  void ResetWindows();

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return metrics_.size();
  }

  // Canonical "name{k=v,...}" encoding used as the registry key and by the
  // CSV exporter's labels column.
  static std::string EncodeKey(const std::string& name, const Labels& labels);

 private:
  struct Metric {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Metric* GetOrCreate(const std::string& name, const Labels& labels, MetricKind kind);
  const Metric* Find(const std::string& name, const Labels& labels) const;

  // Guards the map itself: parallel-LP node threads register their labeled
  // instruments concurrently (DESIGN.md §16). Instrument *updates* need no
  // lock — each (name, labels) instrument is owned by one logical process,
  // only registration shares the map. The returned pointers stay stable
  // because the map stores unique_ptrs.
  mutable std::mutex mu_;
  // Keyed by EncodeKey → sorted iteration is deterministic and label-stable.
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

}  // namespace telemetry
}  // namespace orion

#endif  // SRC_TELEMETRY_METRICS_H_
