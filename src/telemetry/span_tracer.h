// Cross-layer trace spans on the discrete-event clock.
//
// Records hierarchical spans, instant markers and flow links for export in
// the Chrome trace-event format (exporters.h). Each *track* is a Chrome
// "process" (one lane group in Perfetto): a serving model's request
// lifecycles, a GPU's batch executions, the collective engine, the fabric,
// the fault injector. Within a track, the `tid` picks the row — a replica, a
// stream, or a per-request virtual thread.
//
// Event kinds map 1:1 onto Chrome trace phases:
//   * Complete  → "X": a slice with explicit start and end (request phases,
//     batch executions). Slices on one (track, tid) must nest.
//   * AsyncBegin/AsyncEnd → "b"/"e": id-matched spans that may overlap
//     freely (collectives, fabric transfers).
//   * Instant   → "i": a point marker (fault injected, quarantine, scale-up).
//   * FlowStart/FlowEnd → "s"/"f": an id-matched arrow between two slices
//     (serving request → the device batch that served it).
//
// Timestamps are caller-provided sim-time µs — the tracer never reads a
// wall clock — so same-seed runs export byte-identical traces.
#ifndef SRC_TELEMETRY_SPAN_TRACER_H_
#define SRC_TELEMETRY_SPAN_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time_types.h"
#include "src/telemetry/metrics.h"  // Labels

namespace orion {
namespace telemetry {

using TrackId = int;

enum class TraceEventKind : std::uint8_t {
  kComplete,
  kAsyncBegin,
  kAsyncEnd,
  kInstant,
  kFlowStart,
  kFlowEnd,
};

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kComplete;
  TrackId track = 0;
  std::int64_t tid = 0;
  std::string name;
  std::string category;
  TimeUs ts = 0.0;
  DurationUs dur = 0.0;    // kComplete only
  std::uint64_t id = 0;    // async span / flow id
  Labels args;
};

class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Registers (or finds) a named track. Track order is registration order;
  // the exporter assigns pids from it deterministically.
  TrackId Track(const std::string& name);

  void Complete(TrackId track, std::int64_t tid, const std::string& name, TimeUs start,
                TimeUs end, Labels args = {}, const std::string& category = "span");
  void AsyncBegin(TrackId track, std::uint64_t id, const std::string& name, TimeUs ts,
                  Labels args = {}, const std::string& category = "async");
  void AsyncEnd(TrackId track, std::uint64_t id, const std::string& name, TimeUs ts,
                Labels args = {}, const std::string& category = "async");
  void Instant(TrackId track, const std::string& name, TimeUs ts, Labels args = {},
               const std::string& category = "marker");
  // Flow arrows: a start bound to the slice enclosing `ts` on (track, tid)
  // and an id-matched finish bound likewise at the consumer.
  void FlowStart(TrackId track, std::int64_t tid, std::uint64_t flow_id, TimeUs ts,
                 const std::string& name = "flow");
  void FlowEnd(TrackId track, std::int64_t tid, std::uint64_t flow_id, TimeUs ts,
               const std::string& name = "flow");

  const std::vector<std::string>& tracks() const { return tracks_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Clear() { events_.clear(); }

 private:
  std::vector<std::string> tracks_;
  std::vector<TraceEvent> events_;  // insertion (sim-event) order
};

}  // namespace telemetry
}  // namespace orion

#endif  // SRC_TELEMETRY_SPAN_TRACER_H_
