#include "src/telemetry/exporters.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "src/common/check.h"

namespace orion {
namespace telemetry {
namespace {

void WriteJsonString(std::ostream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Fixed-precision number formatting: locale-independent and byte-stable
// across same-seed runs (ostream default formatting depends on precision
// state; CSV/trace determinism is a tested property).
std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

std::string Ts(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return std::string(buf);
}

// CSV field quoting: wrap in quotes when the field contains a delimiter.
void WriteCsvField(std::ostream& os, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    os << field;
    return;
  }
  os << '"';
  for (const char c : field) {
    if (c == '"') {
      os << '"';
    }
    os << c;
  }
  os << '"';
}

void WriteArgs(std::ostream& os, const Labels& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    WriteJsonString(os, args[i].first);
    os << ":";
    WriteJsonString(os, args[i].second);
  }
  os << "}";
}

void WriteSpanEvents(const SpanTracer& spans, std::ostream& os, bool* first) {
  for (std::size_t track = 0; track < spans.tracks().size(); ++track) {
    if (!*first) {
      os << ",";
    }
    *first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << track
       << ",\"args\":{\"name\":";
    WriteJsonString(os, spans.tracks()[track]);
    os << "}}";
  }
  for (const TraceEvent& event : spans.events()) {
    if (!*first) {
      os << ",";
    }
    *first = false;
    os << "\n{\"name\":";
    WriteJsonString(os, event.name);
    os << ",\"cat\":";
    WriteJsonString(os, event.category);
    os << ",\"pid\":" << event.track << ",\"ts\":" << Ts(event.ts);
    switch (event.kind) {
      case TraceEventKind::kComplete:
        os << ",\"tid\":" << event.tid << ",\"ph\":\"X\",\"dur\":" << Ts(event.dur);
        break;
      case TraceEventKind::kAsyncBegin:
        os << ",\"tid\":0,\"ph\":\"b\",\"id\":" << event.id;
        break;
      case TraceEventKind::kAsyncEnd:
        os << ",\"tid\":0,\"ph\":\"e\",\"id\":" << event.id;
        break;
      case TraceEventKind::kInstant:
        os << ",\"tid\":0,\"ph\":\"i\",\"s\":\"p\"";
        break;
      case TraceEventKind::kFlowStart:
        os << ",\"tid\":" << event.tid << ",\"ph\":\"s\",\"id\":" << event.id;
        break;
      case TraceEventKind::kFlowEnd:
        os << ",\"tid\":" << event.tid << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << event.id;
        break;
    }
    if (!event.args.empty()) {
      os << ",\"args\":";
      WriteArgs(os, event.args);
    }
    os << "}";
  }
}

}  // namespace

void WriteMetricsCsv(const MetricRegistry& metrics, std::ostream& os) {
  os << "metric,labels,kind,value,count,p50,p95,p99,min,max,sum\n";
  for (const MetricRow& row : metrics.Snapshot()) {
    WriteCsvField(os, row.name);
    os << ",";
    std::string labels;
    for (std::size_t i = 0; i < row.labels.size(); ++i) {
      if (i > 0) {
        labels += ';';
      }
      labels += row.labels[i].first + "=" + row.labels[i].second;
    }
    WriteCsvField(os, labels);
    os << "," << MetricKindName(row.kind) << "," << Num(row.value);
    if (row.kind == MetricKind::kHistogram) {
      os << "," << row.count << "," << Num(row.p50) << "," << Num(row.p95) << ","
         << Num(row.p99) << "," << Num(row.min) << "," << Num(row.max) << ","
         << Num(row.sum);
    } else {
      os << ",,,,,,,";
    }
    os << "\n";
  }
}

void WriteChromeTrace(const SpanTracer& spans, std::ostream& os) {
  os << "[";
  bool first = true;
  WriteSpanEvents(spans, os, &first);
  if (first) {
    os << "]\n";
    return;
  }
  os << "\n]\n";
}

void WriteChromeTrace(const Hub& hub, std::ostream& os) {
  os << "[";
  bool first = true;
  WriteSpanEvents(hub.spans(), os, &first);
  hub.kernels().WriteChromeTraceEvents(os, kKernelPidBase, &first);
  if (first) {
    os << "]\n";
    return;
  }
  os << "\n]\n";
}

void ExportMetricsCsv(const MetricRegistry& metrics, const std::string& path) {
  std::ofstream os(path);
  ORION_CHECK_MSG(os.good(), "cannot open metrics output file " << path);
  WriteMetricsCsv(metrics, os);
  ORION_CHECK_MSG(os.good(), "failed writing metrics to " << path);
}

void ExportChromeTrace(const Hub& hub, const std::string& path) {
  std::ofstream os(path);
  ORION_CHECK_MSG(os.good(), "cannot open trace output file " << path);
  WriteChromeTrace(hub, os);
  ORION_CHECK_MSG(os.good(), "failed writing trace to " << path);
}

StreamingExporter::StreamingExporter(Simulator* sim, const Hub* hub, Options options)
    : sim_(sim), hub_(hub), options_(std::move(options)) {
  ORION_CHECK(sim_ != nullptr && hub_ != nullptr);
  ORION_CHECK(options_.period_us >= 0.0);
}

StreamingExporter::~StreamingExporter() { Stop(); }

void StreamingExporter::Start() {
  if (options_.period_us <= 0.0 ||
      (options_.trace_path.empty() && options_.metrics_path.empty())) {
    return;
  }
  next_flush_ = sim_->ScheduleAfter(options_.period_us, [this]() { Flush(); });
}

void StreamingExporter::Stop() { sim_->Cancel(next_flush_); }

void StreamingExporter::Flush() {
  if (!options_.metrics_path.empty()) {
    ExportMetricsCsv(hub_->metrics(), options_.metrics_path);
  }
  if (!options_.trace_path.empty() && hub_->tracing()) {
    ExportChromeTrace(*hub_, options_.trace_path);
  }
  ++flushes_;
  next_flush_ = sim_->ScheduleAfter(options_.period_us, [this]() { Flush(); });
}

}  // namespace telemetry
}  // namespace orion
