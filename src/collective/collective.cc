#include "src/collective/collective.h"

#include <set>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace collective {

const char* CollectiveKindName(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "all_reduce";
    case CollectiveKind::kAllGather:
      return "all_gather";
    case CollectiveKind::kBroadcast:
      return "broadcast";
  }
  return "invalid";
}

CollectiveEngine::CollectiveEngine(Simulator* sim, interconnect::Fabric* fabric)
    : sim_(sim), fabric_(fabric) {
  ORION_CHECK(sim_ != nullptr);
  ORION_CHECK(fabric_ != nullptr);
}

void CollectiveEngine::BindCommStream(int gpu, gpusim::Device* device,
                                      gpusim::StreamId stream) {
  ORION_CHECK(device != nullptr);
  ORION_CHECK(stream != gpusim::kInvalidStream);
  channels_[gpu] = CommChannel{device, stream};
}

void CollectiveEngine::AllReduce(const std::vector<int>& ring, std::size_t bytes,
                                 Callback done) {
  Start(CollectiveKind::kAllReduce, ring, bytes, std::move(done));
}

void CollectiveEngine::AllGather(const std::vector<int>& ring, std::size_t bytes,
                                 Callback done) {
  Start(CollectiveKind::kAllGather, ring, bytes, std::move(done));
}

void CollectiveEngine::Broadcast(const std::vector<int>& ring, std::size_t bytes,
                                 Callback done) {
  Start(CollectiveKind::kBroadcast, ring, bytes, std::move(done));
}

void CollectiveEngine::Start(CollectiveKind kind, const std::vector<int>& ring,
                             std::size_t bytes, Callback done) {
  ORION_CHECK(!ring.empty());
  const std::set<int> distinct(ring.begin(), ring.end());
  ORION_CHECK_MSG(distinct.size() == ring.size(), "ring has duplicate GPU ids");

  ++collectives_inflight_;
  payload_bytes_total_ += static_cast<double>(bytes);

  const int n = static_cast<int>(ring.size());
  if (n == 1 || bytes == 0) {
    sim_->ScheduleAfter(0.0, [this, done = std::move(done)]() mutable {
      ++collectives_completed_;
      --collectives_inflight_;
      if (done) {
        done();
      }
    });
    return;
  }

  auto op = std::make_shared<RingOp>();
  op->kind = kind;
  op->ring = ring;
  op->done = std::move(done);
  // Payload split N ways; the remainder spreads over the leading chunks so
  // the chunk sizes sum exactly to `bytes`.
  const std::size_t base = bytes / static_cast<std::size_t>(n);
  const std::size_t rem = bytes % static_cast<std::size_t>(n);
  op->chunk_bytes.resize(static_cast<std::size_t>(n));
  for (std::size_t c = 0; c < op->chunk_bytes.size(); ++c) {
    op->chunk_bytes[c] = base + (c < rem ? 1 : 0);
  }
  switch (kind) {
    case CollectiveKind::kAllReduce:
      op->total_steps = 2 * (n - 1);
      break;
    case CollectiveKind::kAllGather:
      op->total_steps = n - 1;
      break;
    case CollectiveKind::kBroadcast:
      // Chunked pipeline over n-1 hops: chunk c crosses hop h in round
      // c + h, so the last chunk leaves the last hop in round 2n - 3.
      op->total_steps = 2 * n - 2;
      break;
  }
  RunStep(op);
}

void CollectiveEngine::RunStep(const std::shared_ptr<RingOp>& op) {
  const int n = static_cast<int>(op->ring.size());
  // (src, dst, bytes) sends of this step.
  struct Send {
    int src;
    int dst;
    std::size_t bytes;
  };
  std::vector<Send> sends;
  if (op->kind == CollectiveKind::kBroadcast) {
    // Wavefront pipeline: chunk c crosses hop h (ring[h] -> ring[h+1]) in
    // round c + h.
    for (int h = 0; h + 1 < n; ++h) {
      const int c = op->step - h;
      if (c >= 0 && c < n) {
        sends.push_back({op->ring[static_cast<std::size_t>(h)],
                         op->ring[static_cast<std::size_t>(h + 1)],
                         op->chunk_bytes[static_cast<std::size_t>(c)]});
      }
    }
  } else {
    // Ring step s: the GPU at position i forwards chunk (i - s) mod n to its
    // successor. Over the 2*(n-1) all-reduce steps this puts exactly
    // 2*(n-1)/n of the payload on every ring-adjacent link direction.
    for (int i = 0; i < n; ++i) {
      const int c = ((i - op->step) % n + n) % n;
      sends.push_back({op->ring[static_cast<std::size_t>(i)],
                       op->ring[static_cast<std::size_t>((i + 1) % n)],
                       op->chunk_bytes[static_cast<std::size_t>(c)]});
    }
  }
  ORION_CHECK(!sends.empty());

  op->pending_in_step = static_cast<int>(sends.size());
  for (const Send& send : sends) {
    IssueSend(send.src, send.dst, send.bytes, [this, op]() {
      if (--op->pending_in_step > 0) {
        return;
      }
      ++op->step;
      if (op->step == op->total_steps) {
        FinishCollective(op);
      } else {
        RunStep(op);
      }
    });
  }
}

void CollectiveEngine::FinishCollective(const std::shared_ptr<RingOp>& op) {
  ++collectives_completed_;
  --collectives_inflight_;
  if (op->done) {
    Callback done = std::move(op->done);
    done();
  }
}

void CollectiveEngine::IssueSend(int src, int dst, std::size_t bytes, Callback done) {
  const auto channel = channels_.find(src);
  if (channel != channels_.end()) {
    // Bound GPUs issue through their comm stream: the send occupies the
    // stream until the wire transfer completes, FIFO with any other comm
    // ops, and is visible to StreamIdle / SynchronizeDevice.
    channel->second.device->EnqueueExternal(
        channel->second.stream,
        [this, src, dst, bytes](gpusim::Device::CompletionCb on_wire_done) {
          fabric_->StartTransfer(src, dst, bytes, std::move(on_wire_done));
        },
        std::move(done));
    return;
  }
  fabric_->StartTransfer(src, dst, bytes, std::move(done));
}

}  // namespace collective
}  // namespace orion
