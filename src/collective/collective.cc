#include "src/collective/collective.h"

#include <set>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace collective {

const char* CollectiveKindName(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "all_reduce";
    case CollectiveKind::kAllGather:
      return "all_gather";
    case CollectiveKind::kBroadcast:
      return "broadcast";
  }
  return "invalid";
}

CollectiveEngine::CollectiveEngine(Simulator* sim, interconnect::Fabric* fabric)
    : sim_(sim), fabric_(fabric) {
  ORION_CHECK(sim_ != nullptr);
  ORION_CHECK(fabric_ != nullptr);
  BindInstruments();
}

void CollectiveEngine::set_telemetry(telemetry::Hub* hub) {
  hub_ = hub;
  BindInstruments();
}

void CollectiveEngine::BindInstruments() {
  telemetry::MetricRegistry& reg = hub_ != nullptr ? hub_->metrics() : local_metrics_;
  collectives_completed_ = reg.GetCounter("collective.completed");
  collectives_inflight_ = reg.GetGauge("collective.inflight");
  reformations_ = reg.GetCounter("collective.reformations");
  step_timeouts_ = reg.GetCounter("collective.step_timeouts");
  timeout_giveups_ = reg.GetCounter("collective.timeout_giveups");
  payload_bytes_total_ = reg.GetCounter("collective.payload_bytes");
  trace_track_ =
      hub_ != nullptr && hub_->tracing() ? hub_->spans().Track("collective") : -1;
}

void CollectiveEngine::BindCommStream(int gpu, gpusim::Device* device,
                                      gpusim::StreamId stream) {
  ORION_CHECK(device != nullptr);
  ORION_CHECK(stream != gpusim::kInvalidStream);
  channels_[gpu] = CommChannel{device, stream};
}

void CollectiveEngine::AllReduce(const std::vector<int>& ring, std::size_t bytes,
                                 Callback done) {
  Start(CollectiveKind::kAllReduce, ring, bytes, std::move(done));
}

void CollectiveEngine::AllGather(const std::vector<int>& ring, std::size_t bytes,
                                 Callback done) {
  Start(CollectiveKind::kAllGather, ring, bytes, std::move(done));
}

void CollectiveEngine::Broadcast(const std::vector<int>& ring, std::size_t bytes,
                                 Callback done) {
  Start(CollectiveKind::kBroadcast, ring, bytes, std::move(done));
}

void CollectiveEngine::Start(CollectiveKind kind, const std::vector<int>& ring_in,
                             std::size_t bytes, Callback done) {
  ORION_CHECK(!ring_in.empty());
  const std::set<int> distinct(ring_in.begin(), ring_in.end());
  ORION_CHECK_MSG(distinct.size() == ring_in.size(), "ring has duplicate GPU ids");

  // GPUs already declared dead never rejoin: every new collective runs on
  // the survivors (the degraded world size the DDP harness observes).
  std::vector<int> ring;
  ring.reserve(ring_in.size());
  for (int gpu : ring_in) {
    if (dead_gpus_.count(gpu) == 0) {
      ring.push_back(gpu);
    }
  }

  collectives_inflight_->Add(1.0);
  payload_bytes_total_->Inc(static_cast<double>(bytes));

  const int n = static_cast<int>(ring.size());
  if (n <= 1 || bytes == 0) {
    sim_->ScheduleAfter(0.0, [this, done = std::move(done)]() mutable {
      collectives_completed_->Inc();
      collectives_inflight_->Add(-1.0);
      if (done) {
        done();
      }
    });
    return;
  }

  auto op = std::make_shared<RingOp>();
  op->kind = kind;
  op->ring = std::move(ring);
  op->payload_bytes = bytes;
  op->done = std::move(done);
  if (trace_track_ >= 0) {
    op->span_id = next_span_id_++;
    hub_->spans().AsyncBegin(trace_track_, op->span_id, CollectiveKindName(kind),
                             sim_->now(),
                             {{"bytes", std::to_string(bytes)},
                              {"world", std::to_string(n)}});
  }
  PlanSteps(op);
  RunStep(op);
}

void CollectiveEngine::PlanSteps(const std::shared_ptr<RingOp>& op) {
  const int n = static_cast<int>(op->ring.size());
  ORION_CHECK(n >= 2);
  // Payload split N ways; the remainder spreads over the leading chunks so
  // the chunk sizes sum exactly to the payload.
  const std::size_t base = op->payload_bytes / static_cast<std::size_t>(n);
  const std::size_t rem = op->payload_bytes % static_cast<std::size_t>(n);
  op->chunk_bytes.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t c = 0; c < op->chunk_bytes.size(); ++c) {
    op->chunk_bytes[c] = base + (c < rem ? 1 : 0);
  }
  switch (op->kind) {
    case CollectiveKind::kAllReduce:
      op->total_steps = 2 * (n - 1);
      break;
    case CollectiveKind::kAllGather:
      op->total_steps = n - 1;
      break;
    case CollectiveKind::kBroadcast:
      // Chunked pipeline over n-1 hops: chunk c crosses hop h in round
      // c + h, so the last chunk leaves the last hop in round 2n - 3.
      op->total_steps = 2 * n - 2;
      break;
  }
}

void CollectiveEngine::RunStep(const std::shared_ptr<RingOp>& op) {
  const int n = static_cast<int>(op->ring.size());
  // (src, dst, bytes) sends of this step.
  struct Send {
    int src;
    int dst;
    std::size_t bytes;
  };
  std::vector<Send> sends;
  if (op->kind == CollectiveKind::kBroadcast) {
    // Wavefront pipeline: chunk c crosses hop h (ring[h] -> ring[h+1]) in
    // round c + h.
    for (int h = 0; h + 1 < n; ++h) {
      const int c = op->step - h;
      if (c >= 0 && c < n) {
        sends.push_back({op->ring[static_cast<std::size_t>(h)],
                         op->ring[static_cast<std::size_t>(h + 1)],
                         op->chunk_bytes[static_cast<std::size_t>(c)]});
      }
    }
  } else {
    // Ring step s: the GPU at position i forwards chunk (i - s) mod n to its
    // successor. Over the 2*(n-1) all-reduce steps this puts exactly
    // 2*(n-1)/n of the payload on every ring-adjacent link direction.
    for (int i = 0; i < n; ++i) {
      const int c = ((i - op->step) % n + n) % n;
      sends.push_back({op->ring[static_cast<std::size_t>(i)],
                       op->ring[static_cast<std::size_t>((i + 1) % n)],
                       op->chunk_bytes[static_cast<std::size_t>(c)]});
    }
  }
  ORION_CHECK(!sends.empty());

  sim_->Cancel(op->timeout_event);
  op->timeout_event = EventHandle();
  op->inflight.clear();
  op->pending_in_step = static_cast<int>(sends.size());
  const std::uint64_t epoch = op->epoch;
  for (const Send& send : sends) {
    IssueSend(op, send.src, send.dst, send.bytes, [this, op, epoch]() {
      if (op->epoch != epoch) {
        return;  // completion from an abandoned (re-formed) attempt
      }
      if (--op->pending_in_step > 0) {
        return;
      }
      sim_->Cancel(op->timeout_event);
      op->timeout_event = EventHandle();
      op->timeouts = 0;
      ++op->step;
      if (op->step == op->total_steps) {
        FinishCollective(op);
      } else {
        RunStep(op);
      }
    });
  }
  ArmTimeout(op);
}

void CollectiveEngine::ArmTimeout(const std::shared_ptr<RingOp>& op) {
  if (options_.step_timeout_us <= 0.0) {
    return;
  }
  DurationUs timeout = options_.step_timeout_us;
  for (int i = 0; i < op->timeouts; ++i) {
    timeout *= options_.timeout_growth;
  }
  op->timeout_event = sim_->ScheduleAfter(timeout, [this, op]() { OnStepTimeout(op); });
}

void CollectiveEngine::OnStepTimeout(const std::shared_ptr<RingOp>& op) {
  step_timeouts_->Inc();
  if (trace_track_ >= 0) {
    hub_->spans().Instant(trace_track_, "step-timeout", sim_->now(),
                          {{"step", std::to_string(op->step)},
                           {"kind", CollectiveKindName(op->kind)}});
  }
  std::vector<int> alive;
  std::vector<int> dead;
  for (int gpu : op->ring) {
    (fabric_->GpuAlive(gpu) ? alive : dead).push_back(gpu);
  }
  if (dead.empty()) {
    // Every member is reachable: a flap or congestion. Wait it out with
    // growing patience; after max_step_timeouts stop re-arming and let the
    // fabric deliver whenever it heals (bounds timer churn on a permanent
    // stall the plan never repairs).
    ++op->timeouts;
    if (op->timeouts >= options_.max_step_timeouts) {
      timeout_giveups_->Inc();
      return;
    }
    ArmTimeout(op);
    return;
  }

  // A member fell off the fabric: abandon this attempt and restart from
  // step 0 on the surviving ring. The epoch bump turns every outstanding
  // completion and queued comm-stream send of the old attempt into a no-op;
  // cancelling the in-flight transfers releases the comm streams they block.
  // (For a broadcast whose root died, the surviving front becomes the root.)
  dead_gpus_.insert(dead.begin(), dead.end());
  ++op->epoch;
  for (interconnect::TransferId id : op->inflight) {
    fabric_->CancelTransfer(id);
  }
  op->inflight.clear();
  reformations_->Inc();
  if (trace_track_ >= 0) {
    hub_->spans().Instant(trace_track_, "ring-reformation", sim_->now(),
                          {{"survivors", std::to_string(alive.size())},
                           {"dead", std::to_string(dead.size())}});
  }
  op->ring = std::move(alive);
  op->step = 0;
  op->timeouts = 0;
  if (reform_listener_) {
    reform_listener_(op->ring);
  }
  if (op->ring.size() <= 1) {
    FinishCollective(op);  // a world of one has nothing left to exchange
    return;
  }
  PlanSteps(op);
  RunStep(op);
}

void CollectiveEngine::FinishCollective(const std::shared_ptr<RingOp>& op) {
  sim_->Cancel(op->timeout_event);
  op->timeout_event = EventHandle();
  collectives_completed_->Inc();
  collectives_inflight_->Add(-1.0);
  if (op->span_id != 0 && trace_track_ >= 0) {
    hub_->spans().AsyncEnd(trace_track_, op->span_id, CollectiveKindName(op->kind),
                           sim_->now());
  }
  if (op->done) {
    Callback done = std::move(op->done);
    done();
  }
}

void CollectiveEngine::IssueSend(const std::shared_ptr<RingOp>& op, int src, int dst,
                                 std::size_t bytes, Callback done) {
  const std::uint64_t epoch = op->epoch;
  const auto channel = channels_.find(src);
  if (channel != channels_.end()) {
    // Bound GPUs issue through their comm stream: the send occupies the
    // stream until the wire transfer completes, FIFO with other comm
    // ops, and is visible to StreamIdle / SynchronizeDevice.
    channel->second.device->EnqueueExternal(
        channel->second.stream,
        [this, op, epoch, src, dst, bytes](gpusim::Device::CompletionCb on_wire_done) {
          if (op->epoch != epoch) {
            // The ring re-formed while this send sat queued behind other
            // comm traffic: skip the wire, just release the stream.
            sim_->ScheduleAfter(0.0, std::move(on_wire_done));
            return;
          }
          op->inflight.push_back(
              fabric_->StartTransfer(src, dst, bytes, std::move(on_wire_done)));
        },
        std::move(done));
    return;
  }
  op->inflight.push_back(fabric_->StartTransfer(src, dst, bytes, std::move(done)));
}

}  // namespace collective
}  // namespace orion
