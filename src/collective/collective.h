// Ring collectives over the interconnect fabric.
//
// Implements the communication pattern of distributed data-parallel training
// (gradient all-reduce) plus thin variants (broadcast, all-gather) as
// sequences of link transfers on a Fabric:
//
//   * All-reduce: the classic ring algorithm — reduce-scatter then
//     all-gather. The payload is cut into N chunks; in each of the 2*(N-1)
//     steps every GPU sends one chunk (~bytes/N) to its ring successor, so
//     each ring-adjacent link direction carries exactly 2*(N-1)/N * bytes.
//   * All-gather: the second phase alone, N-1 steps, (N-1)/N * bytes per
//     link direction.
//   * Broadcast: a chunked pipeline around the ring from the root; every
//     link direction of the first N-1 hops carries the full payload once.
//
// Steps run in lockstep (a step starts when every GPU finished the previous
// one) — the bulk-synchronous shape of NCCL ring collectives without its
// intra-step pipelining; chunk-level overlap within a step is deliberately
// not modeled. Local reduction arithmetic is treated as free (it is orders
// of magnitude faster than the wire).
//
// Each GPU's sends can be bound to a communication stream on its simulated
// Device (BindCommStream): sends are then enqueued as stream ops, FIFO with
// other comm traffic on the GPU and visible to schedulers and device
// synchronisation, exactly like cudaMemcpyPeerAsync on a dedicated stream.
#ifndef SRC_COLLECTIVE_COLLECTIVE_H_
#define SRC_COLLECTIVE_COLLECTIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/common/time_types.h"
#include "src/gpusim/device.h"
#include "src/interconnect/fabric.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"

namespace orion {
namespace collective {

enum class CollectiveKind : std::uint8_t { kAllReduce, kAllGather, kBroadcast };

const char* CollectiveKindName(CollectiveKind kind);

// Fault-detection policy (src/fault). A ring step that does not complete
// within the timeout is inspected: if every ring member is still alive on the
// fabric the stall is treated as a flap/congestion and waited out with
// exponentially growing patience (NCCL-style "communicator is slow, not
// dead"); if a member fell off the fabric, its in-flight sends are cancelled
// and the collective restarts from step 0 on the surviving ring. The default
// timeout of 0 disables detection entirely — collectives then stall forever
// on a dead link, the pre-fault-subsystem behaviour.
struct CollectiveOptions {
  DurationUs step_timeout_us = 0.0;  // 0 = detection off
  double timeout_growth = 2.0;       // patience multiplier per consecutive timeout
  // After this many consecutive timeouts with all members alive, stop
  // re-arming and wait for the fabric (bounds timer events on a stall the
  // plan never heals).
  int max_step_timeouts = 4;
};

class CollectiveEngine {
 public:
  using Callback = std::function<void()>;

  CollectiveEngine(Simulator* sim, interconnect::Fabric* fabric);
  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  // Routes GPU `gpu`'s collective sends through `stream` on `device` (an
  // external op per send). Unbound GPUs issue directly on the fabric.
  void BindCommStream(int gpu, gpusim::Device* device, gpusim::StreamId stream);

  // Fault-detection policy; set before starting collectives.
  void set_options(const CollectiveOptions& options) { options_ = options; }
  const CollectiveOptions& options() const { return options_; }

  // Telemetry (src/telemetry): statistics become "collective.*" registry
  // counters/gauges and, with tracing on, every collective is an async span
  // on a "collective" track with instants for step timeouts and ring
  // re-formations. Call before starting collectives.
  void set_telemetry(telemetry::Hub* hub);
  // Invoked after each ring re-formation with the surviving ring (fires
  // before the restarted collective issues any sends, so listeners can
  // snapshot fabric byte counters).
  using ReformListener = std::function<void(const std::vector<int>& new_ring)>;
  void set_reform_listener(ReformListener listener) { reform_listener_ = std::move(listener); }

  // `ring` lists distinct GPU ids in ring order (use
  // NodeTopology::PreferredRing to maximise NVLink adjacency). `bytes` is
  // the payload per GPU (all-reduce: the gradient buffer size; all-gather:
  // the total gathered size; broadcast: the buffer sent by ring.front()).
  // `done` fires via a simulator event when the collective completes on
  // every GPU. A 1-GPU ring or empty payload completes immediately.
  void AllReduce(const std::vector<int>& ring, std::size_t bytes, Callback done);
  void AllGather(const std::vector<int>& ring, std::size_t bytes, Callback done);
  void Broadcast(const std::vector<int>& ring, std::size_t bytes, Callback done);

  std::size_t collectives_completed() const {
    return static_cast<std::size_t>(collectives_completed_->AsCount());
  }
  std::size_t collectives_inflight() const {
    return static_cast<std::size_t>(collectives_inflight_->value());
  }
  double payload_bytes_total() const { return payload_bytes_total_->value(); }

  // --- Fault statistics. ---
  // Ring restarts after a member death.
  std::size_t reformations() const { return static_cast<std::size_t>(reformations_->AsCount()); }
  // Step timeouts that fired (flap waits and death detections both count).
  std::size_t step_timeouts() const { return static_cast<std::size_t>(step_timeouts_->AsCount()); }
  // Stalls where re-arming stopped after max_step_timeouts.
  std::size_t timeout_giveups() const {
    return static_cast<std::size_t>(timeout_giveups_->AsCount());
  }
  // GPUs declared dead; excluded from every subsequently started collective.
  const std::set<int>& dead_gpus() const { return dead_gpus_; }

 private:
  struct CommChannel {
    gpusim::Device* device = nullptr;
    gpusim::StreamId stream = gpusim::kInvalidStream;
  };

  struct RingOp {
    CollectiveKind kind = CollectiveKind::kAllReduce;
    std::vector<int> ring;
    // Chunk sizes by chunk index (payload split N ways, remainder spread
    // over the leading chunks so the sizes sum exactly to the payload).
    std::vector<std::size_t> chunk_bytes;
    std::size_t payload_bytes = 0;  // original payload (re-chunked on restart)
    int step = 0;
    int total_steps = 0;
    int pending_in_step = 0;
    // Bumped on ring re-formation: completions and queued comm-stream sends
    // from the abandoned attempt see a stale epoch and become no-ops.
    std::uint64_t epoch = 0;
    int timeouts = 0;  // consecutive timeouts on the current step
    // Fabric ids of this step's sends that reached the wire (cancelled on
    // re-formation so stalled bytes do not block comm streams forever).
    std::vector<interconnect::TransferId> inflight;
    EventHandle timeout_event;
    Callback done;
    std::uint64_t span_id = 0;  // async trace-span id (0 = tracing off)
  };

  void Start(CollectiveKind kind, const std::vector<int>& ring, std::size_t bytes,
             Callback done);
  void RunStep(const std::shared_ptr<RingOp>& op);
  void FinishCollective(const std::shared_ptr<RingOp>& op);
  // Issues one GPU-to-GPU send, through the comm stream when bound. The send
  // is tagged with the op's current epoch: if the ring re-forms before the
  // send starts streaming, it is skipped (queued sends) or cancelled
  // (in-flight sends) instead of running for the abandoned attempt.
  void IssueSend(const std::shared_ptr<RingOp>& op, int src, int dst,
                 std::size_t bytes, Callback done);
  // (Re)computes chunk sizes and the step count for the op's current ring.
  void PlanSteps(const std::shared_ptr<RingOp>& op);
  void ArmTimeout(const std::shared_ptr<RingOp>& op);
  void OnStepTimeout(const std::shared_ptr<RingOp>& op);

  // Binds the statistics instruments against the hub registry (private
  // fallback registry when no hub is installed).
  void BindInstruments();

  Simulator* sim_;
  interconnect::Fabric* fabric_;
  std::map<int, CommChannel> channels_;
  CollectiveOptions options_;
  ReformListener reform_listener_;
  std::set<int> dead_gpus_;

  telemetry::Hub* hub_ = nullptr;
  telemetry::MetricRegistry local_metrics_;
  telemetry::TrackId trace_track_ = -1;
  std::uint64_t next_span_id_ = 1;  // async span ids for collectives
  telemetry::Counter* collectives_completed_ = nullptr;
  telemetry::Gauge* collectives_inflight_ = nullptr;
  telemetry::Counter* reformations_ = nullptr;
  telemetry::Counter* step_timeouts_ = nullptr;
  telemetry::Counter* timeout_giveups_ = nullptr;
  telemetry::Counter* payload_bytes_total_ = nullptr;
};

}  // namespace collective
}  // namespace orion

#endif  // SRC_COLLECTIVE_COLLECTIVE_H_
