// Ring collectives over the interconnect fabric.
//
// Implements the communication pattern of distributed data-parallel training
// (gradient all-reduce) plus thin variants (broadcast, all-gather) as
// sequences of link transfers on a Fabric:
//
//   * All-reduce: the classic ring algorithm — reduce-scatter then
//     all-gather. The payload is cut into N chunks; in each of the 2*(N-1)
//     steps every GPU sends one chunk (~bytes/N) to its ring successor, so
//     each ring-adjacent link direction carries exactly 2*(N-1)/N * bytes.
//   * All-gather: the second phase alone, N-1 steps, (N-1)/N * bytes per
//     link direction.
//   * Broadcast: a chunked pipeline around the ring from the root; every
//     link direction of the first N-1 hops carries the full payload once.
//
// Steps run in lockstep (a step starts when every GPU finished the previous
// one) — the bulk-synchronous shape of NCCL ring collectives without its
// intra-step pipelining; chunk-level overlap within a step is deliberately
// not modeled. Local reduction arithmetic is treated as free (it is orders
// of magnitude faster than the wire).
//
// Each GPU's sends can be bound to a communication stream on its simulated
// Device (BindCommStream): sends are then enqueued as stream ops, FIFO with
// other comm traffic on the GPU and visible to schedulers and device
// synchronisation, exactly like cudaMemcpyPeerAsync on a dedicated stream.
#ifndef SRC_COLLECTIVE_COLLECTIVE_H_
#define SRC_COLLECTIVE_COLLECTIVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/time_types.h"
#include "src/gpusim/device.h"
#include "src/interconnect/fabric.h"
#include "src/sim/simulator.h"

namespace orion {
namespace collective {

enum class CollectiveKind : std::uint8_t { kAllReduce, kAllGather, kBroadcast };

const char* CollectiveKindName(CollectiveKind kind);

class CollectiveEngine {
 public:
  using Callback = std::function<void()>;

  CollectiveEngine(Simulator* sim, interconnect::Fabric* fabric);
  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  // Routes GPU `gpu`'s collective sends through `stream` on `device` (an
  // external op per send). Unbound GPUs issue directly on the fabric.
  void BindCommStream(int gpu, gpusim::Device* device, gpusim::StreamId stream);

  // `ring` lists distinct GPU ids in ring order (use
  // NodeTopology::PreferredRing to maximise NVLink adjacency). `bytes` is
  // the payload per GPU (all-reduce: the gradient buffer size; all-gather:
  // the total gathered size; broadcast: the buffer sent by ring.front()).
  // `done` fires via a simulator event when the collective completes on
  // every GPU. A 1-GPU ring or empty payload completes immediately.
  void AllReduce(const std::vector<int>& ring, std::size_t bytes, Callback done);
  void AllGather(const std::vector<int>& ring, std::size_t bytes, Callback done);
  void Broadcast(const std::vector<int>& ring, std::size_t bytes, Callback done);

  std::size_t collectives_completed() const { return collectives_completed_; }
  std::size_t collectives_inflight() const { return collectives_inflight_; }
  double payload_bytes_total() const { return payload_bytes_total_; }

 private:
  struct CommChannel {
    gpusim::Device* device = nullptr;
    gpusim::StreamId stream = gpusim::kInvalidStream;
  };

  struct RingOp {
    CollectiveKind kind = CollectiveKind::kAllReduce;
    std::vector<int> ring;
    // Chunk sizes by chunk index (payload split N ways, remainder spread
    // over the leading chunks so the sizes sum exactly to the payload).
    std::vector<std::size_t> chunk_bytes;
    int step = 0;
    int total_steps = 0;
    int pending_in_step = 0;
    Callback done;
  };

  void Start(CollectiveKind kind, const std::vector<int>& ring, std::size_t bytes,
             Callback done);
  void RunStep(const std::shared_ptr<RingOp>& op);
  void FinishCollective(const std::shared_ptr<RingOp>& op);
  // Issues one GPU-to-GPU send, through the comm stream when bound.
  void IssueSend(int src, int dst, std::size_t bytes, Callback done);

  Simulator* sim_;
  interconnect::Fabric* fabric_;
  std::map<int, CommChannel> channels_;
  std::size_t collectives_completed_ = 0;
  std::size_t collectives_inflight_ = 0;
  double payload_bytes_total_ = 0.0;
};

}  // namespace collective
}  // namespace orion

#endif  // SRC_COLLECTIVE_COLLECTIVE_H_
