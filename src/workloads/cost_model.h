// Analytic roofline cost model for DNN kernels.
//
// The paper profiles each kernel's duration, compute-throughput utilization,
// memory-bandwidth utilization and launch geometry with Nsight (§3.1, §5.2).
// Without a GPU we derive the same quantities analytically: every layer op
// reports its FLOPs, DRAM traffic, and launch geometry; the cost model turns
// those into a KernelDesc for the target device:
//
//   sm_frac      = min(1, sm_needed / num_sms)           (small kernels cannot
//                                                          fill the device)
//   compute_rate = peak_flops * eff_c * sm_frac
//   mem_rate     = peak_bw * eff_m * (0.25 + 0.75 * sm_frac)
//                                                        (DRAM bandwidth needs
//                                                         parallelism, but less
//                                                         than compute does)
//   duration     = max(flops / compute_rate, bytes / mem_rate) + fixed overhead
//   utilizations = achieved rate / device peak
//
// Efficiencies eff_c / eff_m are per-op-class constants calibrated so the
// model-zoo averages land in the ranges the paper's Table 1 reports.
#ifndef SRC_WORKLOADS_COST_MODEL_H_
#define SRC_WORKLOADS_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "src/gpusim/device_spec.h"
#include "src/gpusim/kernel.h"

namespace orion {
namespace workloads {

// One kernel in device-independent terms.
struct KernelWork {
  std::string name;
  double flops = 0.0;          // fp32 FLOPs
  double bytes = 0.0;          // DRAM bytes moved
  gpusim::LaunchGeometry geometry;
  double compute_eff = 0.55;   // fraction of peak compute achievable
  double mem_eff = 0.75;       // fraction of peak bandwidth achievable
  // Unique data footprint in elements (for memory-capacity estimation);
  // defaults to bytes/4 when zero. Differs from `bytes` for kernels that
  // re-stream their operands (convs, GEMMs).
  double footprint_elems = 0.0;
  bool has_roofline = true;    // Nsight produces a roofline for this kernel
  gpusim::KernelPhase phase = gpusim::KernelPhase::kNone;
};

// Fixed per-kernel device-side overhead (ramp-up/drain of the launch).
constexpr DurationUs kKernelFixedOverheadUs = 2.0;
// No kernel completes faster than this (launch + teardown floor).
constexpr DurationUs kMinKernelDurationUs = 3.0;

// Materialises a KernelWork into a KernelDesc for `spec`. `kernel_id` must be
// stable across iterations of the same workload (profile-table key, §5.2).
gpusim::KernelDesc BuildKernel(const gpusim::DeviceSpec& spec, const KernelWork& work,
                               std::uint64_t kernel_id);

}  // namespace workloads
}  // namespace orion

#endif  // SRC_WORKLOADS_COST_MODEL_H_
