#include "src/workloads/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace orion {
namespace workloads {

gpusim::KernelDesc BuildKernel(const gpusim::DeviceSpec& spec, const KernelWork& work,
                               std::uint64_t kernel_id) {
  ORION_CHECK_MSG(work.flops >= 0.0 && work.bytes >= 0.0,
                  "negative work in kernel " << work.name);

  gpusim::KernelDesc desc;
  desc.kernel_id = kernel_id;
  desc.name = work.name;
  desc.geometry = work.geometry;
  desc.phase = work.phase;

  const int sm_needed = gpusim::SmsNeeded(spec, work.geometry);
  const double sm_frac = std::min(1.0, static_cast<double>(sm_needed) / spec.num_sms);

  const double peak_flops = spec.peak_fp32_tflops * 1e12;     // FLOP/s
  const double peak_bw = spec.peak_membw_gbps * 1e9;          // B/s
  const double compute_rate = peak_flops * work.compute_eff * sm_frac;
  const double mem_rate = peak_bw * work.mem_eff * (0.25 + 0.75 * sm_frac);

  const double t_compute_s = compute_rate > 0.0 ? work.flops / compute_rate : 0.0;
  const double t_memory_s = mem_rate > 0.0 ? work.bytes / mem_rate : 0.0;
  DurationUs duration = std::max(t_compute_s, t_memory_s) * 1e6 + kKernelFixedOverheadUs;
  duration = std::max(duration, kMinKernelDurationUs);
  desc.duration_us = duration;

  const double duration_s = duration / 1e6;
  desc.compute_util = std::min(1.0, work.flops / (peak_flops * duration_s));
  desc.membw_util = std::min(1.0, work.bytes / (peak_bw * duration_s));

  desc.has_roofline = work.has_roofline;
  if (work.has_roofline) {
    // Nsight's roofline verdict: whichever wall the kernel sits against.
    desc.roofline_class = t_compute_s >= t_memory_s ? gpusim::ResourceProfile::kComputeBound
                                                    : gpusim::ResourceProfile::kMemoryBound;
    // Degenerate kernels dominated by fixed overhead are not meaningfully
    // bound by either resource; Nsight reports no roofline for them either.
    const double work_us = std::max(t_compute_s, t_memory_s) * 1e6;
    if (work_us < 0.5 * duration) {
      desc.has_roofline = false;
      desc.roofline_class = gpusim::ResourceProfile::kUnknown;
    }
  }
  return desc;
}

}  // namespace workloads
}  // namespace orion
