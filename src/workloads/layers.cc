#include "src/workloads/layers.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace workloads {
namespace {

constexpr double kBytesPerElem = 4.0;  // fp32 everywhere (§6.1: full precision)

double Ceil(double a, double b) { return std::ceil(a / b); }

}  // namespace

gpusim::LaunchGeometry GraphBuilder::GemmGeometry(double m, double n) {
  // Tiled GEMM with a CUBLAS/CUDNN-style tile ladder: prefer big tiles, but
  // shrink them until the grid is large enough to fill a datacenter GPU
  // (vendor libraries pick tiles by heuristic for exactly this reason —
  // without it, small-batch GEMMs would occupy a handful of SMs).
  struct Tile {
    int tm, tn, regs, smem;
  };
  constexpr Tile kTiles[] = {
      {128, 128, 96, 32 * 1024}, {128, 64, 80, 24 * 1024}, {64, 64, 64, 16 * 1024},
      {64, 32, 48, 12 * 1024},   {32, 32, 40, 8 * 1024},
  };
  constexpr double kTargetBlocks = 160.0;  // ~2 waves on an 80-SM device
  gpusim::LaunchGeometry geom;
  geom.threads_per_block = 256;
  for (const Tile& tile : kTiles) {
    geom.num_blocks = static_cast<int>(std::max(1.0, Ceil(m, tile.tm) * Ceil(n, tile.tn)));
    geom.registers_per_thread = tile.regs;
    geom.shared_mem_per_block = tile.smem;
    if (geom.num_blocks >= kTargetBlocks) {
      break;
    }
  }
  return geom;
}

gpusim::LaunchGeometry GraphBuilder::ElementwiseGeometry(double elems) {
  // Grid-stride loop: 256 threads x 4 elements per thread.
  gpusim::LaunchGeometry geom;
  geom.num_blocks = static_cast<int>(std::max(1.0, Ceil(elems, 1024)));
  geom.threads_per_block = 256;
  geom.registers_per_thread = 20;
  geom.shared_mem_per_block = 0;
  return geom;
}

gpusim::LaunchGeometry GraphBuilder::RowReduceGeometry(double rows) {
  // One block per row (softmax/layernorm style).
  gpusim::LaunchGeometry geom;
  geom.num_blocks = static_cast<int>(std::max(1.0, rows));
  geom.threads_per_block = 128;
  geom.registers_per_thread = 32;
  geom.shared_mem_per_block = 4 * 1024;
  return geom;
}

void GraphBuilder::Push(KernelWork fwd, std::vector<KernelWork> bwd, double params) {
  const double footprint =
      fwd.footprint_elems > 0.0 ? fwd.footprint_elems : fwd.bytes / kBytesPerElem;
  activation_elems_ = std::max(activation_elems_, footprint);
  forward_.push_back(std::move(fwd));
  if (task_ == TaskType::kTraining) {
    for (KernelWork& work : bwd) {
      work.phase = gpusim::KernelPhase::kBackward;
      backward_.push_back(std::move(work));
    }
    if (params > 0.0) {
      param_groups_.push_back(params);
    }
  }
  total_params_ += params;
}

void GraphBuilder::Conv2d(const std::string& name, int batch, int in_c, int out_c, int out_h,
                          int out_w, int kernel, int groups) {
  ORION_CHECK(groups >= 1 && in_c % groups == 0);
  const double outputs = static_cast<double>(batch) * out_c * out_h * out_w;
  const double k2icg = static_cast<double>(kernel) * kernel * (in_c / groups);
  const double flops = 2.0 * outputs * k2icg;
  const double params = k2icg * out_c;
  // DRAM traffic: tiled convolutions re-read input patches and weights
  // several times (imperfect cache reuse), so dense convs move ~6x the naive
  // unique-footprint traffic — this puts their bandwidth utilization near
  // the ~20% the paper measures for Conv2d (§3.2). The depthwise case
  // (groups == in_c) has tiny FLOPs and is memory-bound either way, matching
  // MobileNetV2's profile in Fig. 4.
  const double in_elems = static_cast<double>(batch) * in_c * out_h * out_w;
  // 1x1 convolutions are plain GEMMs (panel re-streaming only, ~2.5x); 3x3+
  // tiles re-read overlapping input windows (~6x); depthwise reads once.
  const double traffic_factor = groups > 1 ? 1.5 : (kernel == 1 ? 2.5 : 6.0);
  const double bytes = traffic_factor * (in_elems + params + outputs) * kBytesPerElem;

  KernelWork fwd;
  fwd.name = name;
  fwd.flops = flops;
  fwd.bytes = bytes;
  fwd.footprint_elems = in_elems + params + outputs;
  fwd.compute_eff = groups == 1 ? 0.68 : 0.30;  // dense convs: winograd/implicit-gemm; depthwise less efficient
  fwd.mem_eff = 0.72;
  fwd.phase = gpusim::KernelPhase::kForward;
  // Implicit-GEMM geometry: M = batch*oh*ow, N = out_c.
  fwd.geometry = GemmGeometry(static_cast<double>(batch) * out_h * out_w, out_c);
  if (groups > 1) {
    fwd.geometry = ElementwiseGeometry(outputs / 2.0);
    fwd.geometry.registers_per_thread = 40;
  }

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork dgrad = fwd;
    dgrad.name = name + ".dgrad";
    KernelWork wgrad = fwd;
    wgrad.name = name + ".wgrad";
    wgrad.bytes = (in_elems + outputs + params) * kBytesPerElem;
    bwd = {dgrad, wgrad};
  }
  Push(std::move(fwd), std::move(bwd), params);
}

void GraphBuilder::BatchNorm2d(const std::string& name, int batch, int channels, int h, int w) {
  const double elems = static_cast<double>(batch) * channels * h * w;
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 6.0 * elems;
  fwd.bytes = 3.2 * elems * kBytesPerElem;  // two read passes + one write, stats cached
  fwd.compute_eff = 0.45;
  fwd.mem_eff = 0.80;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(elems / 2.0);
  fwd.geometry.registers_per_thread = 32;

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    back.flops = 9.0 * elems;
    back.bytes = 4.5 * elems * kBytesPerElem;
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd), 2.0 * channels);
}

void GraphBuilder::Relu(const std::string& name, int batch, int channels, int h, int w) {
  const double elems = static_cast<double>(batch) * channels * h * w;
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = elems;
  fwd.bytes = 2.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.40;
  fwd.mem_eff = 0.85;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(elems);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    back.bytes = 3.0 * elems * kBytesPerElem;
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::Add(const std::string& name, int batch, int channels, int h, int w) {
  const double elems = static_cast<double>(batch) * channels * h * w;
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = elems;
  fwd.bytes = 3.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.40;
  fwd.mem_eff = 0.85;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(elems);
  // Backward of an add is gradient fan-out: no extra kernel in most
  // frameworks (views), so none is emitted.
  Push(std::move(fwd), {});
}

void GraphBuilder::Pool(const std::string& name, int batch, int channels, int out_h, int out_w,
                        int kernel) {
  const double outputs = static_cast<double>(batch) * channels * out_h * out_w;
  const double reads = outputs * kernel * kernel;
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = reads;
  fwd.bytes = (reads / 2.0 + outputs) * kBytesPerElem;  // halved reads: cache reuse
  fwd.compute_eff = 0.35;
  fwd.mem_eff = 0.70;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(outputs);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::Gemm(const std::string& name, double m, double n, double k) {
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 2.0 * m * n * k;
  // Tiled GEMMs re-stream their operand panels ~2.5x the unique footprint.
  fwd.bytes = 2.5 * (m * k + k * n + m * n) * kBytesPerElem;
  fwd.footprint_elems = m * k + k * n + m * n;
  fwd.compute_eff = 0.66;
  fwd.mem_eff = 0.70;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = GemmGeometry(m, n);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork da = fwd;
    da.name = name + ".dgrad";
    da.geometry = GemmGeometry(m, k);
    KernelWork db = fwd;
    db.name = name + ".wgrad";
    db.geometry = GemmGeometry(k, n);
    bwd = {da, db};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::Linear(const std::string& name, double batch_rows, double in_features,
                          double out_features) {
  const double params = in_features * out_features + out_features;
  // Reuse Gemm kernel shapes but account parameters for the update phase.
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 2.0 * batch_rows * in_features * out_features;
  fwd.bytes =
      2.5 * (batch_rows * in_features + params + batch_rows * out_features) * kBytesPerElem;
  fwd.footprint_elems = batch_rows * in_features + params + batch_rows * out_features;
  fwd.compute_eff = 0.66;
  fwd.mem_eff = 0.70;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = GemmGeometry(batch_rows, out_features);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork da = fwd;
    da.name = name + ".dgrad";
    da.geometry = GemmGeometry(batch_rows, in_features);
    KernelWork db = fwd;
    db.name = name + ".wgrad";
    db.geometry = GemmGeometry(in_features, out_features);
    bwd = {da, db};
  }
  Push(std::move(fwd), std::move(bwd), params);
}

void GraphBuilder::Softmax(const std::string& name, double rows, double cols) {
  const double elems = rows * cols;
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 5.0 * elems;
  fwd.bytes = 3.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.40;
  fwd.mem_eff = 0.80;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = RowReduceGeometry(rows);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    back.bytes = 4.0 * elems * kBytesPerElem;
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::LayerNorm(const std::string& name, double rows, double cols) {
  const double elems = rows * cols;
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 8.0 * elems;
  fwd.bytes = 3.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.40;
  fwd.mem_eff = 0.80;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = RowReduceGeometry(rows);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    back.bytes = 4.5 * elems * kBytesPerElem;
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd), 2.0 * cols);
}

void GraphBuilder::Gelu(const std::string& name, double elems) {
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 10.0 * elems;
  fwd.bytes = 2.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.45;
  fwd.mem_eff = 0.85;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(elems);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    back.bytes = 3.0 * elems * kBytesPerElem;
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::Dropout(const std::string& name, double elems) {
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = 2.0 * elems;
  fwd.bytes = 3.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.40;
  fwd.mem_eff = 0.80;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(elems);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::Embedding(const std::string& name, double tokens, double hidden) {
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = tokens * hidden;
  fwd.bytes = 2.0 * tokens * hidden * kBytesPerElem;  // gather + write
  fwd.compute_eff = 0.30;
  fwd.mem_eff = 0.55;  // gather pattern wastes bandwidth
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(tokens * hidden);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";  // scatter-add of gradients
    bwd = {back};
  }
  // Embedding tables are parameters but their sparse update is folded into
  // the scatter-add backward kernel, so no dense update group is added.
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::AddBias(const std::string& name, double elems) {
  KernelWork fwd;
  fwd.name = name;
  fwd.flops = elems;
  fwd.bytes = 2.0 * elems * kBytesPerElem;
  fwd.compute_eff = 0.40;
  fwd.mem_eff = 0.85;
  fwd.phase = gpusim::KernelPhase::kForward;
  fwd.geometry = ElementwiseGeometry(elems);

  std::vector<KernelWork> bwd;
  if (task_ == TaskType::kTraining) {
    KernelWork back = fwd;
    back.name = name + ".bwd";
    bwd = {back};
  }
  Push(std::move(fwd), std::move(bwd));
}

void GraphBuilder::Loss(const std::string& name, double rows, double cols) {
  if (task_ != TaskType::kTraining) {
    return;
  }
  const double elems = rows * cols;
  KernelWork loss;
  loss.name = name;
  loss.flops = 6.0 * elems;
  loss.bytes = 3.0 * elems * kBytesPerElem;
  loss.compute_eff = 0.40;
  loss.mem_eff = 0.75;
  loss.phase = gpusim::KernelPhase::kForward;
  loss.geometry = RowReduceGeometry(rows);
  Push(std::move(loss), {});
}

std::vector<KernelWork> GraphBuilder::Finish() {
  std::vector<KernelWork> out = forward_;
  if (task_ == TaskType::kTraining) {
    // Backward kernels run in reverse layer order; backward_ was built
    // front-first per layer, so reverse the whole list.
    out.insert(out.end(), backward_.rbegin(), backward_.rend());
    // Update phase: one SGD-with-momentum kernel per parameter group. These
    // are the short, low-utilization kernels that profile as "unknown".
    for (std::size_t g = 0; g < param_groups_.size(); ++g) {
      const double params = param_groups_[g];
      KernelWork update;
      update.name = "sgd_update." + std::to_string(g);
      update.flops = 4.0 * params;
      update.bytes = 5.0 * params * kBytesPerElem;  // p, g, momentum read+write
      update.compute_eff = 0.25;
      update.mem_eff = 0.45;
      update.has_roofline = false;  // Nsight has no roofline for these (§3.1)
      update.phase = gpusim::KernelPhase::kUpdate;
      update.geometry = ElementwiseGeometry(params);
      update.geometry.registers_per_thread = 24;
      out.push_back(std::move(update));
    }
  }
  return out;
}

}  // namespace workloads
}  // namespace orion
