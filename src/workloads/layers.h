// Layer-level graph builder: expands DNN layers into kernel work items.
//
// Models in the zoo are described layer by layer; the builder emits one or
// more KernelWork entries per layer for the forward pass and, for training
// workloads, records the matching backward kernels and per-layer parameter
// counts. Finish() lays the kernels out in execution order: forward, then
// backward (reverse layer order), then the optimizer update phase — whose
// small, low-utilization kernels are exactly the "unknown profile" kernels
// the paper observes in the update phase (§5.2).
//
// FLOP and byte counts follow standard analytic formulas; launch geometries
// approximate CUDNN/CUBLAS kernels (tiled GEMMs, channel-parallel reductions,
// grid-stride elementwise loops).
#ifndef SRC_WORKLOADS_LAYERS_H_
#define SRC_WORKLOADS_LAYERS_H_

#include <string>
#include <vector>

#include "src/workloads/cost_model.h"

namespace orion {
namespace workloads {

enum class TaskType { kInference, kTraining };

class GraphBuilder {
 public:
  explicit GraphBuilder(TaskType task) : task_(task) {}

  // --- Vision layers. Spatial sizes are post-op (output) height/width. ---
  void Conv2d(const std::string& name, int batch, int in_c, int out_c, int out_h, int out_w,
              int kernel, int groups = 1);
  void BatchNorm2d(const std::string& name, int batch, int channels, int h, int w);
  void Relu(const std::string& name, int batch, int channels, int h, int w);
  // Elementwise residual add.
  void Add(const std::string& name, int batch, int channels, int h, int w);
  void Pool(const std::string& name, int batch, int channels, int out_h, int out_w, int kernel);

  // --- Generic / NLP layers. ---
  void Gemm(const std::string& name, double m, double n, double k);
  void Softmax(const std::string& name, double rows, double cols);
  void LayerNorm(const std::string& name, double rows, double cols);
  void Gelu(const std::string& name, double elems);
  void Dropout(const std::string& name, double elems);
  void Embedding(const std::string& name, double tokens, double hidden);
  void AddBias(const std::string& name, double elems);

  // Fully connected layer: GEMM with parameters tracked for the update phase.
  void Linear(const std::string& name, double batch_rows, double in_features,
              double out_features);

  // Terminal loss kernels for training graphs (softmax + loss grad).
  void Loss(const std::string& name, double rows, double cols);

  // Lays out forward [+ backward + update] kernel work in execution order.
  std::vector<KernelWork> Finish();

  double total_params() const { return total_params_; }
  // Peak activation element count (for memory-footprint estimation).
  double activation_elems() const { return activation_elems_; }

 private:
  // Appends `fwd` to the forward list; if training, prepends `bwd` entries to
  // the backward list (so Finish() yields reverse layer order) and registers
  // `params` parameters for the update phase.
  void Push(KernelWork fwd, std::vector<KernelWork> bwd, double params = 0.0);

  static gpusim::LaunchGeometry GemmGeometry(double m, double n);
  static gpusim::LaunchGeometry ElementwiseGeometry(double elems);
  static gpusim::LaunchGeometry RowReduceGeometry(double rows);

  TaskType task_;
  std::vector<KernelWork> forward_;
  std::vector<KernelWork> backward_;  // reverse execution order (built front-first)
  std::vector<double> param_groups_;  // per-layer parameter counts
  double total_params_ = 0.0;
  double activation_elems_ = 0.0;
};

}  // namespace workloads
}  // namespace orion

#endif  // SRC_WORKLOADS_LAYERS_H_
