#include "src/workloads/models.h"

#include <utility>

#include "src/common/check.h"
#include "src/workloads/cost_model.h"

namespace orion {
namespace workloads {
namespace {

// --- ResNet (He et al. [51]); bottleneck counts per stage. --------------------

struct ResNetConfig {
  int blocks_per_stage[4];
};

void BuildResNet(GraphBuilder& g, const ResNetConfig& cfg, int batch) {
  // Stem: conv7x7 s2 -> 112x112x64, bn, relu, maxpool -> 56x56.
  g.Conv2d("stem.conv", batch, 3, 64, 112, 112, 7);
  g.BatchNorm2d("stem.bn", batch, 64, 112, 112);
  g.Relu("stem.relu", batch, 64, 112, 112);
  g.Pool("stem.maxpool", batch, 64, 56, 56, 3);

  const int widths[4] = {64, 128, 256, 512};
  const int spatial[4] = {56, 28, 14, 7};
  int in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const int mid = widths[stage];
    const int out_c = mid * 4;
    const int hw = spatial[stage];
    for (int block = 0; block < cfg.blocks_per_stage[stage]; ++block) {
      const std::string p =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(block) + ".";
      g.Conv2d(p + "conv1", batch, in_c, mid, hw, hw, 1);
      g.BatchNorm2d(p + "bn1", batch, mid, hw, hw);
      g.Relu(p + "relu1", batch, mid, hw, hw);
      g.Conv2d(p + "conv2", batch, mid, mid, hw, hw, 3);
      g.BatchNorm2d(p + "bn2", batch, mid, hw, hw);
      g.Relu(p + "relu2", batch, mid, hw, hw);
      g.Conv2d(p + "conv3", batch, mid, out_c, hw, hw, 1);
      g.BatchNorm2d(p + "bn3", batch, out_c, hw, hw);
      if (block == 0) {
        g.Conv2d(p + "downsample", batch, in_c, out_c, hw, hw, 1);
        g.BatchNorm2d(p + "downsample.bn", batch, out_c, hw, hw);
      }
      g.Add(p + "add", batch, out_c, hw, hw);
      g.Relu(p + "relu3", batch, out_c, hw, hw);
      in_c = out_c;
    }
  }
  g.Pool("avgpool", batch, 2048, 1, 1, 7);
  g.Linear("fc", batch, 2048, 1000);
  g.Loss("loss", batch, 1000);
}

// --- MobileNetV2 (Sandler et al. [84]); inverted residual config table. -------

void BuildMobileNetV2(GraphBuilder& g, int batch) {
  g.Conv2d("stem.conv", batch, 3, 32, 112, 112, 3);
  g.BatchNorm2d("stem.bn", batch, 32, 112, 112);
  g.Relu("stem.relu6", batch, 32, 112, 112);

  struct Block {
    int expand, out_c, repeat, stride;
  };
  // (t, c, n, s) from the MobileNetV2 paper.
  const Block blocks[] = {
      {1, 16, 1, 1}, {6, 24, 2, 2},  {6, 32, 3, 2},  {6, 64, 4, 2},
      {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  int in_c = 32;
  int hw = 112;
  int index = 0;
  for (const Block& block : blocks) {
    for (int r = 0; r < block.repeat; ++r) {
      const int stride = r == 0 ? block.stride : 1;
      if (stride == 2) {
        hw /= 2;
      }
      const std::string p = "ir" + std::to_string(index++) + ".";
      const int expanded = in_c * block.expand;
      if (block.expand != 1) {
        g.Conv2d(p + "expand", batch, in_c, expanded, hw, hw, 1);
        g.BatchNorm2d(p + "expand.bn", batch, expanded, hw, hw);
        g.Relu(p + "expand.relu6", batch, expanded, hw, hw);
      }
      // Depthwise 3x3 (groups == channels): memory-bound.
      g.Conv2d(p + "dw", batch, expanded, expanded, hw, hw, 3, expanded);
      g.BatchNorm2d(p + "dw.bn", batch, expanded, hw, hw);
      g.Relu(p + "dw.relu6", batch, expanded, hw, hw);
      g.Conv2d(p + "project", batch, expanded, block.out_c, hw, hw, 1);
      g.BatchNorm2d(p + "project.bn", batch, block.out_c, hw, hw);
      if (stride == 1 && in_c == block.out_c) {
        g.Add(p + "add", batch, block.out_c, hw, hw);
      }
      in_c = block.out_c;
    }
  }
  g.Conv2d("head.conv", batch, 320, 1280, 7, 7, 1);
  g.BatchNorm2d("head.bn", batch, 1280, 7, 7);
  g.Relu("head.relu6", batch, 1280, 7, 7);
  g.Pool("avgpool", batch, 1280, 1, 1, 7);
  g.Linear("classifier", batch, 1280, 1000);
  g.Loss("loss", batch, 1000);
}

// --- Transformer encoder stack shared by BERT and Transformer. ----------------

struct TransformerConfig {
  int layers;
  int hidden;
  int heads;
  int seq;
  int ffn;
  int vocab;
};

void BuildTransformerStack(GraphBuilder& g, const TransformerConfig& cfg, int batch) {
  const double tokens = static_cast<double>(batch) * cfg.seq;
  const double head_dim = static_cast<double>(cfg.hidden) / cfg.heads;
  g.Embedding("embed", tokens, cfg.hidden);
  g.LayerNorm("embed.ln", tokens, cfg.hidden);
  g.Dropout("embed.dropout", tokens * cfg.hidden);
  for (int layer = 0; layer < cfg.layers; ++layer) {
    const std::string p = "layer" + std::to_string(layer) + ".";
    // Attention: fused QKV projection, scores, softmax, context, output proj.
    g.Linear(p + "attn.qkv", tokens, cfg.hidden, 3.0 * cfg.hidden);
    g.Gemm(p + "attn.scores", static_cast<double>(batch) * cfg.heads * cfg.seq, cfg.seq,
           head_dim);
    g.Softmax(p + "attn.softmax", static_cast<double>(batch) * cfg.heads * cfg.seq, cfg.seq);
    g.Dropout(p + "attn.dropout", static_cast<double>(batch) * cfg.heads * cfg.seq * cfg.seq);
    g.Gemm(p + "attn.context", static_cast<double>(batch) * cfg.heads * cfg.seq, head_dim,
           cfg.seq);
    g.Linear(p + "attn.out", tokens, cfg.hidden, cfg.hidden);
    g.Add(p + "attn.residual", 1, 1, 1, static_cast<int>(tokens * cfg.hidden));
    g.LayerNorm(p + "attn.ln", tokens, cfg.hidden);
    // Feed-forward network.
    g.Linear(p + "ffn.fc1", tokens, cfg.hidden, cfg.ffn);
    g.Gelu(p + "ffn.gelu", tokens * cfg.ffn);
    g.Linear(p + "ffn.fc2", tokens, cfg.ffn, cfg.hidden);
    g.Add(p + "ffn.residual", 1, 1, 1, static_cast<int>(tokens * cfg.hidden));
    g.LayerNorm(p + "ffn.ln", tokens, cfg.hidden);
  }
  g.Linear("head", tokens, cfg.hidden, cfg.vocab / 8.0);  // tied/sampled softmax head
  g.Loss("loss", tokens, cfg.vocab / 8.0);
}

// --- LLM token-generation (extension, paper §7). ---------------------------

struct LlmConfig {
  int layers;
  int hidden;
  int heads;
  int context;       // KV-cache length attended per step
  int decode_steps;  // tokens generated per request
};

void BuildLlmDecode(GraphBuilder& g, const LlmConfig& cfg, int batch) {
  const double b = batch;
  const double head_dim = static_cast<double>(cfg.hidden) / cfg.heads;
  for (int step = 0; step < cfg.decode_steps; ++step) {
    const std::string t = "tok" + std::to_string(step) + ".";
    g.Embedding(t + "embed", b, cfg.hidden);
    for (int layer = 0; layer < cfg.layers; ++layer) {
      const std::string p = t + "layer" + std::to_string(layer) + ".";
      // Skinny GEMMs (m = batch): dominated by streaming the weight matrix,
      // hence memory-bound — the §7 observation.
      g.Linear(p + "qkv", b, cfg.hidden, 3.0 * cfg.hidden);
      // Attention over the KV cache: pure gather + dot products.
      g.Gemm(p + "attn.scores", b * cfg.heads, cfg.context, head_dim);
      g.Softmax(p + "attn.softmax", b * cfg.heads, cfg.context);
      g.Gemm(p + "attn.context", b * cfg.heads, head_dim, cfg.context);
      g.Linear(p + "attn.out", b, cfg.hidden, cfg.hidden);
      g.LayerNorm(p + "ln1", b, cfg.hidden);
      g.Linear(p + "ffn.fc1", b, cfg.hidden, 4.0 * cfg.hidden);
      g.Gelu(p + "ffn.gelu", b * 4.0 * cfg.hidden);
      g.Linear(p + "ffn.fc2", b, 4.0 * cfg.hidden, cfg.hidden);
      g.LayerNorm(p + "ln2", b, cfg.hidden);
    }
    g.Linear(t + "lm_head", b, cfg.hidden, 4000.0);  // sampled softmax head
  }
}

// One transformer decoder layer at `rows` query rows attending to `context`
// KV positions. Shared by the prefill builder (rows = context = prompt) and
// the decode-step builder (rows = batch, context = cache length).
void BuildLlmLayer(GraphBuilder& g, const LlmModelConfig& cfg, const std::string& p,
                   double rows, double context) {
  const double head_dim = static_cast<double>(cfg.hidden) / cfg.heads;
  const double ffn = cfg.ffn_mult * cfg.hidden;
  g.Linear(p + "qkv", rows, cfg.hidden, 3.0 * cfg.hidden);
  g.Gemm(p + "attn.scores", rows * cfg.heads, context, head_dim);
  g.Softmax(p + "attn.softmax", rows * cfg.heads, context);
  g.Gemm(p + "attn.context", rows * cfg.heads, head_dim, context);
  g.Linear(p + "attn.out", rows, cfg.hidden, cfg.hidden);
  g.LayerNorm(p + "ln1", rows, cfg.hidden);
  g.Linear(p + "ffn.fc1", rows, cfg.hidden, ffn);
  g.Gelu(p + "ffn.gelu", rows * ffn);
  g.Linear(p + "ffn.fc2", rows, ffn, cfg.hidden);
  g.LayerNorm(p + "ln2", rows, cfg.hidden);
}

std::vector<gpusim::KernelDesc> FinishLlmGraph(const gpusim::DeviceSpec& device,
                                               GraphBuilder& g, std::uint64_t base) {
  std::vector<KernelWork> work = g.Finish();
  std::vector<gpusim::KernelDesc> kernels;
  kernels.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    kernels.push_back(BuildKernel(device, work[i], base | static_cast<std::uint64_t>(i)));
  }
  return kernels;
}

}  // namespace

const char* ModelName(ModelId model) {
  switch (model) {
    case ModelId::kResNet50:
      return "resnet50";
    case ModelId::kMobileNetV2:
      return "mobilenetv2";
    case ModelId::kResNet101:
      return "resnet101";
    case ModelId::kBert:
      return "bert";
    case ModelId::kTransformer:
      return "transformer";
    case ModelId::kLlmDecode:
      return "llm-decode";
  }
  return "invalid";
}

bool IsVisionModel(ModelId model) {
  return model == ModelId::kResNet50 || model == ModelId::kMobileNetV2 ||
         model == ModelId::kResNet101;
}

WorkloadSpec MakeWorkload(ModelId model, TaskType task) {
  // Table 1 batch sizes.
  int batch = 1;
  if (task == TaskType::kInference) {
    batch = model == ModelId::kBert ? 2 : 4;
  } else if (model == ModelId::kLlmDecode) {
    batch = 4;  // decode is memory-bound regardless of (small) batch
  } else {
    switch (model) {
      case ModelId::kResNet50:
      case ModelId::kResNet101:
        batch = 32;
        break;
      case ModelId::kMobileNetV2:
        batch = 64;
        break;
      case ModelId::kBert:
      case ModelId::kTransformer:
        batch = 8;
        break;
      case ModelId::kLlmDecode:
        batch = 4;
        break;
    }
  }
  return MakeWorkload(model, task, batch);
}

WorkloadSpec MakeWorkload(ModelId model, TaskType task, int batch_size) {
  ORION_CHECK(batch_size >= 1);
  return WorkloadSpec{model, task, batch_size};
}

std::string WorkloadName(const WorkloadSpec& spec) {
  std::string name = ModelName(spec.model);
  name += spec.task == TaskType::kInference ? "-inf" : "-train";
  name += "-bs" + std::to_string(spec.batch_size);
  return name;
}

namespace {

// Expands `spec`'s layer graph into `g`. Shared by kernel building and the
// parameter/memory estimators (graphs are cheap to rebuild).
void BuildModelGraph(GraphBuilder& g, const WorkloadSpec& spec) {
  switch (spec.model) {
    case ModelId::kResNet50:
      BuildResNet(g, ResNetConfig{{3, 4, 6, 3}}, spec.batch_size);
      break;
    case ModelId::kResNet101:
      BuildResNet(g, ResNetConfig{{3, 4, 23, 3}}, spec.batch_size);
      break;
    case ModelId::kMobileNetV2:
      BuildMobileNetV2(g, spec.batch_size);
      break;
    case ModelId::kBert: {
      // BERT-large for inference, BERT-base for training (Table 1).
      const TransformerConfig cfg =
          spec.task == TaskType::kInference
              ? TransformerConfig{24, 1024, 16, 128, 4096, 30522}
              : TransformerConfig{12, 768, 12, 128, 3072, 30522};
      BuildTransformerStack(g, cfg, spec.batch_size);
      break;
    }
    case ModelId::kTransformer: {
      // Transformer-XL base-ish: 16 layers, d_model 512, seq 192.
      const TransformerConfig cfg{16, 512, 8, 192, 2048, 32000};
      BuildTransformerStack(g, cfg, spec.batch_size);
      break;
    }
    case ModelId::kLlmDecode:
      BuildLlmDecode(g, LlmConfig{12, 2048, 16, 512, 8}, spec.batch_size);
      break;
  }
}

// Embedding-table parameters the layer graph does not enumerate (vocab *
// hidden); NLP models hold them on-device alongside the layer weights.
double EmbeddingParams(const WorkloadSpec& spec) {
  if (spec.model == ModelId::kBert) {
    return spec.task == TaskType::kInference ? 30522.0 * 1024 : 30522.0 * 768;
  }
  if (spec.model == ModelId::kTransformer) {
    return 32000.0 * 512;
  }
  if (spec.model == ModelId::kLlmDecode) {
    return 32000.0 * 2048;  // vocab embedding + KV cache ride on this
  }
  return 0.0;
}

}  // namespace

std::vector<gpusim::KernelDesc> BuildKernels(const gpusim::DeviceSpec& device,
                                             const WorkloadSpec& spec) {
  ORION_CHECK_MSG(spec.model != ModelId::kLlmDecode || spec.task == TaskType::kInference,
                  "LLM decode is an inference-only workload");
  GraphBuilder g(spec.task);
  BuildModelGraph(g, spec);
  std::vector<KernelWork> work = g.Finish();
  std::vector<gpusim::KernelDesc> kernels;
  kernels.reserve(work.size());
  // Stable kernel ids: (model, task, index). Index fits comfortably in 24
  // bits; model/task select the upper bits.
  const std::uint64_t base = (static_cast<std::uint64_t>(spec.model) << 40) |
                             (static_cast<std::uint64_t>(spec.task) << 32);
  for (std::size_t i = 0; i < work.size(); ++i) {
    kernels.push_back(BuildKernel(device, work[i], base | static_cast<std::uint64_t>(i)));
  }
  return kernels;
}

std::vector<runtime::Op> BuildRequestOps(const gpusim::DeviceSpec& device,
                                         const WorkloadSpec& spec) {
  std::vector<runtime::Op> ops;
  // Input copy: images for vision, token ids for NLP.
  runtime::Op input;
  input.type = runtime::OpType::kMemcpyH2D;
  if (IsVisionModel(spec.model)) {
    input.bytes = static_cast<std::size_t>(spec.batch_size) * 3 * 224 * 224 * 4;
  } else {
    input.bytes = static_cast<std::size_t>(spec.batch_size) * 256 * 8;
  }
  input.blocking = false;  // frameworks use pinned-buffer async copies
  ops.push_back(input);

  std::vector<gpusim::KernelDesc> kernels = BuildKernels(device, spec);
  for (gpusim::KernelDesc& kernel : kernels) {
    runtime::Op op;
    op.type = runtime::OpType::kKernelLaunch;
    op.kernel = std::move(kernel);
    ops.push_back(std::move(op));
  }

  if (spec.task == TaskType::kInference) {
    runtime::Op output;
    output.type = runtime::OpType::kMemcpyD2H;
    output.bytes = static_cast<std::size_t>(spec.batch_size) * 1000 * 4;
    output.blocking = true;  // result consumed by the client
    ops.push_back(output);
  }

  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].index_in_request = static_cast<std::uint32_t>(i);
  }
  ops.back().end_of_request = true;
  return ops;
}

std::size_t ApproxParameterBytes(const WorkloadSpec& spec) {
  GraphBuilder counter(spec.task);
  BuildModelGraph(counter, spec);
  (void)counter.Finish();
  return static_cast<std::size_t>((counter.total_params() + EmbeddingParams(spec)) * 4.0);
}

std::size_t ApproxModelStateBytes(const WorkloadSpec& spec) {
  // Rebuild the graph to query parameter/activation totals; graphs are cheap.
  GraphBuilder counter(spec.task);
  BuildModelGraph(counter, spec);
  (void)counter.Finish();
  // Parameters, plus gradient and momentum buffers when training; NLP models
  // additionally hold their embedding tables (vocab * hidden).
  const double state_copies = spec.task == TaskType::kTraining ? 3.0 : 1.0;
  const double param_bytes =
      (counter.total_params() + EmbeddingParams(spec)) * 4.0 * state_copies;
  // Activations: forward keeps every layer's output alive for backward.
  const double act_scale = spec.task == TaskType::kTraining ? 18.0 : 2.5;
  const double act_bytes = counter.activation_elems() * 4.0 * act_scale;
  // Framework/CUDA context overhead.
  const double overhead = 600.0 * 1024 * 1024;
  return static_cast<std::size_t>(param_bytes + act_bytes + overhead);
}

// --- LLM serving builders (prefill / per-step decode). ----------------------
//
// Kernel ids: the serving tier never feeds these into a profiler table, but
// ids must still be unique within one build. Tag bits 56+ distinguish the
// two builders from the (model, task) scheme of BuildKernels, and the shape
// parameters occupy the middle bits so distinct shapes get distinct ids.

std::vector<gpusim::KernelDesc> BuildLlmPrefillKernels(const gpusim::DeviceSpec& device,
                                                       const LlmModelConfig& cfg,
                                                       int prompt_tokens) {
  ORION_CHECK(prompt_tokens >= 1);
  ORION_CHECK(cfg.layers >= 1 && cfg.hidden >= cfg.heads && cfg.heads >= 1);
  GraphBuilder g(TaskType::kInference);
  const double t = prompt_tokens;
  g.Embedding("prefill.embed", t, cfg.hidden);
  for (int layer = 0; layer < cfg.layers; ++layer) {
    // Full self-attention over the prompt: rows == context == prompt length,
    // so the GEMMs are square-ish and compute-bound — the phase split §7
    // (and Orca/vLLM) key on.
    BuildLlmLayer(g, cfg, "prefill.layer" + std::to_string(layer) + ".", t, t);
  }
  // Logits for the last position only: prefill emits exactly one token.
  g.Linear("prefill.lm_head", 1.0, cfg.hidden, cfg.vocab / 8.0);
  const std::uint64_t base =
      (0x70ull << 56) | (static_cast<std::uint64_t>(prompt_tokens) << 20);
  return FinishLlmGraph(device, g, base);
}

std::vector<gpusim::KernelDesc> BuildLlmDecodeStepKernels(const gpusim::DeviceSpec& device,
                                                          const LlmModelConfig& cfg, int batch,
                                                          int context_tokens) {
  ORION_CHECK(batch >= 1);
  ORION_CHECK(context_tokens >= 1);
  GraphBuilder g(TaskType::kInference);
  const double b = batch;
  g.Embedding("decode.embed", b, cfg.hidden);
  for (int layer = 0; layer < cfg.layers; ++layer) {
    // One query row per sequence against the whole KV cache: every Linear
    // streams its weight matrix for `batch` rows — memory-bound throughout.
    BuildLlmLayer(g, cfg, "decode.layer" + std::to_string(layer) + ".", b, context_tokens);
  }
  g.Linear("decode.lm_head", b, cfg.hidden, cfg.vocab / 8.0);
  const std::uint64_t base = (0x71ull << 56) |
                             (static_cast<std::uint64_t>(batch) << 40) |
                             (static_cast<std::uint64_t>(context_tokens) << 20);
  return FinishLlmGraph(device, g, base);
}

std::size_t LlmKvBytesPerToken(const LlmModelConfig& cfg) {
  // K and V vectors of `hidden` fp32 elements, per layer.
  return static_cast<std::size_t>(2) * static_cast<std::size_t>(cfg.layers) *
         static_cast<std::size_t>(cfg.hidden) * 4;
}

std::size_t LlmWeightBytes(const LlmModelConfig& cfg) {
  // Per layer: qkv (3h²) + attention out (h²) + fc1/fc2 (2·ffn_mult·h²).
  const double h = cfg.hidden;
  const double per_layer = (4.0 + 2.0 * cfg.ffn_mult) * h * h;
  const double embedding = static_cast<double>(cfg.vocab) * h;
  return static_cast<std::size_t>((cfg.layers * per_layer + embedding) * 4.0);
}

}  // namespace workloads
}  // namespace orion
