#include "src/workloads/ddp.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace workloads {

DdpIterationPlan PlanDdpIteration(const gpusim::DeviceSpec& device, const DdpConfig& config) {
  ORION_CHECK(config.num_gpus >= 1);
  ORION_CHECK(config.bucket_bytes > 0);

  const int global_batch = config.global_batch_size > 0
                               ? config.global_batch_size
                               : MakeWorkload(config.model, TaskType::kTraining).batch_size;
  ORION_CHECK_MSG(global_batch % config.num_gpus == 0,
                  "global batch " << global_batch << " does not divide across "
                                  << config.num_gpus << " GPUs");

  DdpIterationPlan plan;
  plan.per_gpu_workload =
      MakeWorkload(config.model, TaskType::kTraining, global_batch / config.num_gpus);
  plan.param_bytes = ApproxParameterBytes(plan.per_gpu_workload);

  for (gpusim::KernelDesc& kernel : BuildKernels(device, plan.per_gpu_workload)) {
    if (kernel.phase == gpusim::KernelPhase::kUpdate) {
      plan.update_kernels.push_back(std::move(kernel));
    } else {
      if (kernel.phase == gpusim::KernelPhase::kBackward) {
        plan.backward_us += kernel.duration_us;
      }
      plan.compute_kernels.push_back(std::move(kernel));
    }
  }
  for (const gpusim::KernelDesc& kernel : plan.compute_kernels) {
    plan.forward_backward_us += kernel.duration_us;
  }
  for (const gpusim::KernelDesc& kernel : plan.update_kernels) {
    plan.update_us += kernel.duration_us;
  }

  // Gradient buckets: full-size buckets plus a remainder, ready points
  // spread over backward time proportionally to cumulative gradient bytes.
  if (config.num_gpus > 1) {
    std::size_t remaining = plan.param_bytes;
    std::size_t accumulated = 0;
    while (remaining > 0) {
      GradientBucket bucket;
      bucket.bytes = std::min(remaining, config.bucket_bytes);
      remaining -= bucket.bytes;
      accumulated += bucket.bytes;
      bucket.ready_fraction =
          static_cast<double>(accumulated) / static_cast<double>(plan.param_bytes);
      plan.buckets.push_back(bucket);
    }
  }
  return plan;
}

}  // namespace workloads
}  // namespace orion
