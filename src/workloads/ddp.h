// Distributed data-parallel (DDP) training iteration model.
//
// Extends the single-GPU training workloads to N-GPU data parallelism, the
// workload class the paper's discussion (§7) points at for multi-GPU
// sharing. Each GPU runs the full model on 1/N of the global batch; after
// the backward pass produces gradients they are averaged across GPUs with a
// ring all-reduce sized by the model's parameter bytes. Following PyTorch
// DDP, gradients are grouped into fixed-size buckets that are all-reduced as
// soon as their gradients exist, overlapping communication with the rest of
// the backward pass; the optimizer update waits for the last bucket.
//
// This module only PLANS one iteration (per-GPU kernel sequence from the
// existing layer cost models, bucket sizes, readiness points); the multi-GPU
// harness (src/harness/multi_gpu.h) executes the plan on simulated devices
// and a link fabric.
#ifndef SRC_WORKLOADS_DDP_H_
#define SRC_WORKLOADS_DDP_H_

#include <cstddef>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/gpusim/kernel.h"
#include "src/workloads/models.h"

namespace orion {
namespace workloads {

struct DdpConfig {
  ModelId model = ModelId::kResNet50;
  int num_gpus = 1;
  // Global (summed over GPUs) batch per iteration; 0 = the model's paper
  // default training batch. Must divide evenly across the GPUs.
  int global_batch_size = 0;
  // Gradient bucket cap; 25 MB is the PyTorch DDP default.
  std::size_t bucket_bytes = std::size_t{25} << 20;
};

struct GradientBucket {
  std::size_t bytes = 0;
  // Fraction of the backward pass's compute (alone-time) after which this
  // bucket's gradients exist. Gradient volume is approximated as accruing
  // uniformly over backward time; buckets fill in reverse layer order, so
  // bucket k is ready once the first (cumulative bytes)/(param bytes) of the
  // backward pass has run.
  double ready_fraction = 1.0;
};

struct DdpIterationPlan {
  WorkloadSpec per_gpu_workload;
  // Forward + backward kernels of one GPU's iteration, execution order.
  std::vector<gpusim::KernelDesc> compute_kernels;
  // Optimizer-update kernels; in DDP these run only after the last gradient
  // bucket's all-reduce delivered the averaged gradients.
  std::vector<gpusim::KernelDesc> update_kernels;
  std::size_t param_bytes = 0;
  std::vector<GradientBucket> buckets;  // all-reduce issue order

  // Run-alone durations (no contention, no launch overhead), for scaling
  // estimates and test oracles.
  DurationUs forward_backward_us = 0.0;
  DurationUs backward_us = 0.0;
  DurationUs update_us = 0.0;
};

DdpIterationPlan PlanDdpIteration(const gpusim::DeviceSpec& device, const DdpConfig& config);

}  // namespace workloads
}  // namespace orion

#endif  // SRC_WORKLOADS_DDP_H_
