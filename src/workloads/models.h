// Model zoo: the five DNN workloads of the paper's evaluation (§6.1).
//
//   * ResNet50, ResNet101, MobileNetV2 — vision (TorchVision configs)
//   * BERT (large for inference, base for training — Table 1) and
//     Transformer — NLP (NVIDIA reference configs)
//
// Each workload expands into the kernel sequence of one inference request or
// one training iteration, via the layer builder and the analytic cost model.
// Kernel ids are stable across requests of the same workload, which is what
// the profiler's lookup table keys on (§5.2).
#ifndef SRC_WORKLOADS_MODELS_H_
#define SRC_WORKLOADS_MODELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/gpusim/kernel.h"
#include "src/runtime/op.h"
#include "src/workloads/layers.h"

namespace orion {
namespace workloads {

enum class ModelId : std::uint8_t {
  kResNet50,
  kMobileNetV2,
  kResNet101,
  kBert,         // BERT-large for inference, BERT-base for training (Table 1)
  kTransformer,
  // Extension (paper §7): autoregressive LLM token generation. Each request
  // decodes a fixed number of tokens sequentially; every step is dominated
  // by weight and KV-cache streaming, i.e. memory-bound kernels that
  // underutilize compute throughput — the collocation opportunity the paper
  // describes for LLM inference. Not part of the paper's evaluated set
  // (hence excluded from kAllModels).
  kLlmDecode,
};

// The five models of the paper's evaluation (§6.1).
constexpr ModelId kAllModels[] = {ModelId::kResNet50, ModelId::kMobileNetV2,
                                  ModelId::kResNet101, ModelId::kBert, ModelId::kTransformer};

const char* ModelName(ModelId model);
bool IsVisionModel(ModelId model);

struct WorkloadSpec {
  ModelId model = ModelId::kResNet50;
  TaskType task = TaskType::kInference;
  int batch_size = 1;
};

// Paper defaults (Table 1): inference bs 4/4/4/2/4, training bs 32/64/32/8/8.
WorkloadSpec MakeWorkload(ModelId model, TaskType task);
WorkloadSpec MakeWorkload(ModelId model, TaskType task, int batch_size);

std::string WorkloadName(const WorkloadSpec& spec);

// Kernel sequence of one request (inference) or one iteration (training).
std::vector<gpusim::KernelDesc> BuildKernels(const gpusim::DeviceSpec& device,
                                             const WorkloadSpec& spec);

// Full request op list: input H2D copy, kernels, output D2H copy (inference
// only; a training iteration keeps its state on-device).
std::vector<runtime::Op> BuildRequestOps(const gpusim::DeviceSpec& device,
                                         const WorkloadSpec& spec);

// Rough GPU-resident state: parameters (plus gradients + momentum when
// training) and peak activations. Used for Table 1's memory-capacity column
// and the harness's fits-in-memory admission check.
std::size_t ApproxModelStateBytes(const WorkloadSpec& spec);

// Learnable-parameter bytes alone (fp32, embedding tables included): the
// gradient volume a data-parallel trainer all-reduces every iteration.
std::size_t ApproxParameterBytes(const WorkloadSpec& spec);

// --- Autoregressive LLM serving (paper §7, ROADMAP "LLM serving"). ---------
//
// Continuous-batching serving needs the two phases of autoregressive
// inference as separate kernel sequences: a PREFILL pass over the whole
// prompt (large GEMMs, compute-bound) that runs once per sequence, and a
// per-token DECODE step (skinny GEMMs + KV-cache attention, memory-bound)
// that runs once per generated token over however many sequences share the
// iteration. BuildKernels(kLlmDecode) keeps emitting the legacy fixed
// 8-token request for the collocation benches; the serving engine composes
// these two builders instead.
struct LlmModelConfig {
  int layers = 12;
  int hidden = 2048;
  int heads = 16;
  double ffn_mult = 4.0;  // FFN inner dim = ffn_mult * hidden
  int vocab = 32000;
};

// Kernel sequence of one prefill pass over `prompt_tokens` tokens of a
// single sequence (sequences prefill independently; a step's prefill cost is
// the sum over its joiners). Compute-bound at realistic prompt lengths.
std::vector<gpusim::KernelDesc> BuildLlmPrefillKernels(const gpusim::DeviceSpec& device,
                                                       const LlmModelConfig& cfg,
                                                       int prompt_tokens);

// Kernel sequence of ONE decode step for `batch` sequences, each attending
// to a KV cache of `context_tokens`. Memory-bound: every matmul streams the
// full weight matrix for a handful of rows.
std::vector<gpusim::KernelDesc> BuildLlmDecodeStepKernels(const gpusim::DeviceSpec& device,
                                                          const LlmModelConfig& cfg, int batch,
                                                          int context_tokens);

// KV-cache bytes one token of one sequence pins: K and V vectors per layer,
// fp32. The unit the serving tier's block allocator (serving/kv_cache.h)
// accounts device memory in.
std::size_t LlmKvBytesPerToken(const LlmModelConfig& cfg);

// Resident weight bytes of the decoder (fp32 layers + embedding table).
std::size_t LlmWeightBytes(const LlmModelConfig& cfg);

}  // namespace workloads
}  // namespace orion

#endif  // SRC_WORKLOADS_MODELS_H_
