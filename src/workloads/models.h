// Model zoo: the five DNN workloads of the paper's evaluation (§6.1).
//
//   * ResNet50, ResNet101, MobileNetV2 — vision (TorchVision configs)
//   * BERT (large for inference, base for training — Table 1) and
//     Transformer — NLP (NVIDIA reference configs)
//
// Each workload expands into the kernel sequence of one inference request or
// one training iteration, via the layer builder and the analytic cost model.
// Kernel ids are stable across requests of the same workload, which is what
// the profiler's lookup table keys on (§5.2).
#ifndef SRC_WORKLOADS_MODELS_H_
#define SRC_WORKLOADS_MODELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/gpusim/kernel.h"
#include "src/runtime/op.h"
#include "src/workloads/layers.h"

namespace orion {
namespace workloads {

enum class ModelId : std::uint8_t {
  kResNet50,
  kMobileNetV2,
  kResNet101,
  kBert,         // BERT-large for inference, BERT-base for training (Table 1)
  kTransformer,
  // Extension (paper §7): autoregressive LLM token generation. Each request
  // decodes a fixed number of tokens sequentially; every step is dominated
  // by weight and KV-cache streaming, i.e. memory-bound kernels that
  // underutilize compute throughput — the collocation opportunity the paper
  // describes for LLM inference. Not part of the paper's evaluated set
  // (hence excluded from kAllModels).
  kLlmDecode,
};

// The five models of the paper's evaluation (§6.1).
constexpr ModelId kAllModels[] = {ModelId::kResNet50, ModelId::kMobileNetV2,
                                  ModelId::kResNet101, ModelId::kBert, ModelId::kTransformer};

const char* ModelName(ModelId model);
bool IsVisionModel(ModelId model);

struct WorkloadSpec {
  ModelId model = ModelId::kResNet50;
  TaskType task = TaskType::kInference;
  int batch_size = 1;
};

// Paper defaults (Table 1): inference bs 4/4/4/2/4, training bs 32/64/32/8/8.
WorkloadSpec MakeWorkload(ModelId model, TaskType task);
WorkloadSpec MakeWorkload(ModelId model, TaskType task, int batch_size);

std::string WorkloadName(const WorkloadSpec& spec);

// Kernel sequence of one request (inference) or one iteration (training).
std::vector<gpusim::KernelDesc> BuildKernels(const gpusim::DeviceSpec& device,
                                             const WorkloadSpec& spec);

// Full request op list: input H2D copy, kernels, output D2H copy (inference
// only; a training iteration keeps its state on-device).
std::vector<runtime::Op> BuildRequestOps(const gpusim::DeviceSpec& device,
                                         const WorkloadSpec& spec);

// Rough GPU-resident state: parameters (plus gradients + momentum when
// training) and peak activations. Used for Table 1's memory-capacity column
// and the harness's fits-in-memory admission check.
std::size_t ApproxModelStateBytes(const WorkloadSpec& spec);

// Learnable-parameter bytes alone (fp32, embedding tables included): the
// gradient volume a data-parallel trainer all-reduces every iteration.
std::size_t ApproxParameterBytes(const WorkloadSpec& spec);

}  // namespace workloads
}  // namespace orion

#endif  // SRC_WORKLOADS_MODELS_H_
