// The Orion scheduler (§5.1 of the paper, Listing 1).
//
// Policy, translated from the paper's polling loop into event-driven form
// (wake-ups on op enqueue and kernel completion):
//   * High-priority ops are submitted immediately on a dedicated
//     high-priority stream.
//   * A best-effort kernel is submitted only when
//       - no high-priority kernel is outstanding on the GPU, or
//       - it needs fewer than SM_THRESHOLD SMs AND its compute/memory profile
//         differs from the currently executing high-priority kernel's
//         (opposite-profile collocation, §3.2), and
//       - the expected total duration of outstanding best-effort kernels is
//         below DUR_THRESHOLD (a fraction of the high-priority job's
//         run-alone request latency), checked via a CUDA event query on the
//         best-effort stream (§5.1.2) — the throttle that substitutes for
//         kernel preemption on closed GPUs.
//   * Unknown-profile kernels collocate with anything (§5.2).
//   * Memory ops are submitted directly (§5.1.3).
//   * Multiple best-effort clients are served round-robin, one GPU stream
//     each.
//
// Every policy ingredient is independently switchable so the Fig. 14
// breakdown is a first-class experiment.
#ifndef SRC_CORE_ORION_SCHEDULER_H_
#define SRC_CORE_ORION_SCHEDULER_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/gpusim/kernel.h"

namespace orion {
namespace core {

struct OrionOptions {
  // DUR_THRESHOLD as a fraction of the high-priority run-alone request
  // latency. Paper default: 2.5% (§5.1.1).
  double dur_threshold_frac = 0.025;
  // SM_THRESHOLD in SMs; <= 0 means "total SMs on the device" (the default
  // in §5.1.1).
  int sm_threshold = 0;

  // Fig. 14 ablation switches.
  bool use_stream_priorities = true;
  bool use_profile_check = true;  // opposite compute/memory profile rule
  bool use_sm_check = true;       // SM_THRESHOLD rule
  bool use_dur_throttle = true;   // DUR_THRESHOLD rule
};

class OrionScheduler : public Scheduler {
 public:
  explicit OrionScheduler(OrionOptions options = {});

  std::string name() const override { return "orion"; }
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<SchedClientInfo> clients) override;
  void Enqueue(ClientId client, SchedOp op) override;

  const OrionOptions& options() const { return options_; }
  // Effective SM_THRESHOLD after resolution against the device.
  int sm_threshold() const { return sm_threshold_; }
  void set_sm_threshold(int threshold) { sm_threshold_ = threshold; }

  // Statistics for the overhead/ablation benches.
  std::size_t be_kernels_submitted() const { return be_kernels_submitted_; }
  std::size_t be_throttle_skips() const { return be_throttle_skips_; }
  std::size_t be_profile_skips() const { return be_profile_skips_; }

 private:
  struct BeClient {
    ClientId id = 0;
    gpusim::StreamId stream = gpusim::kInvalidStream;
    const profiler::WorkloadProfile* profile = nullptr;
    std::deque<SchedOp> queue;
  };

  // Attempts to submit best-effort work; called on every wake-up.
  void PollBestEffort();
  // Listing 1's schedule_be(): is this (kernel or graph) op suitable now?
  bool ScheduleBe(const runtime::Op& op, const BeClient& be);
  void SubmitHp(SchedOp op);
  void SubmitBe(BeClient& be, SchedOp op);

  OrionOptions options_;
  Simulator* sim_ = nullptr;
  runtime::GpuRuntime* rt_ = nullptr;

  // High-priority client state.
  ClientId hp_client_ = -1;
  gpusim::StreamId hp_stream_ = gpusim::kInvalidStream;
  const profiler::WorkloadProfile* hp_profile_ = nullptr;
  DurationUs hp_target_latency_ = 0.0;
  int hp_outstanding_ = 0;  // submitted-but-not-completed hp kernels
  // Profiles of outstanding hp kernels, FIFO; front = currently executing.
  std::deque<gpusim::ResourceProfile> hp_running_profiles_;

  // Best-effort state.
  std::vector<BeClient> be_clients_;
  std::size_t rr_cursor_ = 0;
  double be_duration_ = 0.0;  // expected µs of outstanding be kernels (Listing 1)
  std::shared_ptr<gpusim::GpuEvent> be_submitted_;  // event after last be kernel

  int sm_threshold_ = 0;
  std::size_t be_kernels_submitted_ = 0;
  std::size_t be_throttle_skips_ = 0;
  std::size_t be_profile_skips_ = 0;
};

}  // namespace core
}  // namespace orion

#endif  // SRC_CORE_ORION_SCHEDULER_H_
