// The Orion scheduler (§5.1 of the paper, Listing 1).
//
// Policy, translated from the paper's polling loop into event-driven form
// (wake-ups on op enqueue and kernel completion):
//   * High-priority ops are submitted immediately on a dedicated
//     high-priority stream.
//   * A best-effort kernel is submitted only when
//       - no high-priority kernel is outstanding on the GPU, or
//       - it needs fewer than SM_THRESHOLD SMs AND its compute/memory profile
//         differs from the currently executing high-priority kernel's
//         (opposite-profile collocation, §3.2), and
//       - the expected total duration of outstanding best-effort kernels is
//         below DUR_THRESHOLD (a fraction of the high-priority job's
//         run-alone request latency), checked via a CUDA event query on the
//         best-effort stream (§5.1.2) — the throttle that substitutes for
//         kernel preemption on closed GPUs.
//   * Unknown-profile kernels collocate with anything (§5.2).
//   * Memory ops are submitted directly (§5.1.3).
//   * Multiple best-effort clients are served round-robin, one GPU stream
//     each.
//
// Every policy ingredient is independently switchable so the Fig. 14
// breakdown is a first-class experiment.
#ifndef SRC_CORE_ORION_SCHEDULER_H_
#define SRC_CORE_ORION_SCHEDULER_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/core/scheduler.h"
#include "src/gpusim/kernel.h"
#include "src/telemetry/telemetry.h"

namespace orion {
namespace core {

struct OrionOptions {
  // DUR_THRESHOLD as a fraction of the high-priority run-alone request
  // latency. Paper default: 2.5% (§5.1.1).
  double dur_threshold_frac = 0.025;
  // SM_THRESHOLD in SMs; <= 0 means "total SMs on the device" (the default
  // in §5.1.1).
  int sm_threshold = 0;

  // Fig. 14 ablation switches.
  bool use_stream_priorities = true;
  bool use_profile_check = true;  // opposite compute/memory profile rule
  bool use_sm_check = true;       // SM_THRESHOLD rule
  bool use_dur_throttle = true;   // DUR_THRESHOLD rule

  // --- Graceful degradation (src/fault). ---
  // Treat kernels missing from a client's profile as memory-bound instead of
  // trusting their descriptors (stale/poisoned-profile fallback): an
  // unrecognised best-effort kernel then never collocates with memory-bound
  // hp work. Off by default — the fault-free profiles are complete.
  bool conservative_profile_miss = false;
  // Runaway-kernel watchdog: if the best-effort stream's completion event
  // stays unresolved for runaway_timeout_factor × DUR_THRESHOLD µs while the
  // throttle is blocked on it, the client that submitted last is declared
  // hung and quarantined, and the throttle resets so surviving best-effort
  // clients are not starved behind the dead event. <= 0 disables (default):
  // DUR_THRESHOLD sizes the budget so legitimate work drains well inside a
  // few budgets; the factor should be much larger than 1.
  double runaway_timeout_factor = 0.0;
};

class OrionScheduler : public Scheduler {
 public:
  explicit OrionScheduler(OrionOptions options = {});

  std::string name() const override { return "orion"; }
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<SchedClientInfo> clients) override;
  void Enqueue(ClientId client, SchedOp op) override;
  // Drops the crashed client's queued ops, removes its contribution from the
  // DUR_THRESHOLD accounting, and releases its device memory. Later enqueues
  // from the client are dropped. Never stalls hp work or surviving be
  // clients; resident kernels of the dead client run out on the device
  // (there is no preemption to reclaim them early).
  void OnClientCrash(ClientId client) override;
  // Re-resolves SM_THRESHOLD against the shrunken SM pool.
  void OnDeviceDegraded() override;

  const OrionOptions& options() const { return options_; }
  // Effective SM_THRESHOLD after resolution against the device.
  int sm_threshold() const { return sm_threshold_; }
  void set_sm_threshold(int threshold) { sm_threshold_ = threshold; }

  // Telemetry (src/telemetry): decision statistics live in the hub's metric
  // registry as "orion.*" counters (a private registry when no hub is
  // installed) and, with tracing enabled, gating decisions and quarantines
  // become instant events on an "orion-sched" track. Call before Attach.
  void set_telemetry(telemetry::Hub* hub) override;

  // Statistics for the overhead/ablation benches. These read the registry
  // counters — the registry is the single source of truth, not a mirror.
  std::size_t be_kernels_submitted() const { return CounterCount(be_kernels_submitted_); }
  std::size_t be_throttle_skips() const { return CounterCount(be_throttle_skips_); }
  std::size_t be_profile_skips() const { return CounterCount(be_profile_skips_); }
  // Poll-epoch guard statistics: wake-ups seen vs. wake-ups answered with a
  // provably redundant scan that was skipped.
  std::size_t be_polls() const { return CounterCount(be_polls_); }
  std::size_t be_polls_coalesced() const { return CounterCount(be_polls_coalesced_); }

  // --- Fault statistics. ---
  std::size_t clients_quarantined() const { return CounterCount(clients_quarantined_); }
  std::size_t runaway_quarantines() const { return CounterCount(runaway_quarantines_); }
  std::size_t be_ops_dropped() const { return CounterCount(be_ops_dropped_); }
  std::size_t be_bytes_released() const { return CounterCount(be_bytes_released_); }
  bool client_quarantined(ClientId client) const;

 private:
  struct BeClient {
    ClientId id = 0;
    gpusim::StreamId stream = gpusim::kInvalidStream;
    const profiler::WorkloadProfile* profile = nullptr;
    // Dispatch record for latency attribution: expected µs of this client's
    // kernels submitted while high-priority work was outstanding — the
    // scheduler's own account of how much best-effort time it chose to
    // overlap with the hp tenant (the "who to blame" input for the
    // kInterference phase). Labelled per client in the hub registry.
    telemetry::Counter* collocated_us = nullptr;
    std::deque<SchedOp> queue;
    bool quarantined = false;
    // Expected µs of this client's submitted-but-not-completed kernels; the
    // slice of be_duration_ recredited if the client crashes mid-flight.
    double outstanding_us = 0.0;
    // The profile-backed slice of outstanding_us. Profile-miss ops fall back
    // to descriptor numbers for throttle accounting, but those numbers are
    // not *trusted*: the runaway watchdog scales its deadline with this sum
    // only, so an unprofiled kernel that overstays the DUR budget is a
    // conviction candidate no matter what its descriptor claimed.
    double outstanding_trusted_us = 0.0;
  };

  // Attempts to submit best-effort work; called on every wake-up. Bursty
  // completions at one sim timestamp trigger one queue scan, not N: a poll
  // is skipped iff the clock has not advanced AND no scheduler state that
  // can change a gating decision mutated since the last completed poll
  // (every mutation site bumps state_epoch_), so a skipped poll is exactly
  // a scan that would have found what the previous scan found.
  void PollBestEffort();
  // Listing 1's schedule_be(): is this (kernel or graph) op suitable now?
  bool ScheduleBe(const runtime::Op& op, const BeClient& be);
  void SubmitHp(SchedOp op);
  void SubmitBe(BeClient& be, SchedOp op);
  // Arms the runaway watchdog while the throttle is blocked on be_submitted_.
  void ArmWatchdog();

  OrionOptions options_;
  Simulator* sim_ = nullptr;
  runtime::GpuRuntime* rt_ = nullptr;

  // High-priority client state.
  ClientId hp_client_ = -1;
  gpusim::StreamId hp_stream_ = gpusim::kInvalidStream;
  const profiler::WorkloadProfile* hp_profile_ = nullptr;
  DurationUs hp_target_latency_ = 0.0;
  int hp_outstanding_ = 0;  // submitted-but-not-completed hp kernels
  // Profiles of outstanding hp kernels, FIFO; front = currently executing.
  std::deque<gpusim::ResourceProfile> hp_running_profiles_;

  // Best-effort state.
  std::vector<BeClient> be_clients_;
  std::size_t rr_cursor_ = 0;
  double be_duration_ = 0.0;  // expected µs of outstanding be kernels (Listing 1)
  std::shared_ptr<gpusim::GpuEvent> be_submitted_;  // event after last be kernel
  ClientId be_submitted_client_ = -1;  // who recorded be_submitted_
  bool watchdog_armed_ = false;

  int sm_threshold_ = 0;

  // Poll-epoch guard (see PollBestEffort). state_epoch_ is bumped by every
  // mutation a poll's decisions read: enqueues, hp/be completions, the
  // recorded-event flip, quarantines, device degradation.
  std::uint64_t state_epoch_ = 0;
  std::uint64_t last_poll_epoch_ = 0;
  TimeUs last_poll_now_ = -1.0;  // no poll ran yet (sim time is >= 0)

  // Telemetry. Counters are bound in Attach against the hub registry (or the
  // private fallback when no hub is installed); null before Attach.
  static std::size_t CounterCount(const telemetry::Counter* c) {
    return c ? static_cast<std::size_t>(c->AsCount()) : 0;
  }
  void BindCounters();
  void MarkQuarantine(ClientId client, const char* reason);

  telemetry::Hub* hub_ = nullptr;
  telemetry::MetricRegistry local_metrics_;
  telemetry::TrackId trace_track_ = -1;
  telemetry::Counter* be_kernels_submitted_ = nullptr;
  telemetry::Counter* be_throttle_skips_ = nullptr;
  telemetry::Counter* be_profile_skips_ = nullptr;
  telemetry::Counter* be_polls_ = nullptr;
  telemetry::Counter* be_polls_coalesced_ = nullptr;
  telemetry::Counter* clients_quarantined_ = nullptr;
  telemetry::Counter* runaway_quarantines_ = nullptr;
  telemetry::Counter* be_ops_dropped_ = nullptr;
  telemetry::Counter* be_bytes_released_ = nullptr;
};

}  // namespace core
}  // namespace orion

#endif  // SRC_CORE_ORION_SCHEDULER_H_
