// Scheduler interface: the interception boundary.
//
// In the real system Orion is a dynamically-linked library whose wrappers
// intercept CUDA calls from each client and buffer them in per-client
// software queues (§5). Here the same boundary is the Scheduler::Enqueue
// call: client drivers hand every GPU op to the scheduler, which owns the
// software queues and decides when each op reaches the device. All baselines
// implement this same interface, so every collocation experiment differs
// only in policy.
#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/profiler/profiler.h"
#include "src/runtime/gpu_runtime.h"
#include "src/runtime/op.h"
#include "src/sim/simulator.h"

namespace orion {
namespace telemetry {
class Hub;
}  // namespace telemetry

namespace core {

using ClientId = int;

// What the scheduler knows about each attached client up front: its priority
// class and the offline profile of its workload (§5.2).
struct SchedClientInfo {
  ClientId id = 0;
  std::string name;
  bool high_priority = false;
  // Offline profile; owned by the harness, outlives the scheduler. May be
  // null for profile-agnostic baselines.
  const profiler::WorkloadProfile* profile = nullptr;
};

// A client op plus its completion hook. The hook fires (in virtual time)
// when the op completes on the device; client drivers use it to measure
// request latency and to unblock after synchronous ops.
struct SchedOp {
  runtime::Op op;
  std::function<void()> on_complete;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Host-side submission cost model: schedulers whose clients must share one
  // Python process (GPU Streams baseline) suffer GIL contention, inflating
  // per-op host overhead with the client count (§6.2.1).
  virtual double HostOverheadMultiplier(int num_clients) const {
    (void)num_clients;
    return 1.0;
  }

  // Binds the scheduler to the device runtime and the client set. Called
  // exactly once, before any Enqueue.
  virtual void Attach(Simulator* sim, runtime::GpuRuntime* rt,
                      std::vector<SchedClientInfo> clients) = 0;

  // Interception entry point: `client`'s framework issued a GPU op.
  virtual void Enqueue(ClientId client, SchedOp op) = 0;

  // Optional telemetry sink (src/telemetry): policies that keep decision
  // statistics publish them as registry counters and, when tracing is
  // enabled, emit span/instant events for their scheduling decisions. Call
  // before Attach. Default: no telemetry.
  virtual void set_telemetry(telemetry::Hub* hub) { (void)hub; }

  // --- Fault hooks (src/fault). Default: ignore. ---
  // `client`'s process died. Policies that buffer per-client queues should
  // drop its pending ops, stop issuing on its behalf, and release whatever
  // device memory it held, without disturbing the surviving clients.
  virtual void OnClientCrash(ClientId client) { (void)client; }
  // The device lost SMs or memory bandwidth (Device::DegradeSms /
  // ScaleMembw already applied). Policies whose thresholds derive from
  // device capacity should re-resolve them against the shrunken pool.
  virtual void OnDeviceDegraded() {}
};

}  // namespace core
}  // namespace orion

#endif  // SRC_CORE_SCHEDULER_H_
