// Aggregate scheduling view of an intercepted op.
//
// Kernel-granularity policies (Orion, REEF) decide per kernel using the
// offline profile. A captured CUDA graph (§7 extension) arrives as ONE op,
// so the policy can only judge it as a unit: total expected duration, the
// largest SM requirement, and the duration-dominant resource profile. This
// is precisely the granularity loss the paper's Discussion warns about —
// the helpers here make that degradation explicit and testable.
#ifndef SRC_CORE_OP_VIEW_H_
#define SRC_CORE_OP_VIEW_H_

#include "src/gpusim/device_spec.h"
#include "src/gpusim/kernel.h"
#include "src/profiler/profiler.h"
#include "src/runtime/op.h"

namespace orion {
namespace core {

// True for ops the kernel-scheduling policy applies to (kernel launches and
// graph launches); memory-management ops bypass the policy (§5.1.3).
inline bool IsComputeOp(const runtime::Op& op) {
  return op.type == runtime::OpType::kKernelLaunch ||
         op.type == runtime::OpType::kGraphLaunch;
}

struct KernelView {
  DurationUs duration_us = 0.0;  // expected total execution time
  gpusim::ResourceProfile profile = gpusim::ResourceProfile::kUnknown;
  int sm_needed = 0;             // peak SM requirement
};

// Profile lookup with fallback to the descriptor's own numbers. With
// `conservative_miss` set, a kernel id absent from a non-null profile is
// instead classified memory-bound (the stale/poisoned-profile degradation
// mode, src/fault): an unrecognised best-effort kernel then never collocates
// with memory-bound hp work, trading throughput for interference safety
// rather than trusting the descriptor a real interceptor would not see.
inline KernelView ViewOfKernel(const gpusim::KernelDesc& kernel,
                               const profiler::WorkloadProfile* profile,
                               const gpusim::DeviceSpec& spec,
                               bool conservative_miss = false) {
  KernelView view;
  if (profile != nullptr) {
    if (const profiler::KernelProfile* kp = profile->Find(kernel.kernel_id)) {
      view.duration_us = kp->duration_us;
      view.profile = kp->profile;
      view.sm_needed = kp->sm_needed;
      return view;
    }
    if (conservative_miss) {
      view.duration_us = kernel.duration_us;
      view.profile = gpusim::ResourceProfile::kMemoryBound;
      view.sm_needed = gpusim::SmsNeeded(spec, kernel.geometry);
      return view;
    }
  }
  view.duration_us = kernel.duration_us;
  view.profile = gpusim::ClassifyKernel(kernel);
  view.sm_needed = gpusim::SmsNeeded(spec, kernel.geometry);
  return view;
}

// Aggregate view of a kernel or graph op.
inline KernelView ViewOf(const runtime::Op& op, const profiler::WorkloadProfile* profile,
                         const gpusim::DeviceSpec& spec,
                         bool conservative_miss = false) {
  if (op.type == runtime::OpType::kKernelLaunch) {
    return ViewOfKernel(op.kernel, profile, spec, conservative_miss);
  }
  KernelView view;
  double compute_time = 0.0;
  double memory_time = 0.0;
  for (const gpusim::KernelDesc& kernel : op.graph_kernels) {
    const KernelView k = ViewOfKernel(kernel, profile, spec, conservative_miss);
    view.duration_us += k.duration_us;
    view.sm_needed = std::max(view.sm_needed, k.sm_needed);
    if (k.profile == gpusim::ResourceProfile::kComputeBound) {
      compute_time += k.duration_us;
    } else if (k.profile == gpusim::ResourceProfile::kMemoryBound) {
      memory_time += k.duration_us;
    }
  }
  // Dominant-by-time classification; graphs mixing both heavily are Unknown
  // only if neither side dominates at all.
  if (compute_time > memory_time && compute_time > 0.0) {
    view.profile = gpusim::ResourceProfile::kComputeBound;
  } else if (memory_time > 0.0) {
    view.profile = gpusim::ResourceProfile::kMemoryBound;
  }
  return view;
}

}  // namespace core
}  // namespace orion

#endif  // SRC_CORE_OP_VIEW_H_
