#include "src/core/orion_scheduler.h"

#include "src/core/op_view.h"

#include <utility>

#include "src/common/check.h"

namespace orion {
namespace core {

OrionScheduler::OrionScheduler(OrionOptions options) : options_(options) {}

void OrionScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                            std::vector<SchedClientInfo> clients) {
  ORION_CHECK(sim != nullptr && rt != nullptr);
  sim_ = sim;
  rt_ = rt;
  const int hp_priority =
      options_.use_stream_priorities ? gpusim::kPriorityHigh : gpusim::kPriorityDefault;
  int hp_count = 0;
  for (const SchedClientInfo& client : clients) {
    if (client.high_priority) {
      ++hp_count;
      hp_client_ = client.id;
      hp_profile_ = client.profile;
      hp_stream_ = rt_->CreateStream(hp_priority);
      ORION_CHECK_MSG(client.profile != nullptr, "Orion requires an offline profile (§5.2)");
      hp_target_latency_ = client.profile->request_latency_us;
    } else {
      BeClient be;
      be.id = client.id;
      be.profile = client.profile;
      be.stream = rt_->CreateStream(gpusim::kPriorityDefault);
      be_clients_.push_back(std::move(be));
    }
  }
  ORION_CHECK_MSG(hp_count == 1, "Orion expects exactly one high-priority client, got "
                                     << hp_count);
  sm_threshold_ =
      options_.sm_threshold > 0 ? options_.sm_threshold : rt_->device().spec().num_sms;
}

void OrionScheduler::Enqueue(ClientId client, SchedOp op) {
  if (client == hp_client_) {
    SubmitHp(std::move(op));
    // The polling loop considers a best-effort op in the same iteration it
    // submits a high-priority op (Listing 1 lines 7-21).
    PollBestEffort();
    return;
  }
  for (BeClient& be : be_clients_) {
    if (be.id == client) {
      be.queue.push_back(std::move(op));
      PollBestEffort();
      return;
    }
  }
  ORION_CHECK_MSG(false, "enqueue from unknown client " << client);
}

void OrionScheduler::SubmitHp(SchedOp op) {
  if (IsComputeOp(op.op)) {
    ++hp_outstanding_;
    hp_running_profiles_.push_back(ViewOf(op.op, hp_profile_, rt_->device().spec()).profile);
    auto on_complete = std::move(op.on_complete);
    rt_->Submit(op.op, hp_stream_, [this, on_complete = std::move(on_complete)]() {
      ORION_CHECK(hp_outstanding_ > 0);
      --hp_outstanding_;
      if (!hp_running_profiles_.empty()) {
        hp_running_profiles_.pop_front();
      }
      if (on_complete) {
        on_complete();
      }
      // A high-priority completion may open a collocation window.
      PollBestEffort();
    });
    return;
  }
  // Memory ops go straight to the device (§5.1.3); blocking semantics are
  // enforced by the client driver via on_complete.
  rt_->Submit(op.op, hp_stream_, std::move(op.on_complete));
}

bool OrionScheduler::ScheduleBe(const runtime::Op& op, const BeClient& be) {
  // Listing 1, schedule_be(): suitable when no hp task is running...
  if (hp_outstanding_ == 0) {
    return true;
  }
  const KernelView view = ViewOf(op, be.profile, rt_->device().spec());
  // ...or when it is small enough and has the opposite resource profile.
  // (For a captured CUDA graph the checks apply to the whole graph — the
  // granularity loss discussed in §7.)
  if (options_.use_sm_check && view.sm_needed >= sm_threshold_) {
    return false;
  }
  if (options_.use_profile_check) {
    const gpusim::ResourceProfile hp_profile = hp_running_profiles_.empty()
                                                   ? gpusim::ResourceProfile::kUnknown
                                                   : hp_running_profiles_.front();
    if (!gpusim::HaveDifferentProfiles(hp_profile, view.profile)) {
      return false;
    }
  }
  return true;
}

void OrionScheduler::PollBestEffort() {
  if (be_clients_.empty()) {
    return;
  }
  // Keep draining while some queue head is schedulable; stop after a full
  // round with no progress (every head blocked or all queues empty).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t step = 0; step < be_clients_.size(); ++step) {
      BeClient& be = be_clients_[(rr_cursor_ + step) % be_clients_.size()];
      if (be.queue.empty()) {
        continue;
      }
      SchedOp& head = be.queue.front();

      if (!IsComputeOp(head.op)) {
        // Memory ops bypass the policy (§5.1.3).
        SchedOp op = std::move(head);
        be.queue.pop_front();
        rt_->Submit(op.op, be.stream, std::move(op.on_complete));
        progress = true;
        continue;
      }

      // DUR_THRESHOLD throttle (Listing 1 lines 12-16): once the expected
      // outstanding best-effort time exceeds the budget, nothing more is
      // submitted until the CUDA event says everything drained.
      if (options_.use_dur_throttle && hp_target_latency_ > 0.0 &&
          be_duration_ > options_.dur_threshold_frac * hp_target_latency_) {
        if (be_submitted_ != nullptr && be_submitted_->done) {
          be_duration_ = 0.0;
        } else {
          ++be_throttle_skips_;
          continue;
        }
      }

      if (!ScheduleBe(head.op, be)) {
        ++be_profile_skips_;
        continue;
      }

      SchedOp op = std::move(head);
      be.queue.pop_front();
      rr_cursor_ = (rr_cursor_ + step + 1) % be_clients_.size();
      SubmitBe(be, std::move(op));
      progress = true;
      break;  // restart the round-robin scan from the new cursor
    }
  }
}

void OrionScheduler::SubmitBe(BeClient& be, SchedOp op) {
  ++be_kernels_submitted_;
  be_duration_ += ViewOf(op.op, be.profile, rt_->device().spec()).duration_us;
  auto on_complete = std::move(op.on_complete);
  rt_->Submit(op.op, be.stream, [this, on_complete = std::move(on_complete)]() {
    if (on_complete) {
      on_complete();
    }
    // Completion may clear the throttle (the recorded event flips to done).
    PollBestEffort();
  });
  // Track progress of the best-effort stream without blocking: record a CUDA
  // event after the kernel and poll it with cudaEventQuery (§5.1.2).
  be_submitted_ = std::make_shared<gpusim::GpuEvent>();
  rt_->RecordEvent(be.stream, be_submitted_.get(),
                   [keepalive = be_submitted_]() { (void)keepalive; });
}

}  // namespace core
}  // namespace orion
