#include "src/core/orion_scheduler.h"

#include "src/core/op_view.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace core {

namespace {

// True when the offline profile vouches for every kernel of the op. Only
// profile-backed durations count toward the watchdog's patience: a
// descriptor's claim about a kernel profiling never saw is exactly what a
// runaway kernel lies about.
bool ProfileCovers(const runtime::Op& op, const profiler::WorkloadProfile* profile) {
  if (profile == nullptr) {
    return false;
  }
  if (op.type == runtime::OpType::kKernelLaunch) {
    return profile->Find(op.kernel.kernel_id) != nullptr;
  }
  if (op.type == runtime::OpType::kGraphLaunch) {
    if (op.graph_kernels.empty()) {
      return false;
    }
    for (const gpusim::KernelDesc& kernel : op.graph_kernels) {
      if (profile->Find(kernel.kernel_id) == nullptr) {
        return false;
      }
    }
    return true;
  }
  return false;
}

}  // namespace

OrionScheduler::OrionScheduler(OrionOptions options) : options_(options) {}

void OrionScheduler::set_telemetry(telemetry::Hub* hub) {
  ORION_CHECK_MSG(sim_ == nullptr, "set_telemetry must be called before Attach");
  hub_ = hub;
}

void OrionScheduler::BindCounters() {
  telemetry::MetricRegistry& reg = hub_ != nullptr ? hub_->metrics() : local_metrics_;
  be_kernels_submitted_ = reg.GetCounter("orion.be_kernels_submitted");
  be_throttle_skips_ = reg.GetCounter("orion.be_throttle_skips");
  be_profile_skips_ = reg.GetCounter("orion.be_profile_skips");
  be_polls_ = reg.GetCounter("orion.be_polls");
  be_polls_coalesced_ = reg.GetCounter("orion.be_polls_coalesced");
  clients_quarantined_ = reg.GetCounter("orion.clients_quarantined");
  runaway_quarantines_ = reg.GetCounter("orion.runaway_quarantines");
  be_ops_dropped_ = reg.GetCounter("orion.be_ops_dropped");
  be_bytes_released_ = reg.GetCounter("orion.be_bytes_released");
  if (hub_ != nullptr && hub_->tracing()) {
    trace_track_ = hub_->spans().Track("orion-sched");
  }
}

void OrionScheduler::MarkQuarantine(ClientId client, const char* reason) {
  if (trace_track_ < 0) {
    return;
  }
  hub_->spans().Instant(trace_track_, reason, sim_->now(),
                        {{"client", std::to_string(client)}});
}

void OrionScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                            std::vector<SchedClientInfo> clients) {
  ORION_CHECK(sim != nullptr && rt != nullptr);
  sim_ = sim;
  rt_ = rt;
  BindCounters();
  const int hp_priority =
      options_.use_stream_priorities ? gpusim::kPriorityHigh : gpusim::kPriorityDefault;
  int hp_count = 0;
  for (const SchedClientInfo& client : clients) {
    if (client.high_priority) {
      ++hp_count;
      hp_client_ = client.id;
      hp_profile_ = client.profile;
      hp_stream_ = rt_->CreateStream(hp_priority);
      ORION_CHECK_MSG(client.profile != nullptr, "Orion requires an offline profile (§5.2)");
      hp_target_latency_ = client.profile->request_latency_us;
    } else {
      BeClient be;
      be.id = client.id;
      be.profile = client.profile;
      be.stream = rt_->CreateStream(gpusim::kPriorityDefault);
      be.collocated_us = (hub_ != nullptr ? hub_->metrics() : local_metrics_)
                             .GetCounter("orion.collocated_be_us", {{"client", client.name}});
      be_clients_.push_back(std::move(be));
    }
  }
  ORION_CHECK_MSG(hp_count == 1, "Orion expects exactly one high-priority client, got "
                                     << hp_count);
  sm_threshold_ =
      options_.sm_threshold > 0 ? options_.sm_threshold : rt_->device().spec().num_sms;
}

void OrionScheduler::Enqueue(ClientId client, SchedOp op) {
  if (client == hp_client_) {
    SubmitHp(std::move(op));
    // The polling loop considers a best-effort op in the same iteration it
    // submits a high-priority op (Listing 1 lines 7-21).
    PollBestEffort();
    return;
  }
  for (BeClient& be : be_clients_) {
    if (be.id == client) {
      if (be.quarantined) {
        // Straggler op from a crashed/hung process: drop it.
        be_ops_dropped_->Inc();
        return;
      }
      be.queue.push_back(std::move(op));
      ++state_epoch_;  // a new queue head can change the scan's outcome
      PollBestEffort();
      return;
    }
  }
  ORION_CHECK_MSG(false, "enqueue from unknown client " << client);
}

bool OrionScheduler::client_quarantined(ClientId client) const {
  for (const BeClient& be : be_clients_) {
    if (be.id == client) {
      return be.quarantined;
    }
  }
  return false;
}

void OrionScheduler::OnClientCrash(ClientId client) {
  for (BeClient& be : be_clients_) {
    if (be.id != client || be.quarantined) {
      continue;
    }
    be.quarantined = true;
    ++state_epoch_;  // queue drop + DUR recredit change gating state
    be_ops_dropped_->Inc(static_cast<double>(be.queue.size()));
    be.queue.clear();
    // Recredit the dead client's expected outstanding time so the
    // DUR_THRESHOLD throttle does not stay charged for kernels whose
    // completions will still fire but whose client is gone. Resident kernels
    // run out on the device — there is no preemption to reclaim them early —
    // so the be_submitted_ event still resolves and the throttle cannot
    // deadlock.
    be_duration_ = std::max(0.0, be_duration_ - be.outstanding_us);
    be.outstanding_us = 0.0;
    be.outstanding_trusted_us = 0.0;
    const std::size_t before = rt_->memory().used();
    rt_->memory().ReleaseClient(static_cast<std::uint64_t>(client));
    be_bytes_released_->Inc(static_cast<double>(before - rt_->memory().used()));
    clients_quarantined_->Inc();
    MarkQuarantine(client, "quarantine");
    // Surviving best-effort clients may take the recredited budget now.
    PollBestEffort();
    return;
  }
  // hp crash or unknown client: nothing is buffered for hp (ops submit
  // immediately), so there is no queue to quarantine here.
}

void OrionScheduler::OnDeviceDegraded() {
  ++state_epoch_;  // SM_THRESHOLD re-resolution changes the sm check
  const int effective = rt_->device().effective_sms();
  if (options_.sm_threshold > 0) {
    // An explicitly tuned threshold scales with the surviving fraction of
    // the device: it was chosen relative to full capacity.
    const double fraction =
        static_cast<double>(effective) / static_cast<double>(rt_->device().spec().num_sms);
    sm_threshold_ = std::max(
        1, static_cast<int>(static_cast<double>(options_.sm_threshold) * fraction));
  } else {
    sm_threshold_ = effective;
  }
  if (trace_track_ >= 0) {
    hub_->spans().Instant(trace_track_, "sm-retune", sim_->now(),
                          {{"sm_threshold", std::to_string(sm_threshold_)}});
  }
}

void OrionScheduler::SubmitHp(SchedOp op) {
  if (IsComputeOp(op.op)) {
    ++state_epoch_;  // hp_outstanding_ / running profile feed ScheduleBe
    ++hp_outstanding_;
    hp_running_profiles_.push_back(
        ViewOf(op.op, hp_profile_, rt_->device().spec(), options_.conservative_profile_miss)
            .profile);
    auto on_complete = std::move(op.on_complete);
    rt_->Submit(op.op, hp_stream_, [this, on_complete = std::move(on_complete)]() {
      ORION_CHECK(hp_outstanding_ > 0);
      ++state_epoch_;
      --hp_outstanding_;
      if (!hp_running_profiles_.empty()) {
        hp_running_profiles_.pop_front();
      }
      if (on_complete) {
        on_complete();
      }
      // A high-priority completion may open a collocation window.
      PollBestEffort();
    });
    return;
  }
  // Memory ops go straight to the device (§5.1.3); blocking semantics are
  // enforced by the client driver via on_complete.
  rt_->Submit(op.op, hp_stream_, std::move(op.on_complete));
}

bool OrionScheduler::ScheduleBe(const runtime::Op& op, const BeClient& be) {
  // Listing 1, schedule_be(): suitable when no hp task is running...
  if (hp_outstanding_ == 0) {
    return true;
  }
  const KernelView view =
      ViewOf(op, be.profile, rt_->device().spec(), options_.conservative_profile_miss);
  // ...or when it is small enough and has the opposite resource profile.
  // (For a captured CUDA graph the checks apply to the whole graph — the
  // granularity loss discussed in §7.)
  if (options_.use_sm_check && view.sm_needed >= sm_threshold_) {
    return false;
  }
  if (options_.use_profile_check) {
    const gpusim::ResourceProfile hp_profile = hp_running_profiles_.empty()
                                                   ? gpusim::ResourceProfile::kUnknown
                                                   : hp_running_profiles_.front();
    if (!gpusim::HaveDifferentProfiles(hp_profile, view.profile)) {
      return false;
    }
  }
  return true;
}

void OrionScheduler::PollBestEffort() {
  if (be_clients_.empty()) {
    return;
  }
  be_polls_->Inc();
  // Poll-epoch guard: bursty completions at one timestamp wake the
  // scheduler once per completion, but a scan is only worth running if the
  // clock advanced or some gating input changed since the last one. A
  // skipped poll is provably redundant — it would block or find empty
  // queues exactly as the previous scan did.
  if (sim_->now() == last_poll_now_ && state_epoch_ == last_poll_epoch_) {
    be_polls_coalesced_->Inc();
    return;
  }
  // Keep draining while some queue head is schedulable; stop after a full
  // round with no progress (every head blocked or all queues empty).
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t step = 0; step < be_clients_.size(); ++step) {
      BeClient& be = be_clients_[(rr_cursor_ + step) % be_clients_.size()];
      if (be.queue.empty()) {
        continue;
      }
      SchedOp& head = be.queue.front();

      if (!IsComputeOp(head.op)) {
        // Memory ops bypass the policy (§5.1.3).
        SchedOp op = std::move(head);
        be.queue.pop_front();
        rt_->Submit(op.op, be.stream, std::move(op.on_complete));
        progress = true;
        continue;
      }

      // DUR_THRESHOLD throttle (Listing 1 lines 12-16): once the expected
      // outstanding best-effort time exceeds the budget, nothing more is
      // submitted until the CUDA event says everything drained.
      if (options_.use_dur_throttle && hp_target_latency_ > 0.0 &&
          be_duration_ > options_.dur_threshold_frac * hp_target_latency_) {
        // (be_submitted_ can only be null here after a runaway quarantine
        // reset the throttle; treat that as drained.)
        if (be_submitted_ == nullptr || be_submitted_->done) {
          be_duration_ = 0.0;
        } else {
          be_throttle_skips_->Inc();
          ArmWatchdog();
          continue;
        }
      }

      if (!ScheduleBe(head.op, be)) {
        be_profile_skips_->Inc();
        continue;
      }

      SchedOp op = std::move(head);
      be.queue.pop_front();
      rr_cursor_ = (rr_cursor_ + step + 1) % be_clients_.size();
      SubmitBe(be, std::move(op));
      progress = true;
      break;  // restart the round-robin scan from the new cursor
    }
  }
  // Record post-scan state: the final no-progress round already saw every
  // mutation the scan itself made.
  last_poll_now_ = sim_->now();
  last_poll_epoch_ = state_epoch_;
}

void OrionScheduler::SubmitBe(BeClient& be, SchedOp op) {
  be_kernels_submitted_->Inc();
  const double expected =
      ViewOf(op.op, be.profile, rt_->device().spec(), options_.conservative_profile_miss)
          .duration_us;
  const double trusted = ProfileCovers(op.op, be.profile) ? expected : 0.0;
  if (hp_outstanding_ > 0) {
    // Submitted alongside outstanding hp work: this is the dispatch decision
    // the hp tenant's kInterference phase traces back to.
    be.collocated_us->Inc(expected);
  }
  be_duration_ += expected;
  be.outstanding_us += expected;
  be.outstanding_trusted_us += trusted;
  auto on_complete = std::move(op.on_complete);
  rt_->Submit(op.op, be.stream,
              [this, client = be.id, expected, trusted,
               on_complete = std::move(on_complete)]() {
    ++state_epoch_;  // outstanding time shrank; throttle math changes
    for (BeClient& b : be_clients_) {
      if (b.id == client) {
        b.outstanding_us = std::max(0.0, b.outstanding_us - expected);
        b.outstanding_trusted_us = std::max(0.0, b.outstanding_trusted_us - trusted);
        break;
      }
    }
    if (on_complete) {
      on_complete();
    }
    // Completion may clear the throttle (the recorded event flips to done).
    PollBestEffort();
  });
  // Track progress of the best-effort stream without blocking: record a CUDA
  // event after the kernel and poll it with cudaEventQuery (§5.1.2).
  be_submitted_ = std::make_shared<gpusim::GpuEvent>();
  be_submitted_client_ = be.id;
  rt_->RecordEvent(be.stream, be_submitted_.get(), [this, keepalive = be_submitted_]() {
    // The event's done flip is what un-blocks the DUR throttle; a poll
    // after it must not be coalesced against a poll before it.
    ++state_epoch_;
  });
}

void OrionScheduler::ArmWatchdog() {
  if (options_.runaway_timeout_factor <= 0.0 || watchdog_armed_ ||
      be_submitted_ == nullptr || hp_target_latency_ <= 0.0) {
    return;
  }
  watchdog_armed_ = true;
  const DurationUs budget = options_.dur_threshold_frac * hp_target_latency_;
  // Patience scales with the profile-backed work the suspect legitimately
  // has in flight — a big profiled kernel is slow, not hung. Profile-miss
  // work contributes nothing, so a runaway kernel only ever gets the DUR
  // budget's worth of grace regardless of its descriptor.
  DurationUs trusted = 0.0;
  for (const BeClient& be : be_clients_) {
    if (be.id == be_submitted_client_) {
      trusted = be.outstanding_trusted_us;
      break;
    }
  }
  auto event = be_submitted_;
  sim_->ScheduleAfter(options_.runaway_timeout_factor * std::max(budget, trusted),
                      [this, event, budget]() {
    watchdog_armed_ = false;
    if (event != be_submitted_ || event->done) {
      return;  // drained (or the stream moved on): not a hang
    }
    // Conviction needs evidence of execution, not just of waiting: a kernel
    // starved of SMs (behind a resident runaway, or an hp backlog) has
    // executed ~nothing, and a profiled kernel completes — resolving the
    // event — before it can execute past its own trusted expectation. Only
    // untrusted work that has burned through more device time than the
    // suspect's entire trusted outstanding sum (floored at the DUR budget)
    // is a runaway. Anything else: re-arm and keep waiting.
    for (const BeClient& be : be_clients_) {
      if (be.id != be_submitted_client_) {
        continue;
      }
      const DurationUs executed = rt_->device().StreamExecutedUs(be.stream);
      if (executed <= std::max(budget, be.outstanding_trusted_us)) {
        ArmWatchdog();
        return;
      }
      break;
    }
    // The best-effort stream sat on the same unresolved event for many DUR
    // budgets: the last submitter is hung on a runaway kernel. Quarantine it
    // and reset the throttle so surviving best-effort clients stop waiting
    // on an event that may never resolve in useful time. The runaway kernel
    // itself runs out on the device (no preemption).
    runaway_quarantines_->Inc();
    MarkQuarantine(be_submitted_client_, "runaway-quarantine");
    ++state_epoch_;  // throttle reset below
    const ClientId owner = be_submitted_client_;
    be_submitted_ = nullptr;
    be_submitted_client_ = -1;
    be_duration_ = 0.0;
    if (owner >= 0) {
      OnClientCrash(owner);  // quarantines + polls
    } else {
      PollBestEffort();
    }
  });
}

}  // namespace core
}  // namespace orion
