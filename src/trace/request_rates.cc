#include "src/trace/request_rates.h"

#include "src/common/check.h"

namespace orion {
namespace trace {

double RequestsPerSecond(workloads::ModelId model, CollocationCase use_case) {
  using workloads::ModelId;
  switch (use_case) {
    case CollocationCase::kInfInfUniform:
      switch (model) {
        case ModelId::kResNet50:
          return 80.0;
        case ModelId::kMobileNetV2:
          return 100.0;
        case ModelId::kResNet101:
          return 40.0;
        case ModelId::kBert:
          return 8.0;
        case ModelId::kTransformer:
          return 20.0;
        case ModelId::kLlmDecode:
          return 2.0;  // extension workload; not part of Table 3
      }
      break;
    case CollocationCase::kInfInfPoisson:
      switch (model) {
        case ModelId::kResNet50:
          return 50.0;
        case ModelId::kMobileNetV2:
          return 65.0;
        case ModelId::kResNet101:
          return 25.0;
        case ModelId::kBert:
          return 5.0;
        case ModelId::kTransformer:
          return 12.0;
        case ModelId::kLlmDecode:
          return 1.5;  // extension workload; not part of Table 3
      }
      break;
    case CollocationCase::kInfTrainPoisson:
      switch (model) {
        case ModelId::kResNet50:
          return 15.0;
        case ModelId::kMobileNetV2:
          return 40.0;
        case ModelId::kResNet101:
          return 9.0;
        case ModelId::kBert:
          return 4.0;
        case ModelId::kTransformer:
          return 8.0;
        case ModelId::kLlmDecode:
          return 1.0;  // extension workload; not part of Table 3
      }
      break;
  }
  ORION_CHECK_MSG(false, "unhandled model/use-case combination");
  return 0.0;
}

}  // namespace trace
}  // namespace orion
