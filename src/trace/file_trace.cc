#include "src/trace/file_trace.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace orion {
namespace trace {

std::vector<TimeUs> LoadArrivalTimestamps(std::istream& is) {
  std::vector<TimeUs> timestamps;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    // Trim whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    std::istringstream field(line);
    TimeUs value = 0.0;
    ORION_CHECK_MSG(static_cast<bool>(field >> value),
                    "malformed trace line " << line_number << ": " << line);
    ORION_CHECK_MSG(timestamps.empty() || value >= timestamps.back(),
                    "non-monotone timestamp at line " << line_number);
    timestamps.push_back(value);
  }
  return timestamps;
}

void SaveArrivalTimestamps(const std::vector<TimeUs>& timestamps, std::ostream& os) {
  os.precision(17);
  os << "# arrival timestamps, microseconds, one per line\n";
  for (const TimeUs t : timestamps) {
    os << t << "\n";
  }
}

ReplayArrivals::ReplayArrivals(std::vector<TimeUs> timestamps) {
  ORION_CHECK_MSG(timestamps.size() >= 2, "a replayable trace needs >= 2 timestamps");
  gaps_.reserve(timestamps.size() - 1);
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    gaps_.push_back(timestamps[i] - timestamps[i - 1]);
  }
}

DurationUs ReplayArrivals::NextInterarrival(Rng& rng) {
  (void)rng;
  const DurationUs gap = gaps_[cursor_];
  cursor_ = (cursor_ + 1) % gaps_.size();
  return gap;
}

std::string ReplayArrivals::name() const {
  return "replay-" + std::to_string(gaps_.size()) + "gaps";
}

double ReplayArrivals::mean_rps() const {
  double total = 0.0;
  for (const DurationUs gap : gaps_) {
    total += gap;
  }
  return total > 0.0 ? static_cast<double>(gaps_.size()) / UsToSec(total) : 0.0;
}

std::unique_ptr<ArrivalProcess> MakeReplay(std::vector<TimeUs> timestamps) {
  return std::make_unique<ReplayArrivals>(std::move(timestamps));
}

std::vector<TimeUs> RecordArrivals(ArrivalProcess& process, Rng& rng, std::size_t count) {
  std::vector<TimeUs> timestamps;
  timestamps.reserve(count);
  TimeUs now = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    now += process.NextInterarrival(rng);
    timestamps.push_back(now);
  }
  return timestamps;
}

}  // namespace trace
}  // namespace orion
