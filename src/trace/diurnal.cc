#include "src/trace/diurnal.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace trace {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

double DiurnalShape::Multiplier(TimeUs t) const {
  ORION_CHECK(period_us > 0.0);
  ORION_CHECK(peak_to_trough >= 1.0);
  return 1.0 + amplitude() * std::sin(kTwoPi * t / period_us + phase_rad);
}

double BurstMix::calm_multiplier() const {
  if (!enabled()) {
    return 1.0;
  }
  ORION_CHECK_MSG(burst_fraction * burst_factor < 1.0,
                  "burst mix cannot average to 1: fraction * factor must be < 1");
  ORION_CHECK(burst_fraction < 1.0);
  return (1.0 - burst_fraction * burst_factor) / (1.0 - burst_fraction);
}

ArrivalFit FitArrivals(const std::vector<TimeUs>& timestamps) {
  ORION_CHECK_MSG(timestamps.size() >= 2, "fitting needs at least two timestamps");
  ArrivalFit fit;
  fit.count = timestamps.size();
  const double span_us = timestamps.back() - timestamps.front();
  ORION_CHECK(span_us > 0.0);
  const auto gaps = static_cast<double>(timestamps.size() - 1);
  const double mean_gap = span_us / gaps;
  fit.mean_rps = kUsPerSec / mean_gap;
  double var = 0.0;
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    const double d = (timestamps[i] - timestamps[i - 1]) - mean_gap;
    var += d * d;
  }
  var /= gaps;
  fit.interarrival_cv2 = var / (mean_gap * mean_gap);
  return fit;
}

DiurnalConfig FitDiurnal(const std::vector<TimeUs>& timestamps, const DiurnalShape& shape) {
  const ArrivalFit fit = FitArrivals(timestamps);
  DiurnalConfig config;
  config.mean_rps = fit.mean_rps;
  config.shape = shape;
  // For an MMPP-modulated Poisson process, excess interarrival variability
  // over the Poisson floor (CV² = 1) comes from rate modulation. Invert the
  // first-order relation CV² ≈ 1 + p(1-p)(f-1)²/(p f + 1 - p)² at the fixed
  // design point p = 0.1 for the burst factor f; recordings at or below the
  // Poisson floor get no bursts.
  const double excess = fit.interarrival_cv2 - 1.0;
  if (excess > 1e-3) {
    const double p = 0.1;
    // Solve p(1-p)(f-1)² = excess · (p f + 1 - p)² for f > 1 (quadratic).
    const double a = p * (1.0 - p) - excess * p * p;
    const double b = -2.0 * p * (1.0 - p) * (1.0 + excess);
    const double c = (1.0 - p) * (p - excess * (1.0 - p));
    double f = 1.0;
    if (std::abs(a) > 1e-12) {
      const double disc = b * b - 4.0 * a * c;
      if (disc > 0.0) {
        f = (-b + std::sqrt(disc)) / (2.0 * a);
      }
    }
    // Keep the mean-1 identity satisfiable: p·f < 1.
    const double f_max = 0.99 / p;
    if (f > 1.0 + 1e-9) {
      config.burst.burst_factor = std::min(f, f_max);
      config.burst.burst_fraction = p;
    }
  }
  return config;
}

DiurnalArrivals::DiurnalArrivals(const DiurnalConfig& config) : config_(config) {
  ORION_CHECK(config.mean_rps > 0.0);
  ORION_CHECK(config.shape.period_us > 0.0);
  ORION_CHECK(config.shape.peak_to_trough >= 1.0);
  const double base_per_us = config.mean_rps / kUsPerSec;
  const double burst_peak = std::max(config.burst.enabled() ? config.burst.burst_factor : 1.0,
                                     config.burst.calm_multiplier());
  peak_rate_per_us_ = base_per_us * (1.0 + config.shape.amplitude()) * burst_peak;
  ORION_CHECK(peak_rate_per_us_ > 0.0);
}

void DiurnalArrivals::AdvanceBurstState(Rng& rng, TimeUs until) {
  if (!config_.burst.enabled()) {
    return;
  }
  if (!burst_seeded_) {
    // Start calm; the first transition is one mean calm period out.
    burst_seeded_ = true;
    bursting_ = false;
    const double mean_calm =
        config_.burst.mean_burst_us * (1.0 - config_.burst.burst_fraction) /
        config_.burst.burst_fraction;
    burst_edge_us_ = rng.Exponential(mean_calm);
  }
  while (burst_edge_us_ <= until) {
    bursting_ = !bursting_;
    const double mean_calm =
        config_.burst.mean_burst_us * (1.0 - config_.burst.burst_fraction) /
        config_.burst.burst_fraction;
    burst_edge_us_ += rng.Exponential(bursting_ ? config_.burst.mean_burst_us : mean_calm);
  }
}

double DiurnalArrivals::RateAt(TimeUs t) const {
  const double base_per_us = config_.mean_rps / kUsPerSec;
  double rate = base_per_us * config_.shape.Multiplier(t);
  if (config_.burst.enabled()) {
    rate *= bursting_ ? config_.burst.burst_factor : config_.burst.calm_multiplier();
  }
  return rate;
}

DurationUs DiurnalArrivals::NextInterarrival(Rng& rng) {
  // Lewis-Shedler thinning: propose from the homogeneous envelope at the
  // peak rate, accept with probability rate(t)/peak. Every proposal draws
  // exactly two variates, so the stream is reproducible under reseeding.
  const TimeUs start = now_us_;
  while (true) {
    now_us_ += rng.Exponential(1.0 / peak_rate_per_us_);
    AdvanceBurstState(rng, now_us_);
    const double accept = RateAt(now_us_) / peak_rate_per_us_;
    if (rng.NextDouble() < accept) {
      return now_us_ - start;
    }
  }
}

std::string DiurnalArrivals::name() const {
  return "diurnal-" + std::to_string(static_cast<int>(config_.mean_rps + 0.5)) + "rps";
}

DiurnalReplayArrivals::DiurnalReplayArrivals(std::vector<TimeUs> timestamps,
                                             const DiurnalShape& shape)
    : shape_(shape) {
  ORION_CHECK_MSG(timestamps.size() >= 2, "replay needs at least two timestamps");
  gaps_.reserve(timestamps.size() - 1);
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    const DurationUs gap = timestamps[i] - timestamps[i - 1];
    ORION_CHECK_MSG(gap >= 0.0, "replay timestamps must be monotone");
    gaps_.push_back(gap);
  }
}

DurationUs DiurnalReplayArrivals::NextInterarrival(Rng& rng) {
  (void)rng;
  const DurationUs gap = gaps_[cursor_];
  cursor_ = (cursor_ + 1) % gaps_.size();
  // Dividing the gap by the instantaneous multiplier speeds replay up at the
  // diurnal peak and slows it at the trough, preserving the recording's
  // fine-grained burst structure.
  const double m = std::max(1e-6, shape_.Multiplier(now_us_));
  const DurationUs scaled = gap / m;
  now_us_ += scaled;
  return scaled;
}

std::string DiurnalReplayArrivals::name() const {
  return "diurnal-replay-" + std::to_string(gaps_.size()) + "gaps";
}

std::unique_ptr<ArrivalProcess> MakeDiurnal(const DiurnalConfig& config) {
  return std::make_unique<DiurnalArrivals>(config);
}

std::unique_ptr<ArrivalProcess> MakeDiurnalReplay(std::vector<TimeUs> timestamps,
                                                  const DiurnalShape& shape) {
  return std::make_unique<DiurnalReplayArrivals>(std::move(timestamps), shape);
}

void DiurnalMix::AddService(const std::string& service, const DiurnalConfig& config) {
  Entry entry;
  entry.name = service;
  entry.config = config;
  const double phase = entry.config.shape.phase_rad;
  entry.config.shape = shape_;
  entry.config.shape.phase_rad = phase;
  services_.push_back(std::move(entry));
}

void DiurnalMix::FitFromRecording(const std::string& service,
                                  const std::vector<TimeUs>& timestamps) {
  DiurnalShape shape = shape_;
  // Stagger service peaks across the period so the mix's aggregate load is
  // not a single synchronized wave.
  shape.phase_rad += kTwoPi * static_cast<double>(services_.size()) / 8.0;
  Entry entry;
  entry.name = service;
  entry.config = FitDiurnal(timestamps, shape);
  services_.push_back(std::move(entry));
}

std::unique_ptr<ArrivalProcess> DiurnalMix::MakeProcess(std::size_t i) const {
  ORION_CHECK(i < services_.size());
  return MakeDiurnal(services_[i].config);
}

}  // namespace trace
}  // namespace orion
