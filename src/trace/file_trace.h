// Arrival-trace file I/O and replay.
//
// The paper drives its Apollo experiments from a recorded trace's invocation
// timestamps (§6.1). This module provides the equivalent workflow for any
// trace: a plain text format (one monotone arrival timestamp in microseconds
// per line, '#' comments allowed) plus a replaying ArrivalProcess that loops
// the trace when it runs out — so a short recording can drive an arbitrarily
// long experiment.
#ifndef SRC_TRACE_FILE_TRACE_H_
#define SRC_TRACE_FILE_TRACE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/arrivals.h"

namespace orion {
namespace trace {

// Parses timestamps (µs, ascending). Aborts on malformed or non-monotone
// input — a corrupted trace must not silently skew an experiment.
std::vector<TimeUs> LoadArrivalTimestamps(std::istream& is);
void SaveArrivalTimestamps(const std::vector<TimeUs>& timestamps, std::ostream& os);

// Replays the inter-arrival gaps of a recorded trace, cycling when
// exhausted. Requires at least two timestamps.
class ReplayArrivals : public ArrivalProcess {
 public:
  explicit ReplayArrivals(std::vector<TimeUs> timestamps);

  DurationUs NextInterarrival(Rng& rng) override;
  std::string name() const override;

  std::size_t trace_length() const { return gaps_.size(); }
  double mean_rps() const;

 private:
  std::vector<DurationUs> gaps_;
  std::size_t cursor_ = 0;
};

std::unique_ptr<ArrivalProcess> MakeReplay(std::vector<TimeUs> timestamps);

// Convenience: records `count` arrivals from any process into a timestamp
// vector (e.g. to snapshot the synthetic Apollo generator into a file).
std::vector<TimeUs> RecordArrivals(ArrivalProcess& process, Rng& rng, std::size_t count);

}  // namespace trace
}  // namespace orion

#endif  // SRC_TRACE_FILE_TRACE_H_
