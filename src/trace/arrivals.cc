#include "src/trace/arrivals.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace trace {

UniformArrivals::UniformArrivals(double requests_per_second)
    : period_us_(kUsPerSec / requests_per_second) {
  ORION_CHECK(requests_per_second > 0.0);
}

DurationUs UniformArrivals::NextInterarrival(Rng& rng) {
  (void)rng;
  return period_us_;
}

std::string UniformArrivals::name() const {
  return "uniform-" + std::to_string(static_cast<int>(kUsPerSec / period_us_ + 0.5)) + "rps";
}

PoissonArrivals::PoissonArrivals(double requests_per_second)
    : mean_us_(kUsPerSec / requests_per_second) {
  ORION_CHECK(requests_per_second > 0.0);
}

DurationUs PoissonArrivals::NextInterarrival(Rng& rng) { return rng.Exponential(mean_us_); }

std::string PoissonArrivals::name() const {
  return "poisson-" + std::to_string(static_cast<int>(kUsPerSec / mean_us_ + 0.5)) + "rps";
}

ApolloArrivals::ApolloArrivals(double requests_per_second)
    : period_us_(kUsPerSec / requests_per_second) {
  ORION_CHECK(requests_per_second > 0.0);
}

DurationUs ApolloArrivals::NextInterarrival(Rng& rng) {
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    // Burst members land within a small fraction of the frame window.
    return rng.UniformDouble(0.02, 0.08) * period_us_;
  }
  // ~8% of frames carry a burst of 1-3 extra detector invocations.
  if (rng.NextDouble() < 0.08) {
    burst_remaining_ = static_cast<int>(rng.UniformInt(1, 3));
  }
  // Near-periodic with bounded jitter (sensor clock drift, pipeline delay).
  const double jitter = rng.UniformDouble(-0.15, 0.15);
  return std::max(0.05 * period_us_, period_us_ * (1.0 + jitter));
}

std::string ApolloArrivals::name() const {
  return "apollo-" + std::to_string(static_cast<int>(kUsPerSec / period_us_ + 0.5)) + "rps";
}

DurationUs ClosedLoopArrivals::NextInterarrival(Rng& rng) {
  (void)rng;
  return 0.0;
}

std::unique_ptr<ArrivalProcess> MakeUniform(double rps) {
  return std::make_unique<UniformArrivals>(rps);
}
std::unique_ptr<ArrivalProcess> MakePoisson(double rps) {
  return std::make_unique<PoissonArrivals>(rps);
}
std::unique_ptr<ArrivalProcess> MakeApollo(double rps) {
  return std::make_unique<ApolloArrivals>(rps);
}
std::unique_ptr<ArrivalProcess> MakeClosedLoop() { return std::make_unique<ClosedLoopArrivals>(); }

}  // namespace trace
}  // namespace orion
