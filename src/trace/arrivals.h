// Request arrival processes (§6.1).
//
// The paper drives inference jobs with three arrival patterns:
//   * Uniform inter-arrival — autonomous-driving style periodic requests,
//   * Poisson — event-driven services (rates from the Azure Functions trace,
//     Table 3),
//   * the Apollo object-detection trace from the DISB benchmark.
// Training jobs submit iterations in a closed loop.
//
// The real Apollo trace is not redistributable here; ApolloArrivals is a
// seeded synthetic stand-in: near-periodic camera-frame arrivals with bounded
// jitter plus occasional short bursts (multiple sensor events in one frame
// window), which reproduces the queueing pressure the trace exerts.
#ifndef SRC_TRACE_ARRIVALS_H_
#define SRC_TRACE_ARRIVALS_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/time_types.h"

namespace orion {
namespace trace {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Time until the next request arrives. Called once per arrival.
  virtual DurationUs NextInterarrival(Rng& rng) = 0;

  // True for closed-loop processes: the next request is issued immediately
  // after the previous one completes, and NextInterarrival is not used.
  virtual bool closed_loop() const { return false; }

  virtual std::string name() const = 0;
};

// Fixed-rate arrivals: inter-arrival time is exactly 1/rps.
class UniformArrivals : public ArrivalProcess {
 public:
  explicit UniformArrivals(double requests_per_second);
  DurationUs NextInterarrival(Rng& rng) override;
  std::string name() const override;

 private:
  DurationUs period_us_;
};

// Poisson arrivals: exponential inter-arrival with mean 1/rps.
class PoissonArrivals : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double requests_per_second);
  DurationUs NextInterarrival(Rng& rng) override;
  std::string name() const override;

 private:
  DurationUs mean_us_;
};

// Synthetic Apollo-like trace (see file comment).
class ApolloArrivals : public ArrivalProcess {
 public:
  // `requests_per_second` sets the base camera frame rate; bursts add ~10%
  // extra requests on top.
  explicit ApolloArrivals(double requests_per_second);
  DurationUs NextInterarrival(Rng& rng) override;
  std::string name() const override;

 private:
  DurationUs period_us_;
  int burst_remaining_ = 0;
};

// Closed loop: back-to-back requests (training jobs, offline inference).
class ClosedLoopArrivals : public ArrivalProcess {
 public:
  DurationUs NextInterarrival(Rng& rng) override;
  bool closed_loop() const override { return true; }
  std::string name() const override { return "closed-loop"; }
};

std::unique_ptr<ArrivalProcess> MakeUniform(double rps);
std::unique_ptr<ArrivalProcess> MakePoisson(double rps);
std::unique_ptr<ArrivalProcess> MakeApollo(double rps);
std::unique_ptr<ArrivalProcess> MakeClosedLoop();

}  // namespace trace
}  // namespace orion

#endif  // SRC_TRACE_ARRIVALS_H_
