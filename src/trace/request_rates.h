// Table 3 of the paper: requests-per-second for DNN inference jobs, chosen to
// match the invocation rates of the top-20 Azure Functions (§6.1).
#ifndef SRC_TRACE_REQUEST_RATES_H_
#define SRC_TRACE_REQUEST_RATES_H_

#include "src/workloads/models.h"

namespace orion {
namespace trace {

enum class CollocationCase {
  kInfInfUniform,   // inf-inf, best-effort uniform arrivals
  kInfInfPoisson,   // inf-inf, Poisson arrivals
  kInfTrainPoisson, // inf-train, high-priority Poisson arrivals
};

// Requests per second for `model` in the given collocation case (Table 3).
double RequestsPerSecond(workloads::ModelId model, CollocationCase use_case);

}  // namespace trace
}  // namespace orion

#endif  // SRC_TRACE_REQUEST_RATES_H_
