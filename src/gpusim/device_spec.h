// GPU device specifications and occupancy math.
//
// The specs mirror the two GPUs used in the paper's evaluation (V100-16GB and
// A100-40GB). Occupancy follows the formula in §5.2 of the paper: the number
// of thread blocks an SM can hold is limited by threads, registers, shared
// memory, and the architectural block cap; sm_needed is the block count
// divided by that per-SM capacity.
#ifndef SRC_GPUSIM_DEVICE_SPEC_H_
#define SRC_GPUSIM_DEVICE_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace orion {
namespace gpusim {

struct DeviceSpec {
  std::string name;

  // SM geometry.
  int num_sms = 0;
  int max_threads_per_sm = 0;
  int max_registers_per_sm = 0;
  int max_shared_mem_per_sm = 0;  // bytes
  int max_blocks_per_sm = 0;

  // Throughput ceilings used by the interference model and the workload cost
  // model. fp32 since the paper runs full precision (§6.1).
  double peak_fp32_tflops = 0.0;
  double peak_membw_gbps = 0.0;

  // Host interconnect.
  double pcie_gbps = 0.0;
  double pcie_latency_us = 0.0;

  std::size_t memory_bytes = 0;

  static DeviceSpec V100_16GB();
  static DeviceSpec A100_40GB();
};

// Per-kernel launch geometry, as Nsight Compute reports it (§5.2).
struct LaunchGeometry {
  int num_blocks = 1;
  int threads_per_block = 128;
  int registers_per_thread = 32;
  int shared_mem_per_block = 0;  // bytes
};

// Number of thread blocks of this geometry that fit on one SM. Always >= 1
// for geometries that fit the device at all (a block that exceeds a per-SM
// limit cannot launch; we clamp to 1 and let callers validate).
int BlocksPerSm(const DeviceSpec& spec, const LaunchGeometry& geom);

// sm_needed_k = ceil(num_blocks_k / blocks_per_sm_k)  (§5.2).
int SmsNeeded(const DeviceSpec& spec, const LaunchGeometry& geom);

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_DEVICE_SPEC_H_
