#include "src/gpusim/kernel.h"

namespace orion {
namespace gpusim {

const char* ResourceProfileName(ResourceProfile profile) {
  switch (profile) {
    case ResourceProfile::kComputeBound:
      return "compute";
    case ResourceProfile::kMemoryBound:
      return "memory";
    case ResourceProfile::kUnknown:
      return "unknown";
  }
  return "invalid";
}

ResourceProfile ClassifyKernel(const KernelDesc& kernel) {
  if (kernel.has_roofline) {
    return kernel.roofline_class;
  }
  constexpr double kThreshold = 0.6;
  const bool compute_hot = kernel.compute_util > kThreshold;
  const bool memory_hot = kernel.membw_util > kThreshold;
  if (compute_hot && memory_hot) {
    return kernel.compute_util >= kernel.membw_util ? ResourceProfile::kComputeBound
                                                    : ResourceProfile::kMemoryBound;
  }
  if (compute_hot) {
    return ResourceProfile::kComputeBound;
  }
  if (memory_hot) {
    return ResourceProfile::kMemoryBound;
  }
  return ResourceProfile::kUnknown;
}

bool HaveDifferentProfiles(ResourceProfile a, ResourceProfile b) {
  // Unknown-profile kernels are short and collocate with anything (§5.2).
  if (a == ResourceProfile::kUnknown || b == ResourceProfile::kUnknown) {
    return true;
  }
  return a != b;
}

}  // namespace gpusim
}  // namespace orion
