// Chrome-trace (about://tracing / Perfetto) export of kernel execution
// records. Each kernel becomes a complete event ("ph":"X") on a track per
// stream, making collocation schedules visually inspectable — which kernels
// overlapped, where the scheduler throttled, where the GPU idled.
#ifndef SRC_GPUSIM_TRACE_EXPORT_H_
#define SRC_GPUSIM_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/gpusim/device.h"

namespace orion {
namespace gpusim {

// Collects execution records from any number of devices (one track each,
// install via RecordInto) and serialises them in the Chrome trace-event JSON
// array format: one Chrome "process" per device track, one "thread" per
// stream. A multi-GPU run therefore exports a single merged trace instead of
// one file per device.
class TraceCollector {
 public:
  // Installs this collector as `device`'s kernel trace sink, adding a track.
  // An empty name defaults to "gpu<track index>". May be called once per
  // device for any number of devices; the collector must outlive the
  // devices' use. Returns the track index.
  int RecordInto(Device& device, const std::string& track_name = "");

  // Adds an empty track without a device (records appended via AddRecord) —
  // used by exporters/tests that merge externally collected records.
  int AddTrack(const std::string& track_name);
  void AddRecord(int track, KernelExecRecord record);

  const std::vector<std::string>& track_names() const { return track_names_; }

  // One collected record with the track it belongs to, in completion order
  // across all devices (the simulator's deterministic event order).
  struct Entry {
    int track = 0;
    KernelExecRecord record;
  };
  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  // Records of one track, in completion order.
  std::vector<KernelExecRecord> TrackRecords(int track) const;

  // Chrome trace-event format: a JSON array of {"name","ph":"X","ts","dur",
  // "pid","tid"} events, timestamps in µs, one pid per track (offset by
  // `pid_base`). Loadable by chrome://tracing and https://ui.perfetto.dev.
  void WriteChromeTrace(std::ostream& os) const;

  // Emits the same events without the surrounding "[" / "]" so other
  // exporters (src/telemetry) can merge kernel tracks into a larger trace.
  // Returns the number of events written; `first` tracks comma placement.
  std::size_t WriteChromeTraceEvents(std::ostream& os, int pid_base, bool* first) const;

 private:
  std::vector<std::string> track_names_;
  std::vector<Entry> entries_;
};

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_TRACE_EXPORT_H_
