// Chrome-trace (about://tracing / Perfetto) export of kernel execution
// records. Each kernel becomes a complete event ("ph":"X") on a track per
// stream, making collocation schedules visually inspectable — which kernels
// overlapped, where the scheduler throttled, where the GPU idled.
#ifndef SRC_GPUSIM_TRACE_EXPORT_H_
#define SRC_GPUSIM_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/gpusim/device.h"

namespace orion {
namespace gpusim {

// Collects execution records from a device (install via RecordInto) and
// serialises them in the Chrome trace-event JSON array format.
class TraceCollector {
 public:
  // Installs this collector as the device's kernel trace sink. Only one sink
  // can be active per device; the collector must outlive the device's use.
  void RecordInto(Device& device, const std::string& track_name = "gpu");

  const std::vector<KernelExecRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  // Chrome trace-event format: a JSON array of {"name","ph":"X","ts","dur",
  // "pid","tid"} events, timestamps in µs. Loadable by chrome://tracing and
  // https://ui.perfetto.dev.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  std::string track_name_ = "gpu";
  std::vector<KernelExecRecord> records_;
};

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_TRACE_EXPORT_H_
