#include "src/gpusim/utilization.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace gpusim {

void UtilizationTracker::Record(TimeUs start, TimeUs end, double compute, double membw,
                                double sm_busy) {
  ORION_CHECK_MSG(end >= start, "utilization interval reversed");
  if (end <= start) {
    return;
  }
  // Merge with the previous sample when the signal did not change; keeps the
  // sample vector compact over long idle stretches.
  if (!samples_.empty()) {
    UtilizationSample& last = samples_.back();
    if (last.end == start && last.compute == compute && last.membw == membw &&
        last.sm_busy == sm_busy) {
      last.end = end;
      compute_.AddInterval(start, end, compute);
      membw_.AddInterval(start, end, membw);
      sm_busy_.AddInterval(start, end, sm_busy);
      return;
    }
  }
  samples_.push_back(UtilizationSample{start, end, compute, membw, sm_busy});
  compute_.AddInterval(start, end, compute);
  membw_.AddInterval(start, end, membw);
  sm_busy_.AddInterval(start, end, sm_busy);
}

UtilizationSample UtilizationTracker::AverageOver(TimeUs from, TimeUs to) const {
  UtilizationSample out;
  out.start = from;
  out.end = to;
  double total = 0.0;
  double compute_sum = 0.0;
  double membw_sum = 0.0;
  double sm_sum = 0.0;
  for (const UtilizationSample& sample : samples_) {
    const TimeUs lo = std::max(sample.start, from);
    const TimeUs hi = std::min(sample.end, to);
    if (hi <= lo) {
      continue;
    }
    const double width = hi - lo;
    total += width;
    compute_sum += width * sample.compute;
    membw_sum += width * sample.membw;
    sm_sum += width * sample.sm_busy;
  }
  if (total > 0.0) {
    out.compute = compute_sum / total;
    out.membw = membw_sum / total;
    out.sm_busy = sm_sum / total;
  }
  return out;
}

std::vector<UtilizationSample> UtilizationTracker::Timeline(TimeUs from, TimeUs to,
                                                            int buckets) const {
  ORION_CHECK(buckets > 0);
  ORION_CHECK(to > from);
  std::vector<UtilizationSample> out;
  out.reserve(static_cast<std::size_t>(buckets));
  const double width = (to - from) / buckets;
  for (int b = 0; b < buckets; ++b) {
    const TimeUs lo = from + b * width;
    const TimeUs hi = lo + width;
    out.push_back(AverageOver(lo, hi));
  }
  return out;
}

void UtilizationTracker::Clear() {
  samples_.clear();
  compute_ = TimeWeightedStats();
  membw_ = TimeWeightedStats();
  sm_busy_ = TimeWeightedStats();
}

}  // namespace gpusim
}  // namespace orion
