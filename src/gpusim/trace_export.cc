#include "src/gpusim/trace_export.h"

#include <cstdio>
#include <ostream>

#include "src/common/check.h"

namespace orion {
namespace gpusim {
namespace {

// Minimal JSON string escaping for kernel names (quotes, backslashes,
// control characters).
void WriteJsonString(std::ostream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

int TraceCollector::AddTrack(const std::string& track_name) {
  const int track = static_cast<int>(track_names_.size());
  track_names_.push_back(track_name.empty() ? "gpu" + std::to_string(track) : track_name);
  return track;
}

int TraceCollector::RecordInto(Device& device, const std::string& track_name) {
  const int track = AddTrack(track_name);
  device.set_kernel_trace_sink([this, track](const KernelExecRecord& record) {
    entries_.push_back(Entry{track, record});
  });
  return track;
}

void TraceCollector::AddRecord(int track, KernelExecRecord record) {
  ORION_CHECK(track >= 0 && track < static_cast<int>(track_names_.size()));
  entries_.push_back(Entry{track, std::move(record)});
}

std::vector<KernelExecRecord> TraceCollector::TrackRecords(int track) const {
  std::vector<KernelExecRecord> records;
  for (const Entry& entry : entries_) {
    if (entry.track == track) {
      records.push_back(entry.record);
    }
  }
  return records;
}

std::size_t TraceCollector::WriteChromeTraceEvents(std::ostream& os, int pid_base,
                                                   bool* first) const {
  std::size_t written = 0;
  for (std::size_t track = 0; track < track_names_.size(); ++track) {
    if (!*first) {
      os << ",";
    }
    *first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << pid_base + static_cast<int>(track) << ",\"args\":{\"name\":";
    WriteJsonString(os, track_names_[track]);
    os << "}}";
    ++written;
  }
  for (const Entry& entry : entries_) {
    const KernelExecRecord& record = entry.record;
    if (!*first) {
      os << ",";
    }
    *first = false;
    os << "\n{\"name\":";
    WriteJsonString(os, record.name);
    os << ",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":" << record.start
       << ",\"dur\":" << (record.end - record.start) << ",\"pid\":" << pid_base + entry.track
       << ",\"tid\":" << record.stream << ",\"args\":{\"kernel_id\":" << record.kernel_id
       << ",\"sm_needed\":" << record.sm_needed << "}}";
    ++written;
  }
  return written;
}

void TraceCollector::WriteChromeTrace(std::ostream& os) const {
  os << "[";
  bool first = true;
  if (track_names_.empty()) {
    // Legacy shape: an empty collector still emits a (single) track header.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"gpu\"}}";
    first = false;
  }
  WriteChromeTraceEvents(os, /*pid_base=*/0, &first);
  os << "\n]\n";
}

}  // namespace gpusim
}  // namespace orion
