#include "src/gpusim/trace_export.h"

#include <ostream>

namespace orion {
namespace gpusim {
namespace {

// Minimal JSON string escaping for kernel names (quotes, backslashes,
// control characters).
void WriteJsonString(std::ostream& os, const std::string& value) {
  os << '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void TraceCollector::RecordInto(Device& device, const std::string& track_name) {
  track_name_ = track_name;
  device.set_kernel_trace_sink(
      [this](const KernelExecRecord& record) { records_.push_back(record); });
}

void TraceCollector::WriteChromeTrace(std::ostream& os) const {
  os << "[";
  bool first = true;
  // Track-name metadata event.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":";
  WriteJsonString(os, track_name_);
  os << "}}";
  first = false;
  for (const KernelExecRecord& record : records_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n{\"name\":";
    WriteJsonString(os, record.name);
    os << ",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":" << record.start
       << ",\"dur\":" << (record.end - record.start) << ",\"pid\":0,\"tid\":" << record.stream
       << ",\"args\":{\"kernel_id\":" << record.kernel_id
       << ",\"sm_needed\":" << record.sm_needed << "}}";
  }
  os << "\n]\n";
}

}  // namespace gpusim
}  // namespace orion
