#include "src/gpusim/device.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace gpusim {
namespace {

// Work below this threshold (in alone-time µs) counts as finished; absorbs
// floating-point residue from rate integration.
constexpr DurationUs kRemainingEpsilon = 1e-6;

// Fixed device-side overhead of a memset, on top of its bandwidth cost.
constexpr DurationUs kMemsetOverheadUs = 2.0;

// Block-turnover quantum: how long it takes for SM shares to shift after the
// allocation target changes. Running thread blocks are never preempted, but
// DNN kernels consist of many short blocks, so SMs drain to new owners at
// roughly this timescale.
constexpr DurationUs kRebalanceQuantumUs = 25.0;

// Tolerance for comparing fluid SM grants.
constexpr double kGrantEpsilon = 1e-9;

// Strength of the co-residency memory interference penalty (cache/row-buffer
// pollution between concurrent kernels). Calibrated against the paper's
// Table 2 BN2d+BN2d measurement (1.08x speedup instead of the ~1.25x a pure
// bandwidth-sharing model predicts).
constexpr double kCacheInterference = 0.2;

}  // namespace

Device::Device(Simulator* sim, DeviceSpec spec) : sim_(sim), spec_(std::move(spec)) {
  ORION_CHECK(sim_ != nullptr);
  ORION_CHECK(spec_.num_sms > 0);
  effective_sms_ = spec_.num_sms;
  last_update_ = sim_->now();
}

void Device::DegradeSms(int sms_lost) {
  ORION_CHECK(sms_lost >= 0);
  // Integrate progress at the old capacity before shrinking it.
  AdvanceTo(sim_->now());
  effective_sms_ = std::max(1, effective_sms_ - sms_lost);
  // Reschedule recomputes targets against the shrunken pool; kernels holding
  // more than their new target drain via the rebalance quantum (running
  // blocks are never preempted, they retire).
  Reschedule();
}

void Device::ScaleMembw(double factor) {
  ORION_CHECK(factor > 0.0);
  AdvanceTo(sim_->now());
  membw_factor_ *= factor;
  Reschedule();
}

StreamId Device::CreateStream(int priority) {
  streams_.push_back(Stream{priority, {}, false});
  return static_cast<StreamId>(streams_.size() - 1);
}

int Device::stream_priority(StreamId stream) const {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  return streams_[static_cast<std::size_t>(stream)].priority;
}

void Device::LaunchKernel(StreamId stream, const KernelDesc& kernel, CompletionCb done) {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  ORION_CHECK_MSG(kernel.duration_us >= 0.0, "kernel with negative duration: " << kernel.name);
  Op op;
  op.type = Op::Type::kKernel;
  op.kernel = kernel;
  op.done = std::move(done);
  op.seq = next_seq_++;
  streams_[static_cast<std::size_t>(stream)].queue.push_back(std::move(op));
  ActivateStreamHead(stream);
  Reschedule();
}

void Device::EnqueueMemcpy(StreamId stream, std::size_t bytes, MemcpyKind kind,
                           CompletionCb done) {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  Op op;
  op.type = Op::Type::kMemcpy;
  op.bytes = bytes;
  op.memcpy_kind = kind;
  op.done = std::move(done);
  op.seq = next_seq_++;
  streams_[static_cast<std::size_t>(stream)].queue.push_back(std::move(op));
  ActivateStreamHead(stream);
}

void Device::EnqueueMemset(StreamId stream, std::size_t bytes, CompletionCb done) {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  Op op;
  op.type = Op::Type::kMemset;
  op.bytes = bytes;
  op.done = std::move(done);
  op.seq = next_seq_++;
  streams_[static_cast<std::size_t>(stream)].queue.push_back(std::move(op));
  ActivateStreamHead(stream);
}

void Device::RecordEvent(StreamId stream, GpuEvent* event, CompletionCb done) {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  ORION_CHECK(event != nullptr);
  event->done = false;
  Op op;
  op.type = Op::Type::kEvent;
  op.event = event;
  op.done = std::move(done);
  op.seq = next_seq_++;
  streams_[static_cast<std::size_t>(stream)].queue.push_back(std::move(op));
  ActivateStreamHead(stream);
}

void Device::EnqueueExternal(StreamId stream, ExternalBody body, CompletionCb done) {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  ORION_CHECK(body != nullptr);
  Op op;
  op.type = Op::Type::kExternal;
  op.external = std::move(body);
  op.done = std::move(done);
  op.seq = next_seq_++;
  streams_[static_cast<std::size_t>(stream)].queue.push_back(std::move(op));
  ActivateStreamHead(stream);
}

void Device::AttachHostLink(HostLinkModel* host_link, int gpu_index) {
  ORION_CHECK(!copy_active_ && copy_queue_.empty());
  host_link_ = host_link;
  gpu_index_ = gpu_index;
}

void Device::SynchronizeDevice(CompletionCb done) {
  ORION_CHECK(done != nullptr);
  sync_waiters_.push_back(std::move(done));
  CheckDeviceSync();
}

double Device::GrantedTotal() const {
  double total = 0.0;
  for (const RunningKernel& rk : running_) {
    total += rk.granted;
  }
  return total;
}

int Device::FreeSms() const {
  return static_cast<int>(std::floor(effective_sms_ - GrantedTotal() + kGrantEpsilon));
}

int Device::BusySms() const { return effective_sms_ - FreeSms(); }

bool Device::AnyKernelRunning() const { return !running_.empty(); }

int Device::RunningKernelCount() const { return static_cast<int>(running_.size()); }

int Device::StreamBusySms(StreamId stream) const {
  double total = 0.0;
  for (const RunningKernel& rk : running_) {
    if (rk.stream == stream) {
      total += rk.granted;
    }
  }
  return static_cast<int>(total + 0.5);
}

bool Device::StreamIdle(StreamId stream) const {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  const Stream& s = streams_[static_cast<std::size_t>(stream)];
  return s.queue.empty() && !s.head_active;
}

DurationUs Device::StreamExecutedUs(StreamId stream) {
  ORION_CHECK(stream >= 0 && stream < static_cast<int>(streams_.size()));
  AdvanceTo(sim_->now());
  DurationUs executed = 0.0;
  for (const RunningKernel& rk : running_) {
    if (rk.stream == stream) {
      executed += rk.desc.duration_us - rk.remaining;
    }
  }
  return executed;
}

void Device::ActivateStreamHead(StreamId stream_id) {
  Stream& stream = streams_[static_cast<std::size_t>(stream_id)];
  // Events (and only events) resolve immediately upon reaching the head, so
  // several can retire back-to-back; hence the loop.
  while (!stream.head_active && !stream.queue.empty()) {
    Op& front = stream.queue.front();
    switch (front.type) {
      case Op::Type::kEvent: {
        front.event->done = true;
        front.event->completed_at = sim_->now();
        CompletionCb done = std::move(front.done);
        stream.queue.pop_front();
        DeliverCallback(std::move(done));
        continue;  // next op may also be startable
      }
      case Op::Type::kKernel: {
        RunningKernel rk;
        rk.stream = stream_id;
        rk.desc = front.kernel;
        rk.remaining = front.kernel.duration_us;
        // duration_us is the run-alone wall time and already includes wave
        // execution of grids larger than the device, so the progress model
        // caps the SM demand at device size: a kernel granted every SM it
        // can use runs at full rate.
        const int raw_sm_needed = SmsNeeded(spec_, front.kernel.geometry);
        // Effective SM demand models occupancy pressure, not grid size: a
        // compute-bound kernel's blocks hold most of each SM's register file
        // and issue slots (~75-90%), while a memory-bound kernel only needs
        // enough resident warps to keep DRAM saturated (~25%) — its blocks
        // co-reside with another kernel's at negligible cost. This is the
        // physical headroom behind the paper's Table 2 result (Conv2d+BN2d
        // overlap at 1.41x) and Orion's opposite-profile collocation rule.
        const double c = front.kernel.compute_util;
        const double m = front.kernel.membw_util;
        const double intensity = c / (c + m + 1e-9);
        const double demand_frac = 0.25 + 0.65 * intensity;
        const int capped = std::min(raw_sm_needed, effective_sms_);
        rk.sm_needed = std::max(1, static_cast<int>(capped * demand_frac + 0.5));
        rk.granted = 0;
        // Wave count: grids larger than the device execute in multiple
        // waves, so their blocks are proportionally shorter than the kernel.
        const double waves =
            std::max(1.0, static_cast<double>(raw_sm_needed) / effective_sms_);
        rk.block_duration = std::max(1.0, front.kernel.duration_us / waves);
        rk.started_at = sim_->now();
        rk.seq = front.seq;
        rk.done = std::move(front.done);
        stream.queue.pop_front();
        stream.head_active = true;
        running_.push_back(std::move(rk));
        return;  // SM grant happens in Reschedule()
      }
      case Op::Type::kExternal: {
        ExternalBody body = std::move(front.external);
        CompletionCb done = std::move(front.done);
        stream.queue.pop_front();
        stream.head_active = true;
        body([this, stream_id, done = std::move(done)]() mutable {
          FinishOp(stream_id, std::move(done));
          Reschedule();
        });
        return;
      }
      case Op::Type::kMemcpy: {
        PendingCopy copy;
        copy.stream = stream_id;
        copy.bytes = front.bytes;
        copy.priority = stream.priority;
        copy.kind = front.memcpy_kind;
        copy.seq = front.seq;
        copy.done = std::move(front.done);
        stream.queue.pop_front();
        stream.head_active = true;
        copy_queue_.push_back(std::move(copy));
        StartNextCopy();
        return;
      }
      case Op::Type::kMemset: {
        const DurationUs duration =
            kMemsetOverheadUs + static_cast<double>(front.bytes) /
                                    (spec_.peak_membw_gbps * membw_factor_ * 1e3);
        CompletionCb done = std::move(front.done);
        stream.queue.pop_front();
        stream.head_active = true;
        sim_->ScheduleAfter(duration, [this, stream_id, done = std::move(done)]() mutable {
          FinishOp(stream_id, std::move(done));
          Reschedule();
        });
        return;
      }
    }
  }
}

void Device::FinishOp(StreamId stream_id, CompletionCb done) {
  Stream& stream = streams_[static_cast<std::size_t>(stream_id)];
  ORION_CHECK(stream.head_active);
  stream.head_active = false;
  DeliverCallback(std::move(done));
  ActivateStreamHead(stream_id);
  CheckDeviceSync();
}

void Device::StartNextCopy() {
  if (copy_active_ || copy_queue_.empty()) {
    return;
  }
  copy_active_ = true;
  auto next = copy_queue_.begin();
  if (pcie_priority_) {
    // Pick the highest-priority pending copy; FIFO within a priority level.
    for (auto it = copy_queue_.begin(); it != copy_queue_.end(); ++it) {
      if (it->priority > next->priority ||
          (it->priority == next->priority && it->seq < next->seq)) {
        next = it;
      }
    }
  }
  PendingCopy copy = std::move(*next);
  copy_queue_.erase(next);

  // Chunked transfer (priority mode): large copies release the engine every
  // kCopyChunkBytes so higher-priority copies wait one chunk at most.
  constexpr std::size_t kCopyChunkBytes = 2 * 1000 * 1000;
  const std::size_t chunk =
      pcie_priority_ ? std::min(copy.bytes, kCopyChunkBytes) : copy.bytes;
  const DurationUs setup = copy.started ? 0.0 : spec_.pcie_latency_us;
  const bool via_fabric = host_link_ != nullptr && copy.kind != MemcpyKind::kDeviceToDevice;
  const bool to_device = copy.kind == MemcpyKind::kHostToDevice;
  copy.bytes -= chunk;
  copy.started = true;

  auto on_chunk_done = [this, copy = std::move(copy)]() mutable {
    copy_active_ = false;
    if (copy.bytes > 0) {
      // Re-queue the remainder; a higher-priority copy may now cut in.
      copy_queue_.push_back(std::move(copy));
    } else {
      ++memcpys_completed_;
      FinishOp(copy.stream, std::move(copy.done));
    }
    StartNextCopy();
    Reschedule();
  };

  if (via_fabric) {
    // Wire time (including link latency and any contention from other
    // traffic on the node) comes from the shared fabric; the engine still
    // serialises one chunk at a time.
    host_link_->StartHostCopy(gpu_index_, chunk, to_device, std::move(on_chunk_done));
    return;
  }
  const DurationUs duration = setup + static_cast<double>(chunk) / (spec_.pcie_gbps * 1e3);
  copy_event_ = sim_->ScheduleAfter(duration, std::move(on_chunk_done));
}

void Device::ComputeRates(std::vector<std::pair<RunningKernel*, double>>* rates) {
  rates->clear();
  // Aggregate demand on each device-wide resource (scaled by SM share).
  double compute = 0.0;
  double membw = 0.0;
  for (RunningKernel& rk : running_) {
    if (rk.sm_needed <= 0 || rk.granted <= kGrantEpsilon) {
      continue;
    }
    const double share = std::min(1.0, rk.granted / rk.sm_needed);
    compute += rk.desc.compute_util * share;
    // Utilizations are fractions of the healthy peak; degraded bandwidth
    // makes the same traffic a larger fraction of what is left.
    membw += rk.desc.membw_util * share / membw_factor_;
    rates->emplace_back(&rk, share);
  }
  const double slowdown = std::max({1.0, compute, membw});
  for (auto& [rk, share] : *rates) {
    // Co-residency penalty: other resident kernels' memory traffic pollutes
    // the caches and row buffers this kernel depends on, costing it
    // throughput even when aggregate bandwidth demand is below peak. The
    // paper measures this effect in Table 2 (BN2d+BN2d speeds up only 1.08x
    // despite 80% aggregate SM headroom); kCacheInterference is calibrated
    // against that row.
    const double own_membw = rk->desc.membw_util * share;
    const double foreign_membw = membw - own_membw;
    const double penalty = 1.0 + kCacheInterference * foreign_membw;
    share = share / (slowdown * penalty);  // share now holds the rate
  }
}

double Device::CurrentSlowdown() const {
  double compute = 0.0;
  double membw = 0.0;
  for (const RunningKernel& rk : running_) {
    if (rk.sm_needed <= 0 || rk.granted <= kGrantEpsilon) {
      continue;
    }
    const double share = std::min(1.0, rk.granted / rk.sm_needed);
    compute += rk.desc.compute_util * share;
    membw += rk.desc.membw_util * share / membw_factor_;
  }
  return std::max({1.0, compute, membw});
}

void Device::AdvanceTo(TimeUs now) {
  const DurationUs dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  ComputeRates(&rates_scratch_);
  double delivered_compute = 0.0;
  double delivered_membw = 0.0;
  for (const auto& [rk, rate] : rates_scratch_) {
    rk->remaining = std::max(0.0, rk->remaining - rate * dt);
    delivered_compute += rk->desc.compute_util * rate;
    delivered_membw += rk->desc.membw_util * rate;
  }
  const double sm_busy = std::min(1.0, GrantedTotal() / effective_sms_);
  utilization_.Record(last_update_, now, std::min(1.0, delivered_compute),
                      std::min(1.0, delivered_membw), sm_busy);
  last_update_ = now;
}

void Device::CompleteFinishedKernels() {
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->remaining <= kRemainingEpsilon && it->granted > kGrantEpsilon) {
      RunningKernel rk = std::move(*it);
      it = running_.erase(it);
      ++kernels_completed_;
      if (trace_sink_) {
        KernelExecRecord record;
        record.kernel_id = rk.desc.kernel_id;
        record.name = rk.desc.name;
        record.stream = rk.stream;
        record.start = rk.started_at;
        record.end = sim_->now();
        record.sm_needed = rk.sm_needed;
        trace_sink_(record);
      }
      FinishOp(rk.stream, std::move(rk.done));
    } else {
      ++it;
    }
  }
}

void Device::ComputeTargets() {
  // Weighted max-min (water-filling) allocation: each kernel's target is
  // proportional to weight * demand, capped at its demand, with freed
  // capacity redistributed. Stream priority sets the weight (4x per level):
  // hardware block dispatch strongly favours high-priority streams, but
  // low-priority blocks still trickle in between memory stalls, so priority
  // biases rather than starves — which is why the paper still needs the
  // DUR_THRESHOLD throttle on top of priorities (§5.1.2).
  std::vector<RunningKernel*> kernels;
  kernels.reserve(running_.size());
  for (RunningKernel& rk : running_) {
    rk.target = 0.0;
    kernels.push_back(&rk);
  }
  double remaining = static_cast<double>(effective_sms_);
  std::vector<bool> capped(kernels.size(), false);
  for (std::size_t round = 0; round < kernels.size() && remaining > kGrantEpsilon; ++round) {
    double weighted_demand = 0.0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      if (!capped[i]) {
        const int priority = streams_[static_cast<std::size_t>(kernels[i]->stream)].priority;
        weighted_demand += std::pow(4.0, priority) * kernels[i]->sm_needed;
      }
    }
    if (weighted_demand <= kGrantEpsilon) {
      break;
    }
    const double fill = remaining / weighted_demand;
    bool any_capped = false;
    double used = 0.0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      if (capped[i]) {
        continue;
      }
      const int priority = streams_[static_cast<std::size_t>(kernels[i]->stream)].priority;
      const double share = fill * std::pow(4.0, priority) * kernels[i]->sm_needed;
      const double demand = static_cast<double>(kernels[i]->sm_needed);
      if (share >= demand) {
        kernels[i]->target = demand;
        used += demand;
        capped[i] = true;
        any_capped = true;
      } else {
        kernels[i]->target = share;  // provisional; refined if others cap out
        used += share;
      }
    }
    if (!any_capped) {
      break;  // allocation is final
    }
    // Remove the capped kernels' demand and re-fill the rest from scratch.
    remaining = static_cast<double>(effective_sms_);
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      if (capped[i]) {
        remaining -= kernels[i]->target;
      } else {
        kernels[i]->target = 0.0;
      }
    }
    remaining = std::max(0.0, remaining);
  }
}

void Device::MaybeScheduleRebalance() {
  if (rebalance_pending_) {
    return;
  }
  rebalance_pending_ = true;
  sim_->ScheduleAfter(kRebalanceQuantumUs, [this]() {
    rebalance_pending_ = false;
    AdvanceTo(sim_->now());
    ComputeTargets();
    for (RunningKernel& rk : running_) {
      if (rk.granted > rk.target + kGrantEpsilon) {
        // Blocks retire every block_duration on average, so over one quantum
        // a kernel can release at most this many of its SMs. Long-block
        // kernels (e.g. single-wave training convs) therefore hold their SMs
        // for most of their lifetime — the non-preemption pain that Orion's
        // DUR_THRESHOLD throttle exists to bound (§5.1.1).
        const double releasable = rk.granted * kRebalanceQuantumUs / rk.block_duration;
        rk.granted = std::max(rk.target, rk.granted - releasable);
      }
    }
    // Freed SMs are re-granted (and further shrink ticks scheduled) by the
    // normal path.
    Reschedule();
  });
}

void Device::Reschedule() {
  if (in_reschedule_) {
    return;
  }
  in_reschedule_ = true;
  AdvanceTo(sim_->now());

  // Retiring kernels frees SMs; freed SMs may start pending kernels whose
  // duration is zero-ish, which retire immediately — hence the loop.
  for (int iteration = 0; iteration < 1024; ++iteration) {
    CompleteFinishedKernels();
    ComputeTargets();

    // Growth is immediate: under-target kernels absorb free SMs in
    // (priority, submission) order. Shrinking waits for the rebalance
    // quantum — granted SMs are never revoked instantly (no preemption of
    // running blocks).
    std::vector<RunningKernel*> wanting;
    for (RunningKernel& rk : running_) {
      if (rk.granted + kGrantEpsilon < rk.target) {
        wanting.push_back(&rk);
      }
    }
    std::sort(wanting.begin(), wanting.end(), [this](const RunningKernel* a,
                                                     const RunningKernel* b) {
      const int pa = streams_[static_cast<std::size_t>(a->stream)].priority;
      const int pb = streams_[static_cast<std::size_t>(b->stream)].priority;
      if (pa != pb) {
        return pa > pb;
      }
      return a->seq < b->seq;
    });
    double free = static_cast<double>(effective_sms_) - GrantedTotal();
    for (RunningKernel* rk : wanting) {
      if (free <= kGrantEpsilon) {
        break;
      }
      const double grant = std::min(free, rk->target - rk->granted);
      rk->granted += grant;
      free -= grant;
    }

    // If nothing granted is already finished, the state is stable.
    bool any_finished = false;
    for (const RunningKernel& rk : running_) {
      if (rk.granted > kGrantEpsilon && rk.remaining <= kRemainingEpsilon) {
        any_finished = true;
        break;
      }
    }
    if (!any_finished) {
      break;
    }
  }

  // Any kernel still holding more than its target (or starved below it with
  // no free capacity) needs a rebalance one block-turnover quantum from now.
  for (const RunningKernel& rk : running_) {
    if (rk.granted > rk.target + 1e-6 || rk.granted + 1e-6 < rk.target) {
      MaybeScheduleRebalance();
      break;
    }
  }

  // Schedule the next completion.
  sim_->Cancel(completion_event_);
  completion_event_ = EventHandle();
  DurationUs next_completion = std::numeric_limits<DurationUs>::infinity();
  ComputeRates(&rates_scratch_);
  for (const auto& [rk, rate] : rates_scratch_) {
    if (rate > 0.0) {
      next_completion = std::min(next_completion, rk->remaining / rate);
    }
  }
  if (std::isfinite(next_completion)) {
    completion_event_ = sim_->ScheduleAfter(next_completion, [this]() { Reschedule(); });
  }
  in_reschedule_ = false;
}

void Device::CheckDeviceSync() {
  if (sync_waiters_.empty()) {
    return;
  }
  if (!running_.empty() || copy_active_ || !copy_queue_.empty()) {
    return;
  }
  for (const Stream& stream : streams_) {
    if (!stream.queue.empty() || stream.head_active) {
      return;
    }
  }
  std::vector<CompletionCb> waiters;
  waiters.swap(sync_waiters_);
  for (CompletionCb& waiter : waiters) {
    DeliverCallback(std::move(waiter));
  }
}

void Device::DeliverCallback(CompletionCb cb) {
  if (cb) {
    sim_->ScheduleAfter(0.0, std::move(cb));
  }
}

}  // namespace gpusim
}  // namespace orion
