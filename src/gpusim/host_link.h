// Host-link abstraction for the device copy engine.
//
// By default a Device models its host interconnect as a private point-to-point
// PCIe pipe at `spec.pcie_gbps` (one transfer at a time, no outside traffic).
// On a multi-GPU node that is wrong: every host<->device copy crosses a link
// fabric shared with peer-to-peer transfers and collective traffic. A Device
// attached to a HostLinkModel (see src/interconnect/fabric.h) delegates the
// wire time of each host<->device chunk to the fabric, so copies contend for
// link bandwidth with everything else on the node. Queueing, stream ordering,
// chunking and priority selection stay inside the copy engine; only the
// transfer itself moves to the fabric.
#ifndef SRC_GPUSIM_HOST_LINK_H_
#define SRC_GPUSIM_HOST_LINK_H_

#include <cstddef>
#include <functional>

namespace orion {
namespace gpusim {

class HostLinkModel {
 public:
  virtual ~HostLinkModel() = default;

  // Carries `bytes` between host memory and GPU `gpu`'s HBM. `done` fires
  // (via a simulator event) when the payload, including link latency, has
  // fully crossed the fabric. `to_device` selects the H2D direction.
  virtual void StartHostCopy(int gpu, std::size_t bytes, bool to_device,
                             std::function<void()> done) = 0;
};

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_HOST_LINK_H_
