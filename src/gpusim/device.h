// GPU device execution model.
//
// Reproduces the hardware behaviour Orion's policy depends on (§2 of the
// paper):
//   * Each CUDA stream is a FIFO work queue; ops on a stream execute in
//     order. Streams carry an integer priority.
//   * The hardware dispatcher assigns thread blocks to SMs in stream-priority
//     order, but NEVER preempts blocks that already started.
//   * A kernel whose blocks exceed free SM capacity starts partially and
//     absorbs SMs as they free up (wave execution), modelled as a progress
//     rate scaled by granted/needed SMs.
//   * Concurrent kernels contend for compute throughput and memory bandwidth:
//     if aggregate demand on either resource exceeds the device peak, all
//     resident kernels slow proportionally (shape validated against the
//     paper's Table 2 toy experiment).
//   * Host<->device copies run on a separate copy engine at PCIe bandwidth.
//   * CUDA events complete when all prior ops on their stream complete and
//     can be queried without blocking (cudaEventQuery, §5.1.2).
//
// Everything runs in virtual time on the discrete-event Simulator. Completion
// callbacks are delivered through zero-delay simulator events, so callbacks
// may freely enqueue new work without re-entering the device mid-update.
#ifndef SRC_GPUSIM_DEVICE_H_
#define SRC_GPUSIM_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <string>
#include <vector>

#include "src/common/time_types.h"
#include "src/gpusim/device_spec.h"
#include "src/gpusim/host_link.h"
#include "src/gpusim/kernel.h"
#include "src/gpusim/utilization.h"
#include "src/sim/simulator.h"

namespace orion {
namespace gpusim {

using StreamId = int;
constexpr StreamId kInvalidStream = -1;

// Stream priorities: larger value = scheduled first, matching CUDA's
// "greatestPriority" semantics once mapped to an integer scale.
constexpr int kPriorityDefault = 0;
constexpr int kPriorityHigh = 1;

// Host-visible completion flag, the analogue of a cudaEvent_t.
struct GpuEvent {
  bool done = false;
  TimeUs completed_at = 0.0;
};

enum class MemcpyKind : std::uint8_t {
  kHostToDevice,
  kDeviceToHost,
  kDeviceToDevice,
};

// Trace record emitted for every kernel execution (used by the profiler and
// the utilization figures).
struct KernelExecRecord {
  std::uint64_t kernel_id = 0;
  std::string name;
  StreamId stream = kInvalidStream;
  TimeUs start = 0.0;
  TimeUs end = 0.0;
  int sm_needed = 0;
};

class Device {
 public:
  using CompletionCb = std::function<void()>;
  using KernelTraceSink = std::function<void(const KernelExecRecord&)>;

  Device(Simulator* sim, DeviceSpec spec);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  Simulator* simulator() { return sim_; }

  StreamId CreateStream(int priority = kPriorityDefault);
  int stream_priority(StreamId stream) const;

  // --- Op submission (asynchronous; `done` fires via a zero-delay event). ---
  void LaunchKernel(StreamId stream, const KernelDesc& kernel, CompletionCb done = nullptr);
  void EnqueueMemcpy(StreamId stream, std::size_t bytes, MemcpyKind kind,
                     CompletionCb done = nullptr);
  void EnqueueMemset(StreamId stream, std::size_t bytes, CompletionCb done = nullptr);
  // Completes when every op previously enqueued on `stream` has completed.
  void RecordEvent(StreamId stream, GpuEvent* event, CompletionCb done = nullptr);
  // Enqueues an externally-executed op (e.g. a collective's link transfer,
  // src/collective): when the op reaches the stream head, `body` runs with a
  // completion callback, and the stream stays blocked until that callback
  // fires. This keeps external work FIFO-ordered with the stream's other ops
  // and visible to StreamIdle / SynchronizeDevice, without the device
  // knowing what the work is.
  using ExternalBody = std::function<void(CompletionCb)>;
  void EnqueueExternal(StreamId stream, ExternalBody body, CompletionCb done = nullptr);
  // Fires once every stream has drained (device-wide synchronisation, the
  // semantics cudaMalloc/cudaFree impose in §5.1.3).
  void SynchronizeDevice(CompletionCb done);

  // --- Introspection (used by schedulers, tests, and benches). ---
  int FreeSms() const;
  int BusySms() const;
  bool AnyKernelRunning() const;
  int RunningKernelCount() const;
  // SMs currently granted to kernels of this stream.
  int StreamBusySms(StreamId stream) const;
  bool StreamIdle(StreamId stream) const;
  // Alone-time µs already executed by this stream's resident (uncompleted)
  // kernels, integrated up to now(). The runaway watchdog's evidence
  // (src/core): a kernel starved of SMs has executed ~nothing however long
  // it has waited, while a runaway has executed far more than any trusted
  // expectation of its client's outstanding work.
  DurationUs StreamExecutedUs(StreamId stream);
  std::size_t kernels_completed() const { return kernels_completed_; }
  std::size_t memcpys_completed() const { return memcpys_completed_; }

  UtilizationTracker& utilization() { return utilization_; }
  const UtilizationTracker& utilization() const { return utilization_; }

  // Installs a sink invoked at each kernel completion with its exec record.
  void set_kernel_trace_sink(KernelTraceSink sink) { trace_sink_ = std::move(sink); }

  // PCIe-aware copy scheduling (§5.1.3 of the paper, future work there):
  // when enabled, (a) pending host<->device copies start in stream-priority
  // order instead of FIFO, and (b) bulk transfers proceed in chunks so a
  // high-priority copy waits at most one chunk, not a whole multi-megabyte
  // batch. Chunks in flight are never preempted.
  void set_pcie_priority_scheduling(bool enabled) { pcie_priority_ = enabled; }
  bool pcie_priority_scheduling() const { return pcie_priority_; }

  // --- Fault injection: partial device degradation (src/fault). ---
  // ECC retirement / thermal capping analogue: the device permanently loses
  // `sms_lost` SMs. Allocation targets are recomputed against the shrunken
  // pool immediately; resident kernels are never preempted, so grants above
  // the new capacity drain at block-retire speed through the normal
  // rebalance-quantum path.
  void DegradeSms(int sms_lost);
  // Multiplies the effective memory bandwidth by `factor` (0 < factor). All
  // resident kernels' memory pressure is measured against the degraded peak,
  // so memory-bound work slows proportionally and the interference model
  // tightens.
  void ScaleMembw(double factor);
  // SMs currently present (spec().num_sms minus degradation).
  int effective_sms() const { return effective_sms_; }
  double membw_factor() const { return membw_factor_; }

  // Multi-GPU plumbing (src/interconnect): routes the wire time of every
  // host<->device copy chunk through a shared link fabric, where it contends
  // with peer-to-peer and collective traffic, instead of the private
  // fixed-bandwidth pipe of spec().pcie_gbps. `gpu_index` is this device's
  // id in the fabric's topology. Copy queueing, stream ordering, chunking
  // and priority selection are unaffected. Device-to-device copies stay on
  // the internal path (they never cross the host fabric).
  void AttachHostLink(HostLinkModel* host_link, int gpu_index);
  int gpu_index() const { return gpu_index_; }

 private:
  struct Op {
    enum class Type : std::uint8_t { kKernel, kMemcpy, kMemset, kEvent, kExternal };
    Type type = Type::kKernel;
    KernelDesc kernel;            // kKernel
    std::size_t bytes = 0;        // kMemcpy / kMemset
    MemcpyKind memcpy_kind = MemcpyKind::kHostToDevice;
    GpuEvent* event = nullptr;    // kEvent
    ExternalBody external;        // kExternal
    CompletionCb done;
    std::uint64_t seq = 0;        // global submission order (determinism)
  };

  struct Stream {
    int priority = kPriorityDefault;
    std::deque<Op> queue;        // ops not yet started (front = next)
    bool head_active = false;    // front-of-queue op currently executing
  };

  struct RunningKernel {
    StreamId stream = kInvalidStream;
    KernelDesc desc;
    DurationUs remaining = 0.0;  // alone-time µs of work left
    int sm_needed = 0;           // demand, capped at device size
    double granted = 0.0;        // SMs currently held (fluid share)
    double target = 0.0;         // allocation target from the last rebalance
    // Expected lifetime of one thread-block wave: duration / wave count.
    // Determines how fast this kernel's SMs drain to other kernels when its
    // allocation target shrinks (blocks are never preempted; they retire).
    DurationUs block_duration = 0.0;
    TimeUs started_at = 0.0;
    std::uint64_t seq = 0;
    CompletionCb done;
  };

  struct PendingCopy {
    StreamId stream = kInvalidStream;
    std::size_t bytes = 0;            // bytes left to transfer
    bool started = false;             // some chunk already transferred
    int priority = kPriorityDefault;  // stream priority at enqueue time
    MemcpyKind kind = MemcpyKind::kHostToDevice;
    std::uint64_t seq = 0;
    CompletionCb done;
  };

  // Integrates running-kernel progress from last_update_ to now and records
  // the utilization interval.
  void AdvanceTo(TimeUs now);
  // Computes each kernel's SM allocation target: stream-priority tiers get
  // capacity first; within a tier, capacity splits proportionally to demand
  // (the hardware dispatcher round-robins block dispatch across streams).
  void ComputeTargets();
  // Fills (kernel, progress rate) pairs for every kernel holding SMs,
  // applying the proportional resource slowdown and the cross-kernel memory
  // interference penalty.
  void ComputeRates(std::vector<std::pair<RunningKernel*, double>>* rates);
  // Grants free SMs to under-target kernels, recomputes rates, and
  // (re)schedules the next completion event. Grants only grow here; shrinks
  // happen at rebalance events one block-turnover quantum later, modelling
  // that running thread blocks are never preempted but retire continuously.
  void Reschedule();
  void MaybeScheduleRebalance();
  double GrantedTotal() const;
  // Retires every running kernel whose remaining work reached zero.
  void CompleteFinishedKernels();
  // Starts the front op of `stream` if it is startable (event/memset resolve
  // immediately; memcpy goes to the copy engine; kernels wait for SMs).
  void ActivateStreamHead(StreamId stream);
  void FinishOp(StreamId stream, CompletionCb done);
  void StartNextCopy();
  void CheckDeviceSync();
  double CurrentSlowdown() const;
  void DeliverCallback(CompletionCb cb);

  Simulator* sim_;
  DeviceSpec spec_;
  int effective_sms_ = 0;      // spec_.num_sms minus injected degradation
  double membw_factor_ = 1.0;  // remaining fraction of peak memory bandwidth
  std::vector<Stream> streams_;
  std::list<RunningKernel> running_;
  std::uint64_t next_seq_ = 0;
  TimeUs last_update_ = 0.0;
  EventHandle completion_event_;
  bool in_reschedule_ = false;
  bool rebalance_pending_ = false;
  // Scratch for ComputeRates callers (AdvanceTo / Reschedule run once per
  // device event; reusing the buffer keeps the hot path allocation-free).
  std::vector<std::pair<RunningKernel*, double>> rates_scratch_;

  // Copy engine: single queue, one transfer at a time.
  std::deque<PendingCopy> copy_queue_;
  bool copy_active_ = false;
  bool pcie_priority_ = false;
  EventHandle copy_event_;
  HostLinkModel* host_link_ = nullptr;  // optional shared link fabric
  int gpu_index_ = 0;                   // this device's id in the fabric

  std::vector<CompletionCb> sync_waiters_;

  std::size_t kernels_completed_ = 0;
  std::size_t memcpys_completed_ = 0;
  UtilizationTracker utilization_;
  KernelTraceSink trace_sink_;
};

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_DEVICE_H_
