#include "src/gpusim/device_spec.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace gpusim {

DeviceSpec DeviceSpec::V100_16GB() {
  DeviceSpec spec;
  spec.name = "V100-16GB";
  spec.num_sms = 80;
  spec.max_threads_per_sm = 2048;
  spec.max_registers_per_sm = 65536;
  spec.max_shared_mem_per_sm = 96 * 1024;
  spec.max_blocks_per_sm = 32;
  spec.peak_fp32_tflops = 15.7;
  spec.peak_membw_gbps = 900.0;
  spec.pcie_gbps = 12.0;  // effective PCIe 3.0 x16
  spec.pcie_latency_us = 10.0;
  spec.memory_bytes = std::size_t{16} * 1024 * 1024 * 1024;
  return spec;
}

DeviceSpec DeviceSpec::A100_40GB() {
  DeviceSpec spec;
  spec.name = "A100-40GB";
  spec.num_sms = 108;
  spec.max_threads_per_sm = 2048;
  spec.max_registers_per_sm = 65536;
  spec.max_shared_mem_per_sm = 164 * 1024;
  spec.max_blocks_per_sm = 32;
  spec.peak_fp32_tflops = 19.5;
  spec.peak_membw_gbps = 1555.0;
  spec.pcie_gbps = 20.0;  // effective PCIe 4.0 x16
  spec.pcie_latency_us = 8.0;
  spec.memory_bytes = std::size_t{40} * 1024 * 1024 * 1024;
  return spec;
}

int BlocksPerSm(const DeviceSpec& spec, const LaunchGeometry& geom) {
  ORION_CHECK(geom.threads_per_block > 0);
  ORION_CHECK(geom.num_blocks > 0);
  int by_threads = spec.max_threads_per_sm / geom.threads_per_block;
  const int regs_per_block = geom.registers_per_thread * geom.threads_per_block;
  int by_registers =
      regs_per_block > 0 ? spec.max_registers_per_sm / regs_per_block : spec.max_blocks_per_sm;
  int by_smem = geom.shared_mem_per_block > 0
                    ? spec.max_shared_mem_per_sm / geom.shared_mem_per_block
                    : spec.max_blocks_per_sm;
  int blocks = std::min({by_threads, by_registers, by_smem, spec.max_blocks_per_sm});
  // A geometry exceeding a per-SM limit cannot launch on real hardware; the
  // workload generator never produces one, but clamping keeps the math total.
  return std::max(blocks, 1);
}

int SmsNeeded(const DeviceSpec& spec, const LaunchGeometry& geom) {
  const int per_sm = BlocksPerSm(spec, geom);
  const int needed = (geom.num_blocks + per_sm - 1) / per_sm;
  return std::max(1, needed);
}

}  // namespace gpusim
}  // namespace orion
