// GPU utilization timeline tracking.
//
// The device model reports piecewise-constant utilization between simulator
// events: compute throughput utilization, memory bandwidth utilization, and
// fraction of busy SMs (the three metrics defined in §2 of the paper).
// Benches use both time-weighted averages (Table 1) and downsampled
// timelines (Figures 1, 8, 9).
#ifndef SRC_GPUSIM_UTILIZATION_H_
#define SRC_GPUSIM_UTILIZATION_H_

#include <vector>

#include "src/common/stats.h"
#include "src/common/time_types.h"

namespace orion {
namespace gpusim {

struct UtilizationSample {
  TimeUs start = 0.0;
  TimeUs end = 0.0;
  double compute = 0.0;   // fraction of peak compute throughput in use
  double membw = 0.0;     // fraction of peak memory bandwidth in use
  double sm_busy = 0.0;   // fraction of SMs executing at least one warp
};

class UtilizationTracker {
 public:
  void Record(TimeUs start, TimeUs end, double compute, double membw, double sm_busy);

  // Time-weighted averages over everything recorded so far.
  double AverageCompute() const { return compute_.average(); }
  double AverageMembw() const { return membw_.average(); }
  double AverageSmBusy() const { return sm_busy_.average(); }

  // Averages restricted to [from, to) — used to skip warm-up.
  UtilizationSample AverageOver(TimeUs from, TimeUs to) const;

  // Downsamples the timeline into `buckets` equal-width windows over
  // [from, to); each bucket holds the time-weighted mean of its window.
  std::vector<UtilizationSample> Timeline(TimeUs from, TimeUs to, int buckets) const;

  const std::vector<UtilizationSample>& samples() const { return samples_; }
  void Clear();

 private:
  std::vector<UtilizationSample> samples_;
  TimeWeightedStats compute_;
  TimeWeightedStats membw_;
  TimeWeightedStats sm_busy_;
};

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_UTILIZATION_H_
