// Kernel descriptors: the unit of scheduling in Orion.
//
// A KernelDesc carries everything the device model needs to execute a kernel
// (run-alone duration and resource demands) and everything the Orion profiler
// extracts offline (launch geometry, compute/memory utilization). The
// resource profile classification mirrors §5.2: roofline if available,
// otherwise the >60% utilization rule, otherwise Unknown.
#ifndef SRC_GPUSIM_KERNEL_H_
#define SRC_GPUSIM_KERNEL_H_

#include <cstdint>
#include <string>

#include "src/common/time_types.h"
#include "src/gpusim/device_spec.h"

namespace orion {
namespace gpusim {

enum class ResourceProfile : std::uint8_t {
  kComputeBound,
  kMemoryBound,
  kUnknown,
};

const char* ResourceProfileName(ResourceProfile profile);

// Phase of the owning request, used by phase-aware schedulers (Tick-Tock).
enum class KernelPhase : std::uint8_t {
  kForward,
  kBackward,
  kUpdate,
  kNone,  // inference or phase-less kernels
};

struct KernelDesc {
  // Stable identifier: equal kernels across iterations of the same model
  // share an id, which is how profile lookup tables are keyed (§5.2).
  std::uint64_t kernel_id = 0;
  std::string name;

  LaunchGeometry geometry;

  // Run-alone duration on the reference device. The device model treats this
  // as the amount of "work" and stretches it under contention.
  DurationUs duration_us = 0.0;

  // Fraction of device peak compute throughput / memory bandwidth this kernel
  // consumes when running alone (0..1). These drive the interference model
  // and the roofline classification.
  double compute_util = 0.0;
  double membw_util = 0.0;

  // True if the (simulated) profiling tool has a roofline analysis for this
  // kernel; some kernels lack one (§3.1, footnote 4).
  bool has_roofline = false;
  ResourceProfile roofline_class = ResourceProfile::kUnknown;

  KernelPhase phase = KernelPhase::kNone;
};

// Classification rule from §5.2: prefer roofline; else compute-bound if
// compute_util > 0.6, memory-bound if membw_util > 0.6, else unknown.
// Ties (both above 0.6) resolve to the larger utilization.
ResourceProfile ClassifyKernel(const KernelDesc& kernel);

// True when the two profiles are "opposite" in the sense of §5.1.1 line 28:
// one compute-bound and the other memory-bound. Unknown never conflicts.
bool HaveDifferentProfiles(ResourceProfile a, ResourceProfile b);

}  // namespace gpusim
}  // namespace orion

#endif  // SRC_GPUSIM_KERNEL_H_
