// Statistics utilities: streaming moments, percentile recorders, and
// time-weighted averages for utilization traces.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "src/common/time_types.h"

namespace orion {

// Streaming mean / variance / min / max (Welford's algorithm). O(1) memory.
class OnlineStats {
 public:
  void Add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample so exact percentiles can be computed afterwards.
// Latency distributions in the evaluation have at most a few hundred thousand
// samples per run, so exact storage is cheap and avoids sketch error bars.
class LatencyRecorder {
 public:
  void Add(double value);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  // Exact percentile with linear interpolation between order statistics.
  // `p` in [0, 100]. Returns 0 for an empty recorder.
  double Percentile(double p) const;

  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

// Time-weighted average over a piecewise-constant signal, e.g. GPU compute
// utilization sampled between simulator events.
class TimeWeightedStats {
 public:
  // Records that the signal held `value` over [start, end).
  void AddInterval(TimeUs start, TimeUs end, double value);

  double average() const { return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0; }
  DurationUs total_time() const { return total_time_; }
  // Fraction of observed time during which the signal exceeded `threshold`.
  double FractionAbove(double threshold) const;

 private:
  double weighted_sum_ = 0.0;
  DurationUs total_time_ = 0.0;
  std::vector<std::pair<DurationUs, double>> intervals_;
};

}  // namespace orion

#endif  // SRC_COMMON_STATS_H_
