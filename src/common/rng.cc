#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace orion {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  ORION_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw = NextU64();
  while (draw >= limit) {
    draw = NextU64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Exponential(double mean) {
  ORION_CHECK(mean > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - NextDouble());
}

double Rng::Normal(double mean, double stddev) {
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  std::uint64_t sm = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ state_[3];
  return Rng(SplitMix64(sm));
}

}  // namespace orion
