#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace orion {

void OnlineStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void LatencyRecorder::Add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_ = false;
}

double LatencyRecorder::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double LatencyRecorder::min() const {
  SortIfNeeded();
  return samples_.empty() ? 0.0 : samples_.front();
}

double LatencyRecorder::max() const {
  SortIfNeeded();
  return samples_.empty() ? 0.0 : samples_.back();
}

double LatencyRecorder::Percentile(double p) const {
  ORION_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  if (samples_.size() == 1) {
    return samples_.front();
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void LatencyRecorder::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

void TimeWeightedStats::AddInterval(TimeUs start, TimeUs end, double value) {
  ORION_CHECK_MSG(end >= start, "interval ends before it starts: " << start << " .. " << end);
  const DurationUs width = end - start;
  if (width <= 0.0) {
    return;
  }
  weighted_sum_ += width * value;
  total_time_ += width;
  intervals_.emplace_back(width, value);
}

double TimeWeightedStats::FractionAbove(double threshold) const {
  if (total_time_ <= 0.0) {
    return 0.0;
  }
  double above = 0.0;
  for (const auto& [width, value] : intervals_) {
    if (value > threshold) {
      above += width;
    }
  }
  return above / total_time_;
}

}  // namespace orion
