// Move-only callable wrapper with inline small-buffer storage.
//
// The discrete-event hot path stores one callback per scheduled event.
// std::function only keeps trivially-small targets inline (16 bytes in
// libstdc++) and heap-allocates everything else — which is nearly every
// capture in this codebase (`this` + an id + a nested completion callback
// already overflows it), so the old event loop paid an allocator round-trip
// per event. InlineFunction stores any nothrow-movable callable up to
// `InlineBytes` directly in the object; only oversized or throwing-move
// targets fall back to the heap. Move-only (no copy), so it also accepts
// move-only captures (std::unique_ptr, moved-in std::function) that
// std::function rejects outright.
//
// Semantics match the std::function subset the simulator needs: construct
// from any callable, move, test against nullptr, invoke. Invoking an empty
// InlineFunction is checked (ORION_CHECK), not UB.
#ifndef SRC_COMMON_INLINE_FUNCTION_H_
#define SRC_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace common {

template <typename Signature, std::size_t InlineBytes = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::kOps;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::kOps;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  // Assign-from-callable: destroys the old target and constructs the new one
  // directly in place — the hot path stores callbacks without the temporary
  // InlineFunction (and its extra relocation) an assign-through-constructor
  // would cost.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction& operator=(F&& f) {
    Reset();
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::kOps;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::kOps;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) { return f.ops_ == nullptr; }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) { return f.ops_ != nullptr; }

  R operator()(Args... args) {
    ORION_CHECK_MSG(ops_ != nullptr, "invoking empty InlineFunction");
    return ops_->invoke(&storage_, std::forward<Args>(args)...);
  }

  // True when the current target lives in the inline buffer (test hook).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the target from `from` into `to`, destroying `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
    // Trivially-copyable inline targets (the common capture: raw pointers +
    // scalars) relocate as a plain byte copy and skip the destroy call —
    // no indirect calls on the simulator's move-heavy hot path.
    bool trivial;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  struct InlineModel {
    static R Invoke(void* storage, Args&&... args) {
      return (*static_cast<D*>(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(void* from, void* to) noexcept {
      D* f = static_cast<D*>(from);
      ::new (to) D(std::move(*f));
      f->~D();
    }
    static void Destroy(void* storage) noexcept { static_cast<D*>(storage)->~D(); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy, /*inline_storage=*/true,
                                 /*trivial=*/std::is_trivially_copyable_v<D> &&
                                     std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct HeapModel {
    static D*& Ptr(void* storage) { return *static_cast<D**>(storage); }
    static R Invoke(void* storage, Args&&... args) {
      return (*Ptr(storage))(std::forward<Args>(args)...);
    }
    static void Relocate(void* from, void* to) noexcept {
      ::new (to) D*(Ptr(from));  // pointer move: no target relocation
    }
    static void Destroy(void* storage) noexcept { delete Ptr(storage); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy, /*inline_storage=*/false,
                                 /*trivial=*/false};
  };

  void MoveFrom(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->trivial) {
        std::memcpy(&storage_, &other.storage_, InlineBytes);
      } else {
        other.ops_->relocate(&other.storage_, &storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) {
        ops_->destroy(&storage_);
      }
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[InlineBytes];
};

}  // namespace common
}  // namespace orion

#endif  // SRC_COMMON_INLINE_FUNCTION_H_
