// Lightweight assertion macros used across the Orion codebase.
//
// ORION_CHECK() is always on (including release builds): the simulator's
// correctness depends on internal invariants, and a silent corruption would
// invalidate every experiment downstream. Failures print the condition and a
// caller-provided message, then abort.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace orion {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "ORION_CHECK failed: %s at %s:%d %s\n", cond, file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace check_internal {

// Builds the optional streamed message of ORION_CHECK without evaluating the
// stream expressions unless the check actually fails.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace check_internal

}  // namespace orion

#define ORION_CHECK(cond)                                                              \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      ::orion::CheckFailed(#cond, __FILE__, __LINE__, "");                             \
    }                                                                                  \
  } while (0)

#define ORION_CHECK_MSG(cond, ...)                                                     \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      ::orion::check_internal::MessageBuilder builder;                                 \
      builder << __VA_ARGS__;                                                          \
      ::orion::CheckFailed(#cond, __FILE__, __LINE__, builder.str());                  \
    }                                                                                  \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
