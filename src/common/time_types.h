// Virtual-time conventions for the Orion simulator.
//
// All simulation timestamps and durations are expressed in microseconds as
// doubles. Kernels progress at fractional rates under contention, so an
// integral tick type would force rounding in the middle of rate integration;
// doubles keep the math exact enough (53-bit mantissa covers > 100 virtual
// years at nanosecond resolution).
#ifndef SRC_COMMON_TIME_TYPES_H_
#define SRC_COMMON_TIME_TYPES_H_

namespace orion {

// A point in virtual time, microseconds since simulation start.
using TimeUs = double;

// A span of virtual time, microseconds.
using DurationUs = double;

constexpr DurationUs kUsPerMs = 1e3;
constexpr DurationUs kUsPerSec = 1e6;

constexpr DurationUs MsToUs(double ms) { return ms * kUsPerMs; }
constexpr DurationUs SecToUs(double sec) { return sec * kUsPerSec; }
constexpr double UsToMs(DurationUs us) { return us / kUsPerMs; }
constexpr double UsToSec(DurationUs us) { return us / kUsPerSec; }

}  // namespace orion

#endif  // SRC_COMMON_TIME_TYPES_H_
