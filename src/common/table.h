// Console table rendering for benchmark output.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; this helper keeps the formatting consistent and also supports
// CSV emission so results can be plotted externally.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace orion {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row. Values are pre-formatted strings; use Cell() helpers below.
  void AddRow(std::vector<std::string> cells);

  // Renders an aligned ASCII table.
  void Print(std::ostream& os) const;

  // Renders in CSV form (no alignment padding).
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimal places.
std::string Cell(double value, int decimals = 2);
std::string Cell(int value);
std::string Cell(std::size_t value);

}  // namespace orion

#endif  // SRC_COMMON_TABLE_H_
