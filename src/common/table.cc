#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/common/check.h"

namespace orion {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ORION_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  ORION_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "|";
    for (std::size_t width : widths) {
      os << std::string(width + 2, '-') << "|";
    }
    os << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Cell(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Cell(int value) { return std::to_string(value); }

std::string Cell(std::size_t value) { return std::to_string(value); }

}  // namespace orion
