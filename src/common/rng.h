// Deterministic random number generation for the simulator.
//
// Every stochastic component (arrival processes, jitter, tie-breaking noise)
// draws from an explicitly seeded Rng so that experiments are reproducible
// bit-for-bit across runs and platforms. The generator is xoshiro256**,
// seeded via SplitMix64, which is fast, high quality, and has a trivially
// portable implementation (unlike std::mt19937 whose distributions are not
// specified identically across standard libraries).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace orion {

// SplitMix64: used to expand a single seed into xoshiro state and as a cheap
// standalone mixer for deriving per-component seeds.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  // Uniform on [0, 2^64).
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double on [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double on [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer on [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Exponential with the given mean (inverse of the rate parameter).
  double Exponential(double mean);

  // Standard normal via Box-Muller (no cached second value, keeps state simple).
  double Normal(double mean, double stddev);

  // Derives an independent child generator; `stream_id` selects the stream.
  Rng Fork(std::uint64_t stream_id) const;

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace orion

#endif  // SRC_COMMON_RNG_H_
