// Collocation experiment harness.
//
// Reproduces the paper's evaluation methodology (§6.1): profile each workload
// offline on a dedicated simulated GPU, then run the collocation with the
// chosen scheduler, measure per-client request latency distributions and
// throughput over a post-warmup window, and report device utilization.
// The Ideal baseline (each job on its own dedicated GPU) runs every client
// on a private device instance inside the same virtual timeline.
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/time_quantum.h"
#include "src/core/orion_scheduler.h"
#include "src/core/scheduler.h"
#include "src/fault/fault_plan.h"
#include "src/gpusim/utilization.h"
#include "src/harness/client_driver.h"
#include "src/memsub/pager.h"
#include "src/profiler/profiler.h"
#include "src/telemetry/exporters.h"
#include "src/telemetry/telemetry.h"

namespace orion {
namespace harness {

enum class SchedulerKind {
  kDedicated,  // Ideal: one GPU per job
  kMig,        // static spatial partitioning (§4): 1/N of SMs, bandwidth and
               // memory per client — coarse-grained, no harvesting of the
               // partner's idle capacity
  kTemporal,
  kStreams,
  kMps,
  kReef,
  kTickTock,
  kOrion,
  kTimeQuantum,  // nvshare-style: MPS-like sharing + exclusive quanta on thrash
};

const char* SchedulerKindName(SchedulerKind kind);

std::unique_ptr<core::Scheduler> MakeScheduler(
    SchedulerKind kind, const core::OrionOptions& orion_options,
    const baselines::TimeQuantumOptions& tq_options = {});

struct ExperimentConfig {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  SchedulerKind scheduler = SchedulerKind::kOrion;
  core::OrionOptions orion;
  baselines::TimeQuantumOptions time_quantum;
  std::vector<ClientConfig> clients;

  // Unified-memory paging (src/memsub). When enabled on a shared-GPU run,
  // every client's model state is registered with a page-granular pager
  // instead of the closed-form §5.1.3 swap admission: requests fault their
  // working set in on demand, paging traffic rides the real copy engine, and
  // oversubscribed collocations are admitted rather than rejected. Inert
  // when the collocation fits (no faults, bit-identical results). Ignored
  // for Dedicated/MIG (each client owns its device's memory).
  memsub::PagingOptions paging;

  // Streaming telemetry export: when `telemetry` is set and period_us > 0,
  // the trace/metrics artefacts are rewritten every period of *simulated*
  // time during the run (see telemetry::StreamingExporter).
  telemetry::StreamingExporter::Options telemetry_flush;

  DurationUs warmup_us = SecToUs(1.0);
  DurationUs duration_us = SecToUs(20.0);  // measurement window after warmup
  DurationUs launch_overhead_us = 6.0;     // host cost per intercepted op
  std::uint64_t seed = 42;
  profiler::ProfileOptions profile_options;
  // §5.1.3 extension: schedule pending PCIe copies by stream priority.
  bool pcie_priority_scheduling = false;
  // Fault scenario injected into the run (src/fault). Client ids in the plan
  // index config.clients; device faults target the shared device (gpu 0) or,
  // for Ideal/MIG, the per-client device with that index. Empty = fault-free.
  fault::FaultPlan fault_plan;

  // Optional telemetry sink (src/telemetry). When set, the scheduler and
  // fault injector publish their counters into the hub registry, per-client
  // results are mirrored as "harness.*" metrics, and with tracing enabled
  // every device's kernel execution records are collected into the hub's
  // trace (one track per device) alongside the scheduler's decision markers.
  telemetry::Hub* telemetry = nullptr;
};

struct ClientResult {
  std::string name;
  bool high_priority = false;
  std::size_t completed = 0;       // completions inside the measurement window
  std::size_t completed_total = 0;  // including warmup (pager cross-checks)
  double throughput_rps = 0.0;     // requests (or iterations) per second
  LatencyRecorder latency;         // µs, measurement window only
  // latency = queueing (waiting at the client behind earlier requests)
  //         + service (first submission to completion on the device).
  LatencyRecorder queueing;
  LatencyRecorder service;
  // Requests over ClientConfig::slo_us in the window (0 when no SLO is set).
  std::size_t slo_misses = 0;
  // Unified-memory paging telemetry (zero when paging is off).
  std::uint64_t page_faults = 0;
  DurationUs page_stall_us = 0.0;
};

struct ExperimentResult {
  std::string scheduler_name;
  std::vector<ClientResult> clients;
  gpusim::UtilizationSample utilization;  // averages over the window
  DurationUs window_us = 0.0;
  // §5.1.3 memory accounting: by how much the collocation exceeded GPU
  // memory, and whether layer-by-layer swapping was engaged to absorb it.
  std::size_t memory_deficit_bytes = 0;
  bool swapping_active = false;

  // Fault accounting (zero on fault-free runs).
  std::size_t faults_injected = 0;
  std::size_t faults_skipped = 0;         // plan events whose target was absent
  std::size_t clients_quarantined = 0;    // crash + runaway quarantines (Orion)
  std::size_t runaway_quarantines = 0;    // watchdog-detected hangs (Orion)
  std::size_t memory_used_end_bytes = 0;  // live device memory at the horizon

  // Unified-memory paging accounting (all zero when config.paging.enabled
  // was false or the run was Dedicated/MIG).
  bool paging_active = false;             // pager constructed for this run
  memsub::PagingTotals paging;            // run-level fault/eviction totals
  // nvshare-TQ introspection (zero for other schedulers).
  std::size_t tq_exclusive_entries = 0;
  std::size_t tq_quanta = 0;
  DurationUs tq_exclusive_us = 0.0;
  // Streaming telemetry flushes performed during the run.
  std::size_t telemetry_flushes = 0;

  const ClientResult& hp() const;
  double TotalThroughput() const;
};

ExperimentResult RunExperiment(const ExperimentConfig& config);

// Paper Table 4 / §6.2: cost savings of collocating on 1 GPU vs running each
// job on its own GPU:  2 * Throughput_collocated / Throughput_dedicated.
double CostSavings(double dedicated_throughput, double collocated_throughput);

}  // namespace harness
}  // namespace orion

#endif  // SRC_HARNESS_EXPERIMENT_H_
