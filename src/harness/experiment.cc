#include "src/harness/experiment.h"

#include <unordered_map>
#include <utility>

#include "src/baselines/passthrough.h"
#include "src/baselines/reef.h"
#include "src/baselines/temporal.h"
#include "src/baselines/ticktock.h"
#include "src/common/check.h"
#include "src/fault/fault_injector.h"
#include "src/runtime/gpu_runtime.h"
#include "src/sim/simulator.h"

namespace orion {
namespace harness {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDedicated:
      return "ideal";
    case SchedulerKind::kMig:
      return "mig";
    case SchedulerKind::kTemporal:
      return "temporal";
    case SchedulerKind::kStreams:
      return "streams";
    case SchedulerKind::kMps:
      return "mps";
    case SchedulerKind::kReef:
      return "reef";
    case SchedulerKind::kTickTock:
      return "ticktock";
    case SchedulerKind::kOrion:
      return "orion";
  }
  return "invalid";
}

std::unique_ptr<core::Scheduler> MakeScheduler(SchedulerKind kind,
                                               const core::OrionOptions& orion_options) {
  switch (kind) {
    case SchedulerKind::kDedicated:
      // Per-device pass-through; RunExperiment instantiates one per client.
      return std::make_unique<baselines::PassthroughScheduler>("ideal", true, 0.0);
    case SchedulerKind::kMig:
      // Per-partition pass-through; RunExperiment builds partition devices.
      return std::make_unique<baselines::PassthroughScheduler>("mig", true, 0.0);
    case SchedulerKind::kTemporal:
      return std::make_unique<baselines::TemporalScheduler>();
    case SchedulerKind::kStreams:
      return baselines::MakeStreamsBaseline();
    case SchedulerKind::kMps:
      return baselines::MakeMpsBaseline();
    case SchedulerKind::kReef:
      return std::make_unique<baselines::ReefScheduler>();
    case SchedulerKind::kTickTock:
      return std::make_unique<baselines::TickTockScheduler>();
    case SchedulerKind::kOrion:
      return std::make_unique<core::OrionScheduler>(orion_options);
  }
  ORION_CHECK_MSG(false, "unhandled scheduler kind");
  return nullptr;
}

const ClientResult& ExperimentResult::hp() const {
  for (const ClientResult& client : clients) {
    if (client.high_priority) {
      return client;
    }
  }
  ORION_CHECK_MSG(false, "no high-priority client in result");
  return clients.front();
}

double ExperimentResult::TotalThroughput() const {
  double total = 0.0;
  for (const ClientResult& client : clients) {
    total += client.throughput_rps;
  }
  return total;
}

double CostSavings(double dedicated_throughput, double collocated_throughput) {
  ORION_CHECK(dedicated_throughput > 0.0);
  return 2.0 * collocated_throughput / dedicated_throughput;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ORION_CHECK(!config.clients.empty());

  // --- Offline profiling phase (§5.2), one profile per distinct workload. ---
  std::unordered_map<std::string, std::unique_ptr<profiler::WorkloadProfile>> profiles;
  for (const ClientConfig& client : config.clients) {
    const std::string key = workloads::WorkloadName(client.workload);
    if (profiles.count(key) > 0) {
      continue;
    }
    profiler::ProfileOptions opts = config.profile_options;
    opts.launch_overhead_us = config.launch_overhead_us;
    auto profile = std::make_unique<profiler::WorkloadProfile>(
        profiler::ProfileWorkload(config.device, client.workload, opts));
    profiles.emplace(key, std::move(profile));
  }

  // --- Memory admission (§5.1.3). Shared-GPU collocations must fit in
  // device memory; best-effort clients with allow_swapping absorb any
  // overflow by streaming state in per request (layer-by-layer offloading).
  const bool shares_gpu = config.scheduler != SchedulerKind::kDedicated &&
                          config.scheduler != SchedulerKind::kMig;
  std::vector<std::size_t> swap_bytes(config.clients.size(), 0);
  std::size_t memory_deficit = 0;
  if (shares_gpu) {
    std::size_t total_state = 0;
    std::vector<std::size_t> state(config.clients.size(), 0);
    for (std::size_t i = 0; i < config.clients.size(); ++i) {
      state[i] = workloads::ApproxModelStateBytes(config.clients[i].workload);
      total_state += state[i];
    }
    if (total_state > config.device.memory_bytes) {
      memory_deficit = total_state - config.device.memory_bytes;
      std::size_t swapper_state = 0;
      for (std::size_t i = 0; i < config.clients.size(); ++i) {
        if (config.clients[i].allow_swapping && !config.clients[i].high_priority) {
          swapper_state += state[i];
        }
      }
      ORION_CHECK_MSG(swapper_state >= memory_deficit,
                      "collocation exceeds GPU memory by "
                          << memory_deficit
                          << " bytes and no best-effort client allows swapping (§5.1.3)");
      for (std::size_t i = 0; i < config.clients.size(); ++i) {
        if (config.clients[i].allow_swapping && !config.clients[i].high_priority) {
          swap_bytes[i] = static_cast<std::size_t>(
              static_cast<double>(memory_deficit) * state[i] / swapper_state);
        }
      }
    }
  }

  // --- Online phase. ---
  Simulator sim;
  std::vector<std::unique_ptr<runtime::GpuRuntime>> runtimes;
  std::vector<std::unique_ptr<core::Scheduler>> schedulers;
  std::vector<std::unique_ptr<ClientDriver>> drivers;
  Rng root_rng(config.seed);

  const bool dedicated = config.scheduler == SchedulerKind::kDedicated;
  const bool mig = config.scheduler == SchedulerKind::kMig;
  const int num_clients = static_cast<int>(config.clients.size());

  if (dedicated || mig) {
    // Ideal: a private full device per client. MIG: a private 1/N static
    // partition per client — SMs, compute, bandwidth and memory all shrink,
    // and a client can never harvest its neighbours' idle capacity (§4).
    gpusim::DeviceSpec per_client = config.device;
    if (mig) {
      const int n = std::max(1, num_clients);
      per_client.name += "-mig-1of" + std::to_string(n);
      per_client.num_sms = std::max(1, per_client.num_sms / n);
      per_client.peak_fp32_tflops /= n;
      per_client.peak_membw_gbps /= n;
      per_client.memory_bytes /= static_cast<std::size_t>(n);
    }
    for (int i = 0; i < num_clients; ++i) {
      const ClientConfig& cc = config.clients[static_cast<std::size_t>(i)];
      auto rt = std::make_unique<runtime::GpuRuntime>(&sim, per_client);
      rt->device().set_pcie_priority_scheduling(config.pcie_priority_scheduling);
      if (config.telemetry != nullptr && config.telemetry->tracing()) {
        config.telemetry->kernels().RecordInto(rt->device(), "gpu" + std::to_string(i));
      }
      auto sched = MakeScheduler(config.scheduler, config.orion);
      sched->set_telemetry(config.telemetry);
      core::SchedClientInfo info;
      info.id = i;
      info.name = workloads::WorkloadName(cc.workload);
      info.high_priority = cc.high_priority;
      info.profile = profiles.at(info.name).get();
      sched->Attach(&sim, rt.get(), {info});
      drivers.push_back(std::make_unique<ClientDriver>(&sim, sched.get(), i, cc, per_client,
                                                       config.launch_overhead_us,
                                                       root_rng.Fork(i + 1)));
      runtimes.push_back(std::move(rt));
      schedulers.push_back(std::move(sched));
    }
  } else {
    auto rt = std::make_unique<runtime::GpuRuntime>(&sim, config.device);
    rt->device().set_pcie_priority_scheduling(config.pcie_priority_scheduling);
    if (config.telemetry != nullptr && config.telemetry->tracing()) {
      config.telemetry->kernels().RecordInto(rt->device(), "gpu0");
    }
    auto sched = MakeScheduler(config.scheduler, config.orion);
    sched->set_telemetry(config.telemetry);
    std::vector<core::SchedClientInfo> infos;
    for (int i = 0; i < num_clients; ++i) {
      const ClientConfig& cc = config.clients[static_cast<std::size_t>(i)];
      core::SchedClientInfo info;
      info.id = i;
      info.name = workloads::WorkloadName(cc.workload);
      info.high_priority = cc.high_priority;
      info.profile = profiles.at(info.name).get();
      infos.push_back(std::move(info));
    }
    sched->Attach(&sim, rt.get(), infos);
    const DurationUs overhead =
        config.launch_overhead_us * sched->HostOverheadMultiplier(num_clients);
    for (int i = 0; i < num_clients; ++i) {
      drivers.push_back(std::make_unique<ClientDriver>(
          &sim, sched.get(), i, config.clients[static_cast<std::size_t>(i)], config.device,
          overhead, root_rng.Fork(i + 1), swap_bytes[static_cast<std::size_t>(i)]));
    }
    runtimes.push_back(std::move(rt));
    schedulers.push_back(std::move(sched));
  }

  // --- Fault injection (src/fault): wire the plan to the live objects. ---
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(&sim, config.fault_plan);
    injector->set_telemetry(config.telemetry);
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
      injector->RegisterDevice(static_cast<int>(i), &runtimes[i]->device());
    }
    for (auto& sched : schedulers) {
      injector->RegisterScheduler(sched.get());
    }
    for (auto& [key, profile] : profiles) {
      (void)key;
      injector->RegisterProfile(profile.get());
    }
    injector->set_client_fault_handler([&drivers](const fault::FaultEvent& event) {
      for (auto& driver : drivers) {
        if (driver->id() != event.client) {
          continue;
        }
        if (event.kind == fault::FaultKind::kClientHang) {
          driver->Hang(event.runaway_us);
        } else {
          driver->Crash();
        }
        return;
      }
    });
    injector->Arm();
  }

  const TimeUs measure_from = config.warmup_us;
  const TimeUs horizon = config.warmup_us + config.duration_us;
  for (auto& driver : drivers) {
    driver->set_measure_from(measure_from);
    driver->Start();
  }
  sim.RunUntil(horizon);

  // --- Collect. ---
  ExperimentResult result;
  result.scheduler_name = SchedulerKindName(config.scheduler);
  result.window_us = config.duration_us;
  result.memory_deficit_bytes = memory_deficit;
  result.swapping_active = memory_deficit > 0;
  for (auto& driver : drivers) {
    ClientResult cr;
    cr.name = driver->name();
    cr.high_priority = driver->config().high_priority;
    cr.completed = driver->completed_measured();
    cr.throughput_rps = static_cast<double>(cr.completed) / UsToSec(config.duration_us);
    cr.latency = driver->latencies();
    cr.queueing = driver->queueing();
    cr.service = driver->service();
    result.clients.push_back(std::move(cr));
  }
  // Utilization of the shared device (or the high-priority client's device
  // in the Ideal configuration).
  std::size_t util_index = 0;
  if (dedicated || mig) {
    for (std::size_t i = 0; i < config.clients.size(); ++i) {
      if (config.clients[i].high_priority) {
        util_index = i;
        break;
      }
    }
  }
  result.utilization =
      runtimes[util_index]->device().utilization().AverageOver(measure_from, horizon);
  if (injector != nullptr) {
    result.faults_injected = injector->injected();
    result.faults_skipped = injector->skipped();
  }
  result.memory_used_end_bytes = runtimes[util_index]->memory().used();
  for (auto& sched : schedulers) {
    if (const auto* orion = dynamic_cast<const core::OrionScheduler*>(sched.get())) {
      result.clients_quarantined += orion->clients_quarantined();
      result.runaway_quarantines += orion->runaway_quarantines();
    }
  }

  // Mirror the result into the hub registry so an exported CSV snapshot
  // reproduces the harness's numbers (latency samples feed histograms so the
  // snapshot carries window percentiles too).
  if (config.telemetry != nullptr) {
    telemetry::MetricRegistry& reg = config.telemetry->metrics();
    for (std::size_t c = 0; c < result.clients.size(); ++c) {
      const ClientResult& cr = result.clients[c];
      // Collocations of one model against itself are common (hp + be copies
      // of the same workload): suffix duplicates so clients never merge.
      std::string label = cr.name;
      for (std::size_t prev = 0; prev < c; ++prev) {
        if (result.clients[prev].name == cr.name) {
          label += "#" + std::to_string(c);
          break;
        }
      }
      const telemetry::Labels by_client = {{"client", label}};
      reg.GetCounter("harness.completed", by_client)
          ->Inc(static_cast<double>(cr.completed));
      reg.GetGauge("harness.throughput_rps", by_client)->Set(cr.throughput_rps);
      telemetry::Histogram* latency = reg.GetHistogram("harness.latency_us", by_client);
      for (const double sample : cr.latency.samples()) {
        latency->Add(sample);
      }
    }
    reg.GetGauge("harness.util_compute")->Set(result.utilization.compute);
    reg.GetGauge("harness.util_membw")->Set(result.utilization.membw);
    reg.GetGauge("harness.util_sm_busy")->Set(result.utilization.sm_busy);
  }
  return result;
}

}  // namespace harness
}  // namespace orion
