#include "src/harness/experiment.h"

#include <unordered_map>
#include <utility>

#include "src/baselines/passthrough.h"
#include "src/baselines/reef.h"
#include "src/baselines/temporal.h"
#include "src/baselines/ticktock.h"
#include "src/baselines/time_quantum.h"
#include "src/common/check.h"
#include "src/fault/fault_injector.h"
#include "src/memsub/pager.h"
#include "src/runtime/gpu_runtime.h"
#include "src/sim/simulator.h"
#include "src/telemetry/exporters.h"

namespace orion {
namespace harness {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDedicated:
      return "ideal";
    case SchedulerKind::kMig:
      return "mig";
    case SchedulerKind::kTemporal:
      return "temporal";
    case SchedulerKind::kStreams:
      return "streams";
    case SchedulerKind::kMps:
      return "mps";
    case SchedulerKind::kReef:
      return "reef";
    case SchedulerKind::kTickTock:
      return "ticktock";
    case SchedulerKind::kOrion:
      return "orion";
    case SchedulerKind::kTimeQuantum:
      return "nvshare-tq";
  }
  return "invalid";
}

std::unique_ptr<core::Scheduler> MakeScheduler(SchedulerKind kind,
                                               const core::OrionOptions& orion_options,
                                               const baselines::TimeQuantumOptions& tq_options) {
  switch (kind) {
    case SchedulerKind::kDedicated:
      // Per-device pass-through; RunExperiment instantiates one per client.
      return std::make_unique<baselines::PassthroughScheduler>("ideal", true, 0.0);
    case SchedulerKind::kMig:
      // Per-partition pass-through; RunExperiment builds partition devices.
      return std::make_unique<baselines::PassthroughScheduler>("mig", true, 0.0);
    case SchedulerKind::kTemporal:
      return std::make_unique<baselines::TemporalScheduler>();
    case SchedulerKind::kStreams:
      return baselines::MakeStreamsBaseline();
    case SchedulerKind::kMps:
      return baselines::MakeMpsBaseline();
    case SchedulerKind::kReef:
      return std::make_unique<baselines::ReefScheduler>();
    case SchedulerKind::kTickTock:
      return std::make_unique<baselines::TickTockScheduler>();
    case SchedulerKind::kOrion:
      return std::make_unique<core::OrionScheduler>(orion_options);
    case SchedulerKind::kTimeQuantum:
      return std::make_unique<baselines::TimeQuantumScheduler>(tq_options);
  }
  ORION_CHECK_MSG(false, "unhandled scheduler kind");
  return nullptr;
}

const ClientResult& ExperimentResult::hp() const {
  for (const ClientResult& client : clients) {
    if (client.high_priority) {
      return client;
    }
  }
  ORION_CHECK_MSG(false, "no high-priority client in result");
  return clients.front();
}

double ExperimentResult::TotalThroughput() const {
  double total = 0.0;
  for (const ClientResult& client : clients) {
    total += client.throughput_rps;
  }
  return total;
}

double CostSavings(double dedicated_throughput, double collocated_throughput) {
  ORION_CHECK(dedicated_throughput > 0.0);
  return 2.0 * collocated_throughput / dedicated_throughput;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ORION_CHECK(!config.clients.empty());

  // --- Offline profiling phase (§5.2), one profile per distinct workload. ---
  std::unordered_map<std::string, std::unique_ptr<profiler::WorkloadProfile>> profiles;
  for (const ClientConfig& client : config.clients) {
    const std::string key = workloads::WorkloadName(client.workload);
    if (profiles.count(key) > 0) {
      continue;
    }
    profiler::ProfileOptions opts = config.profile_options;
    opts.launch_overhead_us = config.launch_overhead_us;
    auto profile = std::make_unique<profiler::WorkloadProfile>(
        profiler::ProfileWorkload(config.device, client.workload, opts));
    profiles.emplace(key, std::move(profile));
  }

  // --- Memory admission (§5.1.3). Shared-GPU collocations must fit in
  // device memory; best-effort clients with allow_swapping absorb any
  // overflow by streaming state in per request (layer-by-layer offloading).
  // With unified-memory paging enabled (src/memsub) the admission check is
  // waived instead: the pager admits any footprint and services the overflow
  // as demand faults.
  const bool shares_gpu = config.scheduler != SchedulerKind::kDedicated &&
                          config.scheduler != SchedulerKind::kMig;
  const bool paging = config.paging.enabled && shares_gpu;
  std::vector<std::size_t> swap_bytes(config.clients.size(), 0);
  std::vector<std::size_t> state(config.clients.size(), 0);
  std::size_t memory_deficit = 0;
  if (shares_gpu) {
    std::size_t total_state = 0;
    for (std::size_t i = 0; i < config.clients.size(); ++i) {
      state[i] = workloads::ApproxModelStateBytes(config.clients[i].workload);
      total_state += state[i];
    }
    if (total_state > config.device.memory_bytes) {
      memory_deficit = total_state - config.device.memory_bytes;
    }
    if (memory_deficit > 0 && !paging) {
      std::size_t swapper_state = 0;
      for (std::size_t i = 0; i < config.clients.size(); ++i) {
        if (config.clients[i].allow_swapping && !config.clients[i].high_priority) {
          swapper_state += state[i];
        }
      }
      ORION_CHECK_MSG(swapper_state >= memory_deficit,
                      "collocation exceeds GPU memory by "
                          << memory_deficit
                          << " bytes and no best-effort client allows swapping (§5.1.3)");
      for (std::size_t i = 0; i < config.clients.size(); ++i) {
        if (config.clients[i].allow_swapping && !config.clients[i].high_priority) {
          swap_bytes[i] = static_cast<std::size_t>(
              static_cast<double>(memory_deficit) * state[i] / swapper_state);
        }
      }
    }
  }

  // --- Per-client telemetry labels. Collocations of one model against
  // itself are common (hp + be copies of the same workload): suffix
  // duplicates so clients never merge. Shared by the attribution sinks and
  // the result-mirror step below.
  std::vector<std::string> client_labels(config.clients.size());
  for (std::size_t c = 0; c < config.clients.size(); ++c) {
    const ClientConfig& cc = config.clients[c];
    client_labels[c] = workloads::WorkloadName(cc.workload) +
                       (cc.high_priority ? "/hp" : "/be");
    for (std::size_t prev = 0; prev < c; ++prev) {
      if (client_labels[prev] == client_labels[c]) {
        client_labels[c] += "#" + std::to_string(c);
        break;
      }
    }
  }
  const bool attr =
      config.telemetry != nullptr && config.telemetry->attribution_enabled();
  const auto bind_attribution = [&](ClientDriver& driver, std::size_t c) {
    const ClientConfig& cc = config.clients[c];
    driver.set_isolated_request_us(
        profiles.at(workloads::WorkloadName(cc.workload))->request_latency_us);
    if (attr) {
      attribution::ServiceAttribution& sink =
          config.telemetry->attribution().Service(client_labels[c]);
      sink.set_tier(cc.high_priority ? "hp" : "be");
      driver.set_attribution(&sink);
    }
  };

  // --- Online phase. ---
  Simulator sim;
  std::vector<std::unique_ptr<runtime::GpuRuntime>> runtimes;
  std::vector<std::unique_ptr<core::Scheduler>> schedulers;
  std::vector<std::unique_ptr<ClientDriver>> drivers;
  std::unique_ptr<memsub::UnifiedMemoryPager> pager;
  Rng root_rng(config.seed);

  const bool dedicated = config.scheduler == SchedulerKind::kDedicated;
  const bool mig = config.scheduler == SchedulerKind::kMig;
  const int num_clients = static_cast<int>(config.clients.size());

  if (dedicated || mig) {
    // Ideal: a private full device per client. MIG: a private 1/N static
    // partition per client — SMs, compute, bandwidth and memory all shrink,
    // and a client can never harvest its neighbours' idle capacity (§4).
    gpusim::DeviceSpec per_client = config.device;
    if (mig) {
      const int n = std::max(1, num_clients);
      per_client.name += "-mig-1of" + std::to_string(n);
      per_client.num_sms = std::max(1, per_client.num_sms / n);
      per_client.peak_fp32_tflops /= n;
      per_client.peak_membw_gbps /= n;
      per_client.memory_bytes /= static_cast<std::size_t>(n);
    }
    for (int i = 0; i < num_clients; ++i) {
      const ClientConfig& cc = config.clients[static_cast<std::size_t>(i)];
      auto rt = std::make_unique<runtime::GpuRuntime>(&sim, per_client);
      rt->device().set_pcie_priority_scheduling(config.pcie_priority_scheduling);
      if (config.telemetry != nullptr && config.telemetry->tracing()) {
        config.telemetry->kernels().RecordInto(rt->device(), "gpu" + std::to_string(i));
      }
      auto sched = MakeScheduler(config.scheduler, config.orion, config.time_quantum);
      sched->set_telemetry(config.telemetry);
      core::SchedClientInfo info;
      info.id = i;
      info.name = workloads::WorkloadName(cc.workload);
      info.high_priority = cc.high_priority;
      info.profile = profiles.at(info.name).get();
      sched->Attach(&sim, rt.get(), {info});
      drivers.push_back(std::make_unique<ClientDriver>(&sim, sched.get(), i, cc, per_client,
                                                       config.launch_overhead_us,
                                                       root_rng.Fork(i + 1)));
      bind_attribution(*drivers.back(), static_cast<std::size_t>(i));
      runtimes.push_back(std::move(rt));
      schedulers.push_back(std::move(sched));
    }
  } else {
    auto rt = std::make_unique<runtime::GpuRuntime>(&sim, config.device);
    rt->device().set_pcie_priority_scheduling(config.pcie_priority_scheduling);
    if (config.telemetry != nullptr && config.telemetry->tracing()) {
      config.telemetry->kernels().RecordInto(rt->device(), "gpu0");
    }
    auto sched = MakeScheduler(config.scheduler, config.orion, config.time_quantum);
    sched->set_telemetry(config.telemetry);
    std::vector<core::SchedClientInfo> infos;
    for (int i = 0; i < num_clients; ++i) {
      const ClientConfig& cc = config.clients[static_cast<std::size_t>(i)];
      core::SchedClientInfo info;
      info.id = i;
      info.name = workloads::WorkloadName(cc.workload);
      info.high_priority = cc.high_priority;
      info.profile = profiles.at(info.name).get();
      infos.push_back(std::move(info));
    }
    sched->Attach(&sim, rt.get(), infos);
    if (paging) {
      // Created after Attach so scheduler stream ids match a non-paging run
      // exactly (the inertness property: a fitting collocation with paging
      // enabled is bit-identical to one without).
      pager = std::make_unique<memsub::UnifiedMemoryPager>(&sim, &rt->device(), config.paging,
                                                           config.telemetry);
      // Pinned clients claim their frames first so unpinned pre-warm can
      // never steal them.
      for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < num_clients; ++i) {
          const ClientConfig& cc = config.clients[static_cast<std::size_t>(i)];
          const bool pinned = config.paging.pin_high_priority && cc.high_priority;
          if ((pass == 0) != pinned) {
            continue;
          }
          // Training state mutates every iteration: its evictions pay a
          // writeback. Inference state is read-only.
          pager->RegisterClient(i, workloads::WorkloadName(cc.workload),
                                state[static_cast<std::size_t>(i)], pinned,
                                cc.workload.task == workloads::TaskType::kTraining,
                                cc.paging_ws_fraction);
        }
      }
      if (auto* tq = dynamic_cast<baselines::TimeQuantumScheduler*>(sched.get())) {
        tq->set_pager(pager.get());
      }
    }
    const DurationUs overhead =
        config.launch_overhead_us * sched->HostOverheadMultiplier(num_clients);
    for (int i = 0; i < num_clients; ++i) {
      drivers.push_back(std::make_unique<ClientDriver>(
          &sim, sched.get(), i, config.clients[static_cast<std::size_t>(i)], config.device,
          overhead, root_rng.Fork(i + 1), swap_bytes[static_cast<std::size_t>(i)]));
      bind_attribution(*drivers.back(), static_cast<std::size_t>(i));
      if (pager != nullptr) {
        drivers.back()->set_pager(pager.get());
      }
    }
    runtimes.push_back(std::move(rt));
    schedulers.push_back(std::move(sched));
  }

  // --- Fault injection (src/fault): wire the plan to the live objects. ---
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(&sim, config.fault_plan);
    injector->set_telemetry(config.telemetry);
    for (std::size_t i = 0; i < runtimes.size(); ++i) {
      injector->RegisterDevice(static_cast<int>(i), &runtimes[i]->device());
    }
    for (auto& sched : schedulers) {
      injector->RegisterScheduler(sched.get());
    }
    for (auto& [key, profile] : profiles) {
      (void)key;
      injector->RegisterProfile(profile.get());
    }
    injector->set_client_fault_handler([&drivers, &pager](const fault::FaultEvent& event) {
      for (auto& driver : drivers) {
        if (driver->id() != event.client) {
          continue;
        }
        if (event.kind == fault::FaultKind::kClientHang) {
          driver->Hang(event.runaway_us);
        } else {
          driver->Crash();
        }
        if (pager != nullptr) {
          // Dead process: its pages free immediately (host copy wins).
          pager->ReleaseClient(static_cast<int>(event.client));
        }
        return;
      }
    });
    injector->Arm();
  }

  const TimeUs measure_from = config.warmup_us;
  const TimeUs horizon = config.warmup_us + config.duration_us;
  for (auto& driver : drivers) {
    driver->set_measure_from(measure_from);
    driver->Start();
  }
  std::unique_ptr<telemetry::StreamingExporter> streamer;
  if (config.telemetry != nullptr && config.telemetry_flush.period_us > 0.0) {
    streamer = std::make_unique<telemetry::StreamingExporter>(&sim, config.telemetry,
                                                              config.telemetry_flush);
    streamer->Start();
  }
  sim.RunUntil(horizon);
  if (streamer != nullptr) {
    streamer->Stop();
  }

  // --- Collect. ---
  ExperimentResult result;
  result.scheduler_name = SchedulerKindName(config.scheduler);
  result.window_us = config.duration_us;
  result.memory_deficit_bytes = memory_deficit;
  result.swapping_active = memory_deficit > 0 && !paging;
  result.paging_active = pager != nullptr;
  if (pager != nullptr) {
    result.paging = pager->totals();
  }
  result.telemetry_flushes = streamer != nullptr ? streamer->flushes() : 0;
  for (auto& driver : drivers) {
    ClientResult cr;
    cr.name = driver->name();
    cr.high_priority = driver->config().high_priority;
    cr.completed = driver->completed_measured();
    cr.completed_total = driver->completed_total();
    cr.throughput_rps = static_cast<double>(cr.completed) / UsToSec(config.duration_us);
    cr.latency = driver->latencies();
    cr.queueing = driver->queueing();
    cr.service = driver->service();
    cr.slo_misses = driver->slo_misses();
    if (pager != nullptr) {
      cr.page_faults = pager->client_faults(static_cast<int>(driver->id()));
      cr.page_stall_us = pager->client_stall_us(static_cast<int>(driver->id()));
    }
    result.clients.push_back(std::move(cr));
  }
  // Utilization of the shared device (or the high-priority client's device
  // in the Ideal configuration).
  std::size_t util_index = 0;
  if (dedicated || mig) {
    for (std::size_t i = 0; i < config.clients.size(); ++i) {
      if (config.clients[i].high_priority) {
        util_index = i;
        break;
      }
    }
  }
  result.utilization =
      runtimes[util_index]->device().utilization().AverageOver(measure_from, horizon);
  if (injector != nullptr) {
    result.faults_injected = injector->injected();
    result.faults_skipped = injector->skipped();
  }
  result.memory_used_end_bytes = runtimes[util_index]->memory().used();
  for (auto& sched : schedulers) {
    if (const auto* orion = dynamic_cast<const core::OrionScheduler*>(sched.get())) {
      result.clients_quarantined += orion->clients_quarantined();
      result.runaway_quarantines += orion->runaway_quarantines();
    }
    if (const auto* tq = dynamic_cast<const baselines::TimeQuantumScheduler*>(sched.get())) {
      result.tq_exclusive_entries = tq->exclusive_entries();
      result.tq_quanta = tq->quanta_granted();
      result.tq_exclusive_us = tq->exclusive_us();
    }
  }

  // Mirror the result into the hub registry so an exported CSV snapshot
  // reproduces the harness's numbers (latency samples feed histograms so the
  // snapshot carries window percentiles too).
  if (config.telemetry != nullptr) {
    telemetry::MetricRegistry& reg = config.telemetry->metrics();
    for (std::size_t c = 0; c < result.clients.size(); ++c) {
      const ClientResult& cr = result.clients[c];
      const telemetry::Labels by_client = {{"client", client_labels[c]}};
      reg.GetCounter("harness.completed", by_client)
          ->Inc(static_cast<double>(cr.completed));
      reg.GetGauge("harness.throughput_rps", by_client)->Set(cr.throughput_rps);
      telemetry::Histogram* latency = reg.GetHistogram("harness.latency_us", by_client);
      for (const double sample : cr.latency.samples()) {
        latency->Add(sample);
      }
    }
    reg.GetGauge("harness.util_compute")->Set(result.utilization.compute);
    reg.GetGauge("harness.util_membw")->Set(result.utilization.membw);
    reg.GetGauge("harness.util_sm_busy")->Set(result.utilization.sm_busy);
  }
  return result;
}

}  // namespace harness
}  // namespace orion
