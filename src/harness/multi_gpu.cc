#include "src/harness/multi_gpu.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/collective/collective.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/fault/fault_injector.h"
#include "src/interconnect/fabric.h"
#include "src/runtime/gpu_runtime.h"
#include "src/sim/simulator.h"

namespace orion {
namespace harness {
namespace {

// Executes the DDP job: lockstep data-parallel iterations across the ring's
// devices, paced kernel submission, bucketed all-reduce overlapped with the
// backward pass, optimizer update after the last bucket.
class DdpRun {
 public:
  DdpRun(Simulator* sim, const workloads::DdpIterationPlan& plan,
         std::vector<gpusim::Device*> devices, std::vector<gpusim::StreamId> compute_streams,
         collective::CollectiveEngine* engine, std::vector<int> ring, int iterations,
         DurationUs launch_overhead_us, bool* finished)
      : sim_(sim),
        plan_(plan),
        devices_(std::move(devices)),
        compute_streams_(std::move(compute_streams)),
        engine_(engine),
        ring_(std::move(ring)),
        iterations_(iterations),
        launch_overhead_us_(launch_overhead_us),
        finished_(finished) {
    ORION_CHECK(devices_.size() == ring_.size());
    ORION_CHECK(iterations_ >= 1);
  }

  void Start() {
    started_at_ = sim_->now();
    StartIteration();
  }

  std::size_t iterations_done() const { return iterations_done_; }
  TimeUs started_at() const { return started_at_; }
  TimeUs finished_at() const { return finished_at_; }
  const LatencyRecorder& iteration_us() const { return iteration_us_; }
  const LatencyRecorder& allreduce_us() const { return allreduce_us_; }

 private:
  struct GpuState {
    std::size_t next_compute = 0;
    std::size_t compute_done = 0;
    std::size_t update_done = 0;
    DurationUs backward_done_us = 0.0;  // alone-time of completed bwd kernels
  };

  std::size_t NumGpus() const { return devices_.size(); }

  void StartIteration() {
    gpus_.assign(NumGpus(), GpuState{});
    next_bucket_ = 0;
    buckets_done_ = 0;
    compute_finished_gpus_ = 0;
    update_finished_gpus_ = 0;
    update_started_ = false;
    iteration_start_ = sim_->now();
    for (std::size_t slot = 0; slot < NumGpus(); ++slot) {
      PumpCompute(slot);
    }
  }

  // Paced submission: the host thread launches asynchronously, one kernel
  // per launch_overhead_us, running ahead of the device (streams queue).
  void PumpCompute(std::size_t slot) {
    GpuState& state = gpus_[slot];
    if (state.next_compute >= plan_.compute_kernels.size()) {
      return;
    }
    const gpusim::KernelDesc& kernel = plan_.compute_kernels[state.next_compute++];
    devices_[slot]->LaunchKernel(compute_streams_[slot], kernel,
                                 [this, slot]() { OnComputeDone(slot); });
    if (state.next_compute < plan_.compute_kernels.size()) {
      sim_->ScheduleAfter(launch_overhead_us_, [this, slot]() { PumpCompute(slot); });
    }
  }

  void OnComputeDone(std::size_t slot) {
    GpuState& state = gpus_[slot];
    // Stream FIFO order: completion k is compute_kernels[k].
    const gpusim::KernelDesc& kernel = plan_.compute_kernels[state.compute_done];
    if (kernel.phase == gpusim::KernelPhase::kBackward) {
      state.backward_done_us += kernel.duration_us;
    }
    ++state.compute_done;
    MaybeIssueBuckets();
    if (state.compute_done == plan_.compute_kernels.size()) {
      ++compute_finished_gpus_;
      MaybeStartUpdate();
    }
  }

  // Issues every bucket whose gradients exist on ALL GPUs (in lockstep
  // data-parallelism the GPUs progress together, but the all-GPU check keeps
  // the gate correct if their speeds ever diverge).
  void MaybeIssueBuckets() {
    while (next_bucket_ < plan_.buckets.size()) {
      double min_fraction = 1.0;
      for (const GpuState& state : gpus_) {
        const double fraction = plan_.backward_us > 0.0
                                    ? state.backward_done_us / plan_.backward_us
                                    : 1.0;
        min_fraction = std::min(min_fraction, fraction);
      }
      const workloads::GradientBucket& bucket = plan_.buckets[next_bucket_];
      if (min_fraction + 1e-9 < bucket.ready_fraction) {
        return;
      }
      ++next_bucket_;
      const TimeUs issued = sim_->now();
      engine_->AllReduce(ring_, bucket.bytes, [this, issued]() {
        allreduce_us_.Add(sim_->now() - issued);
        ++buckets_done_;
        MaybeStartUpdate();
      });
    }
  }

  void MaybeStartUpdate() {
    if (update_started_ || compute_finished_gpus_ < NumGpus() ||
        buckets_done_ < plan_.buckets.size()) {
      return;
    }
    update_started_ = true;
    if (plan_.update_kernels.empty()) {
      FinishIteration();
      return;
    }
    for (std::size_t slot = 0; slot < NumGpus(); ++slot) {
      PumpUpdate(slot, 0);
    }
  }

  void PumpUpdate(std::size_t slot, std::size_t index) {
    const gpusim::KernelDesc& kernel = plan_.update_kernels[index];
    devices_[slot]->LaunchKernel(compute_streams_[slot], kernel,
                                 [this, slot]() { OnUpdateDone(slot); });
    if (index + 1 < plan_.update_kernels.size()) {
      sim_->ScheduleAfter(launch_overhead_us_,
                          [this, slot, index]() { PumpUpdate(slot, index + 1); });
    }
  }

  void OnUpdateDone(std::size_t slot) {
    GpuState& state = gpus_[slot];
    ++state.update_done;
    if (state.update_done < plan_.update_kernels.size()) {
      return;
    }
    ++update_finished_gpus_;
    if (update_finished_gpus_ == NumGpus()) {
      FinishIteration();
    }
  }

  void FinishIteration() {
    iteration_us_.Add(sim_->now() - iteration_start_);
    ++iterations_done_;
    if (iterations_done_ < static_cast<std::size_t>(iterations_)) {
      StartIteration();
      return;
    }
    finished_at_ = sim_->now();
    *finished_ = true;  // releases the bandwidth hog
  }

  Simulator* sim_;
  const workloads::DdpIterationPlan& plan_;
  std::vector<gpusim::Device*> devices_;
  std::vector<gpusim::StreamId> compute_streams_;
  collective::CollectiveEngine* engine_;
  std::vector<int> ring_;
  int iterations_;
  DurationUs launch_overhead_us_;
  bool* finished_;

  std::vector<GpuState> gpus_;
  std::size_t next_bucket_ = 0;
  std::size_t buckets_done_ = 0;
  std::size_t compute_finished_gpus_ = 0;
  std::size_t update_finished_gpus_ = 0;
  bool update_started_ = false;
  TimeUs iteration_start_ = 0.0;

  TimeUs started_at_ = 0.0;
  TimeUs finished_at_ = 0.0;
  std::size_t iterations_done_ = 0;
  LatencyRecorder iteration_us_;
  LatencyRecorder allreduce_us_;
};

// Closed-loop H2D copy client: keeps one GPU's host link saturated until the
// DDP job finishes (checked between copies, so the last copy drains and the
// simulation goes idle).
class HogDriver {
 public:
  HogDriver(Simulator* sim, gpusim::Device* device, gpusim::StreamId stream,
            const BandwidthHogConfig& config, Rng rng, const bool* stop)
      : sim_(sim), device_(device), stream_(stream), config_(config), rng_(rng), stop_(stop) {}

  void Start() { IssueNext(); }
  std::size_t copies() const { return copies_; }

 private:
  void IssueNext() {
    if (*stop_) {
      return;
    }
    device_->EnqueueMemcpy(stream_, config_.copy_bytes, gpusim::MemcpyKind::kHostToDevice,
                           [this]() {
                             ++copies_;
                             ScheduleNext();
                           });
  }

  void ScheduleNext() {
    if (*stop_) {
      return;
    }
    if (config_.gap_us > 0.0) {
      // Jittered host-side pause (the only stochastic element of the run).
      const DurationUs gap = config_.gap_us * rng_.UniformDouble(0.5, 1.5);
      sim_->ScheduleAfter(gap, [this]() { IssueNext(); });
    } else {
      IssueNext();
    }
  }

  Simulator* sim_;
  gpusim::Device* device_;
  gpusim::StreamId stream_;
  BandwidthHogConfig config_;
  Rng rng_;
  const bool* stop_;
  std::size_t copies_ = 0;
};

}  // namespace

MultiGpuResult RunDdpExperiment(const MultiGpuConfig& config) {
  const int topo_gpus = config.topology.num_gpus();
  ORION_CHECK(config.iterations >= 1);

  std::vector<int> ddp_gpus = config.ddp_gpus;
  if (ddp_gpus.empty()) {
    for (int gpu = 0; gpu < config.ddp.num_gpus; ++gpu) {
      ddp_gpus.push_back(gpu);
    }
  }
  ORION_CHECK_MSG(static_cast<int>(ddp_gpus.size()) == config.ddp.num_gpus,
                  "ddp_gpus does not match ddp.num_gpus");
  for (const int gpu : ddp_gpus) {
    ORION_CHECK(gpu >= 0 && gpu < topo_gpus);
  }
  if (config.hog.has_value()) {
    ORION_CHECK(config.hog->gpu >= 0 && config.hog->gpu < topo_gpus);
  }

  Simulator sim;
  interconnect::Fabric fabric(&sim, config.topology);
  fabric.set_telemetry(config.telemetry);
  collective::CollectiveEngine engine(&sim, &fabric);
  engine.set_options(config.collective);
  engine.set_telemetry(config.telemetry);

  // One runtime per topology GPU, all copy engines on the shared fabric.
  std::vector<std::unique_ptr<runtime::GpuRuntime>> runtimes;
  for (int gpu = 0; gpu < topo_gpus; ++gpu) {
    auto rt = std::make_unique<runtime::GpuRuntime>(&sim, config.device);
    rt->device().AttachHostLink(&fabric, gpu);
    if (config.telemetry != nullptr && config.telemetry->tracing()) {
      config.telemetry->kernels().RecordInto(rt->device(), "gpu" + std::to_string(gpu));
    }
    runtimes.push_back(std::move(rt));
  }

  const std::vector<int> ring = config.topology.PreferredRing(ddp_gpus);
  std::vector<gpusim::Device*> devices;
  std::vector<gpusim::StreamId> compute_streams;
  for (const int gpu : ring) {
    gpusim::Device& device = runtimes[static_cast<std::size_t>(gpu)]->device();
    engine.BindCommStream(gpu, &device, device.CreateStream());
    compute_streams.push_back(device.CreateStream());
    devices.push_back(&device);
  }

  workloads::DdpIterationPlan plan = PlanDdpIteration(config.device, config.ddp);
  if (!config.overlap_comm && plan.buckets.size() > 1) {
    // Ablation: one monolithic all-reduce after the whole backward pass.
    plan.buckets = {workloads::GradientBucket{plan.param_bytes, 1.0}};
  }

  bool finished = false;
  DdpRun run(&sim, plan, std::move(devices), std::move(compute_streams), &engine, ring,
             config.iterations, config.launch_overhead_us, &finished);

  std::unique_ptr<HogDriver> hog;
  if (config.hog.has_value()) {
    gpusim::Device& device = runtimes[static_cast<std::size_t>(config.hog->gpu)]->device();
    hog = std::make_unique<HogDriver>(&sim, &device, device.CreateStream(), *config.hog,
                                      Rng(config.seed).Fork(1), &finished);
  }

  // Fault injection: device and fabric faults only (there is no scheduler
  // or per-client driver in the DDP harness).
  std::unique_ptr<fault::FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(&sim, config.fault_plan);
    injector->set_telemetry(config.telemetry);
    for (int gpu = 0; gpu < topo_gpus; ++gpu) {
      injector->RegisterDevice(gpu, &runtimes[static_cast<std::size_t>(gpu)]->device());
    }
    injector->RegisterFabric(&fabric);
    injector->Arm();
  }

  run.Start();
  if (hog != nullptr) {
    hog->Start();
  }
  sim.RunUntilIdle();
  // A faulted run may legitimately stall (e.g. a permanent link-down with
  // detection disabled); report it instead of aborting.
  ORION_CHECK_MSG(finished || injector != nullptr, "DDP run did not complete");

  MultiGpuResult result;
  result.num_gpus = static_cast<int>(ring.size());
  result.ring = ring;
  result.iterations = run.iterations_done();
  result.param_bytes = plan.param_bytes;
  result.buckets_per_iteration = plan.buckets.size();
  result.total_us = run.finished_at() - run.started_at();
  result.iteration_us = run.iteration_us();
  result.allreduce_us = run.allreduce_us();
  result.compute_alone_us = plan.forward_backward_us + plan.update_us;
  result.hog_copies = hog != nullptr ? hog->copies() : 0;
  result.completed = finished;
  result.faults_injected = injector != nullptr ? injector->injected() : 0;
  result.ring_reformations = engine.reformations();
  result.step_timeouts = engine.step_timeouts();
  result.timeout_giveups = engine.timeout_giveups();
  result.dead_gpus.assign(engine.dead_gpus().begin(), engine.dead_gpus().end());
  result.final_world_size =
      static_cast<int>(ring.size()) - static_cast<int>(result.dead_gpus.size());
  for (const interconnect::Link& link : config.topology.links()) {
    LinkTraffic traffic;
    traffic.name = link.name;
    traffic.kind = link.kind;
    traffic.forward_bytes = fabric.BytesMoved(link.id, true);
    traffic.backward_bytes = fabric.BytesMoved(link.id, false);
    result.link_traffic.push_back(std::move(traffic));
  }

  // Mirror the run's headline numbers into the hub registry so an exported
  // CSV snapshot reproduces what the bench prints.
  if (config.telemetry != nullptr) {
    telemetry::MetricRegistry& reg = config.telemetry->metrics();
    reg.GetCounter("ddp.iterations")->Inc(static_cast<double>(result.iterations));
    reg.GetCounter("ddp.hog_copies")->Inc(static_cast<double>(result.hog_copies));
    reg.GetGauge("ddp.total_us")->Set(result.total_us);
    reg.GetGauge("ddp.final_world_size")
        ->Set(static_cast<double>(result.final_world_size));
    telemetry::Histogram* iteration = reg.GetHistogram("ddp.iteration_us");
    for (const double sample : result.iteration_us.samples()) {
      iteration->Add(sample);
    }
    telemetry::Histogram* allreduce = reg.GetHistogram("ddp.allreduce_us");
    for (const double sample : result.allreduce_us.samples()) {
      allreduce->Add(sample);
    }
    for (const LinkTraffic& traffic : result.link_traffic) {
      const telemetry::Labels by_link = {{"link", traffic.name}};
      reg.GetCounter("ddp.link_forward_bytes", by_link)->Inc(traffic.forward_bytes);
      reg.GetCounter("ddp.link_backward_bytes", by_link)->Inc(traffic.backward_bytes);
    }
  }
  return result;
}

}  // namespace harness
}  // namespace orion
