// Multi-GPU experiment harness: DDP training over a link topology.
//
// Extends the single-device experiment harness to a node of N simulated
// GPUs: one GpuRuntime per topology GPU, all sharing one interconnect Fabric
// (every device's copy engine is attached to it, so host copies contend with
// collective traffic), and a CollectiveEngine issuing ring collectives on
// per-GPU communication streams. The DDP job runs lockstep data-parallel
// iterations from a DdpIterationPlan: paced kernel submission per GPU,
// bucketed gradient all-reduce overlapped with the backward pass, optimizer
// update gated on the last bucket. An optional bandwidth-hog client streams
// host->device copies on one GPU for the whole run, the collocated
// best-effort traffic of the ext_multi_gpu_ddp bench.
#ifndef SRC_HARNESS_MULTI_GPU_H_
#define SRC_HARNESS_MULTI_GPU_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/collective/collective.h"
#include "src/common/stats.h"
#include "src/fault/fault_plan.h"
#include "src/gpusim/device_spec.h"
#include "src/interconnect/topology.h"
#include "src/telemetry/telemetry.h"
#include "src/workloads/ddp.h"

namespace orion {
namespace harness {

// Best-effort client that saturates one GPU's PCIe host link with
// back-to-back H2D copies (e.g. a data-loading / swapping-heavy job).
struct BandwidthHogConfig {
  int gpu = 0;
  std::size_t copy_bytes = std::size_t{32} << 20;
  DurationUs gap_us = 0.0;  // host-side pause between copies (0 = none)
};

struct MultiGpuConfig {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  interconnect::NodeTopology topology = interconnect::NodeTopology::PcieOnly(1);
  workloads::DdpConfig ddp;
  // GPUs running the DDP job; empty = GPUs [0, ddp.num_gpus). Ring order is
  // chosen by topology.PreferredRing (NVLink-adjacent pairs first).
  std::vector<int> ddp_gpus;
  int iterations = 10;
  DurationUs launch_overhead_us = 6.0;  // host cost per kernel launch
  std::uint64_t seed = 42;
  std::optional<BandwidthHogConfig> hog;
  // false: one un-bucketed all-reduce after the backward pass (no
  // comm/compute overlap) — the ablation arm of the DDP bench.
  bool overlap_comm = true;
  // Collective fault-detection policy (step timeouts, ring re-formation).
  // Defaults keep detection off — required for fault plans with link/GPU
  // faults that should be survived rather than waited out.
  collective::CollectiveOptions collective;
  // Fault scenario injected into the run (src/fault): link flaps/downs and
  // GPU deaths target the fabric, device degradation targets the GPU with
  // the event's index. Empty = fault-free.
  fault::FaultPlan fault_plan;

  // Optional telemetry sink (src/telemetry). When set, the collective
  // engine, fabric and fault injector publish their counters into the hub
  // registry and the run's results are mirrored as "ddp.*" metrics; with
  // tracing enabled every device's kernel records are collected (one track
  // per device) next to collective/fabric async spans and fault markers.
  telemetry::Hub* telemetry = nullptr;
};

struct LinkTraffic {
  std::string name;
  interconnect::LinkKind kind = interconnect::LinkKind::kPcie;
  double forward_bytes = 0.0;   // node_a -> node_b
  double backward_bytes = 0.0;  // node_b -> node_a
};

struct MultiGpuResult {
  int num_gpus = 0;
  std::vector<int> ring;  // ring order actually used
  std::size_t iterations = 0;
  std::size_t param_bytes = 0;
  std::size_t buckets_per_iteration = 0;
  DurationUs total_us = 0.0;          // start of iteration 0 to last update
  LatencyRecorder iteration_us;       // per-iteration wall time
  LatencyRecorder allreduce_us;       // per-bucket latency (issue -> done)
  DurationUs compute_alone_us = 0.0;  // fwd+bwd+update alone time, one GPU
  std::size_t hog_copies = 0;
  std::vector<LinkTraffic> link_traffic;

  // Fault outcome. On a fault-free run: completed, zero counters, and
  // final_world_size == num_gpus.
  bool completed = true;           // all iterations ran (false: stalled run)
  std::size_t faults_injected = 0;
  std::size_t ring_reformations = 0;
  std::size_t step_timeouts = 0;
  std::size_t timeout_giveups = 0;
  std::vector<int> dead_gpus;      // GPUs the collective engine expelled
  int final_world_size = 0;        // surviving DDP world size
};

MultiGpuResult RunDdpExperiment(const MultiGpuConfig& config);

}  // namespace harness
}  // namespace orion

#endif  // SRC_HARNESS_MULTI_GPU_H_
