#include "src/harness/client_driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace harness {

ClientDriver::ClientDriver(Simulator* sim, core::Scheduler* scheduler, core::ClientId id,
                           const ClientConfig& config, const gpusim::DeviceSpec& device,
                           DurationUs op_overhead_us, Rng rng,
                           std::size_t swap_bytes_per_request)
    : sim_(sim),
      scheduler_(scheduler),
      id_(id),
      config_(config),
      op_overhead_us_(op_overhead_us),
      rng_(rng) {
  ORION_CHECK(sim_ != nullptr && scheduler_ != nullptr);
  switch (config_.arrivals) {
    case ClientConfig::Arrivals::kClosedLoop:
      arrivals_ = trace::MakeClosedLoop();
      break;
    case ClientConfig::Arrivals::kPoisson:
      arrivals_ = trace::MakePoisson(config_.rps);
      break;
    case ClientConfig::Arrivals::kUniform:
      arrivals_ = trace::MakeUniform(config_.rps);
      break;
    case ClientConfig::Arrivals::kApollo:
      arrivals_ = trace::MakeApollo(config_.rps);
      break;
  }
  template_ops_ = workloads::BuildRequestOps(device, config_.workload);
  if (config_.use_cuda_graphs) {
    // Capture runs of consecutive kernel launches into graph ops of at most
    // kGraphCaptureLimit kernels (frameworks capture per layer block).
    constexpr std::size_t kGraphCaptureLimit = 32;
    std::vector<runtime::Op> captured;
    std::size_t i = 0;
    while (i < template_ops_.size()) {
      if (template_ops_[i].type != runtime::OpType::kKernelLaunch) {
        captured.push_back(template_ops_[i]);
        ++i;
        continue;
      }
      runtime::Op graph;
      graph.type = runtime::OpType::kGraphLaunch;
      while (i < template_ops_.size() &&
             template_ops_[i].type == runtime::OpType::kKernelLaunch &&
             graph.graph_kernels.size() < kGraphCaptureLimit) {
        graph.graph_kernels.push_back(template_ops_[i].kernel);
        ++i;
      }
      captured.push_back(std::move(graph));
    }
    for (std::size_t j = 0; j < captured.size(); ++j) {
      captured[j].index_in_request = static_cast<std::uint32_t>(j);
      captured[j].end_of_request = j + 1 == captured.size();
    }
    template_ops_ = std::move(captured);
  }
  if (swap_bytes_per_request > 0) {
    // Layer-by-layer offloading (§5.1.3): spread the non-resident state over
    // several swap-in copies interleaved with the request's kernels, so the
    // PCIe traffic overlaps execution instead of serialising ahead of it.
    constexpr int kSwapGroups = 8;
    const std::size_t group_bytes = (swap_bytes_per_request + kSwapGroups - 1) / kSwapGroups;
    std::vector<runtime::Op> with_swaps;
    const std::size_t stride = std::max<std::size_t>(1, template_ops_.size() / kSwapGroups);
    for (std::size_t i = 0; i < template_ops_.size(); ++i) {
      if (i % stride == 0 && i / stride < kSwapGroups) {
        runtime::Op swap;
        swap.type = runtime::OpType::kMemcpyH2D;
        swap.bytes = group_bytes;
        swap.blocking = false;
        with_swaps.push_back(swap);
      }
      with_swaps.push_back(template_ops_[i]);
    }
    // Re-stamp indices and the end-of-request marker.
    for (std::size_t i = 0; i < with_swaps.size(); ++i) {
      with_swaps[i].index_in_request = static_cast<std::uint32_t>(i);
      with_swaps[i].end_of_request = i + 1 == with_swaps.size();
    }
    template_ops_ = std::move(with_swaps);
  }
  for (runtime::Op& op : template_ops_) {
    op.client_id = static_cast<std::uint64_t>(id_);
  }
}

std::string ClientDriver::name() const {
  return workloads::WorkloadName(config_.workload) + (config_.high_priority ? "/hp" : "/be");
}

void ClientDriver::Start() {
  if (arrivals_->closed_loop()) {
    pending_arrivals_.push_back(sim_->now());
    StartNextRequest();
    return;
  }
  // Randomise the phase of the first arrival so collocated clients do not
  // start in lockstep.
  sim_->ScheduleAfter(rng_.UniformDouble(0.0, arrivals_->NextInterarrival(rng_)),
                      [this]() { OnArrival(); });
}

void ClientDriver::Crash() {
  crashed_ = true;
  pending_arrivals_.clear();
}

void ClientDriver::Hang(DurationUs runaway_us) {
  ORION_CHECK(runaway_us > 0.0);
  const bool was_crashed = crashed_;
  Crash();
  if (was_crashed) {
    return;  // already dead: nothing left to hang on
  }
  // The runaway kernel: an id no offline profile contains, modelling a code
  // path profiling never exercised (the reason it can run away unnoticed).
  runtime::Op op;
  op.type = runtime::OpType::kKernelLaunch;
  op.kernel.kernel_id = 0xF417F417F417F417ull ^ static_cast<std::uint64_t>(id_);
  op.kernel.name = "runaway";
  op.kernel.duration_us = runaway_us;
  op.kernel.geometry = gpusim::LaunchGeometry{};
  op.kernel.compute_util = 0.5;
  op.kernel.membw_util = 0.5;
  op.client_id = static_cast<std::uint64_t>(id_);
  op.request_id = ++next_request_id_;
  op.end_of_request = true;
  core::SchedOp sched_op;
  sched_op.op = std::move(op);
  scheduler_->Enqueue(id_, std::move(sched_op));
}

void ClientDriver::ScheduleNextArrival() {
  sim_->ScheduleAfter(arrivals_->NextInterarrival(rng_), [this]() { OnArrival(); });
}

void ClientDriver::OnArrival() {
  if (crashed_) {
    return;  // dead process: the arrival chain ends here
  }
  pending_arrivals_.push_back(sim_->now());
  ScheduleNextArrival();
  if (!request_in_flight_) {
    StartNextRequest();
  }
}

void ClientDriver::StartNextRequest() {
  if (crashed_ || request_in_flight_ || pending_arrivals_.empty()) {
    return;
  }
  request_in_flight_ = true;
  current_arrival_ = pending_arrivals_.front();
  pending_arrivals_.pop_front();
  current_start_ = sim_->now();
  next_op_ = 0;
  ++next_request_id_;
  current_paging_us_ = 0.0;
  if (pager_ != nullptr && pager_->IsRegistered(id_)) {
    // Touch the working set before the request's first kernel; the fault
    // stall (if any) lands in the service-time component of latency. The
    // timed overload reports the stall for the kPaging attribution phase.
    pager_->Access(static_cast<int>(id_), [this](DurationUs stall_us) {
      if (crashed_) {
        return;  // process died while its pages were in flight
      }
      current_paging_us_ = stall_us;
      SubmitNextOp();
    });
    return;
  }
  SubmitNextOp();
}

void ClientDriver::SubmitNextOp() {
  if (crashed_) {
    return;  // process died between ops of the request
  }
  ORION_CHECK(next_op_ < template_ops_.size());
  runtime::Op op = template_ops_[next_op_];
  op.request_id = next_request_id_;
  const bool last = op.end_of_request;
  const bool blocking = op.blocking;
  ++next_op_;

  core::SchedOp sched_op;
  sched_op.op = std::move(op);
  if (last) {
    sched_op.on_complete = [this]() { OnRequestComplete(); };
  } else if (blocking) {
    sched_op.on_complete = [this]() {
      sim_->ScheduleAfter(op_overhead_us_, [this]() { SubmitNextOp(); });
    };
  }
  scheduler_->Enqueue(id_, std::move(sched_op));
  if (!last && !blocking) {
    sim_->ScheduleAfter(op_overhead_us_, [this]() { SubmitNextOp(); });
  }
}

void ClientDriver::OnRequestComplete() {
  if (crashed_) {
    return;  // completion of work already on the device when the process died
  }
  const TimeUs now = sim_->now();
  ++completed_total_;
  if (now >= measure_from_) {
    latencies_.Add(now - current_arrival_);
    queueing_.Add(current_start_ - current_arrival_);
    service_.Add(now - current_start_);
    ++completed_measured_;
    const DurationUs e2e = now - current_arrival_;
    const bool miss = config_.slo_us > 0.0 && e2e > config_.slo_us;
    if (miss) {
      ++slo_misses_;
    }
    if (attribution_ != nullptr) {
      // Kernel-path decomposition: queue wait at the client, then the pager's
      // fault stall, then execution priced at the isolated profile — whatever
      // the post-queue, post-paging window holds beyond the isolated cost is
      // interference from collocated clients. The phases sum to e2e by
      // construction (the window split is exact), so the identity check here
      // only guards against FP drift.
      double phases[attribution::kNumPhases] = {};
      const DurationUs exec_window = (now - current_start_) - current_paging_us_;
      const DurationUs execute =
          std::min(std::max(isolated_request_us_, 0.0), std::max(exec_window, 0.0));
      phases[attribution::PhaseIndex(attribution::Phase::kQueue)] =
          current_start_ - current_arrival_;
      phases[attribution::PhaseIndex(attribution::Phase::kPaging)] = current_paging_us_;
      phases[attribution::PhaseIndex(attribution::Phase::kExecute)] = execute;
      phases[attribution::PhaseIndex(attribution::Phase::kInterference)] =
          std::max(exec_window, 0.0) - execute;
      double sum = 0.0;
      for (std::size_t i = 0; i < attribution::kNumPhases; ++i) {
        sum += phases[i];
      }
      ORION_CHECK_MSG(std::abs(sum - e2e) <= 1e-3 + 1e-6 * e2e,
                      "client ledger identity violated: phases sum " << sum
                          << "us vs e2e " << e2e << "us (client " << id_ << ")");
      attribution_->RecordE2e(phases, e2e, miss);
    }
  }
  request_in_flight_ = false;
  if (arrivals_->closed_loop()) {
    pending_arrivals_.push_back(now);
  }
  // A queued (or just-pushed) arrival starts immediately.
  sim_->ScheduleAfter(op_overhead_us_, [this]() { StartNextRequest(); });
}

}  // namespace harness
}  // namespace orion
