#include "src/harness/sm_tuner.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/profiler/profiler.h"

namespace orion {
namespace harness {
namespace {

double BeThroughputOf(const ExperimentResult& result) {
  double total = 0.0;
  for (const ClientResult& client : result.clients) {
    if (!client.high_priority) {
      total += client.throughput_rps;
    }
  }
  return total;
}

}  // namespace

SmTunerResult TuneSmThreshold(ExperimentConfig config, const SmTunerOptions& options) {
  ORION_CHECK_MSG(config.scheduler == SchedulerKind::kOrion,
                  "SM_THRESHOLD tuning applies to the Orion scheduler");
  config.duration_us = options.probe_duration_us;

  SmTunerResult result;

  // Reference: high-priority job on a dedicated GPU.
  {
    ExperimentConfig dedicated = config;
    dedicated.scheduler = SchedulerKind::kDedicated;
    result.hp_dedicated_metric = RunExperiment(dedicated).hp().throughput_rps;
  }
  const double floor = (1.0 - options.max_hp_degradation) * result.hp_dedicated_metric;

  // Search range: [0, max sm_needed over all best-effort kernels] (§5.1.1).
  // The schedule_be() rule is strict (`sm_needed < SM_THRESHOLD`), so the
  // upper bound is max+1: the most aggressive setting must admit the largest
  // best-effort kernel, otherwise it permanently blocks its queue's head.
  int hi = 0;
  for (const ClientConfig& client : config.clients) {
    if (client.high_priority) {
      continue;
    }
    const auto kernels = workloads::BuildKernels(config.device, client.workload);
    for (const auto& kernel : kernels) {
      hi = std::max(hi, gpusim::SmsNeeded(config.device, kernel.geometry) + 1);
    }
  }
  int lo = 0;

  auto probe = [&](int threshold) {
    config.orion.sm_threshold = std::max(1, threshold);
    const ExperimentResult run = RunExperiment(config);
    SmTunerStep step;
    step.threshold = threshold;
    step.hp_metric = run.hp().throughput_rps;
    step.acceptable = step.hp_metric >= floor;
    result.steps.push_back(step);
    if (step.acceptable && threshold >= result.best_threshold) {
      result.best_threshold = threshold;
      result.hp_metric = step.hp_metric;
      result.be_throughput = BeThroughputOf(run);
    }
    return step.acceptable;
  };

  // Fast path: if the most aggressive threshold already meets the floor
  // (common for throughput-oriented hp jobs), take it without searching.
  if (hi > 0 && probe(hi)) {
    return result;
  }
  hi = std::max(0, hi - 1);

  // Binary search for the largest acceptable threshold. Monotonicity is
  // approximate (larger thresholds admit more interference), which is fine:
  // every probe's outcome is recorded and the best acceptable one wins.
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  if (result.steps.empty() || result.best_threshold == 0) {
    // Even the smallest threshold failed (or there are no be kernels): fall
    // back to the conservative default and record its metrics.
    probe(std::max(1, std::min(lo, config.device.num_sms)));
    if (result.best_threshold == 0 && !result.steps.empty()) {
      result.best_threshold = result.steps.back().threshold;
      result.hp_metric = result.steps.back().hp_metric;
    }
  }
  return result;
}

}  // namespace harness
}  // namespace orion
