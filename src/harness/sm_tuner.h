// SM_THRESHOLD auto-tuner (§5.1.1).
//
// By default Orion sets SM_THRESHOLD to the device's SM count. When the
// high-priority job is throughput-oriented (training), the paper tunes the
// threshold with binary search: the range is [0, max SMs needed by any
// best-effort kernel]; each probe runs the collocation and checks whether
// the high-priority job retains a target fraction of its dedicated-GPU
// performance; the search keeps the most aggressive threshold that does.
#ifndef SRC_HARNESS_SM_TUNER_H_
#define SRC_HARNESS_SM_TUNER_H_

#include <vector>

#include "src/harness/experiment.h"

namespace orion {
namespace harness {

struct SmTunerStep {
  int threshold = 0;
  double hp_metric = 0.0;  // hp throughput (rps) at this threshold
  bool acceptable = false;
};

struct SmTunerResult {
  int best_threshold = 0;
  double hp_dedicated_metric = 0.0;  // hp throughput on a dedicated GPU
  double hp_metric = 0.0;            // hp throughput at best_threshold
  double be_throughput = 0.0;        // best-effort throughput at best_threshold
  std::vector<SmTunerStep> steps;    // binary-search trace
};

struct SmTunerOptions {
  // Maximum tolerated hp throughput loss vs dedicated (paper: within 16% for
  // train-train, §6.2.2).
  double max_hp_degradation = 0.16;
  // Probe run length (shorter than full experiments; tuning is iterative).
  DurationUs probe_duration_us = SecToUs(5.0);
};

// Tunes SM_THRESHOLD for `config` (must use SchedulerKind::kOrion). Returns
// the search trace and the chosen threshold; callers apply it via
// config.orion.sm_threshold.
SmTunerResult TuneSmThreshold(ExperimentConfig config, const SmTunerOptions& options = {});

}  // namespace harness
}  // namespace orion

#endif  // SRC_HARNESS_SM_TUNER_H_
