// Client driver: emulates one DNN application process.
//
// A driver owns one workload (model + task + batch size) and one arrival
// process. For every request it feeds the request's ops one by one into the
// scheduler's software queue, paced by the host-side per-op submission
// overhead (the framework + interception wrapper cost, §6.5); blocking ops
// stall the driver until the device completes them, and a new request never
// starts before the previous one finished (the application thread is
// synchronous at request granularity). Latency is measured from request
// arrival to completion of the request's last op — queueing included.
#ifndef SRC_HARNESS_CLIENT_DRIVER_H_
#define SRC_HARNESS_CLIENT_DRIVER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/scheduler.h"
#include "src/memsub/pager.h"
#include "src/telemetry/attribution/report.h"
#include "src/trace/arrivals.h"
#include "src/workloads/models.h"

namespace orion {
namespace harness {

struct ClientConfig {
  workloads::WorkloadSpec workload;
  bool high_priority = false;
  enum class Arrivals { kClosedLoop, kPoisson, kUniform, kApollo } arrivals =
      Arrivals::kClosedLoop;
  double rps = 0.0;  // ignored for closed loop

  // §7 extension: submit each request's kernels as captured CUDA graphs
  // (one host call per graph of up to ~32 kernels) instead of one call per
  // kernel. Cuts host launch overhead; costs the scheduler its kernel
  // granularity.
  bool use_cuda_graphs = false;

  // §5.1.3 extension: layer-by-layer offloading. When the collocation does
  // not fit in GPU memory, a best-effort client with allow_swapping streams
  // the non-resident part of its model in and out every request (extra H2D
  // traffic interleaved with its kernels). Without a swapping-enabled
  // client, an over-capacity collocation is rejected (the paper's §5.1.3
  // assumption that the cluster manager only collocates fitting jobs).
  bool allow_swapping = false;

  // Unified-memory paging (src/memsub): hot fraction of this client's
  // registered footprint touched at the start of every request. The
  // registration itself always covers the full ApproxModelStateBytes
  // footprint (allocator slack, cold activations, checkpoints), but a
  // request only faults on its hot set — params + live activations.
  // Negative inherits PagingOptions::working_set_fraction.
  double paging_ws_fraction = -1.0;

  // Per-request latency SLO for attribution's miss accounting (DESIGN.md
  // §15). 0 disables: every request records phases but no blame.
  DurationUs slo_us = 0.0;
};

class ClientDriver {
 public:
  // `swap_bytes_per_request` > 0 interleaves that much extra H2D traffic
  // into every request (layer-by-layer offloading of non-resident state).
  ClientDriver(Simulator* sim, core::Scheduler* scheduler, core::ClientId id,
               const ClientConfig& config, const gpusim::DeviceSpec& device,
               DurationUs op_overhead_us, Rng rng, std::size_t swap_bytes_per_request = 0);

  void Start();

  // Unified-memory paging (src/memsub): when set and the client is
  // registered with the pager, every request begins by touching the working
  // set — faulted pages stall the request (counted as service time) until
  // their PCIe fault-in transfers land. Call before Start().
  void set_pager(memsub::UnifiedMemoryPager* pager) { pager_ = pager; }

  // Latency attribution (DESIGN.md §15): when a sink is set, every measured
  // completion decomposes into queue / paging / execute / interference
  // phases and is recorded there. The isolated per-request cost (from the
  // run's isolated profile) prices the kExecute phase; anything above it in
  // the post-queue, post-paging window is interference. Call before Start().
  void set_attribution(attribution::ServiceAttribution* sink) { attribution_ = sink; }
  void set_isolated_request_us(DurationUs us) { isolated_request_us_ = us; }
  std::size_t slo_misses() const { return slo_misses_; }

  // --- Fault injection (src/fault). ---
  // Process death: no further arrivals, submissions, or latency records.
  // Completions of ops already on the device still fire into the driver and
  // are discarded. Scheduler-side cleanup (queue quarantine, memory release)
  // is Scheduler::OnClientCrash's job, invoked by the fault injector.
  void Crash();
  // Process hang with a runaway kernel: the driver stops like a crash but
  // first pushes one kernel of `runaway_us` alone-time through the scheduler
  // under a kernel id no profile knows. Detecting and quarantining the hang
  // is the scheduler watchdog's job.
  void Hang(DurationUs runaway_us);
  bool crashed() const { return crashed_; }

  core::ClientId id() const { return id_; }
  const ClientConfig& config() const { return config_; }
  std::string name() const;

  // Completions whose timestamp falls at or after `measure_from`.
  void set_measure_from(TimeUs measure_from) { measure_from_ = measure_from; }
  const LatencyRecorder& latencies() const { return latencies_; }
  // End-to-end latency decomposition: time a request waited at the client
  // before its first op was submitted (queueing) and time from first
  // submission to completion (service). queueing + service == latency.
  const LatencyRecorder& queueing() const { return queueing_; }
  const LatencyRecorder& service() const { return service_; }
  std::size_t completed_total() const { return completed_total_; }
  std::size_t completed_measured() const { return completed_measured_; }

 private:
  void ScheduleNextArrival();
  void OnArrival();
  void StartNextRequest();
  void SubmitNextOp();
  void OnRequestComplete();

  Simulator* sim_;
  core::Scheduler* scheduler_;
  memsub::UnifiedMemoryPager* pager_ = nullptr;
  core::ClientId id_;
  ClientConfig config_;
  DurationUs op_overhead_us_;
  Rng rng_;
  std::unique_ptr<trace::ArrivalProcess> arrivals_;
  std::vector<runtime::Op> template_ops_;

  std::deque<TimeUs> pending_arrivals_;
  bool request_in_flight_ = false;
  bool crashed_ = false;
  TimeUs current_arrival_ = 0.0;
  std::size_t next_op_ = 0;
  std::uint64_t next_request_id_ = 0;

  TimeUs measure_from_ = 0.0;
  LatencyRecorder latencies_;
  LatencyRecorder queueing_;
  LatencyRecorder service_;
  TimeUs current_start_ = 0.0;
  std::size_t completed_total_ = 0;
  std::size_t completed_measured_ = 0;

  attribution::ServiceAttribution* attribution_ = nullptr;
  DurationUs isolated_request_us_ = 0.0;
  DurationUs current_paging_us_ = 0.0;  // fault stall of the current request
  std::size_t slo_misses_ = 0;
};

}  // namespace harness
}  // namespace orion

#endif  // SRC_HARNESS_CLIENT_DRIVER_H_
