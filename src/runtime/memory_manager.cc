#include "src/runtime/memory_manager.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace runtime {

MemoryManager::MemoryManager(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

MemHandle MemoryManager::Allocate(std::size_t bytes) {
  if (bytes > available()) {
    return kInvalidMemHandle;
  }
  const MemHandle handle = next_handle_++;
  allocations_.emplace(handle, bytes);
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return handle;
}

void MemoryManager::Free(MemHandle handle) {
  auto it = allocations_.find(handle);
  ORION_CHECK_MSG(it != allocations_.end(), "free of unknown handle " << handle);
  ORION_CHECK(used_ >= it->second);
  used_ -= it->second;
  allocations_.erase(it);
}

}  // namespace runtime
}  // namespace orion
