#include "src/runtime/memory_manager.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace runtime {

MemoryManager::MemoryManager(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

MemHandle MemoryManager::Allocate(std::size_t bytes, std::uint64_t client) {
  if (bytes > available()) {
    return kInvalidMemHandle;
  }
  const MemHandle handle = next_handle_++;
  allocations_.emplace(handle, Allocation{bytes, client});
  used_ += bytes;
  peak_used_ = std::max(peak_used_, used_);
  return handle;
}

void MemoryManager::Free(MemHandle handle) {
  auto it = allocations_.find(handle);
  ORION_CHECK_MSG(it != allocations_.end(), "free of unknown handle " << handle);
  ORION_CHECK(used_ >= it->second.bytes);
  used_ -= it->second.bytes;
  allocations_.erase(it);
}

std::size_t MemoryManager::ReleaseClient(std::uint64_t client) {
  std::size_t released = 0;
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    if (it->second.client == client) {
      released += it->second.bytes;
      it = allocations_.erase(it);
    } else {
      ++it;
    }
  }
  ORION_CHECK(used_ >= released);
  used_ -= released;
  return released;
}

std::size_t MemoryManager::used_by(std::uint64_t client) const {
  std::size_t total = 0;
  for (const auto& [handle, allocation] : allocations_) {
    (void)handle;
    if (allocation.client == client) {
      total += allocation.bytes;
    }
  }
  return total;
}

}  // namespace runtime
}  // namespace orion
