// GPU operations as seen by the interception layer.
//
// Orion intercepts CUDA runtime calls (kernel launches and memory-management
// operations, §5) and buffers them in per-client software queues. An Op is
// one such intercepted call, tagged with the bookkeeping the scheduler and
// the harness need (owning client, owning request, end-of-request marker).
#ifndef SRC_RUNTIME_OP_H_
#define SRC_RUNTIME_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gpusim/kernel.h"

namespace orion {
namespace runtime {

enum class OpType : std::uint8_t {
  kKernelLaunch,   // cudaLaunchKernel / CUBLAS / CUDNN entry points
  kMemcpyH2D,      // cudaMemcpy(Async) host -> device
  kMemcpyD2H,      // cudaMemcpy(Async) device -> host
  kMemset,         // cudaMemset
  kMalloc,         // cudaMalloc  (device-synchronising, §5.1.3)
  kFree,           // cudaFree    (device-synchronising, §5.1.3)
  // §7 extension: cudaGraphLaunch — a whole captured kernel graph submitted
  // with ONE host call. Cuts per-kernel launch overhead, but the intercepting
  // scheduler can only gate the graph as a unit: kernel-granularity policy
  // degenerates to graph granularity (the tension the paper discusses).
  kGraphLaunch,
};

const char* OpTypeName(OpType type);

struct Op {
  OpType type = OpType::kKernelLaunch;

  // kKernelLaunch.
  gpusim::KernelDesc kernel;

  // kGraphLaunch: the captured kernel sequence (executes in order on the
  // target stream).
  std::vector<gpusim::KernelDesc> graph_kernels;

  // Memory ops.
  std::size_t bytes = 0;
  // Blocking (cudaMemcpy) vs asynchronous (cudaMemcpyAsync); the client
  // driver stalls on blocking ops, matching §5.1.3.
  bool blocking = false;

  // Bookkeeping stamped by the interception layer.
  std::uint64_t client_id = 0;
  std::uint64_t request_id = 0;
  std::uint32_t index_in_request = 0;
  bool end_of_request = false;
};

}  // namespace runtime
}  // namespace orion

#endif  // SRC_RUNTIME_OP_H_
