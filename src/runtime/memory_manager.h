// Device memory accounting.
//
// Orion assumes the cluster manager collocates jobs whose aggregate state
// fits in GPU memory (§5.1.3); this manager enforces that assumption and
// lets the harness report memory-capacity utilization (Table 1).
#ifndef SRC_RUNTIME_MEMORY_MANAGER_H_
#define SRC_RUNTIME_MEMORY_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace orion {
namespace runtime {

using MemHandle = std::uint64_t;
constexpr MemHandle kInvalidMemHandle = 0;

class MemoryManager {
 public:
  explicit MemoryManager(std::size_t capacity_bytes);

  // Returns kInvalidMemHandle when the allocation would exceed capacity.
  // `client` tags the allocation with its owning client (0 = unattributed)
  // so a crashed client's memory can be reclaimed wholesale.
  MemHandle Allocate(std::size_t bytes, std::uint64_t client = 0);
  // Frees a previous allocation; aborts on unknown or double-freed handles.
  void Free(MemHandle handle);
  // Frees every live allocation tagged with `client` (process-exit cleanup,
  // src/fault). Returns the number of bytes released.
  std::size_t ReleaseClient(std::uint64_t client);

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t available() const { return capacity_ - used_; }
  double utilization() const {
    return capacity_ > 0 ? static_cast<double>(used_) / static_cast<double>(capacity_) : 0.0;
  }
  std::size_t peak_used() const { return peak_used_; }
  std::size_t live_allocations() const { return allocations_.size(); }
  // Live bytes held by `client`.
  std::size_t used_by(std::uint64_t client) const;

 private:
  struct Allocation {
    std::size_t bytes = 0;
    std::uint64_t client = 0;
  };

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_used_ = 0;
  MemHandle next_handle_ = 1;
  std::unordered_map<MemHandle, Allocation> allocations_;
};

}  // namespace runtime
}  // namespace orion

#endif  // SRC_RUNTIME_MEMORY_MANAGER_H_
