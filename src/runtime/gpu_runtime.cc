#include "src/runtime/gpu_runtime.h"

#include <utility>

#include "src/common/check.h"

namespace orion {
namespace runtime {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kKernelLaunch:
      return "kernel";
    case OpType::kMemcpyH2D:
      return "memcpy_h2d";
    case OpType::kMemcpyD2H:
      return "memcpy_d2h";
    case OpType::kMemset:
      return "memset";
    case OpType::kMalloc:
      return "malloc";
    case OpType::kFree:
      return "free";
    case OpType::kGraphLaunch:
      return "graph";
  }
  return "invalid";
}

GpuRuntime::GpuRuntime(Simulator* sim, gpusim::DeviceSpec spec)
    : sim_(sim), device_(sim, spec), memory_(spec.memory_bytes) {
  ORION_CHECK(sim != nullptr);
}

gpusim::StreamId GpuRuntime::CreateStream(int priority) {
  return device_.CreateStream(priority);
}

void GpuRuntime::Submit(const Op& op, gpusim::StreamId stream, CompletionCb done) {
  switch (op.type) {
    case OpType::kKernelLaunch:
      device_.LaunchKernel(stream, op.kernel, std::move(done));
      return;
    case OpType::kGraphLaunch: {
      // cudaGraphLaunch: one host call enqueues the whole captured sequence;
      // the stream executes it in order, `done` fires at the last kernel.
      ORION_CHECK_MSG(!op.graph_kernels.empty(), "empty CUDA graph");
      for (std::size_t i = 0; i + 1 < op.graph_kernels.size(); ++i) {
        device_.LaunchKernel(stream, op.graph_kernels[i]);
      }
      device_.LaunchKernel(stream, op.graph_kernels.back(), std::move(done));
      return;
    }
    case OpType::kMemcpyH2D:
      device_.EnqueueMemcpy(stream, op.bytes, gpusim::MemcpyKind::kHostToDevice,
                            std::move(done));
      return;
    case OpType::kMemcpyD2H:
      device_.EnqueueMemcpy(stream, op.bytes, gpusim::MemcpyKind::kDeviceToHost,
                            std::move(done));
      return;
    case OpType::kMemset:
      device_.EnqueueMemset(stream, op.bytes, std::move(done));
      return;
    case OpType::kMalloc: {
      // cudaMalloc synchronises the device (§5.1.3), then reserves memory,
      // attributed to the issuing client so a crash can reclaim it.
      const std::size_t bytes = op.bytes;
      const std::uint64_t client = op.client_id;
      device_.SynchronizeDevice([this, bytes, client, done = std::move(done)]() mutable {
        const MemHandle handle = memory_.Allocate(bytes, client);
        ORION_CHECK_MSG(handle != kInvalidMemHandle,
                        "device OOM: requested " << bytes << "B with " << memory_.available()
                                                 << "B available");
        if (done) {
          done();
        }
      });
      return;
    }
    case OpType::kFree: {
      // The harness frees by size rather than by handle: it models framework
      // allocator behaviour coarsely. A free of N bytes synchronises the
      // device, then releases the oldest-fit accounting entry. We keep exact
      // handle-based frees on the MemoryManager API for library users.
      device_.SynchronizeDevice([done = std::move(done)]() mutable {
        if (done) {
          done();
        }
      });
      return;
    }
  }
  ORION_CHECK_MSG(false, "unhandled op type");
}

void GpuRuntime::LaunchKernel(gpusim::StreamId stream, const gpusim::KernelDesc& kernel,
                              CompletionCb done) {
  device_.LaunchKernel(stream, kernel, std::move(done));
}

void GpuRuntime::RecordEvent(gpusim::StreamId stream, gpusim::GpuEvent* event,
                             CompletionCb done) {
  device_.RecordEvent(stream, event, std::move(done));
}

}  // namespace runtime
}  // namespace orion
