// CUDA-runtime-like facade over the simulated device.
//
// This is the layer whose entry points the real Orion overrides with wrapper
// functions (§5.3). Schedulers submit Ops here; the facade maps them onto
// device streams, preserving the semantics described in §5.1.3:
//   * kernel launches and async memcpys are asynchronous,
//   * blocking memcpy/memset hold the issuing client until completion
//     (enforced by the client driver via the completion callback),
//   * cudaMalloc / cudaFree synchronise the whole device.
#ifndef SRC_RUNTIME_GPU_RUNTIME_H_
#define SRC_RUNTIME_GPU_RUNTIME_H_

#include <functional>
#include <memory>

#include "src/gpusim/device.h"
#include "src/runtime/memory_manager.h"
#include "src/runtime/op.h"
#include "src/sim/simulator.h"

namespace orion {
namespace runtime {

class GpuRuntime {
 public:
  using CompletionCb = gpusim::Device::CompletionCb;

  GpuRuntime(Simulator* sim, gpusim::DeviceSpec spec);

  Simulator* simulator() { return sim_; }
  gpusim::Device& device() { return device_; }
  const gpusim::Device& device() const { return device_; }
  MemoryManager& memory() { return memory_; }

  gpusim::StreamId CreateStream(int priority = gpusim::kPriorityDefault);

  // Submits an Op on the given stream. `done` fires when the op completes on
  // the device. Malloc/Free synchronise the device first, then apply the
  // memory accounting, then fire `done`.
  void Submit(const Op& op, gpusim::StreamId stream, CompletionCb done = nullptr);

  // Direct kernel-level API used by the toy experiments and examples.
  void LaunchKernel(gpusim::StreamId stream, const gpusim::KernelDesc& kernel,
                    CompletionCb done = nullptr);
  void RecordEvent(gpusim::StreamId stream, gpusim::GpuEvent* event,
                   CompletionCb done = nullptr);
  // cudaEventQuery: non-blocking completion probe (§5.1.2).
  static bool EventQuery(const gpusim::GpuEvent& event) { return event.done; }

 private:
  Simulator* sim_;
  gpusim::Device device_;
  MemoryManager memory_;
};

}  // namespace runtime
}  // namespace orion

#endif  // SRC_RUNTIME_GPU_RUNTIME_H_
