// Datacenter-scale serving: N nodes x M GPUs behind a network fabric
// (DESIGN.md §12).
//
// The serving engine (src/serving) answers "how do routing, batching,
// admission, autoscaling and failover behave on ONE multi-GPU node". This
// subsystem scales that question out: a ClusterTopology of `num_nodes`
// server nodes, each with `gpus_per_node` GPUs, joined by a datacenter
// network modeled as an interconnect::Fabric over a NIC/ToR star topology —
// the same fluid-flow link model that times PCIe and NVLink transfers inside
// a node, reused at NIC bandwidth and switch latency.
//
// Control is two-level:
//   * a global front-end owns arrivals, SLO admission, the service limbo
//     queues, the autoscaler and fault handling, and picks a *node* for each
//     admitted request (least-outstanding across nodes);
//   * a per-node engine (node_engine.h) owns that node's GPUs and replicas
//     and picks the *replica* (the serving::Router policy), then batches and
//     serves exactly as the single-node engine did.
//
// With num_nodes == 1 the network is not modeled and the cluster path
// reduces to the original single-node engine — serving::RunServing is now a
// thin wrapper over RunCluster and reproduces its previous results exactly.
//
// Faults: the fault::FaultPlan gains kNodeDown at this level. A node death
// kills every replica on it, zeroes its NIC, and cancels in-flight transfers
// touching it; queued and in-flight requests re-route to surviving nodes
// through the same limbo-queue machinery replica failover uses, and
// replacements provision on survivors (state transfer over the fabric, then
// the usual provisioning delay).
#ifndef SRC_DATACENTER_CLUSTER_H_
#define SRC_DATACENTER_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/serving/serving.h"

namespace orion {
namespace datacenter {

// Physical shape of the cluster and its network.
struct ClusterSpec {
  int num_nodes = 1;
  int gpus_per_node = 4;

  // NIC/ToR star fabric (per direction, full duplex). Defaults roughly match
  // a 100 GbE NIC through one switch hop.
  double nic_gbps = 12.5;
  double nic_latency_us = 10.0;

  // Request/response payloads crossing the network (serialized tensors).
  std::size_t request_bytes = 32 * 1024;
  std::size_t response_bytes = 128 * 1024;

  // Model the network fabric (transfers, contention, NIC faults). Only takes
  // effect with num_nodes > 1; a single node never crosses the network.
  bool model_network = true;
};

// How the front-end picks a node for an admitted request. The replica within
// the node is always picked by the serving::Router policy.
enum class NodePolicy : std::uint8_t {
  kLeastOutstanding,  // node whose best replica has the least predicted wait
  kRoundRobin,        // rotate over nodes with an active replica
};

const char* NodePolicyName(NodePolicy policy);

struct ClusterConfig {
  ClusterSpec cluster;
  NodePolicy node_policy = NodePolicy::kLeastOutstanding;
  // Per-service workloads, policies, faults, telemetry. `serving.num_gpus`
  // is ignored here: the GPU count is cluster.num_nodes * gpus_per_node.
  serving::ServingConfig serving;

  // Parallel discrete-event simulation. With lp_threads > 1 the run is
  // partitioned into logical processes — one per node plus one for the
  // cluster/fabric — synchronized with conservative lookahead derived from
  // the NIC latency. Results are bit-identical to the sequential run; the
  // engine silently falls back to the sequential loop when a configuration
  // is outside the parallel path's preconditions (single node, network
  // modelling off, round-robin replica routing, tracing on, or zero
  // lookahead). See DESIGN.md §16.
  int lp_threads = 1;
  // Debug: run the sequential engine on the same config first and
  // ORION_CHECK that the parallel result is bit-identical.
  bool lp_oracle = false;
};

// Per-node activity over the whole run.
struct NodeSummary {
  int node = 0;
  bool alive_end = true;
  std::size_t replicas_created = 0;
  std::size_t replicas_killed = 0;  // lost to faults (drained retires excluded)
  std::size_t batches = 0;          // batches served on this node
  std::size_t requests = 0;         // requests served on this node
};

struct ClusterResult {
  // The familiar per-service results; identical to the single-node engine's
  // output when num_nodes == 1.
  serving::ServingResult serving;

  std::vector<NodeSummary> nodes;
  std::size_t nodes_alive_end = 0;
  std::size_t node_faults = 0;          // kNodeDown events applied
  std::size_t requests_forwarded = 0;   // front-end -> node network sends
  double request_bytes_moved = 0.0;     // toward nodes (requests + state)
  double response_bytes_moved = 0.0;    // toward the front-end
};

ClusterResult RunCluster(const ClusterConfig& config);

// True when the two results are indistinguishable down to the last bit:
// every counter equal, every double bit-identical (std::bit_cast, so -0.0
// != 0.0 and NaN payloads count), every latency recorder's raw sample
// sequence identical element-wise and in order. This is the contract the
// parallel engine keeps with the sequential one; `ClusterConfig::lp_oracle`
// makes RunCluster enforce it on every run.
bool ClusterResultsBitIdentical(const ClusterResult& a, const ClusterResult& b);

}  // namespace datacenter
}  // namespace orion

#endif  // SRC_DATACENTER_CLUSTER_H_
