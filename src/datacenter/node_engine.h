// Per-node serving engine: one node's GPUs, replicas and batch dispatch.
//
// The node engine is the lower half of the split single-node serving engine:
// it owns replica state, within-node placement (least added interference via
// cluster::PlacementEngine::BestGpuFor), the batcher/linger machinery and
// batch service timing with interference slowdown — everything whose scope
// is one node. The global control plane (cluster_engine.cc) owns arrivals,
// admission, node selection, limbo, autoscaling, faults and ALL request
// accounting; it reaches in through the NodeHost interface the engine calls
// back on, and through replica slot accessors when it needs to iterate the
// fleet (views for routing, autoscaler signals, finalization).
//
// Replica ids are allocated globally by the control plane (creation order
// across the cluster, as before the split); a node addresses its own
// replicas by slot. Event ordering and arithmetic on the single-node path
// are bit-identical to the pre-split engine — that is the N=1 compatibility
// contract the datacenter tests pin down.
#ifndef SRC_DATACENTER_NODE_ENGINE_H_
#define SRC_DATACENTER_NODE_ENGINE_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/placement.h"
#include "src/serving/batch_cost.h"
#include "src/serving/batcher.h"
#include "src/serving/kv_cache.h"
#include "src/serving/llm_cost.h"
#include "src/serving/request.h"
#include "src/sim/simulator.h"

namespace orion {
namespace datacenter {

class NodeEngine;

// One replica process of a model service, resident on one of the node's
// GPUs. Same lifecycle as the pre-split engine's ReplicaState.
struct Replica {
  explicit Replica(const serving::BatchingConfig& batching) : batcher(batching) {}

  // Per-replica LLM serving state (services with llm.enabled). The KV cache
  // is carved out of the replica's GPU memory at creation; `in_flight` then
  // doubles as the RUNNING SET of the continuous-batching iteration (join
  // order = age order; the newest sequence is the eviction victim).
  struct LlmState {
    explicit LlmState(const serving::KvCacheConfig& kv_config) : kv(kv_config) {}
    serving::KvCacheAllocator kv;
    std::size_t kv_reserved_bytes = 0;  // counted against the GPU shard
    int joined_this_step = 0;  // trailing in_flight entries that prefilled this step
  };

  int id = -1;        // global replica id (creation order across the cluster)
  std::size_t model = 0;
  int node = -1;
  int gpu = -1;       // local GPU index within the node
  enum class State { kProvisioning, kActive, kDraining, kDead } state = State::kProvisioning;
  serving::DynamicBatcher batcher;
  std::vector<serving::Request> in_flight;
  std::unique_ptr<LlmState> llm;  // null for fixed-cost services
  bool busy = false;
  TimeUs busy_until = 0.0;
  TimeUs batch_start = 0.0;
  serving::DispatchReason dispatch_reason = serving::DispatchReason::kFullBatch;
  EventHandle completion;
  EventHandle linger;
  TimeUs active_since = 0.0;
  double busy_in_eval_window_us = 0.0;  // autoscaler utilization signal

  // Latency-attribution bookkeeping (only maintained when the host reports
  // attribution() — zero work otherwise). batch_iso_us is the in-flight
  // batch/step's isolated-roofline cost (pre-slowdown), the kExecute price;
  // idle_accum_us/idle_since integrate the replica's idle time so the ledger
  // can split queue wait into capacity-bound kQueue vs linger (DESIGN.md §15).
  double batch_iso_us = 0.0;
  double idle_accum_us = 0.0;
  TimeUs idle_since = 0.0;
};

struct GpuShard {
  bool alive = true;
  std::size_t used_bytes = 0;
  std::vector<int> replicas;  // slots of resident (non-dead) replicas
};

// What the node engine needs from the global control plane.
class NodeHost {
 public:
  virtual ~NodeHost() = default;

  virtual Simulator& sim() = 0;
  virtual const serving::BatchingConfig& batching_config() const = 0;
  virtual const serving::BatchCostModel& model_cost(std::size_t model) const = 0;
  virtual serving::PriorityTier model_tier(std::size_t model) const = 0;

  // LLM serving hooks. model_llm returns null for fixed-cost services;
  // model_llm_cost may only be called for models where it is non-null.
  virtual const serving::LlmServiceConfig* model_llm(std::size_t model) const = 0;
  virtual const serving::LlmCostModel& model_llm_cost(std::size_t model) const = 0;
  // Per-GPU device memory, the budget replica state + KV caches carve from.
  virtual std::size_t gpu_memory_bytes() const = 0;

  // A batch just finished on `replica` (its in_flight holds the batch, its
  // batch_start/dispatch_reason describe it). The host owns per-request
  // completion accounting, spans, and the response network leg.
  virtual void OnBatchServed(NodeEngine& node, Replica& replica) = 0;

  // One continuous-batching decode step finished on `replica`: `batch`
  // sequences each emitted one token between `start` and `end`, of which
  // `prefills` joined (and prefilled) this step. Fires before sequence
  // completions, so the host sees the step that produced them.
  virtual void OnDecodeStep(NodeEngine& node, Replica& replica, int batch, int prefills,
                            TimeUs start, TimeUs end) = 0;

  // `request` finished its generation during the step [step_start, step_end].
  // The host owns completion accounting (TTFT/TPOT) and the response leg.
  virtual void OnSequenceFinished(NodeEngine& node, Replica& replica,
                                  const serving::Request& request, TimeUs step_start,
                                  TimeUs step_end) = 0;

  // `request` was preempted for KV-cache pressure and requeued; it will
  // recompute its context from the prompt when it rejoins.
  virtual void OnKvEviction(NodeEngine& node, Replica& replica,
                            const serving::Request& request) = 0;

  // A replica stopped running (retired or killed) after being active since
  // `active_since`; the host integrates replica-seconds.
  virtual void AccountReplicaTime(TimeUs active_since) = 0;

  // Whether per-request latency attribution is enabled for this run
  // (telemetry hub with EnableAttribution). Constant over the engine's
  // lifetime; when false the engine never touches request ledgers.
  virtual bool attribution() const = 0;
};

class NodeEngine {
 public:
  NodeEngine(int node_id, int num_gpus, NodeHost* host);
  NodeEngine(const NodeEngine&) = delete;
  NodeEngine& operator=(const NodeEngine&) = delete;

  int node_id() const { return node_id_; }
  bool alive() const { return alive_; }
  // Marks the node and every GPU on it dead. Replicas are killed separately
  // (KillReplica per slot) so the control plane can account each one.
  void MarkDead();

  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  GpuShard& gpu(int local) { return gpus_[static_cast<std::size_t>(local)]; }
  const GpuShard& gpu(int local) const { return gpus_[static_cast<std::size_t>(local)]; }

  int num_slots() const { return static_cast<int>(replicas_.size()); }
  Replica& replica(int slot) { return replicas_[static_cast<std::size_t>(slot)]; }
  const Replica& replica(int slot) const { return replicas_[static_cast<std::size_t>(slot)]; }

  // Least-interference GPU for a new replica of `job` on this node, with the
  // (added interference, resident count) score for cross-node comparison.
  // nullopt when nothing fits (or the node is dead).
  std::optional<int> BestPlacement(const cluster::JobSignature& job,
                                   std::size_t gpu_memory_bytes, int max_replicas_per_gpu,
                                   cluster::PlacementEngine::PlacementScore* score) const;

  // Creates a replica with global id `id` on `local_gpu`; returns its slot.
  // Active immediately when `active`, else left provisioning (the control
  // plane schedules activation).
  int CreateReplica(int id, std::size_t model, int local_gpu, bool active, TimeUs now);

  // Queues a routed request at `slot` and dispatches if a batch is ready.
  void EnqueueAt(int slot, serving::Request request);

  // Stops routing to `slot`; the replica retires once idle and empty.
  void DrainReplica(int slot);

  // Kills `slot` (fault path): cancels its events, releases its GPU, and
  // returns the orphaned requests (in-flight batch first, then the queue)
  // for the control plane to re-route.
  std::vector<serving::Request> KillReplica(int slot);

  // Predicted time to drain everything ahead of a new arrival at `r`.
  DurationUs OutstandingUs(const Replica& r) const;
  // Interference slowdown from `r`'s running GPU co-residents.
  double Slowdown(const Replica& r) const;

  std::size_t batches_served() const { return batches_served_; }
  std::size_t requests_served() const { return requests_served_; }
  std::size_t replicas_created() const { return replicas_.size(); }
  std::size_t replicas_killed() const { return replicas_killed_; }

 private:
  void TryDispatch(int slot);
  void StartBatch(int slot);
  void OnBatchComplete(int slot);
  // Continuous (iteration-level) batching, Orca-style: one decode step at a
  // time; sequences join/leave between steps (DESIGN.md §13).
  void TryStepLlm(int slot);
  void OnLlmStepComplete(int slot);
  // Frees the newest running sequence's KV and requeues it (preemption with
  // recompute under KV pressure, vLLM-style).
  void PreemptNewestLlm(int slot);
  // Request-level LLM batching (llm.continuous off): the baseline where a
  // batch decodes to its longest target before anything completes.
  void StartLlmBatch(int slot);
  void RetireReplica(int slot);
  void ReleaseFromGpu(int slot);
  // Folds [idle_since, now] into idle_accum_us for a non-busy replica.
  // Attribution-only bookkeeping; callers guard on attr_.
  void SyncIdle(Replica& r);

  int node_id_;
  bool alive_ = true;
  NodeHost* host_;
  bool attr_ = false;  // host_->attribution(), cached at construction
  std::vector<GpuShard> gpus_;
  std::deque<Replica> replicas_;  // stable addresses; indexed by slot
  std::size_t batches_served_ = 0;
  std::size_t requests_served_ = 0;
  std::size_t replicas_killed_ = 0;
};

}  // namespace datacenter
}  // namespace orion

#endif  // SRC_DATACENTER_NODE_ENGINE_H_
