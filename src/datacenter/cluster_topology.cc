#include "src/datacenter/cluster_topology.h"

#include "src/common/check.h"

namespace orion {
namespace datacenter {

const char* NodePolicyName(NodePolicy policy) {
  switch (policy) {
    case NodePolicy::kLeastOutstanding:
      return "least-outstanding";
    case NodePolicy::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

ClusterTopology::ClusterTopology(const ClusterSpec& spec) : spec_(spec) {
  ORION_CHECK(spec.num_nodes >= 1);
  ORION_CHECK(spec.gpus_per_node >= 1);
  ORION_CHECK(spec.nic_gbps > 0.0);
  ORION_CHECK(spec.nic_latency_us >= 0.0);
}

int ClusterTopology::NodeOfGpu(int global_gpu) const {
  ORION_CHECK(global_gpu >= 0 && global_gpu < total_gpus());
  return global_gpu / spec_.gpus_per_node;
}

int ClusterTopology::LocalGpu(int global_gpu) const {
  ORION_CHECK(global_gpu >= 0 && global_gpu < total_gpus());
  return global_gpu % spec_.gpus_per_node;
}

int ClusterTopology::GlobalGpu(int node, int local_gpu) const {
  ORION_CHECK(node >= 0 && node < spec_.num_nodes);
  ORION_CHECK(local_gpu >= 0 && local_gpu < spec_.gpus_per_node);
  return node * spec_.gpus_per_node + local_gpu;
}

interconnect::NodeTopology ClusterTopology::MakeNetwork() const {
  return interconnect::NodeTopology::NicStar(spec_.num_nodes, spec_.nic_gbps,
                                             spec_.nic_latency_us);
}

interconnect::LinkId ClusterTopology::NicLink(int node) const {
  ORION_CHECK(node >= 0 && node < spec_.num_nodes);
  // NicStar appends one link per endpoint in node order.
  return static_cast<interconnect::LinkId>(node);
}

}  // namespace datacenter
}  // namespace orion
