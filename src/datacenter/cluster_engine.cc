// Global control plane over per-node engines, and the RunCluster /
// RunServing entry points. See cluster.h for the architecture overview.
//
// Compatibility contract: with num_nodes == 1 the network is not modeled and
// every code path below reduces, event for event and float for float, to the
// pre-split single-node serving engine — RunServing's results are unchanged.
// The datacenter_test N=1 equivalence test pins this down field by field.
#include "src/datacenter/cluster.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/datacenter/cluster_topology.h"
#include "src/datacenter/lp_runtime.h"
#include "src/datacenter/node_engine.h"
#include "src/interconnect/fabric.h"
#include "src/serving/batch_cost.h"
#include "src/sim/simulator.h"
#include "src/sim/spsc.h"
#include "src/trace/arrivals.h"
#include "src/trace/diurnal.h"

namespace orion {
namespace datacenter {

namespace {

using serving::ReplicaView;
using serving::Request;
using serving::RequestOutcome;
using serving::RouteReason;

std::unique_ptr<trace::ArrivalProcess> MakeArrivals(const serving::ModelServiceConfig& cfg) {
  switch (cfg.arrivals) {
    case serving::ArrivalKind::kUniform:
      return trace::MakeUniform(cfg.rps);
    case serving::ArrivalKind::kPoisson:
      return trace::MakePoisson(cfg.rps);
    case serving::ArrivalKind::kApollo:
      return trace::MakeApollo(cfg.rps);
    case serving::ArrivalKind::kDiurnal: {
      trace::DiurnalConfig diurnal = cfg.diurnal;
      if (diurnal.mean_rps <= 0.0) {
        diurnal.mean_rps = cfg.rps;
      }
      return trace::MakeDiurnal(diurnal);
    }
  }
  ORION_CHECK_MSG(false, "unknown arrival kind");
  return nullptr;
}

// Where a global replica id lives.
struct ReplicaRef {
  int node = -1;
  int slot = -1;
};

// ---------------------------------------------------------------------------
// Parallel LP runtime (ClusterConfig::lp_threads > 1; DESIGN.md §16).
//
// One NodeLp per node: the node's NodeEngine and NIC fabric run on the LP's
// own Simulator, driven by a worker thread that merges the node's event queue
// with timestamped WireMsgs from the cluster under the conservative clock
// protocol of src/sim/lp.h. Everything the sequential engine observed
// synchronously from node-side execution travels back as NodeMsgs, applied by
// the cluster LP in deterministic (stamp, node, arrival-seq) order — so an
// N-thread run is bit-identical to the sequential one.
//
// Control-plane actions that need exact global state (faults, autoscaler
// evaluations) happen at static rendezvous times known up front
// (BuildStaticTimes): every node parks exactly at the static, the cluster
// thread then reads and mutates node state directly (the unchanged sequential
// code paths), and releases the fleet.
// ---------------------------------------------------------------------------
class NodeLp final : public NodeHost {
 public:
  // Per-LP copy of one model service's cost state. BatchCostModel and
  // LlmCostModel memoise internally (mutable caches), so sharing the cluster
  // engine's instances across threads would race; copies are value-identical
  // (the caches never change results).
  struct ModelCopy {
    serving::ModelServiceConfig cfg;
    serving::BatchCostModel cost;
    std::unique_ptr<serving::LlmCostModel> llm_cost;  // null unless llm.enabled
  };

  // A response leg streaming toward the front-end on this node's NIC.
  struct ResponseOp {
    TimeUs created = 0.0;
    interconnect::TransferId transfer = 0;
    bool cancelled = false;
    bool completed = false;
    Request request;
    int replica_id = -1;
    int gpu = -1;  // global GPU of the serving replica
    TimeUs batch_start = 0.0;
    TimeUs batch_end = 0.0;
  };

  // What the cluster needs to finish a response cancelled by a node death.
  struct CancelledResponse {
    TimeUs when = 0.0;  // completion-accounting instant
    Request request;
    int replica_id = -1;
    int gpu = -1;
    TimeUs batch_start = 0.0;
    TimeUs batch_end = 0.0;
  };

  NodeLp(int node_id, const ClusterSpec& spec, const serving::ServingConfig& config,
         TimeUs horizon, NodeHost* cluster_host, const std::vector<TimeUs>* statics,
         const std::atomic<std::size_t>* released, std::vector<ModelCopy> models)
      : node_id_(node_id),
        spec_(spec),
        topo_([&] {
          ClusterSpec s = spec;
          return ClusterTopology(s);
        }()),
        batching_(config.batching),
        gpu_memory_bytes_(config.device.memory_bytes),
        attribution_(config.telemetry != nullptr && config.telemetry->attribution_enabled()),
        horizon_(horizon),
        models_(std::move(models)),
        router_(config.policy, config.models.size()),
        cluster_host_(cluster_host),
        statics_(statics),
        released_(released),
        inbox_(1 << 13),
        outbox_(1 << 13) {}

  void set_engine(NodeEngine* engine) { engine_ = engine; }
  void set_fabric(interconnect::Fabric* fabric) { fabric_ = fabric; }

  Simulator& nsim() { return nsim_; }
  LpClockBlock& clocks() { return clocks_; }
  sim::SpscQueue<WireMsg>& inbox() { return inbox_; }
  sim::SpscQueue<NodeMsg>& outbox() { return outbox_; }
  const std::deque<ResponseOp>& response_ops() const { return response_ops_; }

  // --- NodeHost (the node engine's world). ---

  Simulator& sim() override { return nsim_; }
  const serving::BatchingConfig& batching_config() const override { return batching_; }
  const serving::BatchCostModel& model_cost(std::size_t model) const override {
    return models_[model].cost;
  }
  serving::PriorityTier model_tier(std::size_t model) const override {
    return models_[model].cfg.tier;
  }
  const serving::LlmServiceConfig* model_llm(std::size_t model) const override {
    const ModelCopy& m = models_[model];
    return m.cfg.llm.enabled ? &m.cfg.llm : nullptr;
  }
  const serving::LlmCostModel& model_llm_cost(std::size_t model) const override {
    ORION_CHECK(models_[model].llm_cost != nullptr);
    return *models_[model].llm_cost;
  }
  std::size_t gpu_memory_bytes() const override { return gpu_memory_bytes_; }
  bool attribution() const override { return attribution_; }

  void OnBatchServed(NodeEngine& node, Replica& r) override {
    (void)node;
    const TimeUs now = nsim_.now();
    const int batch_size = static_cast<int>(r.in_flight.size());
    const int gpu_global = topo_.GlobalGpu(node_id_, r.gpu);
    for (const Request& request : r.in_flight) {
      StartResponse(r.id, gpu_global, r.batch_start, now, request);
    }
    NodeMsg started;
    started.kind = NodeMsg::Kind::kResponsesStarted;
    started.stamp = now;
    started.model = static_cast<int>(r.model);
    started.count = batch_size;
    Push(std::move(started));
    NodeMsg stats;
    stats.kind = NodeMsg::Kind::kBatchStats;
    stats.stamp = now;
    stats.model = static_cast<int>(r.model);
    stats.count = batch_size;
    if (models_[r.model].llm_cost != nullptr) {
      double tokens = 0.0;
      for (const Request& request : r.in_flight) {
        tokens += 1.0 + static_cast<double>(request.target_tokens);
      }
      stats.llm_tokens = tokens;
    }
    Push(std::move(stats));
  }

  void OnDecodeStep(NodeEngine& node, Replica& r, int batch, int prefills, TimeUs start,
                    TimeUs end) override {
    (void)node;
    (void)start;
    NodeMsg msg;
    msg.kind = NodeMsg::Kind::kDecodeStep;
    msg.stamp = end;
    msg.model = static_cast<int>(r.model);
    msg.count = batch;
    msg.prefills = prefills;
    Push(std::move(msg));
  }

  void OnSequenceFinished(NodeEngine& node, Replica& r, const Request& request,
                          TimeUs step_start, TimeUs step_end) override {
    (void)node;
    const int gpu_global = topo_.GlobalGpu(node_id_, r.gpu);
    StartResponse(r.id, gpu_global, step_start, step_end, request);
    NodeMsg started;
    started.kind = NodeMsg::Kind::kResponsesStarted;
    started.stamp = nsim_.now();
    started.model = static_cast<int>(r.model);
    started.count = 1;
    Push(std::move(started));
  }

  void OnKvEviction(NodeEngine& node, Replica& r, const Request& request) override {
    (void)node;
    (void)request;
    NodeMsg msg;
    msg.kind = NodeMsg::Kind::kKvEvict;
    msg.stamp = nsim_.now();
    msg.model = static_cast<int>(r.model);
    Push(std::move(msg));
  }

  void AccountReplicaTime(TimeUs active_since) override {
    if (direct_) {
      // Rendezvous (or setup/finalize): the cluster thread is executing this
      // synchronously with both clocks aligned — account directly.
      cluster_host_->AccountReplicaTime(active_since);
      return;
    }
    NodeMsg msg;
    msg.kind = NodeMsg::Kind::kRetire;
    msg.stamp = nsim_.now();
    msg.t0 = active_since;
    Push(std::move(msg));
  }

  // --- Worker-thread event loop. ---

  // One scheduling quantum: drain the inbox, merge staged wires with the
  // node's own events under the conservative bound, park at the next static,
  // publish clocks. Returns whether any progress was made.
  bool Poll() {
    if (finished_) {
      return false;
    }
    if (parked_) {
      if (released_->load(std::memory_order_acquire) <= k_) {
        // Keep the clock protocol live while parked: prune acked sends so
        // send_lb can rise to the park time, letting peers park too. The
        // cluster may be driving this node directly at a rendezvous, so all
        // shared state is touched only under the park lock (and skipped on
        // contention — the cluster republishes on our behalf before release).
        if (!TryLock()) {
          return false;
        }
        const bool progress = DrainInbox();
        PruneOutLedger();
        PublishClocks();
        Unlock();
        return progress;
      }
      parked_ = false;
      ++k_;
    }
    bool progress = DrainInbox();
    if (k_ < statics_->size()) {
      progress = RunToStatic((*statics_)[k_]) || progress;
    } else {
      progress = RunFinal() || progress;
    }
    if (!parked_) {
      // The park transition published inside RunToStatic and then stored
      // parked_at as its very last shared-state touch; publishing again here
      // would race with a cluster that already saw the park and went direct.
      PublishClocks();
    }
    return progress;
  }

  bool finished() const { return finished_; }

  // --- Cluster-thread entry points (only while this LP is parked). ---

  // The park lock makes the rendezvous exclusive: the cluster holds it for
  // the whole direct-mode window, so the parked node's keep-alive publish
  // (which reads the same simulator, staged map and ledgers) stays out.
  void Lock() {
    while (lock_.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  bool TryLock() { return !lock_.test_and_set(std::memory_order_acquire); }
  void Unlock() { lock_.clear(std::memory_order_release); }

  // Republishes this node's clocks after a rendezvous mutated its state
  // (park lock held): send_lb must fold any directly-staged wire before the
  // fleet resumes, or the cluster could outrun the messages the node will
  // push when it applies them.
  void RepublishClocks() {
    PruneOutLedger();
    PublishClocks();
  }

  void SetDirect(bool direct) { direct_ = direct; }

  // Rendezvous-time wire send: bypass the queue straight into the staged map
  // (the node cannot drain while parked, so a full queue would deadlock; the
  // insert is ordered before the release that wakes the node).
  void StageDirect(WireMsg msg) {
    staged_.emplace(std::make_pair(msg.stamp, stage_seq_++), std::move(msg));
  }

  // Node-death replay bookkeeping (cluster thread, node parked at the fault).
  void Tombstone(std::uint64_t op_id) { tombstones_.insert(op_id); }
  bool HasAppliedWire(std::uint64_t op_id) const { return applied_.count(op_id) > 0; }
  void CancelAppliedWire(std::uint64_t op_id) {
    auto it = applied_.find(op_id);
    ORION_CHECK(it != applied_.end());
    it->second.cancelled = true;
    fabric_->CancelTransfer(it->second.transfer);
  }
  CancelledResponse CancelResponse(std::size_t idx, TimeUs t_f, DurationUs setup_latency) {
    ResponseOp& op = response_ops_[idx];
    ORION_CHECK(!op.cancelled && !op.completed);
    op.cancelled = true;
    fabric_->CancelTransfer(op.transfer);
    // Sequential semantics: a response still in its setup phase completes
    // when the setup would have ended; a streaming one at the cancel instant.
    const TimeUs setup_end = op.created + setup_latency;
    CancelledResponse out;
    out.when = setup_end > t_f ? setup_end : t_f;
    out.request = std::move(op.request);
    out.replica_id = op.replica_id;
    out.gpu = op.gpu;
    out.batch_start = op.batch_start;
    out.batch_end = op.batch_end;
    return out;
  }

  // Re-arms the mirror diff baseline from current node state; called by the
  // cluster's full resync so post-release deltas are relative to it.
  void RefreshBaseline() {
    const int n = engine_->num_slots();
    last_.resize(static_cast<std::size_t>(n));
    for (int slot = 0; slot < n; ++slot) {
      last_[static_cast<std::size_t>(slot)] = Snapshot(engine_->replica(slot));
    }
  }

 private:
  static MirrorReplica Snapshot(const Replica& r) {
    MirrorReplica m;
    m.state = r.state;
    m.busy = r.busy;
    m.busy_until = r.busy_until;
    m.queued = r.batcher.size();
    m.in_flight = r.in_flight.size();
    return m;
  }

  bool DrainInbox() {
    bool any = false;
    WireMsg msg;
    while (inbox_.TryPop(&msg)) {
      staged_.emplace(std::make_pair(msg.stamp, stage_seq_++), std::move(msg));
      any = true;
    }
    return any;
  }

  // Runs node events and staged wires, staged-first at equal stamps, strictly
  // below min(published wire bound, the next static); parks at the static
  // once nothing below it can still arrive.
  bool RunToStatic(TimeUs s) {
    bool progress = false;
    PruneOutLedger();
    const TimeUs bound = std::min(clocks_.wire_lb.Load(), s);
    while (true) {
      const TimeUs own = nsim_.NextEventTime();
      const TimeUs st = staged_.empty() ? std::numeric_limits<TimeUs>::infinity()
                                        : staged_.begin()->first.first;
      if (st < bound && st <= own) {
        ApplyStagedFront();
      } else if (own < bound && own < st) {
        if (!nsim_.RunOneBefore(bound)) {
          break;
        }
        MirrorScan();
      } else {
        break;
      }
      progress = true;
      DrainInbox();
    }
    if (nsim_.NextEventTime() >= s &&
        (staged_.empty() || staged_.begin()->first.first >= s) &&
        clocks_.wire_lb.Load() >= s) {
      nsim_.AdvanceClockTo(s);
      PublishClocks();
      parked_ = true;
      clocks_.parked_at.Store(s);
      progress = true;
    }
    return progress;
  }

  // Past the last static (the horizon): everything left is stamped exactly at
  // the horizon. Run it, discard post-horizon arrivals, and finish once the
  // cluster's bound has moved past the horizon (no more traffic can come).
  bool RunFinal() {
    bool progress = false;
    while (!staged_.empty()) {
      auto it = staged_.begin();
      if (it->first.first > horizon_) {
        staged_.erase(it);  // would arrive after the horizon: never observable
      } else {
        ApplyStagedFront();
        nsim_.RunUntil(horizon_);
        MirrorScan();
      }
      progress = true;
    }
    if (nsim_.NextEventTime() <= horizon_) {
      nsim_.RunUntil(horizon_);
      MirrorScan();
      progress = true;
    }
    PruneOutLedger();
    if (inbox_.Empty() && staged_.empty() && clocks_.wire_lb.Load() > horizon_) {
      PublishClocks();
      finished_ = true;
      clocks_.done.store(true, std::memory_order_release);
      progress = true;
    }
    return progress;
  }

  void ApplyStagedFront() {
    auto it = staged_.begin();
    const TimeUs st = it->first.first;
    WireMsg msg = std::move(it->second);
    staged_.erase(it);
    nsim_.AdvanceClockTo(st);
    ApplyWire(std::move(msg));
    MirrorScan();
  }

  void ApplyWire(WireMsg msg) {
    switch (msg.kind) {
      case WireMsg::Kind::kRequest:
      case WireMsg::Kind::kState: {
        if (tombstones_.erase(msg.op_id) > 0) {
          return;  // this node died before the wire landed; the replay owns it
        }
        const std::uint64_t op_id = msg.op_id;
        AppliedWire applied;
        applied.is_state = msg.kind == WireMsg::Kind::kState;
        applied.request = std::move(msg.request);
        applied.forced = msg.forced;
        auto [it, inserted] = applied_.emplace(op_id, std::move(applied));
        ORION_CHECK(inserted);
        it->second.transfer = fabric_->StartTransferNoSetup(
            interconnect::kHostNode, 0, msg.bytes, [this, op_id] { OnWireStreamed(op_id); });
        break;
      }
      case WireMsg::Kind::kActivate: {
        Replica& r = engine_->replica(msg.slot);
        if (r.state != Replica::State::kProvisioning) {
          return;  // killed while provisioning
        }
        r.state = Replica::State::kActive;
        r.active_since = nsim_.now();
        if (attribution_) {
          r.idle_since = nsim_.now();
        }
        break;
      }
    }
  }

  void OnWireStreamed(std::uint64_t op_id) {
    auto it = applied_.find(op_id);
    ORION_CHECK(it != applied_.end());
    AppliedWire op = std::move(it->second);
    applied_.erase(it);
    if (op.cancelled) {
      return;  // node death aborted the stream; the cluster replay completes it
    }
    NodeMsg done;
    done.stamp = nsim_.now();
    done.op_id = op_id;
    if (op.is_state) {
      done.kind = NodeMsg::Kind::kStateDone;
      Push(std::move(done));
      return;
    }
    done.kind = NodeMsg::Kind::kWireDone;
    done.model = op.request.model;
    Push(std::move(done));
    DeliverLocal(std::move(op.request), op.forced);
  }

  // Level-2 routing against this node's own replicas — same views, same
  // Router policy state (stateless for the policies the parallel path
  // admits), same tie-breaks as the sequential Deliver.
  void DeliverLocal(Request request, std::optional<RouteReason> forced) {
    const auto m = static_cast<std::size_t>(request.model);
    std::vector<ReplicaView> views;
    std::vector<int> slots;
    for (int slot = 0; slot < engine_->num_slots(); ++slot) {
      const Replica& r = engine_->replica(slot);
      if (r.model != m || r.state != Replica::State::kActive) {
        continue;
      }
      ReplicaView view;
      view.replica_id = r.id;
      view.queued = r.batcher.size();
      view.in_flight = r.in_flight.size();
      view.outstanding_us = engine_->OutstandingUs(r);
      views.push_back(view);
      slots.push_back(slot);
    }
    if (views.empty()) {
      NodeMsg msg;
      msg.kind = NodeMsg::Kind::kOrphan;
      msg.stamp = nsim_.now();
      msg.model = request.model;
      msg.request = std::move(request);
      Push(std::move(msg));
      return;
    }
    const std::size_t idx = router_.Pick(m, views);
    request.node = node_id_;
    request.route_reason =
        forced.has_value() ? *forced : PickReason(router_.policy(), views.size());
    engine_->EnqueueAt(slots[idx], std::move(request));
  }

  void StartResponse(int replica_id, int gpu_global, TimeUs batch_start, TimeUs batch_end,
                     const Request& request) {
    const std::size_t idx = response_ops_.size();
    response_ops_.emplace_back();
    ResponseOp& op = response_ops_.back();
    op.created = nsim_.now();
    op.request = request;
    if (attribution_) {
      op.request.ledger.Advance(nsim_.now(), attribution::Phase::kNetResponse);
    }
    op.replica_id = replica_id;
    op.gpu = gpu_global;
    op.batch_start = batch_start;
    op.batch_end = batch_end;
    // Full StartTransfer: the response leg pays the NIC setup latency, as in
    // the sequential engine.
    op.transfer = fabric_->StartTransfer(0, interconnect::kHostNode, spec_.response_bytes,
                                         [this, idx] { OnResponseStreamed(idx); });
  }

  void OnResponseStreamed(std::size_t idx) {
    ResponseOp& op = response_ops_[idx];
    if (op.cancelled) {
      return;
    }
    op.completed = true;
    NodeMsg msg;
    msg.kind = NodeMsg::Kind::kResponseDone;
    msg.stamp = nsim_.now();
    msg.model = op.request.model;
    msg.request = std::move(op.request);
    msg.replica_id = op.replica_id;
    msg.gpu = op.gpu;
    msg.t0 = op.batch_start;
    msg.t1 = op.batch_end;
    Push(std::move(msg));
  }

  // Diff-scan every slot against the last pushed snapshot and emit kMirror
  // deltas; called after every event or wire application so the cluster's
  // mirror tracks the node at event granularity.
  void MirrorScan() {
    const int n = engine_->num_slots();
    ORION_CHECK(static_cast<std::size_t>(n) == last_.size());
    for (int slot = 0; slot < n; ++slot) {
      const MirrorReplica cur = Snapshot(engine_->replica(slot));
      MirrorReplica& prev = last_[static_cast<std::size_t>(slot)];
      if (cur.state != prev.state || cur.busy != prev.busy ||
          cur.busy_until != prev.busy_until || cur.queued != prev.queued ||
          cur.in_flight != prev.in_flight) {
        prev = cur;
        NodeMsg msg;
        msg.kind = NodeMsg::Kind::kMirror;
        msg.stamp = nsim_.now();
        msg.slot = slot;
        msg.mirror = cur;
        Push(std::move(msg));
      }
    }
  }

  void Push(NodeMsg msg) {
    out_ledger_.Record(msg.stamp);
    while (!outbox_.TryPush(std::move(msg))) {
      std::this_thread::yield();
    }
  }

  void PruneOutLedger() {
    out_ledger_.Prune(clocks_.out_acked.load(std::memory_order_acquire));
  }

  // send_lb then in_acked, both release: see LpClockBlock.
  void PublishClocks() {
    TimeUs lb = nsim_.NextEventTime();
    if (!staged_.empty()) {
      lb = std::min(lb, staged_.begin()->first.first);
    }
    lb = std::min(lb, out_ledger_.MinUnackedStamp());
    clocks_.send_lb.Store(lb);
    clocks_.in_acked.store(inbox_.Popped(), std::memory_order_release);
  }

  // A wire (request/state) whose payload is streaming on this node's NIC.
  struct AppliedWire {
    interconnect::TransferId transfer = 0;
    bool cancelled = false;
    bool is_state = false;
    Request request;
    std::optional<RouteReason> forced;
  };

  const int node_id_;
  const ClusterSpec spec_;
  const ClusterTopology topo_;
  const serving::BatchingConfig batching_;
  const std::size_t gpu_memory_bytes_;
  const bool attribution_;
  const TimeUs horizon_;
  std::vector<ModelCopy> models_;
  serving::Router router_;
  NodeHost* const cluster_host_;
  const std::vector<TimeUs>* const statics_;
  const std::atomic<std::size_t>* const released_;

  Simulator nsim_;
  NodeEngine* engine_ = nullptr;
  interconnect::Fabric* fabric_ = nullptr;

  LpClockBlock clocks_;
  sim::SpscQueue<WireMsg> inbox_;    // cluster -> node
  sim::SpscQueue<NodeMsg> outbox_;   // node -> cluster
  sim::EdgeLedger out_ledger_;       // stamps of un-acked outbox pushes

  // Wires drained but not yet applied, ordered (stamp, arrival seq).
  std::map<std::pair<TimeUs, std::uint64_t>, WireMsg> staged_;
  std::uint64_t stage_seq_ = 0;

  std::map<std::uint64_t, AppliedWire> applied_;  // streaming on the NIC
  std::set<std::uint64_t> tombstones_;            // wires owned by a fault replay
  std::deque<ResponseOp> response_ops_;
  std::vector<MirrorReplica> last_;  // diff-scan baseline, slot-indexed

  // True while the cluster thread drives this LP synchronously (setup and
  // static rendezvous); writes/reads are ordered by the park/release
  // handshake, so a plain bool is race-free.
  bool direct_ = true;
  bool parked_ = false;
  bool finished_ = false;
  std::size_t k_ = 0;  // statics completed (index of the next park target)

  // Park lock: serializes the parked keep-alive publish against the
  // cluster's direct-mode window (see Lock()/Poll()).
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

class ClusterEngine : public NodeHost {
 public:
  explicit ClusterEngine(const ClusterConfig& cluster_config)
      : config_(cluster_config.serving),
        spec_(cluster_config.cluster),
        topo_(cluster_config.cluster),
        node_policy_(cluster_config.node_policy),
        router_(cluster_config.serving.policy, cluster_config.serving.models.size()),
        admission_(cluster_config.serving.admission),
        horizon_(cluster_config.serving.warmup_us + cluster_config.serving.duration_us) {
    ORION_CHECK(config_.max_replicas_per_gpu >= 1);
    ORION_CHECK_MSG(!config_.models.empty(), "serving needs at least one model service");
    Rng root(config_.seed);
    for (std::size_t m = 0; m < config_.models.size(); ++m) {
      const serving::ModelServiceConfig& cfg = config_.models[m];
      ORION_CHECK(cfg.rps > 0.0);
      ORION_CHECK(cfg.slo_us > 0.0);
      ORION_CHECK(cfg.initial_replicas >= 1);
      ORION_CHECK(cfg.min_replicas >= 1);
      ORION_CHECK(cfg.max_replicas >= cfg.initial_replicas);
      models_.push_back(std::make_unique<ModelState>(
          cfg,
          serving::BatchCostModel(config_.device, cfg.workload,
                                  cfg.tier == serving::PriorityTier::kLatencyCritical,
                                  config_.launch_overhead_us),
          MakeArrivals(cfg), root.Fork(m)));
      if (cfg.llm.enabled) {
        ORION_CHECK_MSG(cfg.workload.model == workloads::ModelId::kLlmDecode,
                        "LLM serving requires the kLlmDecode workload");
        // The cost model's constructor validates the LLM shape parameters.
        models_.back()->llm_cost = std::make_unique<serving::LlmCostModel>(
            config_.device, cfg.llm, config_.launch_overhead_us);
        // Replica state = the weights; the KV cache is carved separately out
        // of whatever device memory remains at placement (node_engine.cc).
        models_.back()->cost.OverrideStateBytes(
            workloads::LlmWeightBytes(cfg.llm.model));
      }
    }
    rr_node_cursor_.assign(config_.models.size(), 0);

    // Parallel LP partitioning: decide eligibility up front (DESIGN.md §16).
    // The replica-level round-robin router keeps mutable per-pick state the
    // cluster and nodes would both need, so it stays sequential; the tracer's
    // track registry is order-sensitive; zero lookahead admits no
    // conservative horizon at all.
    lp_threads_ = cluster_config.lp_threads;
    lookahead_ = spec_.nic_latency_us;
    for (const auto& model : models_) {
      lookahead_ = std::min(lookahead_, model->cost.ProvisionUs());
    }
    const bool tracing = config_.telemetry != nullptr && config_.telemetry->tracing();
    parallel_ = lp_threads_ > 1 && NetworkOn() &&
                config_.policy != serving::RoutePolicy::kRoundRobin && !tracing &&
                lookahead_ > 0.0;
    if (parallel_) {
      statics_ = BuildStaticTimes(config_.fault_plan, config_.autoscaler, horizon_);
      mirror_.resize(static_cast<std::size_t>(spec_.num_nodes));
      wire_ledgers_.resize(static_cast<std::size_t>(spec_.num_nodes));
      cstage_seq_.assign(static_cast<std::size_t>(spec_.num_nodes), 0);
      for (int n = 0; n < spec_.num_nodes; ++n) {
        std::vector<NodeLp::ModelCopy> copies;
        copies.reserve(models_.size());
        for (const auto& model : models_) {
          copies.push_back(NodeLp::ModelCopy{
              model->cfg, model->cost,
              model->llm_cost != nullptr
                  ? std::make_unique<serving::LlmCostModel>(*model->llm_cost)
                  : nullptr});
        }
        lps_.push_back(std::make_unique<NodeLp>(n, spec_, config_, horizon_, this,
                                                &statics_, &released_,
                                                std::move(copies)));
      }
    }

    for (int n = 0; n < spec_.num_nodes; ++n) {
      nodes_.emplace_back(n, spec_.gpus_per_node,
                          parallel_ ? static_cast<NodeHost*>(lps_[static_cast<std::size_t>(n)].get())
                                    : static_cast<NodeHost*>(this));
      if (parallel_) {
        lps_[static_cast<std::size_t>(n)]->set_engine(&nodes_.back());
      }
    }
    if (NetworkOn()) {
      // One fabric per NIC rather than one over the whole star. The star has
      // no shared links (every route is the single host<->node NIC hop), so
      // splitting is model-identical — and it makes each node's network state
      // self-contained, which is what lets the parallel LP runtime hand a
      // node its own fabric. Endpoint 0 of each mini-topology is the node;
      // interconnect::kHostNode is the ToR side.
      for (int n = 0; n < spec_.num_nodes; ++n) {
        fabrics_.push_back(std::make_unique<interconnect::Fabric>(
            parallel_ ? &lps_[static_cast<std::size_t>(n)]->nsim() : &sim_,
            interconnect::NodeTopology::NicStar(1, spec_.nic_gbps,
                                                spec_.nic_latency_us)));
        if (parallel_) {
          lps_[static_cast<std::size_t>(n)]->set_fabric(fabrics_.back().get());
        }
      }
    }
    BindTelemetry();
    if (config_.telemetry != nullptr && !parallel_) {
      // Parallel runs leave the fabrics detached from the hub: their
      // transfers start on node clocks, where counter bumps would race. The
      // cluster Incs the same instruments itself at wire-send time instead
      // (fabric_started_c_ / fabric_bytes_c_), which is count-identical.
      for (auto& fabric : fabrics_) {
        fabric->set_telemetry(config_.telemetry);
      }
    }
    if (parallel_ && hub_ != nullptr) {
      fabric_started_c_ = metrics_->GetCounter("fabric.transfers_started");
      fabric_bytes_c_ = metrics_->GetCounter("fabric.bytes_requested");
    }
  }

  ClusterResult Run() {
    for (std::size_t m = 0; m < models_.size(); ++m) {
      for (int i = 0; i < models_[m]->cfg.initial_replicas; ++i) {
        ORION_CHECK_MSG(AddReplica(m, /*immediate=*/true),
                        "initial serving fleet does not fit on the cluster");
      }
      ScheduleArrival(m);
    }
    ArmFaults();
    if (config_.autoscaler.enabled) {
      sim_.ScheduleAfter(config_.autoscaler.eval_period_us, [this] { EvalAutoscaler(); });
    }
    if (!parallel_) {
      sim_.RunUntil(horizon_);
      return Finalize();
    }
    return RunParallel();
  }

  // --- NodeHost. ---

  Simulator& sim() override { return sim_; }
  const serving::BatchingConfig& batching_config() const override { return config_.batching; }
  const serving::BatchCostModel& model_cost(std::size_t model) const override {
    return models_[model]->cost;
  }
  serving::PriorityTier model_tier(std::size_t model) const override {
    return models_[model]->cfg.tier;
  }
  const serving::LlmServiceConfig* model_llm(std::size_t model) const override {
    const ModelState& state = *models_[model];
    return state.cfg.llm.enabled ? &state.cfg.llm : nullptr;
  }
  const serving::LlmCostModel& model_llm_cost(std::size_t model) const override {
    ORION_CHECK(models_[model]->llm_cost != nullptr);
    return *models_[model]->llm_cost;
  }
  std::size_t gpu_memory_bytes() const override { return config_.device.memory_bytes; }

  bool attribution() const override {
    // Queried by NodeEngine at construction (before BindTelemetry), so it
    // reads the config directly instead of the cached attr_.
    return config_.telemetry != nullptr && config_.telemetry->attribution_enabled();
  }

  void OnBatchServed(NodeEngine& node, Replica& r) override {
    const TimeUs now = sim_.now();
    ModelState& model = *models_[r.model];
    const int batch_size = static_cast<int>(r.in_flight.size());
    const int gpu_global = topo_.GlobalGpu(node.node_id(), r.gpu);
    if (!NetworkOn()) {
      for (const Request& request : r.in_flight) {
        CompleteRequest(request, r.id, gpu_global, r.batch_start, now, now);
      }
    } else {
      // The computed responses still have to cross the network; completion
      // accounting happens when each one reaches the front-end.
      for (const Request& request : r.in_flight) {
        SendResponse(node.node_id(), r.id, gpu_global, r.batch_start, now, request);
      }
    }
    if (model.track >= 0) {
      hub_->spans().Complete(gpu_tracks_[static_cast<std::size_t>(gpu_global)], r.id,
                             "batch:" + model.label, r.batch_start, now,
                             {{"batch_size", std::to_string(batch_size)},
                              {"replica", std::to_string(r.id)},
                              {"reason", serving::DispatchReasonName(r.dispatch_reason)}},
                             "batch");
    }
    if (InWindow(now)) {
      model.batches->Inc();
      model.batched_requests->Inc(static_cast<double>(batch_size));
      if (model.llm_cost != nullptr) {
        // Request-level LLM baseline: the batch prefilled every sequence and
        // decoded each to completion (one token from prefill + target more).
        double tokens = 0.0;
        for (const Request& request : r.in_flight) {
          tokens += 1.0 + static_cast<double>(request.target_tokens);
        }
        model.tokens->Inc(tokens);
        model.prefills->Inc(static_cast<double>(batch_size));
      }
    }
  }

  void OnDecodeStep(NodeEngine& node, Replica& r, int batch, int prefills, TimeUs start,
                    TimeUs end) override {
    ModelState& model = *models_[r.model];
    const int gpu_global = topo_.GlobalGpu(node.node_id(), r.gpu);
    if (model.track >= 0) {
      hub_->spans().Complete(
          gpu_tracks_[static_cast<std::size_t>(gpu_global)], r.id, "step:" + model.label,
          start, end,
          {{"batch_size", std::to_string(batch)},
           {"prefills", std::to_string(prefills)},
           {"kv_blocks", std::to_string(r.llm->kv.used_blocks())},
           {"replica", std::to_string(r.id)}},
          "decode-step");
    }
    if (InWindow(end)) {
      model.decode_steps->Inc();
      model.tokens->Inc(static_cast<double>(batch));  // one token per sequence
      if (prefills > 0) {
        model.prefills->Inc(static_cast<double>(prefills));
      }
      // A step is the device-batch unit of continuous batching: count it so
      // mean_batch_size reports the mean iteration width.
      model.batches->Inc();
      model.batched_requests->Inc(static_cast<double>(batch));
    }
  }

  void OnSequenceFinished(NodeEngine& node, Replica& r, const Request& request,
                          TimeUs step_start, TimeUs step_end) override {
    const int gpu_global = topo_.GlobalGpu(node.node_id(), r.gpu);
    if (!NetworkOn()) {
      CompleteRequest(request, r.id, gpu_global, step_start, step_end, step_end);
    } else {
      SendResponse(node.node_id(), r.id, gpu_global, step_start, step_end, request);
    }
  }

  void OnKvEviction(NodeEngine& node, Replica& r, const Request& request) override {
    (void)node;
    ModelState& model = *models_[r.model];
    if (InWindow(sim_.now())) {
      model.kv_evictions->Inc();
    }
    Mark("kv-evict", {{"service", model.label},
                      {"replica", std::to_string(r.id)},
                      {"request", std::to_string(request.id)}});
  }

  void AccountReplicaTime(TimeUs active_since) override {
    const TimeUs start = std::max(active_since, config_.warmup_us);
    const TimeUs end = std::min(sim_.now(), horizon_);
    if (end > start) {
      replica_seconds_->Inc(UsToSec(end - start));
    }
  }

 private:
  struct ModelState {
    ModelState(const serving::ModelServiceConfig& config, serving::BatchCostModel cost_model,
               std::unique_ptr<trace::ArrivalProcess> arrival_process, Rng arrival_rng)
        : cfg(config),
          cost(std::move(cost_model)),
          arrivals(std::move(arrival_process)),
          rng(arrival_rng) {}

    serving::ModelServiceConfig cfg;
    serving::BatchCostModel cost;
    // Per-phase LLM costs; null unless cfg.llm.enabled (its presence is the
    // engine-wide "is this an LLM service" predicate).
    std::unique_ptr<serving::LlmCostModel> llm_cost;
    std::unique_ptr<trace::ArrivalProcess> arrivals;
    Rng rng;
    // Admitted requests with no active replica to queue at (all replicas
    // provisioning after a failover); drained on the next activation.
    std::deque<Request> limbo;
    std::vector<int> replicas;  // every global replica id ever created
    // Requests of this service currently crossing the network (either leg).
    std::size_t in_network = 0;

    // Service label for metrics and trace tracks: the workload name, with a
    // "#<index>" suffix when two services share a workload.
    std::string label;
    telemetry::TrackId track = -1;  // per-request span track; -1 = tracing off
    // Hub-owned blame aggregate; bound only when attribution is enabled.
    attribution::ServiceAttribution* attr = nullptr;

    // All counters are registry instruments labeled {service=label}, bound
    // in BindTelemetry — the registry is the source of truth the
    // ServingResult is assembled from, so an exported CSV snapshot
    // reproduces the run's printed numbers exactly.

    // Whole-run counters (accounting identity).
    telemetry::Counter* total_offered = nullptr;
    telemetry::Counter* total_completed = nullptr;
    telemetry::Counter* total_shed = nullptr;
    telemetry::Counter* total_dropped = nullptr;

    // Measurement-window counters.
    telemetry::Counter* offered = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* slo_met = nullptr;
    telemetry::Counter* shed = nullptr;
    telemetry::Counter* dropped = nullptr;
    telemetry::Counter* failed_over = nullptr;
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* batched_requests = nullptr;
    telemetry::Histogram* latency = nullptr;   // e2e µs, window only
    telemetry::Histogram* queueing = nullptr;  // arrival → service start

    // LLM per-token instruments; bound only for services with llm.enabled so
    // a non-LLM run exports exactly the pre-LLM metric set.
    telemetry::Counter* tokens = nullptr;        // decode tokens in the window
    telemetry::Counter* prefills = nullptr;      // prefill passes in the window
    telemetry::Counter* decode_steps = nullptr;  // continuous iterations in the window
    telemetry::Counter* kv_evictions = nullptr;  // preemptions in the window
    telemetry::Histogram* ttft = nullptr;        // arrival → first token, µs
    telemetry::Histogram* tpot = nullptr;        // inter-token µs after the first

    // Autoscaler evaluation-window counters (reset every eval period, so
    // they stay plain fields rather than monotonic registry counters).
    std::size_t w_arrivals = 0;
    std::size_t w_completions = 0;
    std::size_t w_slo_met = 0;
    std::size_t w_shed = 0;
  };

  // One payload crossing the network fabric. Responses cancelled by a node
  // death complete at the cancel instant: the batch had already been served,
  // only the notification leg is cut short (documented simplification).
  struct NetOp {
    enum class Kind : std::uint8_t { kRequest, kResponse, kState };
    Kind kind = Kind::kRequest;
    bool cancelled = false;
    int node = -1;  // destination (request/state) or source (response)
    interconnect::TransferId transfer = 0;
    Request request;                            // kRequest / kResponse payload
    std::optional<RouteReason> forced;          // kRequest: routing reason override
    int replica_id = -1;                        // kResponse server / kState target
    int gpu = -1;                               // kResponse: global GPU of server
    TimeUs batch_start = 0.0;                   // kResponse
    TimeUs batch_end = 0.0;                     // kResponse
    TimeUs started = 0.0;  // send time (parallel: node-death replay ordering)
    TimeUs stamp = 0.0;    // parallel: virtual arrival time at the node
  };

  bool NetworkOn() const { return spec_.num_nodes > 1 && spec_.model_network; }

  // Binds every instrument against the hub registry (a private registry
  // when no hub is configured) and registers the trace tracks.
  void BindTelemetry() {
    hub_ = config_.telemetry;
    metrics_ = hub_ != nullptr ? &hub_->metrics() : &local_metrics_;
    const bool tracing = hub_ != nullptr && hub_->tracing();
    attr_ = hub_ != nullptr && hub_->attribution_enabled();
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      model.label = workloads::WorkloadName(model.cfg.workload);
      for (std::size_t prev = 0; prev < m; ++prev) {
        if (models_[prev]->label == model.label) {
          model.label += "#" + std::to_string(m);
          break;
        }
      }
      const telemetry::Labels by_service = {{"service", model.label}};
      model.total_offered = metrics_->GetCounter("serving.offered_total", by_service);
      model.total_completed = metrics_->GetCounter("serving.completed_total", by_service);
      model.total_shed = metrics_->GetCounter("serving.shed_total", by_service);
      model.total_dropped = metrics_->GetCounter("serving.dropped_total", by_service);
      model.offered = metrics_->GetCounter("serving.offered", by_service);
      model.completed = metrics_->GetCounter("serving.completed", by_service);
      model.slo_met = metrics_->GetCounter("serving.slo_met", by_service);
      model.shed = metrics_->GetCounter("serving.shed", by_service);
      model.dropped = metrics_->GetCounter("serving.dropped", by_service);
      model.failed_over = metrics_->GetCounter("serving.failed_over", by_service);
      model.batches = metrics_->GetCounter("serving.batches", by_service);
      model.batched_requests = metrics_->GetCounter("serving.batched_requests", by_service);
      model.latency = metrics_->GetHistogram("serving.latency_us", by_service);
      model.queueing = metrics_->GetHistogram("serving.queueing_us", by_service);
      if (model.cfg.llm.enabled) {
        model.tokens = metrics_->GetCounter("serving.tokens", by_service);
        model.prefills = metrics_->GetCounter("serving.prefills", by_service);
        model.decode_steps = metrics_->GetCounter("serving.decode_steps", by_service);
        model.kv_evictions = metrics_->GetCounter("serving.kv_evictions", by_service);
        model.ttft = metrics_->GetHistogram("serving.ttft_us", by_service);
        model.tpot = metrics_->GetHistogram("serving.tpot_us", by_service);
      }
      if (tracing) {
        model.track = hub_->spans().Track("service:" + model.label);
      }
      if (attr_) {
        model.attr = &hub_->attribution().Service(model.label);
        model.attr->set_tier(serving::PriorityTierName(model.cfg.tier));
      }
    }
    scale_ups_ = metrics_->GetCounter("serving.scale_ups");
    scale_downs_ = metrics_->GetCounter("serving.scale_downs");
    scale_failures_ = metrics_->GetCounter("serving.scale_failures");
    faults_injected_ = metrics_->GetCounter("serving.faults_injected");
    faults_skipped_ = metrics_->GetCounter("serving.faults_skipped");
    replicas_lost_ = metrics_->GetCounter("serving.replicas_lost");
    replacements_ = metrics_->GetCounter("serving.replacements");
    replacement_failures_ = metrics_->GetCounter("serving.replacement_failures");
    replica_seconds_ = metrics_->GetCounter("serving.replica_seconds");
    if (spec_.num_nodes > 1) {
      // Datacenter-level instruments exist only on real clusters so an N=1
      // run exports exactly the single-node engine's metric set.
      node_faults_c_ = metrics_->GetCounter("datacenter.node_faults");
      requests_forwarded_c_ = metrics_->GetCounter("datacenter.requests_forwarded");
    }
    if (tracing) {
      control_track_ = hub_->spans().Track("serving-control");
      gpu_tracks_.reserve(static_cast<std::size_t>(topo_.total_gpus()));
      for (int g = 0; g < topo_.total_gpus(); ++g) {
        const std::string name =
            spec_.num_nodes == 1
                ? "gpu" + std::to_string(g)
                : "n" + std::to_string(topo_.NodeOfGpu(g)) + "/gpu" +
                      std::to_string(topo_.LocalGpu(g));
        gpu_tracks_.push_back(hub_->spans().Track(name));
      }
    }
  }

  void Mark(const std::string& name, telemetry::Labels args) {
    if (control_track_ >= 0) {
      hub_->spans().Instant(control_track_, name, sim_.now(), std::move(args));
    }
  }

  bool InWindow(TimeUs t) const { return t >= config_.warmup_us && t <= horizon_; }

  Replica& replica(int id) {
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
    return nodes_[static_cast<std::size_t>(ref.node)].replica(ref.slot);
  }
  const Replica& replica(int id) const {
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
    return nodes_[static_cast<std::size_t>(ref.node)].replica(ref.slot);
  }

  // --- Arrivals, admission, two-level routing. ---

  void ScheduleArrival(std::size_t m) {
    ModelState& model = *models_[m];
    const DurationUs dt = model.arrivals->NextInterarrival(model.rng);
    sim_.ScheduleAfter(dt, [this, m] {
      OnArrival(m);
      ScheduleArrival(m);
    });
  }

  void OnArrival(std::size_t m) {
    ModelState& model = *models_[m];
    const TimeUs now = sim_.now();
    Request request;
    request.id = next_request_id_++;
    request.model = static_cast<int>(m);
    request.arrival_us = now;
    request.deadline_us = now + model.cfg.slo_us;
    if (model.llm_cost != nullptr) {
      const serving::LlmServiceConfig& llm = model.cfg.llm;
      request.prompt_tokens = llm.prompt_tokens;
      request.target_tokens =
          llm.max_decode_tokens > llm.min_decode_tokens
              ? static_cast<int>(model.rng.UniformInt(llm.min_decode_tokens,
                                                      llm.max_decode_tokens))
              : llm.min_decode_tokens;
      // Per-token SLOs supersede slo_us: the deadline admission gates on and
      // EDF queues order by is the TTFT deadline.
      request.deadline_us = now + llm.ttft_slo_us;
    }
    if (attr_) {
      request.ledger.Begin(now);
    }
    model.total_offered->Inc();
    ++model.w_arrivals;
    if (InWindow(now)) {
      model.offered->Inc();
    }

    const int node = PickNode(m);
    if (node < 0) {
      HandleNoReplica(m, std::move(request));
      return;
    }
    // Admission against the chosen node's least-loaded replica.
    std::vector<ReplicaView> views;
    std::vector<int> slots;
    BuildNodeViews(node, m, &views, &slots);
    std::size_t best = 0;
    for (std::size_t i = 1; i < views.size(); ++i) {
      if (views[i].outstanding_us < views[best].outstanding_us) {
        best = i;
      }
    }
    const DurationUs best_wait = views[best].outstanding_us;
    const int est_batch = EstimatedBatch(views[best].queued);
    // LLM admission gates the TTFT deadline: the work between dispatch and
    // the first token is the prefill (the queue ahead is in best_wait).
    const DurationUs service = model.llm_cost != nullptr
                                   ? model.llm_cost->PrefillUs(request.prompt_tokens)
                                   : model.cost.BatchServiceUs(est_batch);
    if (!admission_.Admit(request, model.cfg.tier, best_wait, service)) {
      request.outcome = RequestOutcome::kShed;
      model.total_shed->Inc();
      ++model.w_shed;
      if (InWindow(now)) {
        model.shed->Inc();
      }
      Mark("shed", {{"service", model.label}});
      return;
    }
    if (NetworkOn()) {
      ForwardRequest(node, std::move(request), std::nullopt);
    } else {
      Deliver(node, std::move(request), std::nullopt);
    }
  }

  // Batch size the next dispatch will likely use (admission's service-time
  // estimate): the queue ahead plus this request, capped by the batcher.
  int EstimatedBatch(std::size_t queued_ahead) const {
    if (!config_.batching.enabled) {
      return 1;
    }
    return std::min<int>(config_.batching.max_batch_size,
                         static_cast<int>(queued_ahead) + 1);
  }

  void HandleNoReplica(std::size_t m, Request request) {
    ModelState& model = *models_[m];
    if (PendingReplicas(m) > 0) {
      model.limbo.push_back(std::move(request));
      return;
    }
    model.total_dropped->Inc();
    if (InWindow(sim_.now())) {
      model.dropped->Inc();
    }
    Mark("drop", {{"service", model.label}});
  }

  // The cluster's copy of each node's routing-visible state, kept current by
  // kMirror deltas between rendezvous and a full resync at each one.
  struct MirrorNode {
    bool alive = true;
    std::vector<MirrorReplica> slots;       // node-local slot -> state
    std::vector<int> slot_model;            // slot -> model (-1 = never used)
    std::vector<int> slot_id;               // slot -> global replica id
    std::vector<int> slot_gpu;              // slot -> local gpu
    std::vector<std::vector<int>> shard_slots;  // gpu -> resident slots
  };

  int PendingReplicas(std::size_t m) const {
    const bool use_mirror = parallel_ && !at_rendezvous_;
    int pending = 0;
    for (const int id : models_[m]->replicas) {
      const Replica::State state =
          use_mirror ? MirrorOf(id).state : replica(id).state;
      if (state == Replica::State::kProvisioning) {
        ++pending;
      }
    }
    return pending;
  }

  // The cluster-side mirror entry for a global replica id (parallel only).
  const MirrorReplica& MirrorOf(int id) const {
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
    return mirror_[static_cast<std::size_t>(ref.node)]
        .slots[static_cast<std::size_t>(ref.slot)];
  }

  // Level-1 routing: the node to send an admitted request of `m` to, or -1
  // when no node has an active replica. Least-outstanding compares each
  // node's best replica; ties break towards the lowest node id.
  int PickNode(std::size_t m) {
    const bool use_mirror = parallel_ && !at_rendezvous_;
    std::vector<double> node_best(static_cast<std::size_t>(spec_.num_nodes),
                                  std::numeric_limits<double>::infinity());
    std::vector<bool> has(static_cast<std::size_t>(spec_.num_nodes), false);
    for (const int id : models_[m]->replicas) {
      const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
      const auto n = static_cast<std::size_t>(ref.node);
      if (use_mirror) {
        const MirrorNode& node = mirror_[n];
        const MirrorReplica& r = node.slots[static_cast<std::size_t>(ref.slot)];
        if (r.state != Replica::State::kActive || !node.alive) {
          continue;
        }
        has[n] = true;
        node_best[n] = std::min(node_best[n], MirrorOutstandingUs(node, ref.slot));
        continue;
      }
      const NodeEngine& node = nodes_[n];
      const Replica& r = node.replica(ref.slot);
      if (r.state != Replica::State::kActive || !node.alive()) {
        continue;
      }
      has[n] = true;
      node_best[n] = std::min(node_best[n], node.OutstandingUs(r));
    }
    if (node_policy_ == NodePolicy::kRoundRobin) {
      std::vector<int> candidates;
      for (int n = 0; n < spec_.num_nodes; ++n) {
        if (has[static_cast<std::size_t>(n)]) {
          candidates.push_back(n);
        }
      }
      if (candidates.empty()) {
        return -1;
      }
      return candidates[static_cast<std::size_t>(rr_node_cursor_[m]++ %
                                                 candidates.size())];
    }
    int best = -1;
    for (int n = 0; n < spec_.num_nodes; ++n) {
      if (!has[static_cast<std::size_t>(n)]) {
        continue;
      }
      if (best < 0 ||
          node_best[static_cast<std::size_t>(n)] < node_best[static_cast<std::size_t>(best)]) {
        best = n;
      }
    }
    return best;
  }

  // Active replicas of `m` on `node`, sorted by global id (creation order).
  void BuildNodeViews(int node, std::size_t m, std::vector<ReplicaView>* views,
                      std::vector<int>* slots) {
    views->clear();
    slots->clear();
    if (parallel_ && !at_rendezvous_) {
      const MirrorNode& engine = mirror_[static_cast<std::size_t>(node)];
      for (const int id : models_[m]->replicas) {
        const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
        if (ref.node != node) {
          continue;
        }
        const MirrorReplica& r = engine.slots[static_cast<std::size_t>(ref.slot)];
        if (r.state != Replica::State::kActive) {
          continue;
        }
        ReplicaView view;
        view.replica_id = id;
        view.queued = r.queued;
        view.in_flight = r.in_flight;
        view.outstanding_us = MirrorOutstandingUs(engine, ref.slot);
        views->push_back(view);
        slots->push_back(ref.slot);
      }
      return;
    }
    NodeEngine& engine = nodes_[static_cast<std::size_t>(node)];
    for (const int id : models_[m]->replicas) {
      const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
      if (ref.node != node) {
        continue;
      }
      const Replica& r = engine.replica(ref.slot);
      if (r.state != Replica::State::kActive) {
        continue;
      }
      ReplicaView view;
      view.replica_id = id;
      view.queued = r.batcher.size();
      view.in_flight = r.in_flight.size();
      view.outstanding_us = engine.OutstandingUs(r);
      views->push_back(view);
      slots->push_back(ref.slot);
    }
  }

  // --- Mirror-based load prediction (parallel, between rendezvous). ---
  //
  // These duplicate NodeEngine::OutstandingUs / Slowdown term for term over
  // the mirrored slot state, so the FP results are bit-identical to what the
  // sequential engine computes against live replicas.

  DurationUs MirrorOutstandingUs(const MirrorNode& node, int slot) const {
    const MirrorReplica& r = node.slots[static_cast<std::size_t>(slot)];
    const auto m = static_cast<std::size_t>(node.slot_model[static_cast<std::size_t>(slot)]);
    const serving::BatchingConfig& batching = config_.batching;
    const TimeUs now = sim_.now();
    DurationUs work = r.busy ? std::max(0.0, r.busy_until - now) : 0.0;
    const std::size_t queued = r.queued;
    if (queued == 0) {
      return work;
    }
    const int max_batch = batching.enabled ? batching.max_batch_size : 1;
    const ModelState& model = *models_[m];
    if (model.llm_cost != nullptr) {
      const serving::LlmCostModel& cost = *model.llm_cost;
      const serving::LlmServiceConfig& llm = model.cfg.llm;
      const double slowdown = MirrorSlowdown(node, slot);
      if (llm.continuous) {
        const std::size_t rounds = queued / static_cast<std::size_t>(max_batch);
        work += static_cast<double>(rounds) * cost.TypicalStepUs(max_batch) * slowdown;
        work += cost.PrefillUs(llm.prompt_tokens) * slowdown;
      } else {
        const int est = std::min<int>(max_batch, static_cast<int>(queued));
        const int mean_target = (llm.min_decode_tokens + llm.max_decode_tokens) / 2;
        const DurationUs batch_us =
            static_cast<double>(est) * cost.PrefillUs(llm.prompt_tokens) +
            static_cast<double>(mean_target) * cost.TypicalStepUs(est);
        const std::size_t batches =
            (queued + static_cast<std::size_t>(max_batch) - 1) /
            static_cast<std::size_t>(max_batch);
        work += static_cast<double>(batches) * batch_us * slowdown;
      }
      return work;
    }
    const serving::BatchCostModel& cost = model.cost;
    const int batch = std::min<int>(max_batch, static_cast<int>(queued));
    work += static_cast<double>(queued) * cost.PerRequestUs(batch) * MirrorSlowdown(node, slot);
    return work;
  }

  double MirrorSlowdown(const MirrorNode& node, int slot) const {
    const auto m = static_cast<std::size_t>(node.slot_model[static_cast<std::size_t>(slot)]);
    double pressure = 0.0;
    const int gpu = node.slot_gpu[static_cast<std::size_t>(slot)];
    for (const int other_slot : node.shard_slots[static_cast<std::size_t>(gpu)]) {
      // Slots are append-only and never reused, so slot equality is replica
      // identity.
      if (other_slot == slot) {
        continue;
      }
      const MirrorReplica& other = node.slots[static_cast<std::size_t>(other_slot)];
      if (other.state != Replica::State::kActive &&
          other.state != Replica::State::kDraining) {
        continue;
      }
      const auto om =
          static_cast<std::size_t>(node.slot_model[static_cast<std::size_t>(other_slot)]);
      pressure += cluster::PairInterference(models_[m]->cost.signature(),
                                            models_[om]->cost.signature());
    }
    return serving::InterferenceSlowdown(models_[m]->cfg.tier, pressure);
  }

  // Level-2 routing: pick the replica on `node` and hand the request to the
  // node engine. `forced` overrides the recorded route reason (failover
  // rehomes, limbo drains).
  void Deliver(int node, Request request, std::optional<RouteReason> forced) {
    const auto m = static_cast<std::size_t>(request.model);
    std::vector<ReplicaView> views;
    std::vector<int> slots;
    BuildNodeViews(node, m, &views, &slots);
    if (views.empty()) {
      // The node lost its replicas while the request was on the wire
      // (network path only; the synchronous path routes against live views).
      RehomeOrphan(m, std::move(request), /*was_running=*/true);
      return;
    }
    const std::size_t idx = router_.Pick(m, views);
    request.node = node;
    request.route_reason =
        forced.has_value() ? *forced : PickReason(router_.policy(), views.size());
    nodes_[static_cast<std::size_t>(node)].EnqueueAt(slots[idx], std::move(request));
  }

  // --- Network legs (num_nodes > 1 with model_network). ---

  void StartOp(int src, int dst, std::size_t bytes, NetOp op) {
    const std::uint64_t op_id = next_op_id_++;
    auto [it, inserted] = net_ops_.emplace(op_id, std::move(op));
    ORION_CHECK(inserted);
    if (parallel_) {
      // Only host -> node legs originate at the cluster; responses start on
      // the node LPs. The setup phase of the transfer is the lookahead: the
      // wire lands at the node `nic_latency_us` in its future and streams
      // there (StartTransferNoSetup), which reproduces the sequential
      // single-clock transfer timeline exactly.
      ORION_CHECK(src == interconnect::kHostNode);
      NetOp& net = it->second;
      net.started = sim_.now();
      net.stamp = sim_.now() + spec_.nic_latency_us;
      if (fabric_started_c_ != nullptr) {
        // The fabric is detached from the hub in parallel runs; count the
        // transfer start cluster-side instead (see the constructor).
        fabric_started_c_->Inc();
        fabric_bytes_c_->Inc(static_cast<double>(bytes));
      }
      if (net.stamp <= horizon_) {
        WireMsg msg;
        msg.kind = net.kind == NetOp::Kind::kState ? WireMsg::Kind::kState
                                                   : WireMsg::Kind::kRequest;
        msg.stamp = net.stamp;
        msg.op_id = op_id;
        msg.bytes = bytes;
        if (net.kind == NetOp::Kind::kState) {
          msg.slot = directory_[static_cast<std::size_t>(net.replica_id)].slot;
        } else {
          msg.request = net.request;  // the NetOp keeps the replay copy
          msg.forced = net.forced;
        }
        PushWire(dst, std::move(msg));
      }
      // A wire stamped past the horizon never lands: the sequential run would
      // leave the transfer unfinished, and so does the op entry — it stays in
      // net_ops_ and counts as left-in-system at Finalize.
      return;
    }
    // Transfers run on the target node's NIC fabric; endpoint 0 of the
    // mini-topology is the node, kHostNode the ToR/front-end side.
    const int node = src == interconnect::kHostNode ? dst : src;
    const int fab_src = src == interconnect::kHostNode ? interconnect::kHostNode : 0;
    const int fab_dst = dst == interconnect::kHostNode ? interconnect::kHostNode : 0;
    it->second.transfer = fabrics_[static_cast<std::size_t>(node)]->StartTransfer(
        fab_src, fab_dst, bytes, [this, op_id] { OnNetOpDone(op_id); });
  }

  // Hands a wire to a node LP. At rendezvous the node is parked, so the
  // message stages directly (its stamp is strictly in the node's future);
  // between rendezvous it crosses the SPSC queue, recorded in the edge
  // ledger first so the published wire bound covers it until acked.
  void PushWire(int node, WireMsg msg) {
    const auto n = static_cast<std::size_t>(node);
    if (at_rendezvous_) {
      lps_[n]->StageDirect(std::move(msg));
      return;
    }
    wire_ledgers_[n].Record(msg.stamp);
    while (!lps_[n]->inbox().TryPush(std::move(msg))) {
      std::this_thread::yield();
    }
  }

  void ForwardRequest(int node, Request request, std::optional<RouteReason> forced) {
    ModelState& model = *models_[static_cast<std::size_t>(request.model)];
    ++model.in_network;
    ++requests_forwarded_;
    if (requests_forwarded_c_ != nullptr) {
      requests_forwarded_c_->Inc();
    }
    request.node = node;
    if (attr_) {
      // Closes whatever came before (fresh admission: a zero-width kQueue;
      // limbo drain: the limbo wait; failover: kPreempt) and opens the wire.
      request.ledger.Advance(sim_.now(), attribution::Phase::kNetRequest);
    }
    NetOp op;
    op.kind = NetOp::Kind::kRequest;
    op.node = node;
    op.request = std::move(request);
    op.forced = forced;
    StartOp(interconnect::kHostNode, node, spec_.request_bytes, std::move(op));
  }

  void SendResponse(int node, int replica_id, int gpu_global, TimeUs batch_start,
                    TimeUs batch_end, const Request& request) {
    ++models_[static_cast<std::size_t>(request.model)]->in_network;
    NetOp op;
    op.kind = NetOp::Kind::kResponse;
    op.node = node;
    op.request = request;
    if (attr_) {
      op.request.ledger.Advance(sim_.now(), attribution::Phase::kNetResponse);
    }
    op.replica_id = replica_id;
    op.gpu = gpu_global;
    op.batch_start = batch_start;
    op.batch_end = batch_end;
    StartOp(node, interconnect::kHostNode, spec_.response_bytes, std::move(op));
  }

  void OnNetOpDone(std::uint64_t op_id) {
    auto it = net_ops_.find(op_id);
    ORION_CHECK(it != net_ops_.end());
    NetOp op = std::move(it->second);
    net_ops_.erase(it);
    switch (op.kind) {
      case NetOp::Kind::kRequest: {
        ModelState& model = *models_[static_cast<std::size_t>(op.request.model)];
        ORION_CHECK(model.in_network > 0);
        --model.in_network;
        if (op.cancelled || !nodes_[static_cast<std::size_t>(op.node)].alive()) {
          RehomeOrphan(static_cast<std::size_t>(op.request.model), std::move(op.request),
                       /*was_running=*/true);
        } else {
          Deliver(op.node, std::move(op.request), op.forced);
        }
        break;
      }
      case NetOp::Kind::kResponse: {
        ModelState& model = *models_[static_cast<std::size_t>(op.request.model)];
        ORION_CHECK(model.in_network > 0);
        --model.in_network;
        CompleteRequest(op.request, op.replica_id, op.gpu, op.batch_start, op.batch_end,
                        sim_.now());
        break;
      }
      case NetOp::Kind::kState: {
        if (op.cancelled) {
          break;  // target node died; the replica was killed with it
        }
        const int id = op.replica_id;
        const Replica& r = replica(id);
        if (r.state == Replica::State::kProvisioning) {
          sim_.ScheduleAfter(models_[r.model]->cost.ProvisionUs(),
                             [this, id] { ActivateReplica(id); });
        }
        break;
      }
    }
  }

  // --- Completion accounting. ---

  // `exec_end` is the device batch completion; `complete_us` when the
  // response reached the front-end (identical without a network).
  void CompleteRequest(const Request& request, int replica_id, int gpu_global,
                       TimeUs batch_start, TimeUs exec_end, TimeUs complete_us) {
    ModelState& model = *models_[static_cast<std::size_t>(request.model)];
    model.total_completed->Inc();
    ++model.w_completions;
    bool met = complete_us <= request.deadline_us;
    DurationUs ttft = 0.0;
    DurationUs tpot = 0.0;
    if (model.llm_cost != nullptr) {
      // Per-token SLOs: time-to-first-token and time-per-output-token both
      // have to hold. TPOT averages the post-first-token stream over the
      // decode length (a zero-length generation trivially meets it).
      ORION_CHECK(request.first_token_us >= request.arrival_us);
      ttft = request.first_token_us - request.arrival_us;
      tpot = request.target_tokens > 0
                 ? (complete_us - request.first_token_us) /
                       static_cast<double>(request.target_tokens)
                 : 0.0;
      met = ttft <= model.cfg.llm.ttft_slo_us && tpot <= model.cfg.llm.tpot_slo_us;
    }
    if (attr_ && request.ledger.active()) {
      // Finalize a local copy (the caller's request is const): close the open
      // phase at completion and enforce the sum identity. Every interval
      // between ledger marks was charged to exactly one phase, so the
      // residual is FP rounding only — a violation means an engine path
      // dropped or double-counted time.
      attribution::LatencyLedger ledger = request.ledger;
      const DurationUs e2e = complete_us - request.arrival_us;
      const DurationUs residual = ledger.Finalize(request.arrival_us, complete_us);
      ORION_CHECK_MSG(std::abs(residual) <= 1e-3 + 1e-6 * e2e,
                      "latency ledger identity violated: residual "
                          << residual << "us over e2e " << e2e << "us (request "
                          << request.id << ")");
      if (model.llm_cost != nullptr && !ledger.ttft_marked()) {
        // Request-level LLM batching delivers the batch at once; interpolate
        // the first token inside the execute span, mirroring first_token_us.
        const TimeUs exec_begin = request.start_service_us;
        const DurationUs exec_span = exec_end - exec_begin;
        const double frac = exec_span > 0.0
                                ? (request.first_token_us - exec_begin) / exec_span
                                : 1.0;
        ledger.SynthesizeFirstToken(frac);
      }
      if (InWindow(complete_us)) {
        model.attr->RecordE2e(ledger.phases(), e2e, !met);
        if (model.llm_cost != nullptr) {
          double ttft_phases[attribution::kNumPhases];
          double tpot_phases[attribution::kNumPhases];
          ledger.SplitTtft(ttft_phases, tpot_phases);
          model.attr->RecordTtft(ttft_phases, ttft, ttft > model.cfg.llm.ttft_slo_us);
          model.attr->RecordTpot(tpot_phases, complete_us - request.first_token_us,
                                 tpot > model.cfg.llm.tpot_slo_us);
        }
      }
    }
    if (met) {
      ++model.w_slo_met;
    }
    if (InWindow(complete_us)) {
      model.completed->Inc();
      if (met) {
        model.slo_met->Inc();
      }
      model.latency->Add(complete_us - request.arrival_us);
      model.queueing->Add(request.start_service_us - request.arrival_us);
      if (model.llm_cost != nullptr) {
        model.ttft->Add(ttft);
        model.tpot->Add(tpot);
      }
    }
    if (model.track >= 0) {
      // Request lifecycle: a "request" slice enclosing nested queue, execute
      // and (networked runs) respond phases, one virtual-thread row per
      // request, plus a flow arrow from the execute phase to the device
      // batch that served it.
      const auto row = static_cast<std::int64_t>(request.id);
      telemetry::Labels attrs = {
          {"slo_met", met ? "1" : "0"},
          {"failovers", std::to_string(request.failovers)},
          {"node", std::to_string(request.node)},
          {"replica", std::to_string(replica_id)},
          {"route_reason", serving::RouteReasonName(request.route_reason)}};
      if (model.llm_cost != nullptr) {
        attrs.emplace_back("tokens", std::to_string(1 + request.target_tokens));
        attrs.emplace_back("kv_evictions", std::to_string(request.evictions));
      }
      hub_->spans().Complete(model.track, row, "request", request.arrival_us, complete_us,
                             std::move(attrs), "request");
      hub_->spans().Complete(model.track, row, "queue", request.arrival_us,
                             request.start_service_us, {}, "queue");
      hub_->spans().Complete(model.track, row, "execute", request.start_service_us,
                             exec_end, {}, "execute");
      if (complete_us > exec_end) {
        hub_->spans().Complete(model.track, row, "respond", exec_end, complete_us, {},
                               "respond");
      }
      hub_->spans().FlowStart(model.track, row, request.id, request.start_service_us);
      hub_->spans().FlowEnd(gpu_tracks_[static_cast<std::size_t>(gpu_global)], replica_id,
                            request.id, batch_start);
    }
  }

  // --- Replica lifecycle and placement. ---

  bool AddReplica(std::size_t m, bool immediate = false) {
    ModelState& model = *models_[m];
    int best_node = -1;
    int best_gpu = -1;
    auto best_score = std::make_pair(std::numeric_limits<double>::infinity(),
                                     std::numeric_limits<std::size_t>::max());
    for (int n = 0; n < spec_.num_nodes; ++n) {
      const NodeEngine& node = nodes_[static_cast<std::size_t>(n)];
      if (!node.alive()) {
        continue;
      }
      cluster::PlacementEngine::PlacementScore score;
      const auto local = node.BestPlacement(model.cost.signature(),
                                            config_.device.memory_bytes,
                                            config_.max_replicas_per_gpu, &score);
      if (!local.has_value()) {
        continue;
      }
      // Strict < with ascending node order: equivalent to the flat
      // BestGpuFor over the node-major global GPU list.
      if (score < best_score) {
        best_score = score;
        best_node = n;
        best_gpu = *local;
      }
    }
    if (best_node < 0) {
      return false;
    }
    const int id = static_cast<int>(directory_.size());
    const int slot = nodes_[static_cast<std::size_t>(best_node)].CreateReplica(
        id, m, best_gpu, immediate, sim_.now());
    directory_.push_back({best_node, slot});
    model.replicas.push_back(id);
    if (!immediate) {
      if (NetworkOn()) {
        // Ship the model state to the node first; the provisioning delay
        // starts when the weights arrive.
        NetOp op;
        op.kind = NetOp::Kind::kState;
        op.node = best_node;
        op.replica_id = id;
        StartOp(interconnect::kHostNode, best_node, model.cost.state_bytes(),
                std::move(op));
      } else {
        sim_.ScheduleAfter(model.cost.ProvisionUs(), [this, id] { ActivateReplica(id); });
      }
    }
    return true;
  }

  void ActivateReplica(int id) {
    Replica& r = replica(id);
    if (r.state != Replica::State::kProvisioning) {
      return;  // killed while provisioning
    }
    r.state = Replica::State::kActive;
    r.active_since = sim_.now();
    if (attr_) {
      r.idle_since = sim_.now();  // the idle clock starts with the replica
    }
    ModelState& model = *models_[r.model];
    Mark("replica-active", {{"service", model.label},
                            {"replica", std::to_string(id)},
                            {"gpu", std::to_string(topo_.GlobalGpu(r.node, r.gpu))}});
    while (!model.limbo.empty()) {
      Request request = std::move(model.limbo.front());
      model.limbo.pop_front();
      const int node = PickNode(r.model);
      ORION_CHECK(node >= 0);  // this replica just activated
      if (NetworkOn()) {
        ForwardRequest(node, std::move(request), RouteReason::kLimboDrain);
      } else {
        Deliver(node, std::move(request), RouteReason::kLimboDrain);
      }
    }
  }

  // Stops routing to the least-loaded active replica; it retires once empty.
  // Returns false when the model has no active replica to remove.
  bool RemoveOneReplica(std::size_t m) {
    int victim = -1;
    std::size_t victim_load = 0;
    for (const int id : models_[m]->replicas) {
      const Replica& r = replica(id);
      if (r.state != Replica::State::kActive) {
        continue;
      }
      const std::size_t load = r.batcher.size() + r.in_flight.size();
      if (victim < 0 || load < victim_load) {
        victim = id;
        victim_load = load;
      }
    }
    if (victim < 0) {
      return false;
    }
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(victim)];
    nodes_[static_cast<std::size_t>(ref.node)].DrainReplica(ref.slot);
    return true;
  }

  // --- Faults and failover. ---

  void ArmFaults() {
    for (const fault::FaultEvent& event : config_.fault_plan.events) {
      switch (event.kind) {
        case fault::FaultKind::kGpuDown:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyGpuDown(event); });
          break;
        case fault::FaultKind::kClientCrash:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyReplicaCrash(event); });
          break;
        case fault::FaultKind::kNodeDown:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyNodeDown(event); });
          break;
        default:
          // Device/link/profile faults act below this abstraction level.
          faults_skipped_->Inc();
          break;
      }
    }
  }

  void ApplyGpuDown(const fault::FaultEvent& event) {
    if (event.gpu < 0 || event.gpu >= topo_.total_gpus()) {
      faults_skipped_->Inc();
      return;
    }
    const int n = topo_.NodeOfGpu(event.gpu);
    const int local = topo_.LocalGpu(event.gpu);
    GpuShard& shard = nodes_[static_cast<std::size_t>(n)].gpu(local);
    if (!shard.alive) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    Mark("gpu-down", {{"gpu", std::to_string(event.gpu)}});
    shard.alive = false;
    const std::vector<int> victims = shard.replicas;  // the kills mutate the list
    for (const int slot : victims) {
      KillAndRehome(n, slot);
    }
  }

  void ApplyReplicaCrash(const fault::FaultEvent& event) {
    if (event.client < 0 || event.client >= static_cast<int>(directory_.size()) ||
        replica(event.client).state == Replica::State::kDead) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(event.client)];
    KillAndRehome(ref.node, ref.slot);
  }

  void ApplyNodeDown(const fault::FaultEvent& event) {
    const int n = event.node;
    if (n < 0 || n >= spec_.num_nodes || !nodes_[static_cast<std::size_t>(n)].alive()) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    ++node_faults_;
    if (node_faults_c_ != nullptr) {
      node_faults_c_->Inc();
    }
    Mark("node-down", {{"node", std::to_string(n)}});
    NodeEngine& node = nodes_[static_cast<std::size_t>(n)];
    node.MarkDead();
    if (!fabrics_.empty()) {
      // Cut the NIC and abort every transfer touching the node. Cancelled
      // forwards re-route to survivors when their abort callback fires;
      // cancelled responses complete at the abort instant.
      interconnect::Fabric& fabric = *fabrics_[static_cast<std::size_t>(n)];
      fabric.SetLinkFactor(/*link=*/0, /*forward=*/true, 0.0);
      fabric.SetLinkFactor(/*link=*/0, /*forward=*/false, 0.0);
      if (parallel_) {
        ParallelNodeDownSweep(n);
      } else {
        std::vector<std::uint64_t> doomed;
        for (auto& [op_id, op] : net_ops_) {
          if (op.node == n && !op.cancelled) {
            op.cancelled = true;
            doomed.push_back(op_id);
          }
        }
        for (const std::uint64_t op_id : doomed) {
          fabric.CancelTransfer(net_ops_.at(op_id).transfer);
        }
      }
    }
    for (int local = 0; local < node.num_gpus(); ++local) {
      const std::vector<int> victims = node.gpu(local).replicas;
      for (const int slot : victims) {
        KillAndRehome(n, slot);
      }
    }
  }

  // Replica death: orphaned requests re-route to surviving replicas of the
  // model (or limbo/drop), and a replacement is provisioned on a surviving
  // GPU. The batch on the device at the instant of death is lost with it —
  // its requests restart from the queue of whichever replica inherits them.
  void KillAndRehome(int n, int slot) {
    NodeEngine& node = nodes_[static_cast<std::size_t>(n)];
    Replica& r = node.replica(slot);
    const std::size_t m = r.model;
    const int id = r.id;
    const int gpu_global = topo_.GlobalGpu(n, r.gpu);
    const bool was_running =
        r.state == Replica::State::kActive || r.state == Replica::State::kDraining;
    std::vector<Request> orphans = node.KillReplica(slot);
    replicas_lost_->Inc();
    Mark("replica-killed", {{"service", models_[m]->label},
                            {"replica", std::to_string(id)},
                            {"gpu", std::to_string(gpu_global)}});
    for (Request& request : orphans) {
      RehomeOrphan(m, std::move(request), was_running);
    }
    if (config_.replace_lost_replicas) {
      if (AddReplica(m)) {
        replacements_->Inc();
      } else {
        replacement_failures_->Inc();
      }
    }
  }

  void RehomeOrphan(std::size_t m, Request request, bool was_running) {
    ModelState& model = *models_[m];
    ++request.failovers;
    if (attr_) {
      // Whatever leg the orphan was on when its replica/node died (wire,
      // queue already closed by KillReplica) ends here; everything until it
      // lands somewhere new — re-forward, limbo — is preemption fallout.
      request.ledger.Advance(sim_.now(), attribution::Phase::kPreempt);
    }
    if (InWindow(sim_.now())) {
      model.failed_over->Inc();
    }
    const int node = PickNode(m);
    if (node < 0) {
      if (PendingReplicas(m) > 0 || (config_.replace_lost_replicas && was_running)) {
        model.limbo.push_back(std::move(request));
      } else {
        model.total_dropped->Inc();
        if (InWindow(sim_.now())) {
          model.dropped->Inc();
        }
        Mark("drop", {{"service", model.label}});
      }
      return;
    }
    if (NetworkOn()) {
      ForwardRequest(node, std::move(request), RouteReason::kFailoverRehome);
    } else {
      Deliver(node, std::move(request), RouteReason::kFailoverRehome);
    }
  }

  // --- Autoscaling. ---

  void EvalAutoscaler() {
    const TimeUs now = sim_.now();
    const DurationUs period = config_.autoscaler.eval_period_us;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      serving::ModelWindowSignals signals;
      signals.arrivals = model.w_arrivals;
      signals.completions = model.w_completions;
      signals.slo_met = model.w_slo_met;
      signals.shed = model.w_shed;
      signals.min_replicas = model.cfg.min_replicas;
      signals.max_replicas = model.cfg.max_replicas;
      signals.pending_replicas = PendingReplicas(m);
      double busy = 0.0;
      int active = 0;
      for (const int id : model.replicas) {
        Replica& r = replica(id);
        if (r.state != Replica::State::kActive && r.state != Replica::State::kDraining) {
          continue;
        }
        if (r.busy) {  // account the running batch's elapsed part
          r.busy_in_eval_window_us += now - r.batch_start;
          r.batch_start = now;
        }
        busy += r.busy_in_eval_window_us;
        r.busy_in_eval_window_us = 0.0;
        ++active;
      }
      signals.active_replicas = active;
      signals.utilization = active > 0 ? busy / (period * static_cast<double>(active)) : 0.0;

      serving::ScaleReason reason = serving::ScaleReason::kNone;
      switch (serving::DecideWithReason(config_.autoscaler, signals, &reason)) {
        case serving::ScaleDecision::kUp:
          if (AddReplica(m)) {
            scale_ups_->Inc();
            Mark("scale-up", {{"service", model.label},
                              {"reason", serving::ScaleReasonName(reason)}});
          } else {
            scale_failures_->Inc();
            Mark("scale-failure", {{"service", model.label}});
          }
          break;
        case serving::ScaleDecision::kDown:
          if (RemoveOneReplica(m)) {
            scale_downs_->Inc();
            Mark("scale-down", {{"service", model.label},
                                {"reason", serving::ScaleReasonName(reason)}});
          }
          break;
        case serving::ScaleDecision::kHold:
          break;
      }
      model.w_arrivals = 0;
      model.w_completions = 0;
      model.w_slo_met = 0;
      model.w_shed = 0;
    }
    sim_.ScheduleAfter(period, [this] { EvalAutoscaler(); });
  }

  // --- Results. ---

  ClusterResult Finalize() {
    ClusterResult cluster;
    serving::ServingResult& result = cluster.serving;
    result.window_us = config_.duration_us;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      serving::ModelServingResult out;
      out.name = workloads::WorkloadName(model.cfg.workload);
      out.tier = model.cfg.tier;
      out.offered = static_cast<std::size_t>(model.offered->AsCount());
      out.completed = static_cast<std::size_t>(model.completed->AsCount());
      out.slo_met = static_cast<std::size_t>(model.slo_met->AsCount());
      out.shed = static_cast<std::size_t>(model.shed->AsCount());
      out.dropped = static_cast<std::size_t>(model.dropped->AsCount());
      out.failed_over = static_cast<std::size_t>(model.failed_over->AsCount());
      // Clamped: completions of pre-window arrivals can push the windowed
      // ratio a hair over 1 at light load.
      out.slo_attainment =
          out.offered > 0 ? std::min(1.0, static_cast<double>(out.slo_met) /
                                              static_cast<double>(out.offered))
                          : 1.0;
      out.throughput_rps =
          static_cast<double>(out.completed) / UsToSec(config_.duration_us);
      out.latency = model.latency->window();
      out.queueing = model.queueing->window();
      out.batches = static_cast<std::size_t>(model.batches->AsCount());
      out.mean_batch_size =
          out.batches > 0 ? model.batched_requests->value() /
                                static_cast<double>(out.batches)
                          : 0.0;
      if (model.llm_cost != nullptr) {
        out.tokens = static_cast<std::size_t>(model.tokens->AsCount());
        out.prefills = static_cast<std::size_t>(model.prefills->AsCount());
        out.decode_steps = static_cast<std::size_t>(model.decode_steps->AsCount());
        out.kv_evictions = static_cast<std::size_t>(model.kv_evictions->AsCount());
        out.ttft = model.ttft->window();
        out.tpot = model.tpot->window();
      }
      out.total_offered = static_cast<std::size_t>(model.total_offered->AsCount());
      out.total_completed = static_cast<std::size_t>(model.total_completed->AsCount());
      out.total_shed = static_cast<std::size_t>(model.total_shed->AsCount());
      out.total_dropped = static_cast<std::size_t>(model.total_dropped->AsCount());
      std::size_t left = model.limbo.size() + model.in_network;
      for (const int id : model.replicas) {
        const Replica& r = replica(id);
        left += r.batcher.size() + r.in_flight.size();
        if (r.state == Replica::State::kActive) {
          ++out.final_replicas;
          AccountReplicaTime(r.active_since);
        } else if (r.state == Replica::State::kDraining) {
          AccountReplicaTime(r.active_since);
        }
      }
      out.left_in_system = left;
      // Export the closing term of the accounting identity so a metrics
      // snapshot alone can verify
      //   offered_total == completed_total + shed_total + dropped_total
      //                    + left_in_system.
      metrics_->GetGauge("serving.left_in_system", {{"service", model.label}})
          ->Set(static_cast<double>(left));
      metrics_->GetGauge("serving.final_replicas", {{"service", model.label}})
          ->Set(static_cast<double>(out.final_replicas));
      ORION_CHECK_MSG(out.total_offered == out.total_completed + out.total_shed +
                                               out.total_dropped + out.left_in_system,
                      "request accounting identity violated for " << out.name);
      result.models.push_back(std::move(out));
    }
    result.scale_ups = static_cast<std::size_t>(scale_ups_->AsCount());
    result.scale_downs = static_cast<std::size_t>(scale_downs_->AsCount());
    result.scale_failures = static_cast<std::size_t>(scale_failures_->AsCount());
    result.faults_injected = static_cast<std::size_t>(faults_injected_->AsCount());
    result.faults_skipped = static_cast<std::size_t>(faults_skipped_->AsCount());
    result.replicas_lost = static_cast<std::size_t>(replicas_lost_->AsCount());
    result.replacements = static_cast<std::size_t>(replacements_->AsCount());
    result.replacement_failures =
        static_cast<std::size_t>(replacement_failures_->AsCount());
    result.replica_seconds = replica_seconds_->value();
    for (const NodeEngine& node : nodes_) {
      for (int local = 0; local < node.num_gpus(); ++local) {
        if (node.gpu(local).alive) {
          ++result.gpus_alive_end;
        }
      }
    }
    metrics_->GetGauge("serving.gpus_alive")
        ->Set(static_cast<double>(result.gpus_alive_end));

    for (const NodeEngine& node : nodes_) {
      NodeSummary summary;
      summary.node = node.node_id();
      summary.alive_end = node.alive();
      summary.replicas_created = node.replicas_created();
      summary.replicas_killed = node.replicas_killed();
      summary.batches = node.batches_served();
      summary.requests = node.requests_served();
      cluster.nodes.push_back(summary);
      if (node.alive()) {
        ++cluster.nodes_alive_end;
      }
    }
    cluster.node_faults = node_faults_;
    cluster.requests_forwarded = requests_forwarded_;
    for (const auto& fabric : fabrics_) {
      // Each mini-topology has one link (the NIC); forward is host -> node.
      cluster.request_bytes_moved += fabric->BytesMoved(/*link=*/0, /*forward=*/true);
      cluster.response_bytes_moved += fabric->BytesMoved(/*link=*/0, /*forward=*/false);
    }
    if (spec_.num_nodes > 1) {
      metrics_->GetGauge("datacenter.nodes_alive")
          ->Set(static_cast<double>(cluster.nodes_alive_end));
    }
    return cluster;
  }

  // --- Parallel run loop (parallel_ only; DESIGN.md §16). ---

  // Drives the cluster LP on the calling thread while worker threads poll the
  // node LPs. Phases are delimited by the static rendezvous times: within a
  // phase every LP merges its own events with staged inter-LP messages under
  // the conservative bounds; at each static the fleet parks, the cluster runs
  // the control-plane events (faults, autoscaler) against exact node state
  // with the unchanged sequential code, resyncs the mirror, and releases.
  ClusterResult RunParallel() {
    ResyncMirror();
    for (auto& lp : lps_) {
      lp->SetDirect(false);
    }
    at_rendezvous_ = false;
    const int workers =
        std::max(1, std::min(lp_threads_ - 1, spec_.num_nodes));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([this, w, workers] {
        while (true) {
          bool progress = false;
          bool all_finished = true;
          for (int n = w; n < spec_.num_nodes; n += workers) {
            NodeLp& lp = *lps_[static_cast<std::size_t>(n)];
            progress = lp.Poll() || progress;
            all_finished = all_finished && lp.finished();
          }
          if (all_finished) {
            return;
          }
          if (!progress) {
            std::this_thread::yield();
          }
        }
      });
    }

    for (std::size_t k = 0; k < statics_.size(); ++k) {
      const TimeUs s = statics_[k];
      while (true) {
        bool progress = DrainNodeMsgs();
        progress = PumpCluster(s) || progress;
        PublishWireBounds();
        if (BarrierReady(s)) {
          break;
        }
        if (!progress) {
          std::this_thread::yield();
        }
      }
      // Rendezvous: every node is parked exactly at `s` with nothing below it
      // anywhere in the system. Control-plane events at `s` run on the
      // sequential code paths against direct node state; the park locks keep
      // the parked keep-alive publishes out for the whole window.
      for (auto& lp : lps_) {
        lp->Lock();
      }
      for (auto& lp : lps_) {
        lp->SetDirect(true);
      }
      at_rendezvous_ = true;
      sim_.RunUntil(s);
      ResyncMirror();
      at_rendezvous_ = false;
      for (auto& lp : lps_) {
        lp->SetDirect(false);
        // Fold any directly-staged wire into the node's published send_lb
        // before the fleet resumes (the node's own publication is stale).
        lp->RepublishClocks();
        lp->Unlock();
      }
      released_.store(k + 1, std::memory_order_release);
    }

    // Final drain: the last static was the horizon. Nodes burn down their
    // horizon-stamped remainder; the cluster must NOT apply any of the
    // resulting messages until every node is done, or the deterministic
    // (stamp, node, sequence) application order could be violated by a
    // straggler still pushing. Publishing bounds is enough for the nodes to
    // finish: with the ledgers pruned, every wire bound sits at
    // horizon + lookahead, strictly past the horizon.
    while (true) {
      bool all_done = true;
      for (auto& lp : lps_) {
        all_done = all_done && lp->clocks().done.load(std::memory_order_acquire);
      }
      if (all_done) {
        break;
      }
      const bool progress = DrainNodeMsgs();
      PublishWireBounds();
      if (!progress) {
        std::this_thread::yield();
      }
    }
    for (std::thread& t : threads) {
      t.join();
    }
    DrainNodeMsgs();
    while (!cstaged_.empty()) {
      const TimeUs st = std::get<0>(cstaged_.begin()->first);
      ORION_CHECK(st <= horizon_);
      while (sim_.NextEventTime() < st) {
        sim_.RunOneBefore(st);
      }
      ApplyStagedNodeMsg();
    }
    sim_.RunUntil(horizon_);
    at_rendezvous_ = true;  // Finalize reads node state directly
    return Finalize();
  }

  // Stages every queued node message in deterministic order and publishes the
  // acks with the next PublishWireBounds. Returns whether anything arrived.
  bool DrainNodeMsgs() {
    bool any = false;
    for (int n = 0; n < spec_.num_nodes; ++n) {
      auto& outbox = lps_[static_cast<std::size_t>(n)]->outbox();
      NodeMsg msg;
      while (outbox.TryPop(&msg)) {
        const TimeUs stamp = msg.stamp;
        cstaged_.emplace(std::make_tuple(stamp, n, cstage_seq_[static_cast<std::size_t>(n)]++),
                         std::move(msg));
        any = true;
      }
    }
    return any;
  }

  // The lower bound on anything node `n` may still deliver to the cluster.
  // The node's published clock already folds its own un-acked sends (so
  // anything sitting un-drained in its outbox is covered); the cluster folds
  // its own un-acked wires to the node, because an un-acked wire stamped w
  // can still wake the node at w, below whatever clock the node published.
  TimeUs NodeBound(int n) const {
    const auto idx = static_cast<std::size_t>(n);
    return std::min(lps_[idx]->clocks().send_lb.Load(),
                    wire_ledgers_[idx].MinUnackedStamp());
  }

  // Merges staged node messages with the cluster's own events, staged-first
  // at equal stamps, strictly below min(all node bounds, s). Returns whether
  // anything ran.
  bool PumpCluster(TimeUs s) {
    bool progress = false;
    while (true) {
      TimeUs bound = s;
      for (int n = 0; n < spec_.num_nodes; ++n) {
        bound = std::min(bound, NodeBound(n));
      }
      const TimeUs own = sim_.NextEventTime();
      const TimeUs st = cstaged_.empty() ? std::numeric_limits<TimeUs>::infinity()
                                         : std::get<0>(cstaged_.begin()->first);
      if (st < bound && st < s && st <= own) {
        ApplyStagedNodeMsg();
      } else if (own < bound && own < s && own < st) {
        if (!sim_.RunOneBefore(std::min(bound, s))) {
          break;
        }
      } else {
        break;
      }
      progress = true;
      DrainNodeMsgs();
    }
    return progress;
  }

  // Prunes the wire ledgers against the nodes' published acks, then publishes
  // each node's wire bound and the cluster's ack of its outbox pops. Order
  // per node: clock first, ack second, both release (see src/sim/lp.h).
  void PublishWireBounds() {
    TimeUs exec_lb = sim_.NextEventTime();
    if (!cstaged_.empty()) {
      exec_lb = std::min(exec_lb, std::get<0>(cstaged_.begin()->first));
    }
    for (int n = 0; n < spec_.num_nodes; ++n) {
      const auto idx = static_cast<std::size_t>(n);
      wire_ledgers_[idx].Prune(
          lps_[idx]->clocks().in_acked.load(std::memory_order_acquire));
      exec_lb = std::min(exec_lb, NodeBound(n));
    }
    for (int n = 0; n < spec_.num_nodes; ++n) {
      const auto idx = static_cast<std::size_t>(n);
      LpClockBlock& clocks = lps_[idx]->clocks();
      clocks.wire_lb.Store(
          std::min(exec_lb + lookahead_, wire_ledgers_[idx].MinUnackedStamp()));
      clocks.out_acked.store(lps_[idx]->outbox().Popped(), std::memory_order_release);
    }
  }

  // All nodes parked at `s`, every queue drained, nothing staged below `s`
  // anywhere, and the cluster's own frontier at or past `s`.
  bool BarrierReady(TimeUs s) {
    for (const auto& lp : lps_) {
      if (lp->clocks().parked_at.Load() != s) {
        return false;
      }
    }
    DrainNodeMsgs();  // post-park leftovers, visible after the acquiring reads
    for (const auto& lp : lps_) {
      if (!lp->outbox().Empty()) {
        return false;
      }
    }
    if (!cstaged_.empty() && std::get<0>(cstaged_.begin()->first) < s) {
      return false;
    }
    return sim_.NextEventTime() >= s;
  }

  // Applies the front staged node message at its stamp, on the cluster clock.
  void ApplyStagedNodeMsg() {
    auto it = cstaged_.begin();
    const auto [st, n, seq] = it->first;
    NodeMsg msg = std::move(it->second);
    cstaged_.erase(it);
    sim_.AdvanceClockTo(st);
    ApplyNodeMsg(n, std::move(msg));
  }

  void ApplyNodeMsg(int n, NodeMsg msg) {
    const auto idx = static_cast<std::size_t>(n);
    switch (msg.kind) {
      case NodeMsg::Kind::kMirror: {
        MirrorNode& node = mirror_[idx];
        const auto slot = static_cast<std::size_t>(msg.slot);
        const bool was_dead = node.slots[slot].state == Replica::State::kDead;
        node.slots[slot] = msg.mirror;
        if (!was_dead && msg.mirror.state == Replica::State::kDead) {
          // Retired mid-phase (drain completed): the slot leaves its GPU
          // shard, exactly as NodeEngine::ReleaseFromGpu does node-side.
          auto& shard = node.shard_slots[static_cast<std::size_t>(
              node.slot_gpu[slot])];
          shard.erase(std::find(shard.begin(), shard.end(), msg.slot));
        }
        break;
      }
      case NodeMsg::Kind::kWireDone: {
        auto it = net_ops_.find(msg.op_id);
        ORION_CHECK(it != net_ops_.end());
        ModelState& model = *models_[static_cast<std::size_t>(it->second.request.model)];
        ORION_CHECK(model.in_network > 0);
        --model.in_network;
        net_ops_.erase(it);
        break;
      }
      case NodeMsg::Kind::kStateDone: {
        auto it = net_ops_.find(msg.op_id);
        ORION_CHECK(it != net_ops_.end());
        const int id = it->second.replica_id;
        net_ops_.erase(it);
        if (MirrorOf(id).state == Replica::State::kProvisioning) {
          const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
          const MirrorNode& node = mirror_[static_cast<std::size_t>(ref.node)];
          const auto m = static_cast<std::size_t>(
              node.slot_model[static_cast<std::size_t>(ref.slot)]);
          const TimeUs t_act = sim_.now() + models_[m]->cost.ProvisionUs();
          sim_.ScheduleAt(t_act, [this, id] { ActivateReplicaParallel(id); });
          if (t_act <= horizon_) {
            WireMsg wire;
            wire.kind = WireMsg::Kind::kActivate;
            wire.stamp = t_act;
            wire.slot = ref.slot;
            PushWire(ref.node, std::move(wire));
          }
        }
        break;
      }
      case NodeMsg::Kind::kOrphan: {
        RehomeOrphan(static_cast<std::size_t>(msg.model), std::move(msg.request),
                     /*was_running=*/true);
        break;
      }
      case NodeMsg::Kind::kResponsesStarted: {
        models_[static_cast<std::size_t>(msg.model)]->in_network +=
            static_cast<std::size_t>(msg.count);
        if (fabric_started_c_ != nullptr) {
          fabric_started_c_->Inc(static_cast<double>(msg.count));
          fabric_bytes_c_->Inc(static_cast<double>(msg.count) *
                               static_cast<double>(spec_.response_bytes));
        }
        break;
      }
      case NodeMsg::Kind::kBatchStats: {
        if (!InWindow(msg.stamp)) {
          break;
        }
        ModelState& model = *models_[static_cast<std::size_t>(msg.model)];
        model.batches->Inc();
        model.batched_requests->Inc(static_cast<double>(msg.count));
        if (model.llm_cost != nullptr) {
          model.tokens->Inc(msg.llm_tokens);
          model.prefills->Inc(static_cast<double>(msg.count));
        }
        break;
      }
      case NodeMsg::Kind::kDecodeStep: {
        if (!InWindow(msg.stamp)) {
          break;
        }
        ModelState& model = *models_[static_cast<std::size_t>(msg.model)];
        model.decode_steps->Inc();
        model.tokens->Inc(static_cast<double>(msg.count));
        if (msg.prefills > 0) {
          model.prefills->Inc(static_cast<double>(msg.prefills));
        }
        model.batches->Inc();
        model.batched_requests->Inc(static_cast<double>(msg.count));
        break;
      }
      case NodeMsg::Kind::kKvEvict: {
        if (InWindow(msg.stamp)) {
          models_[static_cast<std::size_t>(msg.model)]->kv_evictions->Inc();
        }
        break;
      }
      case NodeMsg::Kind::kRetire: {
        AccountReplicaTime(msg.t0);
        break;
      }
      case NodeMsg::Kind::kResponseDone: {
        ModelState& model = *models_[static_cast<std::size_t>(msg.request.model)];
        ORION_CHECK(model.in_network > 0);
        --model.in_network;
        CompleteRequest(msg.request, msg.replica_id, msg.gpu, msg.t0, msg.t1,
                        sim_.now());
        break;
      }
    }
  }

  // Provisioning completes: the cluster-side twin of ActivateReplica. At a
  // rendezvous the sequential version runs directly; mid-phase the mirror
  // flips (the node flips its own replica via the kActivate wire at the same
  // virtual instant) and the limbo queue drains over mirror routing.
  void ActivateReplicaParallel(int id) {
    if (at_rendezvous_) {
      ActivateReplica(id);
      return;
    }
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
    MirrorReplica& mr = mirror_[static_cast<std::size_t>(ref.node)]
                            .slots[static_cast<std::size_t>(ref.slot)];
    if (mr.state != Replica::State::kProvisioning) {
      return;  // killed while provisioning
    }
    mr.state = Replica::State::kActive;
    const auto m = static_cast<std::size_t>(
        mirror_[static_cast<std::size_t>(ref.node)]
            .slot_model[static_cast<std::size_t>(ref.slot)]);
    ModelState& model = *models_[m];
    while (!model.limbo.empty()) {
      Request request = std::move(model.limbo.front());
      model.limbo.pop_front();
      const int node = PickNode(m);
      ORION_CHECK(node >= 0);  // this replica just activated
      ForwardRequest(node, std::move(request), RouteReason::kLimboDrain);
    }
  }

  // Rebuilds the full mirror from live node state (cluster thread; all nodes
  // parked or not yet started) and re-arms each node's delta baseline.
  void ResyncMirror() {
    for (int n = 0; n < spec_.num_nodes; ++n) {
      const auto idx = static_cast<std::size_t>(n);
      MirrorNode& mn = mirror_[idx];
      const NodeEngine& node = nodes_[idx];
      mn.alive = node.alive();
      const int num_slots = node.num_slots();
      mn.slots.resize(static_cast<std::size_t>(num_slots));
      mn.slot_model.resize(static_cast<std::size_t>(num_slots));
      mn.slot_id.resize(static_cast<std::size_t>(num_slots));
      mn.slot_gpu.resize(static_cast<std::size_t>(num_slots));
      for (int slot = 0; slot < num_slots; ++slot) {
        const Replica& r = node.replica(slot);
        const auto i = static_cast<std::size_t>(slot);
        mn.slots[i].state = r.state;
        mn.slots[i].busy = r.busy;
        mn.slots[i].busy_until = r.busy_until;
        mn.slots[i].queued = r.batcher.size();
        mn.slots[i].in_flight = r.in_flight.size();
        mn.slot_model[i] = static_cast<int>(r.model);
        mn.slot_id[i] = r.id;
        mn.slot_gpu[i] = r.gpu;
      }
      mn.shard_slots.resize(static_cast<std::size_t>(node.num_gpus()));
      for (int g = 0; g < node.num_gpus(); ++g) {
        mn.shard_slots[static_cast<std::size_t>(g)] = node.gpu(g).replicas;
      }
      lps_[idx]->RefreshBaseline();
    }
  }

  // The parallel twin of the sequential doomed-transfer sweep in
  // ApplyNodeDown: cancels every leg touching the dead node and replays the
  // abort callbacks the single-clock run would have produced, in creation
  // order, at the exact times fabric cancellation semantics dictate (in-setup
  // legs complete at setup end, streaming legs at the cancel instant).
  void ParallelNodeDownSweep(int n) {
    const TimeUs t_f = sim_.now();
    NodeLp& lp = *lps_[static_cast<std::size_t>(n)];
    struct Doomed {
      TimeUs created = 0.0;
      int src = 0;  // 0 = cluster-side NetOp, 1 = node-side response
      std::uint64_t op_id = 0;
      std::size_t ridx = 0;
    };
    std::vector<Doomed> doomed;
    for (auto& [op_id, op] : net_ops_) {
      if (op.node == n && !op.cancelled) {
        op.cancelled = true;
        doomed.push_back({op.started, 0, op_id, 0});
      }
    }
    for (std::size_t i = 0; i < lp.response_ops().size(); ++i) {
      const NodeLp::ResponseOp& rop = lp.response_ops()[i];
      if (!rop.cancelled && !rop.completed) {
        doomed.push_back({rop.created, 1, 0, i});
      }
    }
    // Creation order == the sequential sweep's op-id order (all legs lived in
    // one table there); stable for the measure-zero equal-time case.
    std::stable_sort(doomed.begin(), doomed.end(),
                     [](const Doomed& a, const Doomed& b) {
                       return a.created < b.created ||
                              (a.created == b.created && a.src < b.src);
                     });
    for (const Doomed& d : doomed) {
      if (d.src == 0) {
        NetOp& op = net_ops_.at(d.op_id);
        const std::uint64_t op_id = d.op_id;
        const bool applied = lp.HasAppliedWire(op_id);
        if (op.kind == NetOp::Kind::kState) {
          // The abort callback only erased the op; timing is unobservable.
          if (applied) {
            lp.CancelAppliedWire(op_id);
          } else {
            lp.Tombstone(op_id);
          }
          net_ops_.erase(op_id);
          continue;
        }
        ORION_CHECK(op.kind == NetOp::Kind::kRequest);
        if (applied) {
          // Streaming on the node NIC: the abort fires at the cancel instant.
          lp.CancelAppliedWire(op_id);
          sim_.ScheduleAfter(0.0, [this, op_id] { FinishCancelledRequest(op_id); });
        } else {
          // Still in "setup" (on the wire toward the node, stamp >= t_f): the
          // abort fires when the setup would have ended. Past the horizon it
          // never fires, leaving the op in-system — as sequentially.
          lp.Tombstone(op_id);
          sim_.ScheduleAt(op.stamp, [this, op_id] { FinishCancelledRequest(op_id); });
        }
      } else {
        const NodeLp::CancelledResponse effect =
            lp.CancelResponse(d.ridx, t_f, spec_.nic_latency_us);
        const std::uint64_t op_id = next_op_id_++;
        NetOp op;
        op.kind = NetOp::Kind::kResponse;
        op.cancelled = true;
        op.node = n;
        op.request = std::move(effect.request);
        op.replica_id = effect.replica_id;
        op.gpu = effect.gpu;
        op.batch_start = effect.batch_start;
        op.batch_end = effect.batch_end;
        net_ops_.emplace(op_id, std::move(op));
        if (effect.when == t_f) {
          sim_.ScheduleAfter(0.0, [this, op_id] { FinishCancelledResponse(op_id); });
        } else {
          sim_.ScheduleAt(effect.when, [this, op_id] { FinishCancelledResponse(op_id); });
        }
      }
    }
  }

  void FinishCancelledRequest(std::uint64_t op_id) {
    auto it = net_ops_.find(op_id);
    ORION_CHECK(it != net_ops_.end());
    NetOp op = std::move(it->second);
    net_ops_.erase(it);
    ModelState& model = *models_[static_cast<std::size_t>(op.request.model)];
    ORION_CHECK(model.in_network > 0);
    --model.in_network;
    RehomeOrphan(static_cast<std::size_t>(op.request.model), std::move(op.request),
                 /*was_running=*/true);
  }

  void FinishCancelledResponse(std::uint64_t op_id) {
    auto it = net_ops_.find(op_id);
    ORION_CHECK(it != net_ops_.end());
    NetOp op = std::move(it->second);
    net_ops_.erase(it);
    ModelState& model = *models_[static_cast<std::size_t>(op.request.model)];
    ORION_CHECK(model.in_network > 0);
    --model.in_network;
    CompleteRequest(op.request, op.replica_id, op.gpu, op.batch_start, op.batch_end,
                    sim_.now());
  }

  serving::ServingConfig config_;
  ClusterSpec spec_;
  ClusterTopology topo_;
  NodePolicy node_policy_;
  Simulator sim_;
  serving::Router router_;
  serving::AdmissionController admission_;
  TimeUs horizon_;
  std::deque<NodeEngine> nodes_;
  // One fabric per node NIC (empty when the network is off). Single-hop star
  // routes never share links, so per-NIC fabrics are model-identical to one
  // fabric over the whole star — and each node's network state stays
  // self-contained for the parallel LP partitioning.
  std::vector<std::unique_ptr<interconnect::Fabric>> fabrics_;
  std::vector<std::unique_ptr<ModelState>> models_;
  std::vector<ReplicaRef> directory_;  // global replica id -> (node, slot)
  std::vector<std::uint64_t> rr_node_cursor_;  // level-1 round-robin, per model
  std::uint64_t next_request_id_ = 0;

  // In-flight network payloads, keyed by a monotonically increasing op id so
  // iteration (the node-down sweep) follows start order deterministically.
  std::map<std::uint64_t, NetOp> net_ops_;
  std::uint64_t next_op_id_ = 0;
  std::size_t node_faults_ = 0;
  std::size_t requests_forwarded_ = 0;

  // Telemetry (bound in BindTelemetry; metrics_ falls back to the private
  // registry when no hub is configured, so the instruments are never null).
  telemetry::Hub* hub_ = nullptr;
  telemetry::MetricRegistry local_metrics_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  bool attr_ = false;  // hub attribution enabled (BindTelemetry)
  telemetry::TrackId control_track_ = -1;
  std::vector<telemetry::TrackId> gpu_tracks_;  // by global GPU index
  telemetry::Counter* scale_ups_ = nullptr;
  telemetry::Counter* scale_downs_ = nullptr;
  telemetry::Counter* scale_failures_ = nullptr;
  telemetry::Counter* faults_injected_ = nullptr;
  telemetry::Counter* faults_skipped_ = nullptr;
  telemetry::Counter* replicas_lost_ = nullptr;
  telemetry::Counter* replacements_ = nullptr;
  telemetry::Counter* replacement_failures_ = nullptr;
  telemetry::Counter* replica_seconds_ = nullptr;  // replica-seconds accrue monotonically
  telemetry::Counter* node_faults_c_ = nullptr;           // num_nodes > 1 only
  telemetry::Counter* requests_forwarded_c_ = nullptr;    // num_nodes > 1 only

  // --- Parallel LP runtime (engaged when parallel_; DESIGN.md §16). ---

  bool parallel_ = false;
  int lp_threads_ = 1;
  DurationUs lookahead_ = 0.0;  // min latency of any cluster -> node effect
  // True whenever the cluster thread is driving node state synchronously:
  // setup, static rendezvous, finalize. The sequential control code then runs
  // unchanged against direct node reads, and wire sends stage directly.
  bool at_rendezvous_ = true;
  std::vector<TimeUs> statics_;            // BuildStaticTimes schedule
  std::atomic<std::size_t> released_{0};   // statics completed fleet-wide
  std::vector<std::unique_ptr<NodeLp>> lps_;
  std::vector<sim::EdgeLedger> wire_ledgers_;  // per node: un-acked wire stamps

  // The cluster's copy of each node's routing-visible state (MirrorNode,
  // defined above with the dispatch helpers that read it).
  std::vector<MirrorNode> mirror_;

  // Node messages drained but not yet applied, in deterministic
  // (stamp, node, per-node arrival sequence) order.
  std::map<std::tuple<TimeUs, int, std::uint64_t>, NodeMsg> cstaged_;
  std::vector<std::uint64_t> cstage_seq_;

  // Parallel runs detach the per-node fabrics from the hub (their transfers
  // run on node clocks), so the cluster counts wire-level fabric activity
  // itself through these, bound to the exact instruments Fabric would use.
  telemetry::Counter* fabric_started_c_ = nullptr;
  telemetry::Counter* fabric_bytes_c_ = nullptr;
};

// Bitwise double equality: distinguishes -0.0 from 0.0 and NaN payloads,
// exactly what "bit-identical" promises.
bool BitsEq(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool RecordersEq(const LatencyRecorder& a, const LatencyRecorder& b) {
  const std::vector<double>& sa = a.samples();
  const std::vector<double>& sb = b.samples();
  if (sa.size() != sb.size()) {
    return false;
  }
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (!BitsEq(sa[i], sb[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool ClusterResultsBitIdentical(const ClusterResult& a, const ClusterResult& b) {
  const serving::ServingResult& sa = a.serving;
  const serving::ServingResult& sb = b.serving;
  if (sa.models.size() != sb.models.size() || !BitsEq(sa.window_us, sb.window_us) ||
      sa.scale_ups != sb.scale_ups || sa.scale_downs != sb.scale_downs ||
      sa.scale_failures != sb.scale_failures ||
      sa.faults_injected != sb.faults_injected ||
      sa.faults_skipped != sb.faults_skipped ||
      sa.replicas_lost != sb.replicas_lost ||
      sa.replacements != sb.replacements ||
      sa.replacement_failures != sb.replacement_failures ||
      sa.gpus_alive_end != sb.gpus_alive_end ||
      !BitsEq(sa.replica_seconds, sb.replica_seconds)) {
    return false;
  }
  for (std::size_t m = 0; m < sa.models.size(); ++m) {
    const serving::ModelServingResult& ma = sa.models[m];
    const serving::ModelServingResult& mb = sb.models[m];
    if (ma.name != mb.name || ma.tier != mb.tier || ma.offered != mb.offered ||
        ma.completed != mb.completed || ma.slo_met != mb.slo_met ||
        ma.shed != mb.shed || ma.dropped != mb.dropped ||
        ma.failed_over != mb.failed_over ||
        !BitsEq(ma.slo_attainment, mb.slo_attainment) ||
        !BitsEq(ma.throughput_rps, mb.throughput_rps) ||
        ma.batches != mb.batches ||
        !BitsEq(ma.mean_batch_size, mb.mean_batch_size) ||
        ma.final_replicas != mb.final_replicas || ma.tokens != mb.tokens ||
        ma.prefills != mb.prefills || ma.decode_steps != mb.decode_steps ||
        ma.kv_evictions != mb.kv_evictions ||
        ma.total_offered != mb.total_offered ||
        ma.total_completed != mb.total_completed ||
        ma.total_shed != mb.total_shed ||
        ma.total_dropped != mb.total_dropped ||
        ma.left_in_system != mb.left_in_system ||
        !RecordersEq(ma.latency, mb.latency) ||
        !RecordersEq(ma.queueing, mb.queueing) ||
        !RecordersEq(ma.ttft, mb.ttft) || !RecordersEq(ma.tpot, mb.tpot)) {
      return false;
    }
  }
  if (a.nodes.size() != b.nodes.size() ||
      a.nodes_alive_end != b.nodes_alive_end ||
      a.node_faults != b.node_faults ||
      a.requests_forwarded != b.requests_forwarded ||
      !BitsEq(a.request_bytes_moved, b.request_bytes_moved) ||
      !BitsEq(a.response_bytes_moved, b.response_bytes_moved)) {
    return false;
  }
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    const NodeSummary& na = a.nodes[n];
    const NodeSummary& nb = b.nodes[n];
    if (na.node != nb.node || na.alive_end != nb.alive_end ||
        na.replicas_created != nb.replicas_created ||
        na.replicas_killed != nb.replicas_killed ||
        na.batches != nb.batches || na.requests != nb.requests) {
      return false;
    }
  }
  return true;
}

ClusterResult RunCluster(const ClusterConfig& config) {
  if (config.lp_threads > 1 && config.lp_oracle) {
    // Debug mode: run the sequential engine on an identical config (minus
    // telemetry, which the oracle copy must not double-count into the
    // caller's hub) and insist the parallel result matches bit for bit.
    ClusterConfig sequential = config;
    sequential.lp_threads = 1;
    sequential.lp_oracle = false;
    sequential.serving.telemetry = nullptr;
    const ClusterResult expect = RunCluster(sequential);
    ClusterEngine engine(config);
    ClusterResult got = engine.Run();
    ORION_CHECK_MSG(ClusterResultsBitIdentical(got, expect),
                    "lp_oracle: parallel run diverged from the sequential oracle");
    return got;
  }
  ClusterEngine engine(config);
  return engine.Run();
}

}  // namespace datacenter

namespace serving {

ServingResult RunServing(const ServingConfig& config) {
  datacenter::ClusterConfig cluster_config;
  cluster_config.cluster.num_nodes = 1;
  cluster_config.cluster.gpus_per_node = config.num_gpus;
  cluster_config.serving = config;
  return datacenter::RunCluster(cluster_config).serving;
}

}  // namespace serving
}  // namespace orion
