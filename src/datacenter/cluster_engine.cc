// Global control plane over per-node engines, and the RunCluster /
// RunServing entry points. See cluster.h for the architecture overview.
//
// Compatibility contract: with num_nodes == 1 the network is not modeled and
// every code path below reduces, event for event and float for float, to the
// pre-split single-node serving engine — RunServing's results are unchanged.
// The datacenter_test N=1 equivalence test pins this down field by field.
#include "src/datacenter/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/datacenter/cluster_topology.h"
#include "src/datacenter/node_engine.h"
#include "src/interconnect/fabric.h"
#include "src/serving/batch_cost.h"
#include "src/sim/simulator.h"
#include "src/trace/arrivals.h"
#include "src/trace/diurnal.h"

namespace orion {
namespace datacenter {

namespace {

using serving::ReplicaView;
using serving::Request;
using serving::RequestOutcome;
using serving::RouteReason;

std::unique_ptr<trace::ArrivalProcess> MakeArrivals(const serving::ModelServiceConfig& cfg) {
  switch (cfg.arrivals) {
    case serving::ArrivalKind::kUniform:
      return trace::MakeUniform(cfg.rps);
    case serving::ArrivalKind::kPoisson:
      return trace::MakePoisson(cfg.rps);
    case serving::ArrivalKind::kApollo:
      return trace::MakeApollo(cfg.rps);
    case serving::ArrivalKind::kDiurnal: {
      trace::DiurnalConfig diurnal = cfg.diurnal;
      if (diurnal.mean_rps <= 0.0) {
        diurnal.mean_rps = cfg.rps;
      }
      return trace::MakeDiurnal(diurnal);
    }
  }
  ORION_CHECK_MSG(false, "unknown arrival kind");
  return nullptr;
}

// Where a global replica id lives.
struct ReplicaRef {
  int node = -1;
  int slot = -1;
};

class ClusterEngine : public NodeHost {
 public:
  explicit ClusterEngine(const ClusterConfig& cluster_config)
      : config_(cluster_config.serving),
        spec_(cluster_config.cluster),
        topo_(cluster_config.cluster),
        node_policy_(cluster_config.node_policy),
        router_(cluster_config.serving.policy, cluster_config.serving.models.size()),
        admission_(cluster_config.serving.admission),
        horizon_(cluster_config.serving.warmup_us + cluster_config.serving.duration_us) {
    ORION_CHECK(config_.max_replicas_per_gpu >= 1);
    ORION_CHECK_MSG(!config_.models.empty(), "serving needs at least one model service");
    for (int n = 0; n < spec_.num_nodes; ++n) {
      nodes_.emplace_back(n, spec_.gpus_per_node, this);
    }
    if (NetworkOn()) {
      fabric_ = std::make_unique<interconnect::Fabric>(&sim_, topo_.MakeNetwork());
    }
    Rng root(config_.seed);
    for (std::size_t m = 0; m < config_.models.size(); ++m) {
      const serving::ModelServiceConfig& cfg = config_.models[m];
      ORION_CHECK(cfg.rps > 0.0);
      ORION_CHECK(cfg.slo_us > 0.0);
      ORION_CHECK(cfg.initial_replicas >= 1);
      ORION_CHECK(cfg.min_replicas >= 1);
      ORION_CHECK(cfg.max_replicas >= cfg.initial_replicas);
      models_.push_back(std::make_unique<ModelState>(
          cfg,
          serving::BatchCostModel(config_.device, cfg.workload,
                                  cfg.tier == serving::PriorityTier::kLatencyCritical,
                                  config_.launch_overhead_us),
          MakeArrivals(cfg), root.Fork(m)));
      if (cfg.llm.enabled) {
        ORION_CHECK_MSG(cfg.workload.model == workloads::ModelId::kLlmDecode,
                        "LLM serving requires the kLlmDecode workload");
        // The cost model's constructor validates the LLM shape parameters.
        models_.back()->llm_cost = std::make_unique<serving::LlmCostModel>(
            config_.device, cfg.llm, config_.launch_overhead_us);
        // Replica state = the weights; the KV cache is carved separately out
        // of whatever device memory remains at placement (node_engine.cc).
        models_.back()->cost.OverrideStateBytes(
            workloads::LlmWeightBytes(cfg.llm.model));
      }
    }
    rr_node_cursor_.assign(config_.models.size(), 0);
    BindTelemetry();
    if (fabric_ != nullptr && config_.telemetry != nullptr) {
      fabric_->set_telemetry(config_.telemetry);
    }
  }

  ClusterResult Run() {
    for (std::size_t m = 0; m < models_.size(); ++m) {
      for (int i = 0; i < models_[m]->cfg.initial_replicas; ++i) {
        ORION_CHECK_MSG(AddReplica(m, /*immediate=*/true),
                        "initial serving fleet does not fit on the cluster");
      }
      ScheduleArrival(m);
    }
    ArmFaults();
    if (config_.autoscaler.enabled) {
      sim_.ScheduleAfter(config_.autoscaler.eval_period_us, [this] { EvalAutoscaler(); });
    }
    sim_.RunUntil(horizon_);
    return Finalize();
  }

  // --- NodeHost. ---

  Simulator& sim() override { return sim_; }
  const serving::BatchingConfig& batching_config() const override { return config_.batching; }
  const serving::BatchCostModel& model_cost(std::size_t model) const override {
    return models_[model]->cost;
  }
  serving::PriorityTier model_tier(std::size_t model) const override {
    return models_[model]->cfg.tier;
  }
  const serving::LlmServiceConfig* model_llm(std::size_t model) const override {
    const ModelState& state = *models_[model];
    return state.cfg.llm.enabled ? &state.cfg.llm : nullptr;
  }
  const serving::LlmCostModel& model_llm_cost(std::size_t model) const override {
    ORION_CHECK(models_[model]->llm_cost != nullptr);
    return *models_[model]->llm_cost;
  }
  std::size_t gpu_memory_bytes() const override { return config_.device.memory_bytes; }

  bool attribution() const override {
    // Queried by NodeEngine at construction (before BindTelemetry), so it
    // reads the config directly instead of the cached attr_.
    return config_.telemetry != nullptr && config_.telemetry->attribution_enabled();
  }

  void OnBatchServed(NodeEngine& node, Replica& r) override {
    const TimeUs now = sim_.now();
    ModelState& model = *models_[r.model];
    const int batch_size = static_cast<int>(r.in_flight.size());
    const int gpu_global = topo_.GlobalGpu(node.node_id(), r.gpu);
    if (!NetworkOn()) {
      for (const Request& request : r.in_flight) {
        CompleteRequest(request, r.id, gpu_global, r.batch_start, now, now);
      }
    } else {
      // The computed responses still have to cross the network; completion
      // accounting happens when each one reaches the front-end.
      for (const Request& request : r.in_flight) {
        SendResponse(node.node_id(), r.id, gpu_global, r.batch_start, now, request);
      }
    }
    if (model.track >= 0) {
      hub_->spans().Complete(gpu_tracks_[static_cast<std::size_t>(gpu_global)], r.id,
                             "batch:" + model.label, r.batch_start, now,
                             {{"batch_size", std::to_string(batch_size)},
                              {"replica", std::to_string(r.id)},
                              {"reason", serving::DispatchReasonName(r.dispatch_reason)}},
                             "batch");
    }
    if (InWindow(now)) {
      model.batches->Inc();
      model.batched_requests->Inc(static_cast<double>(batch_size));
      if (model.llm_cost != nullptr) {
        // Request-level LLM baseline: the batch prefilled every sequence and
        // decoded each to completion (one token from prefill + target more).
        double tokens = 0.0;
        for (const Request& request : r.in_flight) {
          tokens += 1.0 + static_cast<double>(request.target_tokens);
        }
        model.tokens->Inc(tokens);
        model.prefills->Inc(static_cast<double>(batch_size));
      }
    }
  }

  void OnDecodeStep(NodeEngine& node, Replica& r, int batch, int prefills, TimeUs start,
                    TimeUs end) override {
    ModelState& model = *models_[r.model];
    const int gpu_global = topo_.GlobalGpu(node.node_id(), r.gpu);
    if (model.track >= 0) {
      hub_->spans().Complete(
          gpu_tracks_[static_cast<std::size_t>(gpu_global)], r.id, "step:" + model.label,
          start, end,
          {{"batch_size", std::to_string(batch)},
           {"prefills", std::to_string(prefills)},
           {"kv_blocks", std::to_string(r.llm->kv.used_blocks())},
           {"replica", std::to_string(r.id)}},
          "decode-step");
    }
    if (InWindow(end)) {
      model.decode_steps->Inc();
      model.tokens->Inc(static_cast<double>(batch));  // one token per sequence
      if (prefills > 0) {
        model.prefills->Inc(static_cast<double>(prefills));
      }
      // A step is the device-batch unit of continuous batching: count it so
      // mean_batch_size reports the mean iteration width.
      model.batches->Inc();
      model.batched_requests->Inc(static_cast<double>(batch));
    }
  }

  void OnSequenceFinished(NodeEngine& node, Replica& r, const Request& request,
                          TimeUs step_start, TimeUs step_end) override {
    const int gpu_global = topo_.GlobalGpu(node.node_id(), r.gpu);
    if (!NetworkOn()) {
      CompleteRequest(request, r.id, gpu_global, step_start, step_end, step_end);
    } else {
      SendResponse(node.node_id(), r.id, gpu_global, step_start, step_end, request);
    }
  }

  void OnKvEviction(NodeEngine& node, Replica& r, const Request& request) override {
    (void)node;
    ModelState& model = *models_[r.model];
    if (InWindow(sim_.now())) {
      model.kv_evictions->Inc();
    }
    Mark("kv-evict", {{"service", model.label},
                      {"replica", std::to_string(r.id)},
                      {"request", std::to_string(request.id)}});
  }

  void AccountReplicaTime(TimeUs active_since) override {
    const TimeUs start = std::max(active_since, config_.warmup_us);
    const TimeUs end = std::min(sim_.now(), horizon_);
    if (end > start) {
      replica_seconds_->Inc(UsToSec(end - start));
    }
  }

 private:
  struct ModelState {
    ModelState(const serving::ModelServiceConfig& config, serving::BatchCostModel cost_model,
               std::unique_ptr<trace::ArrivalProcess> arrival_process, Rng arrival_rng)
        : cfg(config),
          cost(std::move(cost_model)),
          arrivals(std::move(arrival_process)),
          rng(arrival_rng) {}

    serving::ModelServiceConfig cfg;
    serving::BatchCostModel cost;
    // Per-phase LLM costs; null unless cfg.llm.enabled (its presence is the
    // engine-wide "is this an LLM service" predicate).
    std::unique_ptr<serving::LlmCostModel> llm_cost;
    std::unique_ptr<trace::ArrivalProcess> arrivals;
    Rng rng;
    // Admitted requests with no active replica to queue at (all replicas
    // provisioning after a failover); drained on the next activation.
    std::deque<Request> limbo;
    std::vector<int> replicas;  // every global replica id ever created
    // Requests of this service currently crossing the network (either leg).
    std::size_t in_network = 0;

    // Service label for metrics and trace tracks: the workload name, with a
    // "#<index>" suffix when two services share a workload.
    std::string label;
    telemetry::TrackId track = -1;  // per-request span track; -1 = tracing off
    // Hub-owned blame aggregate; bound only when attribution is enabled.
    attribution::ServiceAttribution* attr = nullptr;

    // All counters are registry instruments labeled {service=label}, bound
    // in BindTelemetry — the registry is the source of truth the
    // ServingResult is assembled from, so an exported CSV snapshot
    // reproduces the run's printed numbers exactly.

    // Whole-run counters (accounting identity).
    telemetry::Counter* total_offered = nullptr;
    telemetry::Counter* total_completed = nullptr;
    telemetry::Counter* total_shed = nullptr;
    telemetry::Counter* total_dropped = nullptr;

    // Measurement-window counters.
    telemetry::Counter* offered = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* slo_met = nullptr;
    telemetry::Counter* shed = nullptr;
    telemetry::Counter* dropped = nullptr;
    telemetry::Counter* failed_over = nullptr;
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* batched_requests = nullptr;
    telemetry::Histogram* latency = nullptr;   // e2e µs, window only
    telemetry::Histogram* queueing = nullptr;  // arrival → service start

    // LLM per-token instruments; bound only for services with llm.enabled so
    // a non-LLM run exports exactly the pre-LLM metric set.
    telemetry::Counter* tokens = nullptr;        // decode tokens in the window
    telemetry::Counter* prefills = nullptr;      // prefill passes in the window
    telemetry::Counter* decode_steps = nullptr;  // continuous iterations in the window
    telemetry::Counter* kv_evictions = nullptr;  // preemptions in the window
    telemetry::Histogram* ttft = nullptr;        // arrival → first token, µs
    telemetry::Histogram* tpot = nullptr;        // inter-token µs after the first

    // Autoscaler evaluation-window counters (reset every eval period, so
    // they stay plain fields rather than monotonic registry counters).
    std::size_t w_arrivals = 0;
    std::size_t w_completions = 0;
    std::size_t w_slo_met = 0;
    std::size_t w_shed = 0;
  };

  // One payload crossing the network fabric. Responses cancelled by a node
  // death complete at the cancel instant: the batch had already been served,
  // only the notification leg is cut short (documented simplification).
  struct NetOp {
    enum class Kind : std::uint8_t { kRequest, kResponse, kState };
    Kind kind = Kind::kRequest;
    bool cancelled = false;
    int node = -1;  // destination (request/state) or source (response)
    interconnect::TransferId transfer = 0;
    Request request;                            // kRequest / kResponse payload
    std::optional<RouteReason> forced;          // kRequest: routing reason override
    int replica_id = -1;                        // kResponse server / kState target
    int gpu = -1;                               // kResponse: global GPU of server
    TimeUs batch_start = 0.0;                   // kResponse
    TimeUs batch_end = 0.0;                     // kResponse
  };

  bool NetworkOn() const { return spec_.num_nodes > 1 && spec_.model_network; }

  // Binds every instrument against the hub registry (a private registry
  // when no hub is configured) and registers the trace tracks.
  void BindTelemetry() {
    hub_ = config_.telemetry;
    metrics_ = hub_ != nullptr ? &hub_->metrics() : &local_metrics_;
    const bool tracing = hub_ != nullptr && hub_->tracing();
    attr_ = hub_ != nullptr && hub_->attribution_enabled();
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      model.label = workloads::WorkloadName(model.cfg.workload);
      for (std::size_t prev = 0; prev < m; ++prev) {
        if (models_[prev]->label == model.label) {
          model.label += "#" + std::to_string(m);
          break;
        }
      }
      const telemetry::Labels by_service = {{"service", model.label}};
      model.total_offered = metrics_->GetCounter("serving.offered_total", by_service);
      model.total_completed = metrics_->GetCounter("serving.completed_total", by_service);
      model.total_shed = metrics_->GetCounter("serving.shed_total", by_service);
      model.total_dropped = metrics_->GetCounter("serving.dropped_total", by_service);
      model.offered = metrics_->GetCounter("serving.offered", by_service);
      model.completed = metrics_->GetCounter("serving.completed", by_service);
      model.slo_met = metrics_->GetCounter("serving.slo_met", by_service);
      model.shed = metrics_->GetCounter("serving.shed", by_service);
      model.dropped = metrics_->GetCounter("serving.dropped", by_service);
      model.failed_over = metrics_->GetCounter("serving.failed_over", by_service);
      model.batches = metrics_->GetCounter("serving.batches", by_service);
      model.batched_requests = metrics_->GetCounter("serving.batched_requests", by_service);
      model.latency = metrics_->GetHistogram("serving.latency_us", by_service);
      model.queueing = metrics_->GetHistogram("serving.queueing_us", by_service);
      if (model.cfg.llm.enabled) {
        model.tokens = metrics_->GetCounter("serving.tokens", by_service);
        model.prefills = metrics_->GetCounter("serving.prefills", by_service);
        model.decode_steps = metrics_->GetCounter("serving.decode_steps", by_service);
        model.kv_evictions = metrics_->GetCounter("serving.kv_evictions", by_service);
        model.ttft = metrics_->GetHistogram("serving.ttft_us", by_service);
        model.tpot = metrics_->GetHistogram("serving.tpot_us", by_service);
      }
      if (tracing) {
        model.track = hub_->spans().Track("service:" + model.label);
      }
      if (attr_) {
        model.attr = &hub_->attribution().Service(model.label);
        model.attr->set_tier(serving::PriorityTierName(model.cfg.tier));
      }
    }
    scale_ups_ = metrics_->GetCounter("serving.scale_ups");
    scale_downs_ = metrics_->GetCounter("serving.scale_downs");
    scale_failures_ = metrics_->GetCounter("serving.scale_failures");
    faults_injected_ = metrics_->GetCounter("serving.faults_injected");
    faults_skipped_ = metrics_->GetCounter("serving.faults_skipped");
    replicas_lost_ = metrics_->GetCounter("serving.replicas_lost");
    replacements_ = metrics_->GetCounter("serving.replacements");
    replacement_failures_ = metrics_->GetCounter("serving.replacement_failures");
    replica_seconds_ = metrics_->GetCounter("serving.replica_seconds");
    if (spec_.num_nodes > 1) {
      // Datacenter-level instruments exist only on real clusters so an N=1
      // run exports exactly the single-node engine's metric set.
      node_faults_c_ = metrics_->GetCounter("datacenter.node_faults");
      requests_forwarded_c_ = metrics_->GetCounter("datacenter.requests_forwarded");
    }
    if (tracing) {
      control_track_ = hub_->spans().Track("serving-control");
      gpu_tracks_.reserve(static_cast<std::size_t>(topo_.total_gpus()));
      for (int g = 0; g < topo_.total_gpus(); ++g) {
        const std::string name =
            spec_.num_nodes == 1
                ? "gpu" + std::to_string(g)
                : "n" + std::to_string(topo_.NodeOfGpu(g)) + "/gpu" +
                      std::to_string(topo_.LocalGpu(g));
        gpu_tracks_.push_back(hub_->spans().Track(name));
      }
    }
  }

  void Mark(const std::string& name, telemetry::Labels args) {
    if (control_track_ >= 0) {
      hub_->spans().Instant(control_track_, name, sim_.now(), std::move(args));
    }
  }

  bool InWindow(TimeUs t) const { return t >= config_.warmup_us && t <= horizon_; }

  Replica& replica(int id) {
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
    return nodes_[static_cast<std::size_t>(ref.node)].replica(ref.slot);
  }
  const Replica& replica(int id) const {
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
    return nodes_[static_cast<std::size_t>(ref.node)].replica(ref.slot);
  }

  // --- Arrivals, admission, two-level routing. ---

  void ScheduleArrival(std::size_t m) {
    ModelState& model = *models_[m];
    const DurationUs dt = model.arrivals->NextInterarrival(model.rng);
    sim_.ScheduleAfter(dt, [this, m] {
      OnArrival(m);
      ScheduleArrival(m);
    });
  }

  void OnArrival(std::size_t m) {
    ModelState& model = *models_[m];
    const TimeUs now = sim_.now();
    Request request;
    request.id = next_request_id_++;
    request.model = static_cast<int>(m);
    request.arrival_us = now;
    request.deadline_us = now + model.cfg.slo_us;
    if (model.llm_cost != nullptr) {
      const serving::LlmServiceConfig& llm = model.cfg.llm;
      request.prompt_tokens = llm.prompt_tokens;
      request.target_tokens =
          llm.max_decode_tokens > llm.min_decode_tokens
              ? static_cast<int>(model.rng.UniformInt(llm.min_decode_tokens,
                                                      llm.max_decode_tokens))
              : llm.min_decode_tokens;
      // Per-token SLOs supersede slo_us: the deadline admission gates on and
      // EDF queues order by is the TTFT deadline.
      request.deadline_us = now + llm.ttft_slo_us;
    }
    if (attr_) {
      request.ledger.Begin(now);
    }
    model.total_offered->Inc();
    ++model.w_arrivals;
    if (InWindow(now)) {
      model.offered->Inc();
    }

    const int node = PickNode(m);
    if (node < 0) {
      HandleNoReplica(m, std::move(request));
      return;
    }
    // Admission against the chosen node's least-loaded replica.
    std::vector<ReplicaView> views;
    std::vector<int> slots;
    BuildNodeViews(node, m, &views, &slots);
    std::size_t best = 0;
    for (std::size_t i = 1; i < views.size(); ++i) {
      if (views[i].outstanding_us < views[best].outstanding_us) {
        best = i;
      }
    }
    const DurationUs best_wait = views[best].outstanding_us;
    const int est_batch = EstimatedBatch(views[best].queued);
    // LLM admission gates the TTFT deadline: the work between dispatch and
    // the first token is the prefill (the queue ahead is in best_wait).
    const DurationUs service = model.llm_cost != nullptr
                                   ? model.llm_cost->PrefillUs(request.prompt_tokens)
                                   : model.cost.BatchServiceUs(est_batch);
    if (!admission_.Admit(request, model.cfg.tier, best_wait, service)) {
      request.outcome = RequestOutcome::kShed;
      model.total_shed->Inc();
      ++model.w_shed;
      if (InWindow(now)) {
        model.shed->Inc();
      }
      Mark("shed", {{"service", model.label}});
      return;
    }
    if (NetworkOn()) {
      ForwardRequest(node, std::move(request), std::nullopt);
    } else {
      Deliver(node, std::move(request), std::nullopt);
    }
  }

  // Batch size the next dispatch will likely use (admission's service-time
  // estimate): the queue ahead plus this request, capped by the batcher.
  int EstimatedBatch(std::size_t queued_ahead) const {
    if (!config_.batching.enabled) {
      return 1;
    }
    return std::min<int>(config_.batching.max_batch_size,
                         static_cast<int>(queued_ahead) + 1);
  }

  void HandleNoReplica(std::size_t m, Request request) {
    ModelState& model = *models_[m];
    if (PendingReplicas(m) > 0) {
      model.limbo.push_back(std::move(request));
      return;
    }
    model.total_dropped->Inc();
    if (InWindow(sim_.now())) {
      model.dropped->Inc();
    }
    Mark("drop", {{"service", model.label}});
  }

  int PendingReplicas(std::size_t m) const {
    int pending = 0;
    for (const int id : models_[m]->replicas) {
      if (replica(id).state == Replica::State::kProvisioning) {
        ++pending;
      }
    }
    return pending;
  }

  // Level-1 routing: the node to send an admitted request of `m` to, or -1
  // when no node has an active replica. Least-outstanding compares each
  // node's best replica; ties break towards the lowest node id.
  int PickNode(std::size_t m) {
    std::vector<double> node_best(static_cast<std::size_t>(spec_.num_nodes),
                                  std::numeric_limits<double>::infinity());
    std::vector<bool> has(static_cast<std::size_t>(spec_.num_nodes), false);
    for (const int id : models_[m]->replicas) {
      const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
      const NodeEngine& node = nodes_[static_cast<std::size_t>(ref.node)];
      const Replica& r = node.replica(ref.slot);
      if (r.state != Replica::State::kActive || !node.alive()) {
        continue;
      }
      const auto n = static_cast<std::size_t>(ref.node);
      has[n] = true;
      node_best[n] = std::min(node_best[n], node.OutstandingUs(r));
    }
    if (node_policy_ == NodePolicy::kRoundRobin) {
      std::vector<int> candidates;
      for (int n = 0; n < spec_.num_nodes; ++n) {
        if (has[static_cast<std::size_t>(n)]) {
          candidates.push_back(n);
        }
      }
      if (candidates.empty()) {
        return -1;
      }
      return candidates[static_cast<std::size_t>(rr_node_cursor_[m]++ %
                                                 candidates.size())];
    }
    int best = -1;
    for (int n = 0; n < spec_.num_nodes; ++n) {
      if (!has[static_cast<std::size_t>(n)]) {
        continue;
      }
      if (best < 0 ||
          node_best[static_cast<std::size_t>(n)] < node_best[static_cast<std::size_t>(best)]) {
        best = n;
      }
    }
    return best;
  }

  // Active replicas of `m` on `node`, sorted by global id (creation order).
  void BuildNodeViews(int node, std::size_t m, std::vector<ReplicaView>* views,
                      std::vector<int>* slots) {
    views->clear();
    slots->clear();
    NodeEngine& engine = nodes_[static_cast<std::size_t>(node)];
    for (const int id : models_[m]->replicas) {
      const ReplicaRef& ref = directory_[static_cast<std::size_t>(id)];
      if (ref.node != node) {
        continue;
      }
      const Replica& r = engine.replica(ref.slot);
      if (r.state != Replica::State::kActive) {
        continue;
      }
      ReplicaView view;
      view.replica_id = id;
      view.queued = r.batcher.size();
      view.in_flight = r.in_flight.size();
      view.outstanding_us = engine.OutstandingUs(r);
      views->push_back(view);
      slots->push_back(ref.slot);
    }
  }

  // Level-2 routing: pick the replica on `node` and hand the request to the
  // node engine. `forced` overrides the recorded route reason (failover
  // rehomes, limbo drains).
  void Deliver(int node, Request request, std::optional<RouteReason> forced) {
    const auto m = static_cast<std::size_t>(request.model);
    std::vector<ReplicaView> views;
    std::vector<int> slots;
    BuildNodeViews(node, m, &views, &slots);
    if (views.empty()) {
      // The node lost its replicas while the request was on the wire
      // (network path only; the synchronous path routes against live views).
      RehomeOrphan(m, std::move(request), /*was_running=*/true);
      return;
    }
    const std::size_t idx = router_.Pick(m, views);
    request.node = node;
    request.route_reason =
        forced.has_value() ? *forced : PickReason(router_.policy(), views.size());
    nodes_[static_cast<std::size_t>(node)].EnqueueAt(slots[idx], std::move(request));
  }

  // --- Network legs (num_nodes > 1 with model_network). ---

  void StartOp(int src, int dst, std::size_t bytes, NetOp op) {
    const std::uint64_t op_id = next_op_id_++;
    auto [it, inserted] = net_ops_.emplace(op_id, std::move(op));
    ORION_CHECK(inserted);
    it->second.transfer =
        fabric_->StartTransfer(src, dst, bytes, [this, op_id] { OnNetOpDone(op_id); });
  }

  void ForwardRequest(int node, Request request, std::optional<RouteReason> forced) {
    ModelState& model = *models_[static_cast<std::size_t>(request.model)];
    ++model.in_network;
    ++requests_forwarded_;
    if (requests_forwarded_c_ != nullptr) {
      requests_forwarded_c_->Inc();
    }
    request.node = node;
    if (attr_) {
      // Closes whatever came before (fresh admission: a zero-width kQueue;
      // limbo drain: the limbo wait; failover: kPreempt) and opens the wire.
      request.ledger.Advance(sim_.now(), attribution::Phase::kNetRequest);
    }
    NetOp op;
    op.kind = NetOp::Kind::kRequest;
    op.node = node;
    op.request = std::move(request);
    op.forced = forced;
    StartOp(interconnect::kHostNode, node, spec_.request_bytes, std::move(op));
  }

  void SendResponse(int node, int replica_id, int gpu_global, TimeUs batch_start,
                    TimeUs batch_end, const Request& request) {
    ++models_[static_cast<std::size_t>(request.model)]->in_network;
    NetOp op;
    op.kind = NetOp::Kind::kResponse;
    op.node = node;
    op.request = request;
    if (attr_) {
      op.request.ledger.Advance(sim_.now(), attribution::Phase::kNetResponse);
    }
    op.replica_id = replica_id;
    op.gpu = gpu_global;
    op.batch_start = batch_start;
    op.batch_end = batch_end;
    StartOp(node, interconnect::kHostNode, spec_.response_bytes, std::move(op));
  }

  void OnNetOpDone(std::uint64_t op_id) {
    auto it = net_ops_.find(op_id);
    ORION_CHECK(it != net_ops_.end());
    NetOp op = std::move(it->second);
    net_ops_.erase(it);
    switch (op.kind) {
      case NetOp::Kind::kRequest: {
        ModelState& model = *models_[static_cast<std::size_t>(op.request.model)];
        ORION_CHECK(model.in_network > 0);
        --model.in_network;
        if (op.cancelled || !nodes_[static_cast<std::size_t>(op.node)].alive()) {
          RehomeOrphan(static_cast<std::size_t>(op.request.model), std::move(op.request),
                       /*was_running=*/true);
        } else {
          Deliver(op.node, std::move(op.request), op.forced);
        }
        break;
      }
      case NetOp::Kind::kResponse: {
        ModelState& model = *models_[static_cast<std::size_t>(op.request.model)];
        ORION_CHECK(model.in_network > 0);
        --model.in_network;
        CompleteRequest(op.request, op.replica_id, op.gpu, op.batch_start, op.batch_end,
                        sim_.now());
        break;
      }
      case NetOp::Kind::kState: {
        if (op.cancelled) {
          break;  // target node died; the replica was killed with it
        }
        const int id = op.replica_id;
        const Replica& r = replica(id);
        if (r.state == Replica::State::kProvisioning) {
          sim_.ScheduleAfter(models_[r.model]->cost.ProvisionUs(),
                             [this, id] { ActivateReplica(id); });
        }
        break;
      }
    }
  }

  // --- Completion accounting. ---

  // `exec_end` is the device batch completion; `complete_us` when the
  // response reached the front-end (identical without a network).
  void CompleteRequest(const Request& request, int replica_id, int gpu_global,
                       TimeUs batch_start, TimeUs exec_end, TimeUs complete_us) {
    ModelState& model = *models_[static_cast<std::size_t>(request.model)];
    model.total_completed->Inc();
    ++model.w_completions;
    bool met = complete_us <= request.deadline_us;
    DurationUs ttft = 0.0;
    DurationUs tpot = 0.0;
    if (model.llm_cost != nullptr) {
      // Per-token SLOs: time-to-first-token and time-per-output-token both
      // have to hold. TPOT averages the post-first-token stream over the
      // decode length (a zero-length generation trivially meets it).
      ORION_CHECK(request.first_token_us >= request.arrival_us);
      ttft = request.first_token_us - request.arrival_us;
      tpot = request.target_tokens > 0
                 ? (complete_us - request.first_token_us) /
                       static_cast<double>(request.target_tokens)
                 : 0.0;
      met = ttft <= model.cfg.llm.ttft_slo_us && tpot <= model.cfg.llm.tpot_slo_us;
    }
    if (attr_ && request.ledger.active()) {
      // Finalize a local copy (the caller's request is const): close the open
      // phase at completion and enforce the sum identity. Every interval
      // between ledger marks was charged to exactly one phase, so the
      // residual is FP rounding only — a violation means an engine path
      // dropped or double-counted time.
      attribution::LatencyLedger ledger = request.ledger;
      const DurationUs e2e = complete_us - request.arrival_us;
      const DurationUs residual = ledger.Finalize(request.arrival_us, complete_us);
      ORION_CHECK_MSG(std::abs(residual) <= 1e-3 + 1e-6 * e2e,
                      "latency ledger identity violated: residual "
                          << residual << "us over e2e " << e2e << "us (request "
                          << request.id << ")");
      if (model.llm_cost != nullptr && !ledger.ttft_marked()) {
        // Request-level LLM batching delivers the batch at once; interpolate
        // the first token inside the execute span, mirroring first_token_us.
        const TimeUs exec_begin = request.start_service_us;
        const DurationUs exec_span = exec_end - exec_begin;
        const double frac = exec_span > 0.0
                                ? (request.first_token_us - exec_begin) / exec_span
                                : 1.0;
        ledger.SynthesizeFirstToken(frac);
      }
      if (InWindow(complete_us)) {
        model.attr->RecordE2e(ledger.phases(), e2e, !met);
        if (model.llm_cost != nullptr) {
          double ttft_phases[attribution::kNumPhases];
          double tpot_phases[attribution::kNumPhases];
          ledger.SplitTtft(ttft_phases, tpot_phases);
          model.attr->RecordTtft(ttft_phases, ttft, ttft > model.cfg.llm.ttft_slo_us);
          model.attr->RecordTpot(tpot_phases, complete_us - request.first_token_us,
                                 tpot > model.cfg.llm.tpot_slo_us);
        }
      }
    }
    if (met) {
      ++model.w_slo_met;
    }
    if (InWindow(complete_us)) {
      model.completed->Inc();
      if (met) {
        model.slo_met->Inc();
      }
      model.latency->Add(complete_us - request.arrival_us);
      model.queueing->Add(request.start_service_us - request.arrival_us);
      if (model.llm_cost != nullptr) {
        model.ttft->Add(ttft);
        model.tpot->Add(tpot);
      }
    }
    if (model.track >= 0) {
      // Request lifecycle: a "request" slice enclosing nested queue, execute
      // and (networked runs) respond phases, one virtual-thread row per
      // request, plus a flow arrow from the execute phase to the device
      // batch that served it.
      const auto row = static_cast<std::int64_t>(request.id);
      telemetry::Labels attrs = {
          {"slo_met", met ? "1" : "0"},
          {"failovers", std::to_string(request.failovers)},
          {"node", std::to_string(request.node)},
          {"replica", std::to_string(replica_id)},
          {"route_reason", serving::RouteReasonName(request.route_reason)}};
      if (model.llm_cost != nullptr) {
        attrs.emplace_back("tokens", std::to_string(1 + request.target_tokens));
        attrs.emplace_back("kv_evictions", std::to_string(request.evictions));
      }
      hub_->spans().Complete(model.track, row, "request", request.arrival_us, complete_us,
                             std::move(attrs), "request");
      hub_->spans().Complete(model.track, row, "queue", request.arrival_us,
                             request.start_service_us, {}, "queue");
      hub_->spans().Complete(model.track, row, "execute", request.start_service_us,
                             exec_end, {}, "execute");
      if (complete_us > exec_end) {
        hub_->spans().Complete(model.track, row, "respond", exec_end, complete_us, {},
                               "respond");
      }
      hub_->spans().FlowStart(model.track, row, request.id, request.start_service_us);
      hub_->spans().FlowEnd(gpu_tracks_[static_cast<std::size_t>(gpu_global)], replica_id,
                            request.id, batch_start);
    }
  }

  // --- Replica lifecycle and placement. ---

  bool AddReplica(std::size_t m, bool immediate = false) {
    ModelState& model = *models_[m];
    int best_node = -1;
    int best_gpu = -1;
    auto best_score = std::make_pair(std::numeric_limits<double>::infinity(),
                                     std::numeric_limits<std::size_t>::max());
    for (int n = 0; n < spec_.num_nodes; ++n) {
      const NodeEngine& node = nodes_[static_cast<std::size_t>(n)];
      if (!node.alive()) {
        continue;
      }
      cluster::PlacementEngine::PlacementScore score;
      const auto local = node.BestPlacement(model.cost.signature(),
                                            config_.device.memory_bytes,
                                            config_.max_replicas_per_gpu, &score);
      if (!local.has_value()) {
        continue;
      }
      // Strict < with ascending node order: equivalent to the flat
      // BestGpuFor over the node-major global GPU list.
      if (score < best_score) {
        best_score = score;
        best_node = n;
        best_gpu = *local;
      }
    }
    if (best_node < 0) {
      return false;
    }
    const int id = static_cast<int>(directory_.size());
    const int slot = nodes_[static_cast<std::size_t>(best_node)].CreateReplica(
        id, m, best_gpu, immediate, sim_.now());
    directory_.push_back({best_node, slot});
    model.replicas.push_back(id);
    if (!immediate) {
      if (NetworkOn()) {
        // Ship the model state to the node first; the provisioning delay
        // starts when the weights arrive.
        NetOp op;
        op.kind = NetOp::Kind::kState;
        op.node = best_node;
        op.replica_id = id;
        StartOp(interconnect::kHostNode, best_node, model.cost.state_bytes(),
                std::move(op));
      } else {
        sim_.ScheduleAfter(model.cost.ProvisionUs(), [this, id] { ActivateReplica(id); });
      }
    }
    return true;
  }

  void ActivateReplica(int id) {
    Replica& r = replica(id);
    if (r.state != Replica::State::kProvisioning) {
      return;  // killed while provisioning
    }
    r.state = Replica::State::kActive;
    r.active_since = sim_.now();
    if (attr_) {
      r.idle_since = sim_.now();  // the idle clock starts with the replica
    }
    ModelState& model = *models_[r.model];
    Mark("replica-active", {{"service", model.label},
                            {"replica", std::to_string(id)},
                            {"gpu", std::to_string(topo_.GlobalGpu(r.node, r.gpu))}});
    while (!model.limbo.empty()) {
      Request request = std::move(model.limbo.front());
      model.limbo.pop_front();
      const int node = PickNode(r.model);
      ORION_CHECK(node >= 0);  // this replica just activated
      if (NetworkOn()) {
        ForwardRequest(node, std::move(request), RouteReason::kLimboDrain);
      } else {
        Deliver(node, std::move(request), RouteReason::kLimboDrain);
      }
    }
  }

  // Stops routing to the least-loaded active replica; it retires once empty.
  // Returns false when the model has no active replica to remove.
  bool RemoveOneReplica(std::size_t m) {
    int victim = -1;
    std::size_t victim_load = 0;
    for (const int id : models_[m]->replicas) {
      const Replica& r = replica(id);
      if (r.state != Replica::State::kActive) {
        continue;
      }
      const std::size_t load = r.batcher.size() + r.in_flight.size();
      if (victim < 0 || load < victim_load) {
        victim = id;
        victim_load = load;
      }
    }
    if (victim < 0) {
      return false;
    }
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(victim)];
    nodes_[static_cast<std::size_t>(ref.node)].DrainReplica(ref.slot);
    return true;
  }

  // --- Faults and failover. ---

  void ArmFaults() {
    for (const fault::FaultEvent& event : config_.fault_plan.events) {
      switch (event.kind) {
        case fault::FaultKind::kGpuDown:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyGpuDown(event); });
          break;
        case fault::FaultKind::kClientCrash:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyReplicaCrash(event); });
          break;
        case fault::FaultKind::kNodeDown:
          sim_.ScheduleAt(event.at_us, [this, event] { ApplyNodeDown(event); });
          break;
        default:
          // Device/link/profile faults act below this abstraction level.
          faults_skipped_->Inc();
          break;
      }
    }
  }

  void ApplyGpuDown(const fault::FaultEvent& event) {
    if (event.gpu < 0 || event.gpu >= topo_.total_gpus()) {
      faults_skipped_->Inc();
      return;
    }
    const int n = topo_.NodeOfGpu(event.gpu);
    const int local = topo_.LocalGpu(event.gpu);
    GpuShard& shard = nodes_[static_cast<std::size_t>(n)].gpu(local);
    if (!shard.alive) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    Mark("gpu-down", {{"gpu", std::to_string(event.gpu)}});
    shard.alive = false;
    const std::vector<int> victims = shard.replicas;  // the kills mutate the list
    for (const int slot : victims) {
      KillAndRehome(n, slot);
    }
  }

  void ApplyReplicaCrash(const fault::FaultEvent& event) {
    if (event.client < 0 || event.client >= static_cast<int>(directory_.size()) ||
        replica(event.client).state == Replica::State::kDead) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    const ReplicaRef& ref = directory_[static_cast<std::size_t>(event.client)];
    KillAndRehome(ref.node, ref.slot);
  }

  void ApplyNodeDown(const fault::FaultEvent& event) {
    const int n = event.node;
    if (n < 0 || n >= spec_.num_nodes || !nodes_[static_cast<std::size_t>(n)].alive()) {
      faults_skipped_->Inc();
      return;
    }
    faults_injected_->Inc();
    ++node_faults_;
    if (node_faults_c_ != nullptr) {
      node_faults_c_->Inc();
    }
    Mark("node-down", {{"node", std::to_string(n)}});
    NodeEngine& node = nodes_[static_cast<std::size_t>(n)];
    node.MarkDead();
    if (fabric_ != nullptr) {
      // Cut the NIC and abort every transfer touching the node. Cancelled
      // forwards re-route to survivors when their abort callback fires;
      // cancelled responses complete at the abort instant.
      const interconnect::LinkId link = topo_.NicLink(n);
      fabric_->SetLinkFactor(link, /*forward=*/true, 0.0);
      fabric_->SetLinkFactor(link, /*forward=*/false, 0.0);
      std::vector<std::uint64_t> doomed;
      for (auto& [op_id, op] : net_ops_) {
        if (op.node == n && !op.cancelled) {
          op.cancelled = true;
          doomed.push_back(op_id);
        }
      }
      for (const std::uint64_t op_id : doomed) {
        fabric_->CancelTransfer(net_ops_.at(op_id).transfer);
      }
    }
    for (int local = 0; local < node.num_gpus(); ++local) {
      const std::vector<int> victims = node.gpu(local).replicas;
      for (const int slot : victims) {
        KillAndRehome(n, slot);
      }
    }
  }

  // Replica death: orphaned requests re-route to surviving replicas of the
  // model (or limbo/drop), and a replacement is provisioned on a surviving
  // GPU. The batch on the device at the instant of death is lost with it —
  // its requests restart from the queue of whichever replica inherits them.
  void KillAndRehome(int n, int slot) {
    NodeEngine& node = nodes_[static_cast<std::size_t>(n)];
    Replica& r = node.replica(slot);
    const std::size_t m = r.model;
    const int id = r.id;
    const int gpu_global = topo_.GlobalGpu(n, r.gpu);
    const bool was_running =
        r.state == Replica::State::kActive || r.state == Replica::State::kDraining;
    std::vector<Request> orphans = node.KillReplica(slot);
    replicas_lost_->Inc();
    Mark("replica-killed", {{"service", models_[m]->label},
                            {"replica", std::to_string(id)},
                            {"gpu", std::to_string(gpu_global)}});
    for (Request& request : orphans) {
      RehomeOrphan(m, std::move(request), was_running);
    }
    if (config_.replace_lost_replicas) {
      if (AddReplica(m)) {
        replacements_->Inc();
      } else {
        replacement_failures_->Inc();
      }
    }
  }

  void RehomeOrphan(std::size_t m, Request request, bool was_running) {
    ModelState& model = *models_[m];
    ++request.failovers;
    if (attr_) {
      // Whatever leg the orphan was on when its replica/node died (wire,
      // queue already closed by KillReplica) ends here; everything until it
      // lands somewhere new — re-forward, limbo — is preemption fallout.
      request.ledger.Advance(sim_.now(), attribution::Phase::kPreempt);
    }
    if (InWindow(sim_.now())) {
      model.failed_over->Inc();
    }
    const int node = PickNode(m);
    if (node < 0) {
      if (PendingReplicas(m) > 0 || (config_.replace_lost_replicas && was_running)) {
        model.limbo.push_back(std::move(request));
      } else {
        model.total_dropped->Inc();
        if (InWindow(sim_.now())) {
          model.dropped->Inc();
        }
        Mark("drop", {{"service", model.label}});
      }
      return;
    }
    if (NetworkOn()) {
      ForwardRequest(node, std::move(request), RouteReason::kFailoverRehome);
    } else {
      Deliver(node, std::move(request), RouteReason::kFailoverRehome);
    }
  }

  // --- Autoscaling. ---

  void EvalAutoscaler() {
    const TimeUs now = sim_.now();
    const DurationUs period = config_.autoscaler.eval_period_us;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      serving::ModelWindowSignals signals;
      signals.arrivals = model.w_arrivals;
      signals.completions = model.w_completions;
      signals.slo_met = model.w_slo_met;
      signals.shed = model.w_shed;
      signals.min_replicas = model.cfg.min_replicas;
      signals.max_replicas = model.cfg.max_replicas;
      signals.pending_replicas = PendingReplicas(m);
      double busy = 0.0;
      int active = 0;
      for (const int id : model.replicas) {
        Replica& r = replica(id);
        if (r.state != Replica::State::kActive && r.state != Replica::State::kDraining) {
          continue;
        }
        if (r.busy) {  // account the running batch's elapsed part
          r.busy_in_eval_window_us += now - r.batch_start;
          r.batch_start = now;
        }
        busy += r.busy_in_eval_window_us;
        r.busy_in_eval_window_us = 0.0;
        ++active;
      }
      signals.active_replicas = active;
      signals.utilization = active > 0 ? busy / (period * static_cast<double>(active)) : 0.0;

      serving::ScaleReason reason = serving::ScaleReason::kNone;
      switch (serving::DecideWithReason(config_.autoscaler, signals, &reason)) {
        case serving::ScaleDecision::kUp:
          if (AddReplica(m)) {
            scale_ups_->Inc();
            Mark("scale-up", {{"service", model.label},
                              {"reason", serving::ScaleReasonName(reason)}});
          } else {
            scale_failures_->Inc();
            Mark("scale-failure", {{"service", model.label}});
          }
          break;
        case serving::ScaleDecision::kDown:
          if (RemoveOneReplica(m)) {
            scale_downs_->Inc();
            Mark("scale-down", {{"service", model.label},
                                {"reason", serving::ScaleReasonName(reason)}});
          }
          break;
        case serving::ScaleDecision::kHold:
          break;
      }
      model.w_arrivals = 0;
      model.w_completions = 0;
      model.w_slo_met = 0;
      model.w_shed = 0;
    }
    sim_.ScheduleAfter(period, [this] { EvalAutoscaler(); });
  }

  // --- Results. ---

  ClusterResult Finalize() {
    ClusterResult cluster;
    serving::ServingResult& result = cluster.serving;
    result.window_us = config_.duration_us;
    for (std::size_t m = 0; m < models_.size(); ++m) {
      ModelState& model = *models_[m];
      serving::ModelServingResult out;
      out.name = workloads::WorkloadName(model.cfg.workload);
      out.tier = model.cfg.tier;
      out.offered = static_cast<std::size_t>(model.offered->AsCount());
      out.completed = static_cast<std::size_t>(model.completed->AsCount());
      out.slo_met = static_cast<std::size_t>(model.slo_met->AsCount());
      out.shed = static_cast<std::size_t>(model.shed->AsCount());
      out.dropped = static_cast<std::size_t>(model.dropped->AsCount());
      out.failed_over = static_cast<std::size_t>(model.failed_over->AsCount());
      // Clamped: completions of pre-window arrivals can push the windowed
      // ratio a hair over 1 at light load.
      out.slo_attainment =
          out.offered > 0 ? std::min(1.0, static_cast<double>(out.slo_met) /
                                              static_cast<double>(out.offered))
                          : 1.0;
      out.throughput_rps =
          static_cast<double>(out.completed) / UsToSec(config_.duration_us);
      out.latency = model.latency->window();
      out.queueing = model.queueing->window();
      out.batches = static_cast<std::size_t>(model.batches->AsCount());
      out.mean_batch_size =
          out.batches > 0 ? model.batched_requests->value() /
                                static_cast<double>(out.batches)
                          : 0.0;
      if (model.llm_cost != nullptr) {
        out.tokens = static_cast<std::size_t>(model.tokens->AsCount());
        out.prefills = static_cast<std::size_t>(model.prefills->AsCount());
        out.decode_steps = static_cast<std::size_t>(model.decode_steps->AsCount());
        out.kv_evictions = static_cast<std::size_t>(model.kv_evictions->AsCount());
        out.ttft = model.ttft->window();
        out.tpot = model.tpot->window();
      }
      out.total_offered = static_cast<std::size_t>(model.total_offered->AsCount());
      out.total_completed = static_cast<std::size_t>(model.total_completed->AsCount());
      out.total_shed = static_cast<std::size_t>(model.total_shed->AsCount());
      out.total_dropped = static_cast<std::size_t>(model.total_dropped->AsCount());
      std::size_t left = model.limbo.size() + model.in_network;
      for (const int id : model.replicas) {
        const Replica& r = replica(id);
        left += r.batcher.size() + r.in_flight.size();
        if (r.state == Replica::State::kActive) {
          ++out.final_replicas;
          AccountReplicaTime(r.active_since);
        } else if (r.state == Replica::State::kDraining) {
          AccountReplicaTime(r.active_since);
        }
      }
      out.left_in_system = left;
      // Export the closing term of the accounting identity so a metrics
      // snapshot alone can verify
      //   offered_total == completed_total + shed_total + dropped_total
      //                    + left_in_system.
      metrics_->GetGauge("serving.left_in_system", {{"service", model.label}})
          ->Set(static_cast<double>(left));
      metrics_->GetGauge("serving.final_replicas", {{"service", model.label}})
          ->Set(static_cast<double>(out.final_replicas));
      ORION_CHECK_MSG(out.total_offered == out.total_completed + out.total_shed +
                                               out.total_dropped + out.left_in_system,
                      "request accounting identity violated for " << out.name);
      result.models.push_back(std::move(out));
    }
    result.scale_ups = static_cast<std::size_t>(scale_ups_->AsCount());
    result.scale_downs = static_cast<std::size_t>(scale_downs_->AsCount());
    result.scale_failures = static_cast<std::size_t>(scale_failures_->AsCount());
    result.faults_injected = static_cast<std::size_t>(faults_injected_->AsCount());
    result.faults_skipped = static_cast<std::size_t>(faults_skipped_->AsCount());
    result.replicas_lost = static_cast<std::size_t>(replicas_lost_->AsCount());
    result.replacements = static_cast<std::size_t>(replacements_->AsCount());
    result.replacement_failures =
        static_cast<std::size_t>(replacement_failures_->AsCount());
    result.replica_seconds = replica_seconds_->value();
    for (const NodeEngine& node : nodes_) {
      for (int local = 0; local < node.num_gpus(); ++local) {
        if (node.gpu(local).alive) {
          ++result.gpus_alive_end;
        }
      }
    }
    metrics_->GetGauge("serving.gpus_alive")
        ->Set(static_cast<double>(result.gpus_alive_end));

    for (const NodeEngine& node : nodes_) {
      NodeSummary summary;
      summary.node = node.node_id();
      summary.alive_end = node.alive();
      summary.replicas_created = node.replicas_created();
      summary.replicas_killed = node.replicas_killed();
      summary.batches = node.batches_served();
      summary.requests = node.requests_served();
      cluster.nodes.push_back(summary);
      if (node.alive()) {
        ++cluster.nodes_alive_end;
      }
    }
    cluster.node_faults = node_faults_;
    cluster.requests_forwarded = requests_forwarded_;
    if (fabric_ != nullptr) {
      for (int n = 0; n < spec_.num_nodes; ++n) {
        const interconnect::LinkId link = topo_.NicLink(n);
        cluster.request_bytes_moved += fabric_->BytesMoved(link, /*forward=*/true);
        cluster.response_bytes_moved += fabric_->BytesMoved(link, /*forward=*/false);
      }
    }
    if (spec_.num_nodes > 1) {
      metrics_->GetGauge("datacenter.nodes_alive")
          ->Set(static_cast<double>(cluster.nodes_alive_end));
    }
    return cluster;
  }

  serving::ServingConfig config_;
  ClusterSpec spec_;
  ClusterTopology topo_;
  NodePolicy node_policy_;
  Simulator sim_;
  serving::Router router_;
  serving::AdmissionController admission_;
  TimeUs horizon_;
  std::deque<NodeEngine> nodes_;
  std::unique_ptr<interconnect::Fabric> fabric_;  // null when network off
  std::vector<std::unique_ptr<ModelState>> models_;
  std::vector<ReplicaRef> directory_;  // global replica id -> (node, slot)
  std::vector<std::uint64_t> rr_node_cursor_;  // level-1 round-robin, per model
  std::uint64_t next_request_id_ = 0;

  // In-flight network payloads, keyed by a monotonically increasing op id so
  // iteration (the node-down sweep) follows start order deterministically.
  std::map<std::uint64_t, NetOp> net_ops_;
  std::uint64_t next_op_id_ = 0;
  std::size_t node_faults_ = 0;
  std::size_t requests_forwarded_ = 0;

  // Telemetry (bound in BindTelemetry; metrics_ falls back to the private
  // registry when no hub is configured, so the instruments are never null).
  telemetry::Hub* hub_ = nullptr;
  telemetry::MetricRegistry local_metrics_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  bool attr_ = false;  // hub attribution enabled (BindTelemetry)
  telemetry::TrackId control_track_ = -1;
  std::vector<telemetry::TrackId> gpu_tracks_;  // by global GPU index
  telemetry::Counter* scale_ups_ = nullptr;
  telemetry::Counter* scale_downs_ = nullptr;
  telemetry::Counter* scale_failures_ = nullptr;
  telemetry::Counter* faults_injected_ = nullptr;
  telemetry::Counter* faults_skipped_ = nullptr;
  telemetry::Counter* replicas_lost_ = nullptr;
  telemetry::Counter* replacements_ = nullptr;
  telemetry::Counter* replacement_failures_ = nullptr;
  telemetry::Counter* replica_seconds_ = nullptr;  // replica-seconds accrue monotonically
  telemetry::Counter* node_faults_c_ = nullptr;           // num_nodes > 1 only
  telemetry::Counter* requests_forwarded_c_ = nullptr;    // num_nodes > 1 only
};

}  // namespace

ClusterResult RunCluster(const ClusterConfig& config) {
  ClusterEngine engine(config);
  return engine.Run();
}

}  // namespace datacenter

namespace serving {

ServingResult RunServing(const ServingConfig& config) {
  datacenter::ClusterConfig cluster_config;
  cluster_config.cluster.num_nodes = 1;
  cluster_config.cluster.gpus_per_node = config.num_gpus;
  cluster_config.serving = config;
  return datacenter::RunCluster(cluster_config).serving;
}

}  // namespace serving
}  // namespace orion
