#include "src/datacenter/node_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace datacenter {

NodeEngine::NodeEngine(int node_id, int num_gpus, NodeHost* host)
    : node_id_(node_id), host_(host) {
  ORION_CHECK(num_gpus >= 1);
  ORION_CHECK(host != nullptr);
  gpus_.resize(static_cast<std::size_t>(num_gpus));
}

void NodeEngine::MarkDead() {
  alive_ = false;
  for (GpuShard& gpu : gpus_) {
    gpu.alive = false;
  }
}

std::optional<int> NodeEngine::BestPlacement(
    const cluster::JobSignature& job, std::size_t gpu_memory_bytes, int max_replicas_per_gpu,
    cluster::PlacementEngine::PlacementScore* score) const {
  std::vector<cluster::GpuResidents> residents(gpus_.size());
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    residents[g].alive = gpus_[g].alive;
    residents[g].used_bytes = gpus_[g].used_bytes;
    for (const int slot : gpus_[g].replicas) {
      const Replica& other = replicas_[static_cast<std::size_t>(slot)];
      residents[g].jobs.push_back(host_->model_cost(other.model).signature());
    }
  }
  return cluster::PlacementEngine::BestGpuFor(job, residents, gpu_memory_bytes,
                                              max_replicas_per_gpu, score);
}

int NodeEngine::CreateReplica(int id, std::size_t model, int local_gpu, bool active,
                              TimeUs now) {
  ORION_CHECK(local_gpu >= 0 && local_gpu < num_gpus());
  const int slot = static_cast<int>(replicas_.size());
  replicas_.emplace_back(host_->batching_config());
  Replica& r = replicas_.back();
  r.id = id;
  r.model = model;
  r.node = node_id_;
  r.gpu = local_gpu;
  GpuShard& shard = gpus_[static_cast<std::size_t>(local_gpu)];
  shard.used_bytes += host_->model_cost(model).state_bytes();
  shard.replicas.push_back(slot);
  if (active) {
    r.state = Replica::State::kActive;
    r.active_since = now;
  } else {
    r.state = Replica::State::kProvisioning;
  }
  return slot;
}

void NodeEngine::EnqueueAt(int slot, serving::Request request) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  r.batcher.Enqueue(std::move(request), host_->sim().now());
  TryDispatch(slot);
}

void NodeEngine::TryDispatch(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  if (r.busy || r.batcher.empty() ||
      (r.state != Replica::State::kActive && r.state != Replica::State::kDraining)) {
    return;
  }
  Simulator& sim = host_->sim();
  if (r.batcher.ShouldDispatch(sim.now())) {
    sim.Cancel(r.linger);
    r.dispatch_reason = r.state == Replica::State::kDraining
                            ? serving::DispatchReason::kDrain
                            : r.batcher.WhyDispatch(sim.now());
    StartBatch(slot);
    return;
  }
  // Linger for more requests: wake at the oldest request's delay bound.
  sim.Cancel(r.linger);
  r.linger = sim.ScheduleAt(r.batcher.LingerDeadline(), [this, slot] { TryDispatch(slot); });
}

void NodeEngine::StartBatch(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  const TimeUs now = host_->sim().now();
  r.batcher.TakeBatchInto(&r.in_flight);  // reuses the replica's buffer
  for (serving::Request& request : r.in_flight) {
    request.start_service_us = now;
  }
  const int batch = static_cast<int>(r.in_flight.size());
  const DurationUs service =
      host_->model_cost(r.model).BatchServiceUs(batch) * Slowdown(r);
  r.busy = true;
  r.batch_start = now;
  r.busy_until = now + service;
  r.completion =
      host_->sim().ScheduleAfter(service, [this, slot] { OnBatchComplete(slot); });
}

void NodeEngine::OnBatchComplete(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  const TimeUs now = host_->sim().now();
  ++batches_served_;
  requests_served_ += r.in_flight.size();
  host_->OnBatchServed(*this, r);  // reads r.in_flight / batch_start / reason
  r.busy_in_eval_window_us += now - r.batch_start;
  r.in_flight.clear();
  r.busy = false;
  if (r.state == Replica::State::kDraining && r.batcher.empty()) {
    RetireReplica(slot);
    return;
  }
  TryDispatch(slot);
}

void NodeEngine::DrainReplica(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  r.state = Replica::State::kDraining;
  if (!r.busy && r.batcher.empty()) {
    RetireReplica(slot);
  }
}

void NodeEngine::ReleaseFromGpu(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  GpuShard& shard = gpus_[static_cast<std::size_t>(r.gpu)];
  shard.used_bytes -= host_->model_cost(r.model).state_bytes();
  shard.replicas.erase(std::find(shard.replicas.begin(), shard.replicas.end(), slot));
}

void NodeEngine::RetireReplica(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  ORION_CHECK(!r.busy && r.batcher.empty());
  host_->sim().Cancel(r.linger);
  host_->AccountReplicaTime(r.active_since);
  ReleaseFromGpu(slot);
  r.state = Replica::State::kDead;
}

std::vector<serving::Request> NodeEngine::KillReplica(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  ORION_CHECK(r.state != Replica::State::kDead);
  Simulator& sim = host_->sim();
  sim.Cancel(r.completion);
  sim.Cancel(r.linger);
  std::vector<serving::Request> orphans = std::move(r.in_flight);
  r.in_flight.clear();
  for (serving::Request& request : r.batcher.Drain()) {
    orphans.push_back(std::move(request));
  }
  const bool was_running =
      r.state == Replica::State::kActive || r.state == Replica::State::kDraining;
  if (was_running) {
    host_->AccountReplicaTime(r.active_since);
  }
  r.busy = false;
  ReleaseFromGpu(slot);
  r.state = Replica::State::kDead;
  ++replicas_killed_;
  return orphans;
}

DurationUs NodeEngine::OutstandingUs(const Replica& r) const {
  const serving::BatchCostModel& cost = host_->model_cost(r.model);
  const serving::BatchingConfig& batching = host_->batching_config();
  const TimeUs now = host_->sim().now();
  DurationUs work = r.busy ? std::max(0.0, r.busy_until - now) : 0.0;
  const std::size_t queued = r.batcher.size();
  if (queued > 0) {
    const int batch = std::min<int>(batching.enabled ? batching.max_batch_size : 1,
                                    static_cast<int>(queued));
    work += static_cast<double>(queued) * cost.PerRequestUs(batch) * Slowdown(r);
  }
  return work;
}

double NodeEngine::Slowdown(const Replica& r) const {
  const GpuShard& shard = gpus_[static_cast<std::size_t>(r.gpu)];
  double pressure = 0.0;
  for (const int other_slot : shard.replicas) {
    const Replica& other = replicas_[static_cast<std::size_t>(other_slot)];
    if (other.id == r.id) {
      continue;
    }
    if (other.state != Replica::State::kActive &&
        other.state != Replica::State::kDraining) {
      continue;  // provisioning replicas hold memory but run no kernels yet
    }
    pressure += cluster::PairInterference(host_->model_cost(r.model).signature(),
                                          host_->model_cost(other.model).signature());
  }
  return serving::InterferenceSlowdown(host_->model_tier(r.model), pressure);
}

}  // namespace datacenter
}  // namespace orion
