#include "src/datacenter/node_engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace datacenter {

NodeEngine::NodeEngine(int node_id, int num_gpus, NodeHost* host)
    : node_id_(node_id), host_(host) {
  ORION_CHECK(num_gpus >= 1);
  ORION_CHECK(host != nullptr);
  attr_ = host->attribution();
  gpus_.resize(static_cast<std::size_t>(num_gpus));
}

void NodeEngine::SyncIdle(Replica& r) {
  if (!r.busy &&
      (r.state == Replica::State::kActive || r.state == Replica::State::kDraining)) {
    const TimeUs now = host_->sim().now();
    r.idle_accum_us += now - r.idle_since;
    r.idle_since = now;
  }
}

void NodeEngine::MarkDead() {
  alive_ = false;
  for (GpuShard& gpu : gpus_) {
    gpu.alive = false;
  }
}

std::optional<int> NodeEngine::BestPlacement(
    const cluster::JobSignature& job, std::size_t gpu_memory_bytes, int max_replicas_per_gpu,
    cluster::PlacementEngine::PlacementScore* score) const {
  std::vector<cluster::GpuResidents> residents(gpus_.size());
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    residents[g].alive = gpus_[g].alive;
    residents[g].used_bytes = gpus_[g].used_bytes;
    for (const int slot : gpus_[g].replicas) {
      const Replica& other = replicas_[static_cast<std::size_t>(slot)];
      residents[g].jobs.push_back(host_->model_cost(other.model).signature());
    }
  }
  return cluster::PlacementEngine::BestGpuFor(job, residents, gpu_memory_bytes,
                                              max_replicas_per_gpu, score);
}

int NodeEngine::CreateReplica(int id, std::size_t model, int local_gpu, bool active,
                              TimeUs now) {
  ORION_CHECK(local_gpu >= 0 && local_gpu < num_gpus());
  const int slot = static_cast<int>(replicas_.size());
  replicas_.emplace_back(host_->batching_config());
  Replica& r = replicas_.back();
  r.id = id;
  r.model = model;
  r.node = node_id_;
  r.gpu = local_gpu;
  GpuShard& shard = gpus_[static_cast<std::size_t>(local_gpu)];
  shard.used_bytes += host_->model_cost(model).state_bytes();
  shard.replicas.push_back(slot);
  if (const serving::LlmServiceConfig* llm = host_->model_llm(model)) {
    // Carve the replica's KV cache out of whatever device memory remains
    // free on its GPU (vLLM-style), optionally capped by the service config.
    const std::size_t memory = host_->gpu_memory_bytes();
    const std::size_t free = memory > shard.used_bytes ? memory - shard.used_bytes : 0;
    const std::size_t capacity = llm->kv_capacity_bytes > 0
                                     ? std::min(llm->kv_capacity_bytes, free)
                                     : free;
    serving::KvCacheConfig kv_config;
    kv_config.block_tokens = llm->kv_block_tokens;
    kv_config.bytes_per_token = host_->model_llm_cost(model).kv_bytes_per_token();
    kv_config.capacity_bytes = capacity;
    r.llm = std::make_unique<Replica::LlmState>(kv_config);
    r.llm->kv_reserved_bytes = capacity;
    shard.used_bytes += capacity;
    // Progress guarantee for the eviction loop: a lone sequence must always
    // fit, or it could be preempted forever without finishing.
    const int worst = llm->prompt_tokens + std::max(1, llm->max_decode_tokens);
    ORION_CHECK_MSG(static_cast<std::size_t>(r.llm->kv.BlocksForTokens(worst)) <=
                        r.llm->kv.total_blocks(),
                    "LLM replica KV cache cannot hold one full sequence");
  }
  if (active) {
    r.state = Replica::State::kActive;
    r.active_since = now;
    r.idle_since = now;
  } else {
    r.state = Replica::State::kProvisioning;
  }
  return slot;
}

void NodeEngine::EnqueueAt(int slot, serving::Request request) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  if (attr_) {
    // Close the wire (or failover) interval and open kQueue; the idle
    // snapshot lets LeaveQueue split the wait into linger vs capacity.
    SyncIdle(r);
    request.ledger.EnterQueue(host_->sim().now(), r.idle_accum_us);
  }
  r.batcher.Enqueue(std::move(request), host_->sim().now());
  TryDispatch(slot);
}

void NodeEngine::TryDispatch(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  if (r.busy || r.batcher.empty() ||
      (r.state != Replica::State::kActive && r.state != Replica::State::kDraining)) {
    return;
  }
  if (r.llm != nullptr && host_->model_llm(r.model)->continuous) {
    // Iteration-level batching has no linger: a free LLM replica starts its
    // next step immediately and arrivals join running iterations as steps
    // complete.
    TryStepLlm(slot);
    return;
  }
  Simulator& sim = host_->sim();
  if (r.batcher.ShouldDispatch(sim.now())) {
    sim.Cancel(r.linger);
    r.dispatch_reason = r.state == Replica::State::kDraining
                            ? serving::DispatchReason::kDrain
                            : r.batcher.WhyDispatch(sim.now());
    StartBatch(slot);
    return;
  }
  // Linger for more requests: wake at the oldest request's delay bound.
  sim.Cancel(r.linger);
  r.linger = sim.ScheduleAt(r.batcher.LingerDeadline(), [this, slot] { TryDispatch(slot); });
}

void NodeEngine::StartBatch(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  if (r.llm != nullptr) {
    StartLlmBatch(slot);  // request-level LLM baseline (KV-capped take)
    return;
  }
  const TimeUs now = host_->sim().now();
  if (attr_) {
    SyncIdle(r);
  }
  r.batcher.TakeBatchInto(&r.in_flight);  // reuses the replica's buffer
  for (serving::Request& request : r.in_flight) {
    request.start_service_us = now;
    if (attr_) {
      request.ledger.LeaveQueue(now, r.idle_accum_us, attribution::Phase::kExecute);
    }
  }
  const int batch = static_cast<int>(r.in_flight.size());
  const DurationUs iso_us = host_->model_cost(r.model).BatchServiceUs(batch);
  const DurationUs service = iso_us * Slowdown(r);
  if (attr_) {
    r.batch_iso_us = iso_us;
  }
  r.busy = true;
  r.batch_start = now;
  r.busy_until = now + service;
  r.completion =
      host_->sim().ScheduleAfter(service, [this, slot] { OnBatchComplete(slot); });
}

void NodeEngine::OnBatchComplete(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  const TimeUs now = host_->sim().now();
  ++batches_served_;
  requests_served_ += r.in_flight.size();
  if (attr_) {
    // Split the batch's service time into its isolated price (kExecute) and
    // the collocation stall (kInterference) before the host finalizes.
    for (serving::Request& request : r.in_flight) {
      request.ledger.ChargeExecStep(now, r.batch_iso_us);
    }
  }
  host_->OnBatchServed(*this, r);  // reads r.in_flight / batch_start / reason
  if (r.llm != nullptr) {
    // Request-level LLM baseline: the whole batch's KV lives until the
    // longest generation finished, i.e. right now.
    for (const serving::Request& seq : r.in_flight) {
      r.llm->kv.Free(seq.id);
    }
  }
  r.busy_in_eval_window_us += now - r.batch_start;
  r.in_flight.clear();
  r.busy = false;
  if (attr_) {
    r.idle_since = now;
  }
  if (r.state == Replica::State::kDraining && r.batcher.empty()) {
    RetireReplica(slot);
    return;
  }
  TryDispatch(slot);
}

// --- Continuous (iteration-level) LLM batching. -----------------------------

void NodeEngine::TryStepLlm(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  if (r.busy ||
      (r.state != Replica::State::kActive && r.state != Replica::State::kDraining)) {
    return;
  }
  Replica::LlmState& st = *r.llm;
  const serving::LlmCostModel& cost = host_->model_llm_cost(r.model);
  Simulator& sim = host_->sim();
  const TimeUs now = sim.now();
  if (attr_) {
    SyncIdle(r);
  }

  // 1. Reserve KV for the token every running sequence produces this step,
  //    preempting the newest sequence (possibly the one being extended) on
  //    allocation failure. The creation-time capacity check guarantees a
  //    lone sequence always fits, so this loop terminates with progress.
  std::size_t i = 0;
  while (i < r.in_flight.size()) {
    serving::Request& seq = r.in_flight[i];
    if (st.kv.TryReserve(seq.id, seq.prompt_tokens + seq.generated + 1)) {
      ++i;
      continue;
    }
    PreemptNewestLlm(slot);
  }

  // 2. Join sequences from the queue head while batch slots and KV capacity
  //    allow; stop at the first that does not fit (head-of-line order is
  //    what the batcher's FIFO/EDF policy decided).
  const serving::BatchingConfig& batching = host_->batching_config();
  const int max_batch = batching.enabled ? batching.max_batch_size : 1;
  st.joined_this_step = 0;
  DurationUs prefill_us = 0.0;
  while (static_cast<int>(r.in_flight.size()) < max_batch && !r.batcher.empty()) {
    const serving::Request& head = r.batcher.Front();
    if (!st.kv.TryReserve(head.id, head.prompt_tokens + head.generated + 1)) {
      break;
    }
    serving::Request seq = r.batcher.PopFront();
    seq.start_service_us = now;
    if (attr_) {
      // Fresh joiners close kQueue (split against linger); evicted rejoiners
      // close kPreempt — their whole rejoin wait is recompute, not queueing.
      seq.ledger.LeaveQueue(now, r.idle_accum_us, attribution::Phase::kExecute);
    }
    // Fresh sequences prefill their prompt; evicted rejoiners recompute
    // prompt + generated (preemption with recompute).
    prefill_us += cost.PrefillUs(seq.prompt_tokens + seq.generated);
    r.in_flight.push_back(std::move(seq));
    ++st.joined_this_step;
  }
  if (r.in_flight.empty()) {
    if (r.state == Replica::State::kDraining && r.batcher.empty()) {
      RetireReplica(slot);
    }
    return;
  }

  // 3. One iteration: every joiner's prefill plus one decode step for the
  //    sequences that were already running.
  const int decoding = static_cast<int>(r.in_flight.size()) - st.joined_this_step;
  DurationUs step_us = prefill_us;
  if (decoding > 0) {
    long context_sum = 0;
    for (int d = 0; d < decoding; ++d) {
      const serving::Request& seq = r.in_flight[static_cast<std::size_t>(d)];
      context_sum += seq.prompt_tokens + seq.generated;
    }
    step_us += cost.DecodeStepUs(decoding, static_cast<int>(context_sum / decoding));
  }
  if (attr_) {
    r.batch_iso_us = step_us;  // pre-slowdown: the step's isolated price
  }
  step_us *= Slowdown(r);
  r.busy = true;
  r.batch_start = now;
  r.busy_until = now + step_us;
  r.dispatch_reason = serving::DispatchReason::kContinuous;
  r.completion = sim.ScheduleAfter(step_us, [this, slot] { OnLlmStepComplete(slot); });
}

void NodeEngine::OnLlmStepComplete(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  Replica::LlmState& st = *r.llm;
  const TimeUs now = host_->sim().now();
  const TimeUs start = r.batch_start;
  ++batches_served_;
  if (attr_) {
    // Charge the step to every participant before tokens are assigned, so a
    // first-token snapshot below sums exactly to TTFT.
    for (serving::Request& seq : r.in_flight) {
      seq.ledger.ChargeExecStep(now, r.batch_iso_us);
    }
  }
  // Every sequence in the step emitted exactly one token: joiners their
  // first (from the prefill; rejoiners their next, the recompute re-derived
  // the earlier ones), running sequences their next from the decode step.
  const std::size_t n = r.in_flight.size();
  for (std::size_t i = 0; i < n; ++i) {
    serving::Request& seq = r.in_flight[i];
    const bool joined = i >= n - static_cast<std::size_t>(st.joined_this_step);
    if (joined && seq.first_token_us < 0.0) {
      seq.first_token_us = now;
      if (attr_) {
        seq.ledger.MarkFirstToken();
      }
    } else {
      ++seq.generated;
    }
  }
  host_->OnDecodeStep(*this, r, static_cast<int>(n), st.joined_this_step, start, now);
  st.joined_this_step = 0;
  r.busy_in_eval_window_us += now - start;
  r.busy = false;
  if (attr_) {
    r.idle_since = now;
  }
  // Finished sequences leave the iteration and release their KV.
  for (std::size_t i = 0; i < r.in_flight.size();) {
    if (r.in_flight[i].generated >= r.in_flight[i].target_tokens) {
      serving::Request seq = std::move(r.in_flight[i]);
      r.in_flight.erase(r.in_flight.begin() + static_cast<long>(i));
      st.kv.Free(seq.id);
      ++requests_served_;
      host_->OnSequenceFinished(*this, r, seq, start, now);
    } else {
      ++i;
    }
  }
  if (r.state == Replica::State::kDraining && r.in_flight.empty() && r.batcher.empty()) {
    RetireReplica(slot);
    return;
  }
  TryStepLlm(slot);
}

void NodeEngine::PreemptNewestLlm(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  ORION_CHECK(!r.in_flight.empty());
  serving::Request seq = std::move(r.in_flight.back());
  r.in_flight.pop_back();
  if (r.llm->kv.Holds(seq.id)) {
    r.llm->kv.Free(seq.id);
  }
  ++seq.evictions;
  if (attr_) {
    // Requeue bypasses EnqueueAt, so the rejoin wait stays open on kPreempt
    // until the sequence rejoins a step (recompute wait, not queueing).
    seq.ledger.Advance(host_->sim().now(), attribution::Phase::kPreempt);
  }
  host_->OnKvEviction(*this, r, seq);
  r.batcher.Requeue(std::move(seq));
}

void NodeEngine::StartLlmBatch(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  Replica::LlmState& st = *r.llm;
  const serving::LlmCostModel& cost = host_->model_llm_cost(r.model);
  const TimeUs now = host_->sim().now();
  if (attr_) {
    SyncIdle(r);
  }
  const serving::BatchingConfig& batching = host_->batching_config();
  const int take = batching.enabled ? batching.max_batch_size : 1;
  r.in_flight.clear();
  // Request-level batching reserves each sequence's FULL KV footprint up
  // front (no mid-batch eviction); the batch is capped by what fits.
  while (static_cast<int>(r.in_flight.size()) < take && !r.batcher.empty()) {
    const serving::Request& head = r.batcher.Front();
    const int full = head.prompt_tokens + std::max(1, head.target_tokens);
    if (!st.kv.TryReserve(head.id, full)) {
      break;
    }
    serving::Request seq = r.batcher.PopFront();
    if (attr_) {
      seq.ledger.LeaveQueue(now, r.idle_accum_us, attribution::Phase::kExecute);
    }
    r.in_flight.push_back(std::move(seq));
  }
  // A free replica's cache is empty, and one full sequence always fits.
  ORION_CHECK(!r.in_flight.empty());
  const serving::LlmBatchBreakdown breakdown = cost.RequestLevelBatchUs(r.in_flight);
  const double slowdown = Slowdown(r);
  for (serving::Request& seq : r.in_flight) {
    seq.start_service_us = now;
    // All prefills run up front; every first token lands when they finish.
    // A first token already delivered (failover orphan re-served after its
    // replica died mid-decode) stays delivered: re-prefilling recomputes
    // context the client has already streamed past.
    if (seq.first_token_us < 0.0) {
      seq.first_token_us = now + breakdown.prefill_us * slowdown;
    }
    seq.generated = seq.target_tokens;  // the batch runs to completion
  }
  if (attr_) {
    r.batch_iso_us = breakdown.total_us;
  }
  const DurationUs service = breakdown.total_us * slowdown;
  r.busy = true;
  r.batch_start = now;
  r.busy_until = now + service;
  r.completion =
      host_->sim().ScheduleAfter(service, [this, slot] { OnBatchComplete(slot); });
}

void NodeEngine::DrainReplica(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  r.state = Replica::State::kDraining;
  if (!r.busy && r.batcher.empty() && r.in_flight.empty()) {
    RetireReplica(slot);
  }
}

void NodeEngine::ReleaseFromGpu(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  GpuShard& shard = gpus_[static_cast<std::size_t>(r.gpu)];
  shard.used_bytes -= host_->model_cost(r.model).state_bytes();
  if (r.llm != nullptr) {
    shard.used_bytes -= r.llm->kv_reserved_bytes;
  }
  shard.replicas.erase(std::find(shard.replicas.begin(), shard.replicas.end(), slot));
}

void NodeEngine::RetireReplica(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  ORION_CHECK(!r.busy && r.batcher.empty());
  ORION_CHECK_MSG(r.llm == nullptr || r.llm->kv.used_blocks() == 0,
                  "retiring LLM replica leaks KV-cache blocks");
  host_->sim().Cancel(r.linger);
  host_->AccountReplicaTime(r.active_since);
  ReleaseFromGpu(slot);
  r.state = Replica::State::kDead;
}

std::vector<serving::Request> NodeEngine::KillReplica(int slot) {
  Replica& r = replicas_[static_cast<std::size_t>(slot)];
  ORION_CHECK(r.state != Replica::State::kDead);
  Simulator& sim = host_->sim();
  sim.Cancel(r.completion);
  sim.Cancel(r.linger);
  if (attr_) {
    SyncIdle(r);
    const TimeUs now = sim.now();
    // In-flight work dies with the replica: the partial batch/step time the
    // orphans already spent is wasted, so it reclassifies as kPreempt (not
    // execute), and the open phase stays kPreempt through re-routing.
    for (serving::Request& request : r.in_flight) {
      request.ledger.AdvanceInto(now, attribution::Phase::kPreempt,
                                 attribution::Phase::kPreempt);
    }
  }
  std::vector<serving::Request> orphans = std::move(r.in_flight);
  r.in_flight.clear();
  for (serving::Request& request : r.batcher.Drain()) {
    if (attr_) {
      // Queued orphans close their queue wait here; the re-route leg that
      // follows is preemption fallout, not fresh queueing.
      request.ledger.LeaveQueue(sim.now(), r.idle_accum_us,
                                attribution::Phase::kPreempt);
    }
    orphans.push_back(std::move(request));
  }
  if (r.llm != nullptr) {
    // The KV cache died with the replica: orphaned sequences recompute from
    // their prompt wherever they rehome. A first token that had genuinely
    // been delivered stays delivered; one merely scheduled (request-level
    // batch still running) is lost with the batch.
    const TimeUs now = sim.now();
    for (serving::Request& request : orphans) {
      request.generated = 0;
      if (request.first_token_us > now) {
        request.first_token_us = -1.0;
      }
    }
  }
  const bool was_running =
      r.state == Replica::State::kActive || r.state == Replica::State::kDraining;
  if (was_running) {
    host_->AccountReplicaTime(r.active_since);
  }
  r.busy = false;
  ReleaseFromGpu(slot);
  r.state = Replica::State::kDead;
  ++replicas_killed_;
  return orphans;
}

DurationUs NodeEngine::OutstandingUs(const Replica& r) const {
  const serving::BatchingConfig& batching = host_->batching_config();
  const TimeUs now = host_->sim().now();
  DurationUs work = r.busy ? std::max(0.0, r.busy_until - now) : 0.0;
  const std::size_t queued = r.batcher.size();
  if (queued == 0) {
    return work;
  }
  const int max_batch = batching.enabled ? batching.max_batch_size : 1;
  if (r.llm != nullptr) {
    // Predicted TTFT contribution of routing a new sequence here: the
    // running step's remainder, plus the queue ahead of it, plus its own
    // prefill. With continuous batching at most max_batch sequences join
    // per step, so the queue costs one typical step per join round; the
    // request-level baseline pays whole straggler-padded batches instead.
    const serving::LlmCostModel& cost = host_->model_llm_cost(r.model);
    const serving::LlmServiceConfig& llm = *host_->model_llm(r.model);
    const double slowdown = Slowdown(r);
    if (llm.continuous) {
      const std::size_t rounds = queued / static_cast<std::size_t>(max_batch);
      work += static_cast<double>(rounds) * cost.TypicalStepUs(max_batch) * slowdown;
      work += cost.PrefillUs(llm.prompt_tokens) * slowdown;
    } else {
      const int est = std::min<int>(max_batch, static_cast<int>(queued));
      const int mean_target = (llm.min_decode_tokens + llm.max_decode_tokens) / 2;
      const DurationUs batch_us =
          static_cast<double>(est) * cost.PrefillUs(llm.prompt_tokens) +
          static_cast<double>(mean_target) * cost.TypicalStepUs(est);
      const std::size_t batches =
          (queued + static_cast<std::size_t>(max_batch) - 1) /
          static_cast<std::size_t>(max_batch);
      work += static_cast<double>(batches) * batch_us * slowdown;
    }
    return work;
  }
  const serving::BatchCostModel& cost = host_->model_cost(r.model);
  const int batch = std::min<int>(max_batch, static_cast<int>(queued));
  work += static_cast<double>(queued) * cost.PerRequestUs(batch) * Slowdown(r);
  return work;
}

double NodeEngine::Slowdown(const Replica& r) const {
  const GpuShard& shard = gpus_[static_cast<std::size_t>(r.gpu)];
  double pressure = 0.0;
  for (const int other_slot : shard.replicas) {
    const Replica& other = replicas_[static_cast<std::size_t>(other_slot)];
    if (other.id == r.id) {
      continue;
    }
    if (other.state != Replica::State::kActive &&
        other.state != Replica::State::kDraining) {
      continue;  // provisioning replicas hold memory but run no kernels yet
    }
    pressure += cluster::PairInterference(host_->model_cost(r.model).signature(),
                                          host_->model_cost(other.model).signature());
  }
  return serving::InterferenceSlowdown(host_->model_tier(r.model), pressure);
}

}  // namespace datacenter
}  // namespace orion
