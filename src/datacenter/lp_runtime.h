// Shared pieces of the parallel LP runtime (DESIGN.md §16).
//
// The cluster engine partitions a multi-node run into logical processes: one
// LP per NodeEngine (its own Simulator, NIC fabric and event loop on a worker
// thread) plus the cluster LP (arrivals, admission, routing, autoscaler,
// faults) on the calling thread. LPs exchange timestamped messages over
// SpscQueue pairs and synchronize with the conservative clock protocol in
// src/sim/lp.h; the cross-LP lookahead is the NIC setup latency.
//
// This header holds the data-plane types both sides share:
//   * LpClockBlock — the per-node publication block of the clock protocol.
//   * WireMsg / NodeMsg — the inter-LP message formats (flat structs with a
//     kind tag; every variant is timestamped with its virtual arrival time).
//   * MirrorReplica — the cluster's eventually-consistent copy of one node
//     replica's routing-visible state, refreshed by kMirror deltas and by a
//     full resync at every static rendezvous.
//   * BuildStaticTimes — the control-time rendezvous schedule.
#ifndef SRC_DATACENTER_LP_RUNTIME_H_
#define SRC_DATACENTER_LP_RUNTIME_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/time_types.h"
#include "src/datacenter/node_engine.h"
#include "src/fault/fault_plan.h"
#include "src/serving/autoscaler.h"
#include "src/serving/request.h"
#include "src/serving/router.h"
#include "src/sim/lp.h"

namespace orion {
namespace datacenter {

// One node LP's shared clock-protocol state. The node thread publishes
// send_lb then in_acked (release); the cluster publishes wire_lb then
// out_acked (release). Readers load the ack first (acquire), prune their
// send ledger, then load the clock — the acquire on the ack guarantees the
// clock read is at least as fresh as the acknowledgement it covers, and a
// fresher clock is always safe because each side folds its own un-acked
// sends into the value it publishes.
struct LpClockBlock {
  // Node -> cluster: lower bound on any stamp this node may still push.
  sim::AtomicTime send_lb;
  // Node -> cluster: how many inbox (wire) messages the node has popped.
  std::atomic<std::size_t> in_acked{0};
  // Cluster -> node: bound below which the node may freely execute.
  sim::AtomicTime wire_lb;
  // Cluster -> node: how many outbox messages the cluster has popped.
  std::atomic<std::size_t> out_acked{0};
  // Node -> cluster: the static time the node is parked at (-1 = running;
  // statics are >= 0, so -1 never collides with a real park time).
  sim::AtomicTime parked_at;
  // Node -> cluster: the node ran everything up to the horizon and exited.
  std::atomic<bool> done{false};

  LpClockBlock() { parked_at.Store(-1.0); }
};

// The cluster's routing-visible snapshot of one replica: exactly the fields
// PickNode / BuildNodeViews / the autoscaler read through NodeEngine.
struct MirrorReplica {
  Replica::State state = Replica::State::kProvisioning;
  bool busy = false;
  TimeUs busy_until = 0.0;
  std::size_t queued = 0;     // batcher depth
  std::size_t in_flight = 0;  // requests in the executing batch
};

// Cluster -> node. Requests and state transfers carry the post-setup wire
// payload: the stamp is send time + NIC latency, and the node starts the
// streaming phase of the transfer at the stamp on its own fabric
// (Fabric::StartTransferNoSetup), which is observably identical to the
// sequential single-fabric timeline. kActivate carries a provisioning
// completion (stamped at the cluster-side activation time) so the node's
// replica flips active at the exact sequential instant.
struct WireMsg {
  enum class Kind : std::uint8_t { kRequest, kState, kActivate };
  Kind kind = Kind::kRequest;
  TimeUs stamp = 0.0;       // virtual arrival time at the node
  std::uint64_t op_id = 0;  // cluster NetOp id (kRequest / kState)
  std::size_t bytes = 0;    // payload bytes still to stream
  int slot = -1;            // node-local replica slot (kState / kActivate)
  serving::Request request;                    // kRequest payload
  std::optional<serving::RouteReason> forced;  // kRequest routing override
};

// Node -> cluster. Everything the sequential engine observed synchronously
// from node-side execution, re-expressed as a timestamped event: mirror
// deltas, network-leg completions, window counters, and per-request
// completions. Push order within one node event matches the sequential
// callback order, and the cluster applies messages in (stamp, node,
// arrival-sequence) order.
struct NodeMsg {
  enum class Kind : std::uint8_t {
    kMirror,             // slot's routing-visible state changed
    kWireDone,           // request wire leg fully streamed (op_id)
    kStateDone,          // state-transfer leg fully streamed (op_id)
    kOrphan,             // delivered request found no active replica
    kResponsesStarted,   // node put `count` responses of `model` on the wire
    kBatchStats,         // request-level batch window counters
    kDecodeStep,         // continuous-batching iteration window counters
    kKvEvict,            // KV eviction (window counter)
    kRetire,             // replica retired: account active time
    kResponseDone,       // response reached the front-end: complete request
  };
  Kind kind = Kind::kMirror;
  TimeUs stamp = 0.0;
  int slot = -1;            // kMirror
  MirrorReplica mirror;     // kMirror
  std::uint64_t op_id = 0;  // kWireDone / kStateDone
  int model = -1;           // kOrphan / kResponsesStarted / kBatchStats / ...
  int count = 0;            // kResponsesStarted / batch size
  int prefills = 0;         // kDecodeStep
  double llm_tokens = 0.0;  // kBatchStats: sum of 1 + target over the batch
  TimeUs t0 = 0.0;          // kRetire active_since / kResponseDone batch_start
  TimeUs t1 = 0.0;          // kResponseDone batch_end (exec end)
  int replica_id = -1;      // kResponseDone
  int gpu = -1;             // kResponseDone: global GPU of the server
  serving::Request request;  // kOrphan / kResponseDone payload
};

// Control-time rendezvous schedule: the sorted, unique times at which the
// cluster must see exact node state (fault application, autoscaler
// evaluations) plus the horizon as the final barrier. Autoscaler eval times
// are accumulated with the exact floating-point recurrence the sequential
// engine produces (t += period from 0), so the rendezvous instants are
// bit-identical to the sequential event times.
std::vector<TimeUs> BuildStaticTimes(const fault::FaultPlan& plan,
                                     const serving::AutoscalerConfig& autoscaler,
                                     TimeUs horizon);

}  // namespace datacenter
}  // namespace orion

#endif  // SRC_DATACENTER_LP_RUNTIME_H_
