// Cluster shape and index math: nodes x GPUs plus the NIC/ToR network.
//
// Pure data, like interconnect::NodeTopology one level down. Global GPU
// indices order GPUs node-major — global = node * gpus_per_node + local — so
// fault plans and results written against the single-node engine's flat GPU
// space keep meaning on a cluster.
#ifndef SRC_DATACENTER_CLUSTER_TOPOLOGY_H_
#define SRC_DATACENTER_CLUSTER_TOPOLOGY_H_

#include "src/datacenter/cluster.h"
#include "src/interconnect/topology.h"

namespace orion {
namespace datacenter {

class ClusterTopology {
 public:
  explicit ClusterTopology(const ClusterSpec& spec);

  const ClusterSpec& spec() const { return spec_; }
  int num_nodes() const { return spec_.num_nodes; }
  int gpus_per_node() const { return spec_.gpus_per_node; }
  int total_gpus() const { return spec_.num_nodes * spec_.gpus_per_node; }

  int NodeOfGpu(int global_gpu) const;
  int LocalGpu(int global_gpu) const;
  int GlobalGpu(int node, int local_gpu) const;

  // The datacenter network: one kNic link per node to the ToR switch at the
  // root (interconnect::kHostNode), ready for an interconnect::Fabric.
  // Endpoint i of the returned topology is cluster node i.
  interconnect::NodeTopology MakeNetwork() const;

  // The NIC link of `node` in the MakeNetwork() topology.
  interconnect::LinkId NicLink(int node) const;

 private:
  ClusterSpec spec_;
};

}  // namespace datacenter
}  // namespace orion

#endif  // SRC_DATACENTER_CLUSTER_TOPOLOGY_H_
