#include "src/datacenter/lp_runtime.h"

#include <algorithm>

namespace orion {
namespace datacenter {

std::vector<TimeUs> BuildStaticTimes(const fault::FaultPlan& plan,
                                     const serving::AutoscalerConfig& autoscaler,
                                     TimeUs horizon) {
  std::vector<TimeUs> statics;
  for (const fault::FaultEvent& event : plan.events) {
    switch (event.kind) {
      case fault::FaultKind::kGpuDown:
      case fault::FaultKind::kClientCrash:
      case fault::FaultKind::kNodeDown:
        // The fault kinds the cluster engine arms (others are skipped at arm
        // time and never become events). Beyond the horizon they never run.
        if (event.at_us <= horizon) {
          statics.push_back(event.at_us);
        }
        break;
      default:
        break;
    }
  }
  if (autoscaler.enabled) {
    // Reproduce the sequential ScheduleAfter chain bit for bit: each eval
    // schedules the next `period` after its own (exact) event time.
    TimeUs t = 0.0 + autoscaler.eval_period_us;
    while (t <= horizon) {
      statics.push_back(t);
      t = t + autoscaler.eval_period_us;
    }
  }
  statics.push_back(horizon);
  std::sort(statics.begin(), statics.end());
  statics.erase(std::unique(statics.begin(), statics.end()), statics.end());
  return statics;
}

}  // namespace datacenter
}  // namespace orion
