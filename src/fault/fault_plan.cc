#include "src/fault/fault_plan.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace orion {
namespace fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceDegrade:
      return "device_degrade";
    case FaultKind::kLinkDegrade:
      return "link_degrade";
    case FaultKind::kLinkDown:
      return "link_down";
    case FaultKind::kGpuDown:
      return "gpu_down";
    case FaultKind::kClientCrash:
      return "client_crash";
    case FaultKind::kClientHang:
      return "client_hang";
    case FaultKind::kProfilePoison:
      return "profile_poison";
    case FaultKind::kNodeDown:
      return "node_down";
  }
  return "invalid";
}

bool ParseFaultKind(const std::string& name, FaultKind* kind) {
  for (const FaultKind candidate :
       {FaultKind::kDeviceDegrade, FaultKind::kLinkDegrade, FaultKind::kLinkDown,
        FaultKind::kGpuDown, FaultKind::kClientCrash, FaultKind::kClientHang,
        FaultKind::kProfilePoison, FaultKind::kNodeDown}) {
    if (name == FaultKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

const char* LinkDirName(LinkDir dir) {
  switch (dir) {
    case LinkDir::kForward:
      return "fwd";
    case LinkDir::kBackward:
      return "bwd";
    case LinkDir::kBoth:
      return "both";
  }
  return "invalid";
}

bool ParseLinkDir(const std::string& name, LinkDir* dir) {
  for (const LinkDir candidate : {LinkDir::kForward, LinkDir::kBackward, LinkDir::kBoth}) {
    if (name == LinkDirName(candidate)) {
      *dir = candidate;
      return true;
    }
  }
  return false;
}

void SaveFaultPlan(const FaultPlan& plan, std::ostream& os) {
  os << "# orion fault plan v1\n";
  for (const FaultEvent& e : plan.events) {
    os << "event kind=" << FaultKindName(e.kind) << " at_us=" << e.at_us;
    switch (e.kind) {
      case FaultKind::kDeviceDegrade:
        os << " gpu=" << e.gpu << " sms_lost=" << e.sms_lost
           << " membw_factor=" << e.membw_factor;
        break;
      case FaultKind::kLinkDegrade:
        os << " link=" << e.link << " dir=" << LinkDirName(e.dir) << " factor=" << e.factor
           << " duration_us=" << e.duration_us;
        break;
      case FaultKind::kLinkDown:
        os << " link=" << e.link << " dir=" << LinkDirName(e.dir)
           << " duration_us=" << e.duration_us;
        break;
      case FaultKind::kGpuDown:
        os << " gpu=" << e.gpu;
        break;
      case FaultKind::kClientCrash:
        os << " client=" << e.client;
        break;
      case FaultKind::kClientHang:
        os << " client=" << e.client << " runaway_us=" << e.runaway_us;
        break;
      case FaultKind::kProfilePoison:
        os << " perturb_factor=" << e.perturb_factor << " drop_fraction=" << e.drop_fraction
           << " seed=" << e.seed;
        break;
      case FaultKind::kNodeDown:
        os << " node=" << e.node;
        break;
    }
    os << "\n";
  }
}

FaultPlan LoadFaultPlan(std::istream& is) {
  FaultPlan plan;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    ORION_CHECK_MSG(head == "event", "fault plan: unexpected line: " << line);
    FaultEvent e;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      ORION_CHECK_MSG(eq != std::string::npos, "fault plan: malformed token: " << token);
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "kind") {
        ORION_CHECK_MSG(ParseFaultKind(value, &e.kind),
                        "fault plan: unknown kind: " << value);
      } else if (key == "at_us") {
        e.at_us = std::stod(value);
      } else if (key == "gpu") {
        e.gpu = std::stoi(value);
      } else if (key == "sms_lost") {
        e.sms_lost = std::stoi(value);
      } else if (key == "membw_factor") {
        e.membw_factor = std::stod(value);
      } else if (key == "link") {
        e.link = std::stoi(value);
      } else if (key == "dir") {
        ORION_CHECK_MSG(ParseLinkDir(value, &e.dir), "fault plan: unknown dir: " << value);
      } else if (key == "factor") {
        e.factor = std::stod(value);
      } else if (key == "duration_us") {
        e.duration_us = std::stod(value);
      } else if (key == "client") {
        e.client = std::stoi(value);
      } else if (key == "node") {
        e.node = std::stoi(value);
      } else if (key == "runaway_us") {
        e.runaway_us = std::stod(value);
      } else if (key == "perturb_factor") {
        e.perturb_factor = std::stod(value);
      } else if (key == "drop_fraction") {
        e.drop_fraction = std::stod(value);
      } else if (key == "seed") {
        e.seed = std::stoull(value);
      } else {
        ORION_CHECK_MSG(false, "fault plan: unknown key: " << key);
      }
    }
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace fault
}  // namespace orion
