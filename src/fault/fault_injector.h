// Fault injector: schedules a FaultPlan on the discrete-event clock.
//
// The injector is the glue between a pure-data FaultPlan and the live
// simulation objects: harnesses register the targets they built (devices,
// the link fabric, schedulers, mutable workload profiles, and a handler for
// client-level faults), then Arm() schedules one simulator event per fault.
// Everything is deterministic: events fire at their planned virtual times in
// plan order, and profile poisoning draws from the event's own seed.
//
// Link faults with duration_us > 0 schedule a matching restore event that
// returns the affected direction(s) to full speed — the "flap" shape the
// collective engine's timeout policy waits out.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "src/core/scheduler.h"
#include "src/fault/fault_plan.h"
#include "src/gpusim/device.h"
#include "src/interconnect/fabric.h"
#include "src/profiler/profiler.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"

namespace orion {
namespace fault {

class FaultInjector {
 public:
  // Called for kClientCrash / kClientHang events; the harness owns the
  // client drivers, so it supplies the behaviour (stop the driver, make it
  // submit the runaway kernel, ...). Scheduler-side quarantine/cleanup is
  // invoked by the injector itself via Scheduler::OnClientCrash.
  using ClientFaultHandler = std::function<void(const FaultEvent&)>;

  FaultInjector(Simulator* sim, FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Target registration. All optional: events whose target is missing are
  // counted in skipped() instead of firing (a plan written for a 4-GPU node
  // can run against a single-device harness).
  void RegisterDevice(int gpu, gpusim::Device* device);
  void RegisterFabric(interconnect::Fabric* fabric);
  void RegisterScheduler(core::Scheduler* scheduler);
  void RegisterProfile(profiler::WorkloadProfile* profile);
  void set_client_fault_handler(ClientFaultHandler handler);

  // Telemetry (src/telemetry): injected/skipped become "fault.*" registry
  // counters and, with tracing on, every applied fault is an instant marker
  // on a "faults" track (named by FaultKindName, with the target as args).
  // Call before Arm.
  void set_telemetry(telemetry::Hub* hub);

  // Schedules every plan event. Call exactly once, after registration and
  // before running the simulator.
  void Arm();

  const FaultPlan& plan() const { return plan_; }
  std::size_t injected() const { return CounterCount(injected_); }
  std::size_t skipped() const { return CounterCount(skipped_); }

 private:
  void Apply(const FaultEvent& event);
  void ApplyDeviceDegrade(const FaultEvent& event);
  void ApplyLinkFault(const FaultEvent& event);
  void ApplyGpuDown(const FaultEvent& event);
  void ApplyClientFault(const FaultEvent& event);
  void ApplyProfilePoison(const FaultEvent& event);
  // Sets the bandwidth factor of the selected direction(s) of one link.
  void SetLinkFactor(int link, LinkDir dir, double factor);

  Simulator* sim_;
  FaultPlan plan_;
  std::map<int, gpusim::Device*> devices_;
  interconnect::Fabric* fabric_ = nullptr;
  std::vector<core::Scheduler*> schedulers_;
  std::vector<profiler::WorkloadProfile*> profiles_;
  ClientFaultHandler client_handler_;
  bool armed_ = false;

  static std::size_t CounterCount(const telemetry::Counter* c) {
    return c ? static_cast<std::size_t>(c->AsCount()) : 0;
  }
  void BindInstruments();
  void MarkFault(const FaultEvent& event);

  telemetry::Hub* hub_ = nullptr;
  telemetry::MetricRegistry local_metrics_;
  telemetry::TrackId trace_track_ = -1;
  telemetry::Counter* injected_ = nullptr;
  telemetry::Counter* skipped_ = nullptr;
};

}  // namespace fault
}  // namespace orion

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
