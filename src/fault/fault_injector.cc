#include "src/fault/fault_injector.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace orion {
namespace fault {

FaultInjector::FaultInjector(Simulator* sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)) {
  ORION_CHECK(sim_ != nullptr);
  BindInstruments();
}

void FaultInjector::set_telemetry(telemetry::Hub* hub) {
  ORION_CHECK_MSG(!armed_, "set_telemetry must be called before Arm");
  hub_ = hub;
  BindInstruments();
}

void FaultInjector::BindInstruments() {
  telemetry::MetricRegistry& reg = hub_ != nullptr ? hub_->metrics() : local_metrics_;
  injected_ = reg.GetCounter("fault.injected");
  skipped_ = reg.GetCounter("fault.skipped");
  trace_track_ = hub_ != nullptr && hub_->tracing() ? hub_->spans().Track("faults") : -1;
}

void FaultInjector::MarkFault(const FaultEvent& event) {
  injected_->Inc();
  if (trace_track_ < 0) {
    return;
  }
  telemetry::Labels args;
  switch (event.kind) {
    case FaultKind::kDeviceDegrade:
    case FaultKind::kGpuDown:
      args.emplace_back("gpu", std::to_string(event.gpu));
      break;
    case FaultKind::kLinkDegrade:
    case FaultKind::kLinkDown:
      args.emplace_back("link", std::to_string(event.link));
      break;
    case FaultKind::kClientCrash:
    case FaultKind::kClientHang:
      args.emplace_back("client", std::to_string(event.client));
      break;
    case FaultKind::kProfilePoison:
      args.emplace_back("drop_fraction", std::to_string(event.drop_fraction));
      break;
    case FaultKind::kNodeDown:
      args.emplace_back("node", std::to_string(event.node));
      break;
  }
  hub_->spans().Instant(trace_track_, FaultKindName(event.kind), sim_->now(),
                        std::move(args));
}

void FaultInjector::RegisterDevice(int gpu, gpusim::Device* device) {
  ORION_CHECK(!armed_ && device != nullptr);
  devices_[gpu] = device;
}

void FaultInjector::RegisterFabric(interconnect::Fabric* fabric) {
  ORION_CHECK(!armed_ && fabric != nullptr);
  fabric_ = fabric;
}

void FaultInjector::RegisterScheduler(core::Scheduler* scheduler) {
  ORION_CHECK(!armed_ && scheduler != nullptr);
  schedulers_.push_back(scheduler);
}

void FaultInjector::RegisterProfile(profiler::WorkloadProfile* profile) {
  ORION_CHECK(!armed_ && profile != nullptr);
  profiles_.push_back(profile);
}

void FaultInjector::set_client_fault_handler(ClientFaultHandler handler) {
  ORION_CHECK(!armed_);
  client_handler_ = std::move(handler);
}

void FaultInjector::Arm() {
  ORION_CHECK_MSG(!armed_, "FaultInjector::Arm called twice");
  armed_ = true;
  for (const FaultEvent& event : plan_.events) {
    ORION_CHECK_MSG(event.at_us >= sim_->now(),
                    "fault event in the past: at_us=" << event.at_us);
    sim_->ScheduleAt(event.at_us, [this, event]() { Apply(event); });
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kDeviceDegrade:
      ApplyDeviceDegrade(event);
      return;
    case FaultKind::kLinkDegrade:
    case FaultKind::kLinkDown:
      ApplyLinkFault(event);
      return;
    case FaultKind::kGpuDown:
      ApplyGpuDown(event);
      return;
    case FaultKind::kClientCrash:
    case FaultKind::kClientHang:
      ApplyClientFault(event);
      return;
    case FaultKind::kProfilePoison:
      ApplyProfilePoison(event);
      return;
    case FaultKind::kNodeDown:
      // Node-granularity faults act at the datacenter control plane
      // (src/datacenter); a single-node injector has no whole-node target.
      skipped_->Inc();
      return;
  }
  ORION_CHECK_MSG(false, "unhandled fault kind");
}

void FaultInjector::ApplyDeviceDegrade(const FaultEvent& event) {
  const auto it = devices_.find(event.gpu);
  if (it == devices_.end()) {
    skipped_->Inc();
    return;
  }
  if (event.sms_lost > 0) {
    it->second->DegradeSms(event.sms_lost);
  }
  if (event.membw_factor < 1.0) {
    it->second->ScaleMembw(event.membw_factor);
  }
  // The degradation response above the device: SM_THRESHOLD re-resolves
  // against the shrunken SM pool (Orion), other policies ignore the hook.
  for (core::Scheduler* scheduler : schedulers_) {
    scheduler->OnDeviceDegraded();
  }
  MarkFault(event);
}

void FaultInjector::SetLinkFactor(int link, LinkDir dir, double factor) {
  if (dir == LinkDir::kForward || dir == LinkDir::kBoth) {
    fabric_->SetLinkFactor(link, /*forward=*/true, factor);
  }
  if (dir == LinkDir::kBackward || dir == LinkDir::kBoth) {
    fabric_->SetLinkFactor(link, /*forward=*/false, factor);
  }
}

void FaultInjector::ApplyLinkFault(const FaultEvent& event) {
  if (fabric_ == nullptr ||
      event.link < 0 ||
      event.link >= static_cast<int>(fabric_->topology().links().size())) {
    skipped_->Inc();
    return;
  }
  const double factor = event.kind == FaultKind::kLinkDown ? 0.0 : event.factor;
  SetLinkFactor(event.link, event.dir, factor);
  if (event.duration_us > 0.0) {
    // A flap: the link returns to full speed after the interval.
    const int link = event.link;
    const LinkDir dir = event.dir;
    sim_->ScheduleAfter(event.duration_us,
                        [this, link, dir]() { SetLinkFactor(link, dir, 1.0); });
  }
  MarkFault(event);
}

void FaultInjector::ApplyGpuDown(const FaultEvent& event) {
  if (fabric_ == nullptr || event.gpu < 0 ||
      event.gpu >= fabric_->topology().num_gpus()) {
    skipped_->Inc();
    return;
  }
  // The GPU fell off the bus: every link touching it goes down, both
  // directions, permanently. Ring re-formation is the collective engine's
  // job; it detects the dead GPU via Fabric::GpuAlive.
  for (const interconnect::Link& link : fabric_->topology().links()) {
    if (link.node_a == event.gpu || link.node_b == event.gpu) {
      SetLinkFactor(link.id, LinkDir::kBoth, 0.0);
    }
  }
  MarkFault(event);
}

void FaultInjector::ApplyClientFault(const FaultEvent& event) {
  if (!client_handler_) {
    skipped_->Inc();
    return;
  }
  // Driver-side first (a hang submits its runaway kernel through the live
  // scheduler path), then scheduler-side cleanup for crashes: quarantine the
  // dead client's queues and release its device memory. A hung client stays
  // attached — detecting it is the scheduler watchdog's job.
  client_handler_(event);
  if (event.kind == FaultKind::kClientCrash) {
    for (core::Scheduler* scheduler : schedulers_) {
      scheduler->OnClientCrash(event.client);
    }
  }
  MarkFault(event);
}

void FaultInjector::ApplyProfilePoison(const FaultEvent& event) {
  if (profiles_.empty()) {
    skipped_->Inc();
    return;
  }
  std::uint64_t stream = 0;
  for (profiler::WorkloadProfile* profile : profiles_) {
    Rng rng = Rng(event.seed).Fork(++stream);
    std::vector<profiler::KernelProfile> kept;
    kept.reserve(profile->kernels.size());
    for (profiler::KernelProfile& kernel : profile->kernels) {
      if (rng.NextDouble() < event.drop_fraction) {
        continue;  // entry lost: the scheduler will miss on this kernel id
      }
      kernel.duration_us *= event.perturb_factor;
      kept.push_back(kernel);
    }
    profile->kernels = std::move(kept);
    profile->RebuildIndex();
  }
  MarkFault(event);
}

}  // namespace fault
}  // namespace orion
