// Fault plans: deterministic, timed fault injection for the simulation.
//
// A FaultPlan is a list of timed fault events — the failure-scenario analogue
// of a workload trace. Orion's paper assumes a healthy device and fresh
// profiles (§5.1.1, §7); production GPU sharing earns its keep when SMs
// retire (ECC), links flap, clients crash or hang, and profiles go stale.
// The plan is pure data (serialisable like profiles), the FaultInjector
// (fault_injector.h) schedules it on the discrete-event clock, and the
// attacked layers implement the graceful-degradation responses.
//
// Fault classes:
//   * kDeviceDegrade — a GPU loses `sms_lost` SMs and/or its memory
//     bandwidth drops to `membw_factor` of peak at `at_us`. The device
//     rebalances resident SM grants (never preempting running blocks) and
//     the Orion scheduler re-resolves SM_THRESHOLD.
//   * kLinkDegrade / kLinkDown — a fabric link direction's bandwidth drops
//     to `factor` (0 for kLinkDown) for `duration_us` (0 = permanent).
//     In-flight transfers re-rate or stall; the collective engine detects a
//     stalled ring step by timeout and waits out the flap.
//   * kGpuDown — every link touching `gpu` goes down (the GPU fell off the
//     bus). The collective engine re-forms its ring without the dead GPU and
//     surfaces the degraded world size.
//   * kClientCrash — the client process dies: the scheduler quarantines its
//     software queues and releases its device memory; resident kernels run
//     to completion (no preemption) but their completions are orphaned.
//   * kClientHang — the client submits a runaway kernel of `runaway_us` and
//     stops responding; the scheduler's watchdog must keep DUR_THRESHOLD
//     accounting from deadlocking schedule_be.
//   * kNodeDown — a whole server of the datacenter cluster dies at `at_us`
//     (kernel panic, PSU failure, maintenance gone wrong): every GPU on node
//     `node` goes with it, its NIC link drops, and the serving control plane
//     (src/datacenter) re-routes queued, in-flight and in-network requests to
//     surviving nodes. Ignored by single-node consumers.
//   * kProfilePoison — every registered workload profile is perturbed:
//     each kernel entry is dropped with probability `drop_fraction`
//     (scheduler sees a miss and falls back to the conservative memory-bound
//     classification) or its duration is multiplied by `perturb_factor`
//     (stale DUR_THRESHOLD accounting). Seeded, so poisoning is
//     deterministic.
#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/time_types.h"

namespace orion {
namespace fault {

enum class FaultKind : std::uint8_t {
  kDeviceDegrade,
  kLinkDegrade,
  kLinkDown,
  kGpuDown,
  kClientCrash,
  kClientHang,
  kProfilePoison,
  kNodeDown,
};

const char* FaultKindName(FaultKind kind);
// Parses the name produced by FaultKindName; returns false on unknown names.
bool ParseFaultKind(const std::string& name, FaultKind* kind);

// Which direction(s) of a full-duplex link a link fault hits.
enum class LinkDir : std::uint8_t { kForward, kBackward, kBoth };

const char* LinkDirName(LinkDir dir);
bool ParseLinkDir(const std::string& name, LinkDir* dir);

// One timed fault. Only the fields of the event's kind are meaningful; the
// rest keep their defaults (and serialisation only emits the relevant ones).
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceDegrade;
  TimeUs at_us = 0.0;

  // kDeviceDegrade / kGpuDown: target GPU (index in the fabric topology; 0
  // for the single shared device of the collocation harness).
  int gpu = 0;
  int sms_lost = 0;            // kDeviceDegrade
  double membw_factor = 1.0;   // kDeviceDegrade: remaining fraction of peak

  // kLinkDegrade / kLinkDown.
  int link = -1;               // interconnect::LinkId
  LinkDir dir = LinkDir::kBoth;
  double factor = 0.0;         // kLinkDegrade: remaining bandwidth fraction
  DurationUs duration_us = 0.0;  // > 0: restore to full speed after this long

  // kClientCrash / kClientHang.
  int client = -1;
  DurationUs runaway_us = 0.0;  // kClientHang: duration of the runaway kernel

  // kNodeDown: target node (index into the datacenter ClusterTopology).
  int node = -1;

  // kProfilePoison.
  double perturb_factor = 1.0;
  double drop_fraction = 0.0;
  std::uint64_t seed = 1;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

// Text (key=value per line) serialisation, same spirit as profile files.
void SaveFaultPlan(const FaultPlan& plan, std::ostream& os);
FaultPlan LoadFaultPlan(std::istream& is);

}  // namespace fault
}  // namespace orion

#endif  // SRC_FAULT_FAULT_PLAN_H_
