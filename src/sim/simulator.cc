#include "src/sim/simulator.h"

#include <limits>
#include <utility>

#include "src/common/check.h"

namespace orion {

EventHandle Simulator::ScheduleAt(TimeUs when, Callback cb) {
  ORION_CHECK_MSG(when >= now_, "event scheduled in the past: " << when << " < " << now_);
  ORION_CHECK(cb != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(cb)});
  pending_.insert(id);
  ++live_events_;
  return EventHandle(id);
}

EventHandle Simulator::ScheduleAfter(DurationUs delay, Callback cb) {
  ORION_CHECK_MSG(delay >= 0.0, "negative delay: " << delay);
  return ScheduleAt(now_ + delay, std::move(cb));
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid()) {
    return;
  }
  // Cancelling an event that already ran (or was already cancelled) is a
  // no-op; ids are never reused so the pending_ check is authoritative.
  if (pending_.count(handle.id()) > 0 && cancelled_.insert(handle.id()).second) {
    ORION_CHECK(live_events_ > 0);
    --live_events_;
  }
}

bool Simulator::Step(TimeUs until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      pending_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > until) {
      return false;
    }
    // Move the callback out before popping; the callback may schedule more
    // events, which mutates the queue.
    Event event = std::move(const_cast<Event&>(top));
    queue_.pop();
    pending_.erase(event.id);
    ORION_CHECK(live_events_ > 0);
    --live_events_;
    now_ = event.when;
    ++events_processed_;
    event.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::RunUntil(TimeUs until) {
  std::size_t ran = 0;
  while (Step(until)) {
    ++ran;
  }
  // Advance the clock to the horizon so repeated RunUntil calls are
  // monotonic even if no event landed exactly at `until`.
  if (until > now_ && until < std::numeric_limits<TimeUs>::max()) {
    now_ = until;
  }
  return ran;
}

std::size_t Simulator::RunUntilIdle() {
  std::size_t ran = 0;
  while (Step(std::numeric_limits<TimeUs>::max())) {
    ++ran;
  }
  return ran;
}

}  // namespace orion
