#include "src/sim/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/check.h"

namespace orion {

namespace {
constexpr std::size_t kHeapArity = 4;
}  // namespace

std::uint32_t Simulator::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  ORION_CHECK_MSG(pool_.size() < (1ULL << kSlotBits),
                  "too many simultaneously live events: " << pool_.size());
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Simulator::ReleaseSlot(std::uint32_t slot) {
  Slot& s = pool_[slot];
  s.cb = nullptr;  // destroy the callback now, not when the slot is reused
  ++s.generation;  // invalidates every outstanding handle and ring entry
  s.heap_index = -1;
  free_slots_.push_back(slot);
}

void Simulator::HeapPlace(std::size_t pos, const HeapEntry& entry) {
  heap_[pos] = entry;
  pool_[entry.slot()].heap_index = static_cast<std::int32_t>(pos);
}

// seq is unique, so comparing packed keys (seq in the high bits) is
// exactly the (when, seq) tie-break order.
void Simulator::HeapSiftUp(std::size_t pos, HeapEntry entry) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    const HeapEntry& p = heap_[parent];
    if (!KeyLess(entry.when, entry.key, p.when, p.key)) {
      break;
    }
    HeapPlace(pos, p);
    pos = parent;
  }
  HeapPlace(pos, entry);
}

void Simulator::HeapSiftDown(std::size_t pos, HeapEntry entry) {
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * kHeapArity + 1;
    if (first_child >= size) {
      break;
    }
    const std::size_t last_child = std::min(first_child + kHeapArity, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (KeyLess(heap_[c].when, heap_[c].key, heap_[best].when, heap_[best].key)) {
        best = c;
      }
    }
    if (!KeyLess(heap_[best].when, heap_[best].key, entry.when, entry.key)) {
      break;
    }
    HeapPlace(pos, heap_[best]);
    pos = best;
  }
  HeapPlace(pos, entry);
}

void Simulator::HeapPush(std::uint32_t slot) {
  const Slot& s = pool_[slot];
  heap_.emplace_back();  // sift fills it in
  HeapSiftUp(heap_.size() - 1, HeapEntry{s.when, (s.seq << kSlotBits) | slot});
}

void Simulator::HeapRemoveAt(std::size_t pos) {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
    return;  // removed the last entry
  }
  // Re-seat the displaced tail entry; it may need to move either way.
  if (pos > 0 && KeyLess(moved.when, moved.key, heap_[(pos - 1) / kHeapArity].when,
                         heap_[(pos - 1) / kHeapArity].key)) {
    HeapSiftUp(pos, moved);
  } else {
    HeapSiftDown(pos, moved);
  }
}

std::uint32_t Simulator::PrepareEvent(TimeUs when) {
  ORION_CHECK_MSG(when >= now_, "event scheduled in the past: " << when << " < " << now_);
  const std::uint32_t slot = AllocSlot();
  Slot& s = pool_[slot];
  s.when = when;
  s.seq = next_seq_++;
  ORION_CHECK(s.seq < (1ULL << (64 - kSlotBits)));  // packed-heap-key range
  if (when == now_) {
    // Same-time FIFO fast path: no heap traffic for the dominant
    // completion -> poll -> submit cascade. Ring order is seq order.
    s.heap_index = -1;
    ring_.push_back(RingEntry{slot, s.generation});
  } else {
    HeapPush(slot);
  }
  ++live_events_;
  return slot;
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid()) {
    return;
  }
  ORION_CHECK(handle.slot_ < pool_.size());
  Slot& s = pool_[handle.slot_];
  if (s.generation != handle.generation_) {
    return;  // already ran or already cancelled
  }
  if (s.heap_index >= 0) {
    HeapRemoveAt(static_cast<std::size_t>(s.heap_index));
  }
  // Ring-resident events leave a stale entry behind; the generation bump in
  // ReleaseSlot makes the pop loop skip it. Either way the slot (and its
  // callback) is reclaimed immediately.
  ReleaseSlot(handle.slot_);
  ORION_CHECK(live_events_ > 0);
  --live_events_;
}

bool Simulator::RingFront() {
  while (ring_head_ < ring_.size() &&
         pool_[ring_[ring_head_].slot].generation != ring_[ring_head_].generation) {
    ++ring_head_;  // cancelled while in the ring
  }
  if (ring_head_ == ring_.size()) {
    if (ring_head_ != 0) {
      ring_.clear();  // keeps capacity for the next burst
      ring_head_ = 0;
    }
    return false;
  }
  return true;
}

bool Simulator::Step(TimeUs until) {
  const bool have_ring = RingFront();
  const bool have_heap = !heap_.empty();
  if (!have_ring && !have_heap) {
    return false;
  }
  bool from_ring = have_ring;
  if (have_ring && have_heap) {
    // The heap may hold events at the ring's timestamp scheduled before the
    // clock reached it; the strict (when, seq) order decides.
    const Slot& rs = pool_[ring_[ring_head_].slot];
    const HeapEntry& top = heap_[0];
    from_ring = KeyLess(rs.when, rs.seq, top.when, top.key >> kSlotBits);
  }
  const std::uint32_t slot = from_ring ? ring_[ring_head_].slot : heap_[0].slot();
  Slot& s = pool_[slot];
  if (s.when > until) {
    return false;
  }
  if (from_ring) {
    ++ring_head_;
  } else {
    HeapRemoveAt(0);
  }
  now_ = s.when;
  ++events_processed_;
  ORION_CHECK(live_events_ > 0);
  --live_events_;
  // Release before running: the callback may cancel its own (now stale)
  // handle or schedule new events into the reused slot.
  Callback cb = std::move(s.cb);
  ReleaseSlot(slot);
  cb();
  return true;
}

TimeUs Simulator::NextEventTime() {
  const bool have_ring = RingFront();
  if (!have_ring && heap_.empty()) {
    return std::numeric_limits<TimeUs>::infinity();
  }
  // Ring entries sit at exactly now_; anything in the heap is >= now_, so
  // the ring (when present) is never later than the heap top.
  if (have_ring) {
    return pool_[ring_[ring_head_].slot].when;
  }
  return heap_[0].when;
}

bool Simulator::RunOneBefore(TimeUs bound) {
  if (!(NextEventTime() < bound)) {
    return false;
  }
  return Step(std::numeric_limits<TimeUs>::max());
}

void Simulator::AdvanceClockTo(TimeUs t) {
  ORION_CHECK_MSG(t >= now_, "clock moved backwards: " << t << " < " << now_);
  ORION_CHECK_MSG(NextEventTime() >= t,
                  "AdvanceClockTo(" << t << ") would skip an event at "
                                    << NextEventTime());
  now_ = t;
}

std::size_t Simulator::RunUntil(TimeUs until) {
  std::size_t ran = 0;
  while (Step(until)) {
    ++ran;
  }
  // Advance the clock to the horizon so repeated RunUntil calls are
  // monotonic even if no event landed exactly at `until`.
  if (until > now_ && until < std::numeric_limits<TimeUs>::max()) {
    now_ = until;
  }
  return ran;
}

std::size_t Simulator::RunUntilIdle() {
  std::size_t ran = 0;
  while (Step(std::numeric_limits<TimeUs>::max())) {
    ++ran;
  }
  return ran;
}

}  // namespace orion
