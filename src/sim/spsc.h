// Single-producer single-consumer queue for inter-LP messages.
//
// The parallel LP runtime (src/sim/lp.h, src/datacenter/lp_runtime.h) wires
// every pair of communicating logical processes with two of these — one per
// direction — so no queue ever has more than one writer or one reader and
// the whole exchange needs nothing stronger than release/acquire on the
// head/tail indices. Capacity is fixed (power of two); Push returns false
// when full and the producer loop yields, which keeps memory bounded without
// a lock. The consumer side exposes the count of elements ever popped so the
// producer can prune its in-flight (un-acknowledged) message list — the LP
// bound computation needs to know which of its sends the peer has not yet
// folded into its published clock.
#ifndef SRC_SIM_SPSC_H_
#define SRC_SIM_SPSC_H_

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace orion {
namespace sim {

// Fixed rather than std::hardware_destructive_interference_size: the
// standard constant varies with -mtune and GCC warns (-Winterference-size,
// an error under ORION_WERROR) that it is ABI-unstable across TUs. 64 is
// the destructive interference size on every target this builds for.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity_pow2 = 1 << 12)
      : buffer_(capacity_pow2), mask_(capacity_pow2 - 1) {
    ORION_CHECK_MSG((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2,
                    "SpscQueue capacity must be a power of two");
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. False when the ring is full (caller yields and retries);
  // the consumer is guaranteed to drain, so this cannot deadlock as long as
  // every LP drains its inboxes before blocking on a push.
  bool TryPush(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) {
      return false;
    }
    buffer_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when empty.
  bool TryPop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    *out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Elements ever popped (the consumer's ack counter). Monotone; the
  // producer reads it to prune its un-acknowledged send list.
  std::size_t Popped() const { return head_.load(std::memory_order_acquire); }
  // Elements ever pushed.
  std::size_t Pushed() const { return tail_.load(std::memory_order_acquire); }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace sim
}  // namespace orion

#endif  // SRC_SIM_SPSC_H_
