// Discrete-event simulation engine.
//
// The entire Orion reproduction runs in virtual time on this engine. The
// real system's concurrency (client threads, a scheduler thread polling
// software queues, the asynchronous GPU) is mapped onto deterministic events:
// arrivals, op enqueues, kernel dispatches and completions. Determinism comes
// from (a) a strict (time, sequence) ordering of events and (b) seeded RNGs.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time_types.h"

namespace orion {

// Handle that can cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but its callback is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }
  std::uint64_t id() const { return id_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeUs now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when` (>= now()).
  EventHandle ScheduleAt(TimeUs when, Callback cb);

  // Schedules `cb` to run `delay` after the current time.
  EventHandle ScheduleAfter(DurationUs delay, Callback cb);

  // Cancels a previously scheduled event. Safe to call on handles whose
  // event already ran (no-op).
  void Cancel(EventHandle handle);

  // Runs events until the queue is empty or the clock passes `until`.
  // Events at exactly `until` still run. Returns the number of events run.
  std::size_t RunUntil(TimeUs until);

  // Runs until no events remain. Returns the number of events run.
  std::size_t RunUntilIdle();

  // True if no live (non-cancelled) events remain.
  bool Idle() const { return live_events_ == 0; }

  std::size_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    TimeUs when;
    std::uint64_t seq;  // Tie-break: FIFO among events at the same timestamp.
    std::uint64_t id;
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next live event. Returns false if the queue is empty
  // or the next event is after `until`.
  bool Step(TimeUs until);

  TimeUs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_events_ = 0;
  std::size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<std::uint64_t> pending_;    // ids currently in queue_
  std::unordered_set<std::uint64_t> cancelled_;  // subset of pending_
};

}  // namespace orion

#endif  // SRC_SIM_SIMULATOR_H_
