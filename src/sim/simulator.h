// Discrete-event simulation engine.
//
// The entire Orion reproduction runs in virtual time on this engine. The
// real system's concurrency (client threads, a scheduler thread polling
// software queues, the asynchronous GPU) is mapped onto deterministic events:
// arrivals, op enqueues, kernel dispatches and completions. Determinism comes
// from (a) a strict (time, sequence) ordering of events and (b) seeded RNGs.
//
// Hot-path design (every kernel dispatch, fabric transfer, poll and
// telemetry span funnels through Step, so this is the throughput ceiling of
// the whole simulator):
//   * Events live in a slab of reusable slots; a slot's generation counter
//     is bumped on every release, so an EventHandle is (slot, generation)
//     and Cancel is a generation compare — stale handles are O(1) no-ops
//     and cancelled slots are reclaimed immediately (no lazy tombstones
//     accumulating until their timestamp pops).
//   * Callbacks are stored in an inline small-buffer InlineFunction
//     (common/inline_function.h): no per-event heap allocation for the
//     captures this codebase actually schedules.
//   * Future events sit in an index-tracking 4-ary min-heap keyed by
//     (when, seq); the back-pointer makes Cancel remove the entry in place.
//   * Events scheduled at exactly the current timestamp — the dominant
//     completion -> poll -> submit cascade — bypass the heap through a FIFO
//     ring. Ordering is unchanged: the ring and heap are merged by the same
//     strict (when, seq) order on pop.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/time_types.h"

namespace orion {

// Handle that can cancel a scheduled event. Safe to keep after the event
// ran or was cancelled: the slot's generation has moved on and Cancel
// becomes a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return generation_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint64_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;  // 0 = invalid; slot generations start at 1
};

class Simulator {
 public:
  using Callback = common::InlineFunction<void(), 56>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeUs now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when` (>= now()).
  // Accepts any void() callable; the callback is constructed directly in the
  // event slot (one move for a pre-built Callback, zero extra relocations
  // for a lambda).
  template <typename F>
  EventHandle ScheduleAt(TimeUs when, F&& cb) {
    const std::uint32_t slot = PrepareEvent(when);
    Slot& s = pool_[slot];
    s.cb = std::forward<F>(cb);
    ORION_CHECK(s.cb != nullptr);
    return EventHandle(slot, s.generation);
  }

  // Schedules `cb` to run `delay` after the current time.
  template <typename F>
  EventHandle ScheduleAfter(DurationUs delay, F&& cb) {
    ORION_CHECK_MSG(delay >= 0.0, "negative delay: " << delay);
    return ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  // Cancels a previously scheduled event. Safe to call on handles whose
  // event already ran (no-op). The event's slot (and callback) is released
  // immediately — cancel-heavy workloads hold no dead memory.
  void Cancel(EventHandle handle);

  // Runs events until the queue is empty or the clock passes `until`.
  // Events at exactly `until` still run. Returns the number of events run.
  std::size_t RunUntil(TimeUs until);

  // Timestamp of the earliest live event, or +infinity when the queue is
  // empty. Non-const only because it sweeps already-cancelled entries off
  // the ring head; the observable state does not change. This is the LBTS
  // ingredient of the parallel LP runtime: an LP publishes its next event
  // time as the lower bound on any message it may still send.
  TimeUs NextEventTime();

  // Runs the single earliest event if its timestamp is strictly below
  // `bound`; returns false (and runs nothing) otherwise. The conservative
  // parallel loop uses this so the safe bound can be re-derived between
  // events.
  bool RunOneBefore(TimeUs bound);

  // Advances the clock to `t` without running anything. `t` must not be in
  // the past and must not skip over a pending event (events at exactly `t`
  // may remain). Lets a parked LP serve rendezvous requests at a barrier
  // time before any of its own events at that time have run.
  void AdvanceClockTo(TimeUs t);

  // Runs until no events remain. Returns the number of events run.
  std::size_t RunUntilIdle();

  // True if no live (non-cancelled) events remain.
  bool Idle() const { return live_events_ == 0; }

  std::size_t events_processed() const { return events_processed_; }

  // --- Introspection (tests / perf benches). ---
  // Slots ever allocated. Bounded by the peak number of simultaneously
  // live events, NOT by the number scheduled or cancelled over the run —
  // the soak tests assert this stays flat under schedule/cancel churn.
  std::size_t pool_slots() const { return pool_.size(); }
  std::size_t live_events() const { return live_events_; }

 private:
  struct Slot {
    TimeUs when = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t generation = 1;  // bumped on release; never reused per slot
    std::int32_t heap_index = -1;  // -1: not in the heap (ring or free)
    Callback cb;
  };
  // Heap entries carry the full ordering key so sifting never chases the
  // slot indirection. Packed to 16 bytes: seq is unique, so ordering by
  // (seq << 24 | slot) equals ordering by seq, and the slot rides along in
  // the low bits for free. Bounds (slot < 2^24 concurrent events,
  // seq < 2^40 total events) are ORION_CHECKed at allocation.
  struct HeapEntry {
    TimeUs when;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const { return static_cast<std::uint32_t>(key & kSlotMask); }
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  // Ring entries are validated by generation on pop, so Cancel can release
  // the slot immediately and leave a stale entry behind.
  struct RingEntry {
    std::uint32_t slot;
    std::uint64_t generation;
  };

  static bool KeyLess(TimeUs when_a, std::uint64_t seq_a, TimeUs when_b,
                      std::uint64_t seq_b) {
    return when_a != when_b ? when_a < when_b : seq_a < seq_b;
  }

  std::uint32_t AllocSlot();
  void ReleaseSlot(std::uint32_t slot);

  // Validates `when`, allocates a slot, stamps (when, seq) and inserts it
  // into the ring or heap. The caller (the ScheduleAt template) then
  // emplaces the callback directly into the slot — no temporary Callback.
  std::uint32_t PrepareEvent(TimeUs when);

  // 4-ary min-heap over (when, seq) with pool_[].heap_index back-pointers.
  void HeapPlace(std::size_t pos, const HeapEntry& entry);
  void HeapSiftUp(std::size_t pos, HeapEntry entry);
  void HeapSiftDown(std::size_t pos, HeapEntry entry);
  void HeapPush(std::uint32_t slot);
  void HeapRemoveAt(std::size_t pos);

  // Advances ring_head_ past cancelled entries; true if a live entry waits.
  bool RingFront();

  // Pops and runs the next live event. Returns false if the queue is empty
  // or the next event is after `until`.
  bool Step(TimeUs until);

  TimeUs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t events_processed_ = 0;

  std::vector<Slot> pool_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  std::vector<RingEntry> ring_;  // events at exactly now_, FIFO by seq
  std::size_t ring_head_ = 0;
};

}  // namespace orion

#endif  // SRC_SIM_SIMULATOR_H_
