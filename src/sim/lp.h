// Conservative parallel-DES building blocks: the LP clock protocol.
//
// A logical process (LP) owns one Simulator and exchanges timestamped
// messages with its peers over SpscQueue pairs (src/sim/spsc.h). The
// synchronization is classic conservative (null-message/LBTS) lookahead,
// arranged so that the common case needs no message round-trips at all:
//
//   * Every LP publishes a clock: a lower bound on the timestamp of any
//     message it may still PUSH in the future. For an LP whose sends happen
//     only while executing events, that bound is simply its next event time
//     (Simulator::NextEventTime()), published AFTER draining its inboxes —
//     so everything it will do earlier is already scheduled.
//   * A message in flight can wake the receiver below its published clock,
//     so the published clock alone is not a safe bound for the PEER. The
//     sender closes that hole locally: it remembers the stamps of its own
//     un-acknowledged sends, and the safe bound it computes for a peer is
//         min(peer published clock, min un-acked stamp sent to that peer).
//     The ack is an explicit atomic counter the consumer publishes AFTER its
//     clock (not the queue's head index): reading the queue head directly
//     could pair a fresh pop with a stale clock that predates the pop's
//     effects, overshooting the bound. With ack-after-clock publication and
//     ack-before-clock reads, the clock a reader sees is always at least as
//     fresh as the ack it pruned with. No +lookahead self-reference, hence
//     no null-message creep: an idle fleet converges in one publication per
//     LP.
//   * Lookahead enters once, at the topology edge that has real latency:
//     a cluster-side event at time t reaches a node no earlier than
//     t + L (the NIC setup latency), so a node may run up to
//     (cluster safe bound) + L, exclusive.
//
// Publication order matters and is fixed: push sends (release via the
// queue) -> publish clock (release) -> publish ack (release). Readers load
// ack (acquire) -> clock (acquire) -> drain. See DESIGN.md §16 for the full
// safety argument.
#ifndef SRC_SIM_LP_H_
#define SRC_SIM_LP_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>

#include "src/common/time_types.h"

namespace orion {
namespace sim {

// Lock-free published TimeUs (doubles are not atomic; the bits are).
class AtomicTime {
 public:
  AtomicTime() { Store(0.0); }

  void Store(TimeUs t) {
    bits_.store(std::bit_cast<std::uint64_t>(t), std::memory_order_release);
  }
  TimeUs Load() const {
    return std::bit_cast<TimeUs>(bits_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<std::uint64_t> bits_;
};

// Producer-side ledger of un-acknowledged sends on one directed edge.
// Record(stamp) before every TryPush; Prune(acked) with the consumer's
// published ack counter; MinUnackedStamp() joins the peer's published clock
// in the safe-bound computation.
class EdgeLedger {
 public:
  void Record(TimeUs stamp) { stamps_.push_back(stamp); ++pushed_; }

  void Prune(std::size_t acked) {
    while (base_ < acked && !stamps_.empty()) {
      stamps_.pop_front();
      ++base_;
    }
  }

  TimeUs MinUnackedStamp() const {
    // Stamps are pushed in event order, which is non-decreasing in time for
    // an LP that only sends at its current event time — but control-plane
    // replays may interleave, so scan. The deque is almost always tiny.
    TimeUs min_stamp = std::numeric_limits<TimeUs>::infinity();
    for (const TimeUs s : stamps_) {
      min_stamp = s < min_stamp ? s : min_stamp;
    }
    return min_stamp;
  }

  std::size_t pushed() const { return pushed_; }

 private:
  std::deque<TimeUs> stamps_;
  std::size_t base_ = 0;    // sends already acknowledged
  std::size_t pushed_ = 0;  // sends ever recorded
};

}  // namespace sim
}  // namespace orion

#endif  // SRC_SIM_LP_H_
