#include "src/baselines/reef.h"

#include "src/core/op_view.h"

#include <utility>

#include "src/common/check.h"

namespace orion {
namespace baselines {

void ReefScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                           std::vector<core::SchedClientInfo> clients) {
  (void)sim;
  ORION_CHECK(rt != nullptr);
  rt_ = rt;
  for (const core::SchedClientInfo& client : clients) {
    if (client.high_priority) {
      ORION_CHECK_MSG(hp_client_ == -1, "REEF-N expects one high-priority client");
      hp_client_ = client.id;
      hp_stream_ = rt_->CreateStream(gpusim::kPriorityHigh);
    } else {
      BeClient be;
      be.id = client.id;
      be.profile = client.profile;
      be.stream = rt_->CreateStream(gpusim::kPriorityDefault);
      be_clients_.push_back(std::move(be));
    }
  }
}

int ReefScheduler::SmsNeededFor(const BeClient& be, const gpusim::KernelDesc& kernel) const {
  int needed = 0;
  if (be.profile != nullptr) {
    if (const profiler::KernelProfile* kp = be.profile->Find(kernel.kernel_id)) {
      needed = kp->sm_needed;
    }
  }
  if (needed == 0) {
    needed = gpusim::SmsNeeded(rt_->device().spec(), kernel.geometry);
  }
  // REEF's padding operates at thread-block granularity: a grid larger than
  // the device still fits into leftover SMs wave by wave, so the effective
  // requirement is capped at device size.
  return std::min(needed, rt_->device().spec().num_sms);
}

void ReefScheduler::Enqueue(core::ClientId client, core::SchedOp op) {
  if (client == hp_client_) {
    // High-priority ops bypass every best-effort queue (REEF-N's restricted
    // preemption) and go straight to the device.
    if (core::IsComputeOp(op.op)) {
      ++hp_outstanding_;
      auto on_complete = std::move(op.on_complete);
      rt_->Submit(op.op, hp_stream_, [this, on_complete = std::move(on_complete)]() {
        ORION_CHECK(hp_outstanding_ > 0);
        --hp_outstanding_;
        if (on_complete) {
          on_complete();
        }
        PollBestEffort();
      });
    } else {
      rt_->Submit(op.op, hp_stream_, std::move(op.on_complete));
    }
    return;
  }
  for (BeClient& be : be_clients_) {
    if (be.id == client) {
      be.queue.push_back(std::move(op));
      PollBestEffort();
      return;
    }
  }
  ORION_CHECK_MSG(false, "enqueue from unknown client " << client);
}

void ReefScheduler::PollBestEffort() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t step = 0; step < be_clients_.size(); ++step) {
      BeClient& be = be_clients_[(rr_cursor_ + step) % be_clients_.size()];
      if (be.queue.empty()) {
        continue;
      }
      core::SchedOp& head = be.queue.front();

      if (!core::IsComputeOp(head.op)) {
        core::SchedOp op = std::move(head);
        be.queue.pop_front();
        rt_->Submit(op.op, be.stream, std::move(op.on_complete));
        progress = true;
        continue;
      }

      // Software queue depth cap: at most kQueueDepth best-effort kernels
      // outstanding on the device.
      if (be_outstanding_ >= kQueueDepth) {
        continue;
      }
      // Dynamic kernel padding: launch when the GPU is free of high-priority
      // work, or when the kernel (or whole graph) fits into the SMs left
      // free. Size-only — no compute/memory-profile or duration checks.
      const int needed = head.op.type == runtime::OpType::kKernelLaunch
                             ? SmsNeededFor(be, head.op.kernel)
                             : std::min(core::ViewOf(head.op, be.profile,
                                                     rt_->device().spec()).sm_needed,
                                        rt_->device().spec().num_sms);
      const bool fits = needed <= rt_->device().FreeSms();
      if (hp_outstanding_ > 0 && !fits) {
        continue;
      }

      core::SchedOp op = std::move(head);
      be.queue.pop_front();
      rr_cursor_ = (rr_cursor_ + step + 1) % be_clients_.size();
      ++be_outstanding_;
      auto on_complete = std::move(op.on_complete);
      rt_->Submit(op.op, be.stream, [this, on_complete = std::move(on_complete)]() {
        ORION_CHECK(be_outstanding_ > 0);
        --be_outstanding_;
        if (on_complete) {
          on_complete();
        }
        PollBestEffort();
      });
      progress = true;
      break;
    }
    if (be_clients_.empty()) {
      break;
    }
  }
}

}  // namespace baselines
}  // namespace orion
