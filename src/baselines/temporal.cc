#include "src/baselines/temporal.h"

#include <utility>

#include "src/common/check.h"

namespace orion {
namespace baselines {

void TemporalScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                               std::vector<core::SchedClientInfo> clients) {
  (void)sim;
  ORION_CHECK(rt != nullptr);
  rt_ = rt;
  stream_ = rt_->CreateStream(gpusim::kPriorityDefault);
  for (const core::SchedClientInfo& info : clients) {
    ClientState state;
    state.id = info.id;
    state.high_priority = info.high_priority;
    clients_.push_back(std::move(state));
  }
}

TemporalScheduler::ClientState* TemporalScheduler::FindClient(core::ClientId id) {
  for (ClientState& client : clients_) {
    if (client.id == id) {
      return &client;
    }
  }
  return nullptr;
}

void TemporalScheduler::Enqueue(core::ClientId client, core::SchedOp op) {
  ClientState* state = FindClient(client);
  ORION_CHECK_MSG(state != nullptr, "unknown client " << client);
  state->queue.push_back(std::move(op));
  if (active_ == -1) {
    MaybeActivate();
  } else if (active_ == client) {
    DrainActive();
  }
}

void TemporalScheduler::MaybeActivate() {
  if (active_ != -1) {
    return;
  }
  // High-priority client first whenever it has pending work.
  for (ClientState& client : clients_) {
    if (client.high_priority && !client.queue.empty()) {
      active_ = client.id;
      DrainActive();
      return;
    }
  }
  // Otherwise round-robin over best-effort clients.
  for (std::size_t step = 0; step < clients_.size(); ++step) {
    ClientState& client = clients_[(rr_cursor_ + step) % clients_.size()];
    if (!client.high_priority && !client.queue.empty()) {
      rr_cursor_ = (rr_cursor_ + step + 1) % clients_.size();
      active_ = client.id;
      DrainActive();
      return;
    }
  }
}

void TemporalScheduler::DrainActive() {
  if (active_end_submitted_) {
    return;  // current request still finishing on the device
  }
  ClientState* state = FindClient(active_);
  ORION_CHECK(state != nullptr);
  while (!state->queue.empty()) {
    core::SchedOp op = std::move(state->queue.front());
    state->queue.pop_front();
    const bool end_of_request = op.op.end_of_request;
    auto on_complete = std::move(op.on_complete);
    runtime::GpuRuntime::CompletionCb done;
    if (end_of_request) {
      // Releasing the device only when the request's last op completes is
      // what serialises whole requests (and causes HOL blocking).
      done = [this, on_complete = std::move(on_complete)]() {
        if (on_complete) {
          on_complete();
        }
        active_ = -1;
        active_end_submitted_ = false;
        MaybeActivate();
      };
    } else {
      done = std::move(on_complete);
    }
    if (end_of_request) {
      active_end_submitted_ = true;
    }
    rt_->Submit(op.op, stream_, std::move(done));
    if (end_of_request) {
      return;
    }
  }
}

}  // namespace baselines
}  // namespace orion
