#include "src/baselines/passthrough.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace baselines {

PassthroughScheduler::PassthroughScheduler(std::string name, bool use_priorities,
                                           double gil_penalty)
    : name_(std::move(name)), use_priorities_(use_priorities), gil_penalty_(gil_penalty) {}

double PassthroughScheduler::HostOverheadMultiplier(int num_clients) const {
  return 1.0 + gil_penalty_ * std::max(0, num_clients - 1);
}

void PassthroughScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                                  std::vector<core::SchedClientInfo> clients) {
  (void)sim;
  ORION_CHECK(rt != nullptr);
  rt_ = rt;
  for (const core::SchedClientInfo& client : clients) {
    if (static_cast<int>(streams_.size()) <= client.id) {
      streams_.resize(static_cast<std::size_t>(client.id) + 1, gpusim::kInvalidStream);
    }
    const int priority = (use_priorities_ && client.high_priority) ? gpusim::kPriorityHigh
                                                                   : gpusim::kPriorityDefault;
    streams_[static_cast<std::size_t>(client.id)] = rt_->CreateStream(priority);
  }
}

void PassthroughScheduler::Enqueue(core::ClientId client, core::SchedOp op) {
  ORION_CHECK(client >= 0 && client < static_cast<int>(streams_.size()));
  rt_->Submit(op.op, streams_[static_cast<std::size_t>(client)], std::move(op.on_complete));
}

std::unique_ptr<core::Scheduler> MakeStreamsBaseline() {
  // GIL contention: each extra client thread adds ~60% to per-op host cost.
  return std::make_unique<PassthroughScheduler>("streams", /*use_priorities=*/true,
                                                /*gil_penalty=*/0.6);
}

std::unique_ptr<core::Scheduler> MakeMpsBaseline() {
  // Separate processes: no GIL, but also no stream priorities under MPS.
  return std::make_unique<PassthroughScheduler>("mps", /*use_priorities=*/false,
                                                /*gil_penalty=*/0.0);
}

}  // namespace baselines
}  // namespace orion
