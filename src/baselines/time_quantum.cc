#include "src/baselines/time_quantum.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace baselines {

TimeQuantumScheduler::TimeQuantumScheduler(TimeQuantumOptions options)
    : options_(options), detector_(options.thrash) {
  ORION_CHECK(options_.sample_period_us > 0.0);
  ORION_CHECK(options_.idle_release_us > 0.0);
}

void TimeQuantumScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                                  std::vector<core::SchedClientInfo> clients) {
  ORION_CHECK(sim != nullptr && rt != nullptr);
  sim_ = sim;
  rt_ = rt;
  for (const core::SchedClientInfo& info : clients) {
    ClientState state;
    state.id = info.id;
    // nvshare predates stream priorities: every tenant gets an equal stream.
    state.stream = rt_->CreateStream(gpusim::kPriorityDefault);
    clients_.push_back(std::move(state));
  }
  if (pager_ != nullptr && !sampler_started_) {
    sampler_started_ = true;
    sim_->ScheduleAfter(options_.sample_period_us, [this]() { SampleThrash(); });
  }
}

void TimeQuantumScheduler::set_pager(memsub::UnifiedMemoryPager* pager) {
  pager_ = pager;
  if (sim_ != nullptr && pager_ != nullptr && !sampler_started_) {
    sampler_started_ = true;
    sim_->ScheduleAfter(options_.sample_period_us, [this]() { SampleThrash(); });
  }
}

TimeQuantumScheduler::ClientState* TimeQuantumScheduler::FindClient(core::ClientId id) {
  for (ClientState& client : clients_) {
    if (client.id == id) {
      return &client;
    }
  }
  return nullptr;
}

void TimeQuantumScheduler::Enqueue(core::ClientId client, core::SchedOp op) {
  ClientState* state = FindClient(client);
  ORION_CHECK_MSG(state != nullptr, "unknown client " << client);
  if (state->crashed) {
    return;  // dead process: ops vanish with it
  }
  if (!exclusive_) {
    Submit(*state, std::move(op));
    return;
  }
  if (active_ == client) {
    ++activity_seq_;
    Submit(*state, std::move(op));
    return;
  }
  state->queue.push_back(std::move(op));
  if (active_ == -1) {
    Activate();
  }
}

void TimeQuantumScheduler::Submit(ClientState& client, core::SchedOp op) {
  const bool end = op.op.end_of_request;
  auto on_complete = std::move(op.on_complete);
  runtime::GpuRuntime::CompletionCb done;
  if (end) {
    ++client.inflight_requests;
    done = [this, id = client.id, on_complete = std::move(on_complete)]() {
      if (on_complete) {
        on_complete();
      }
      ClientState* state = FindClient(id);
      ORION_CHECK(state != nullptr && state->inflight_requests > 0);
      --state->inflight_requests;
      ++activity_seq_;
      if (exclusive_ && active_ == id && state->inflight_requests == 0) {
        if (quantum_expired_) {
          MaybeRotate();
        } else if (state->queue.empty()) {
          ArmIdleCheck();
        }
      }
    };
  } else {
    done = std::move(on_complete);
  }
  client.open_request = !end;
  rt_->Submit(op.op, client.stream, std::move(done));
}

void TimeQuantumScheduler::SampleThrash() {
  ORION_CHECK(pager_ != nullptr);
  const std::size_t paged =
      pager_->totals().fault_bytes_h2d + pager_->totals().writeback_bytes_d2h;
  const double delta = static_cast<double>(paged - sampled_paging_bytes_);
  sampled_paging_bytes_ = paged;
  // Paging duty-cycle of the window: paged bytes over what the PCIe link
  // could have carried in the same span. The pager counts bytes when the
  // fault is *enqueued*, so a multi-GB burst lands in one sample; the
  // backlog bucket drains it at link speed across the following windows
  // (mirroring the copy engine actually transferring it), keeping the busy
  // signal saturated for the burst's real duration instead of spiking once.
  const double window_capacity = pager_->pcie_gbps() * 1e3 * options_.sample_period_us;
  backlog_bytes_ += delta;
  const double consumed = std::min(backlog_bytes_, window_capacity);
  backlog_bytes_ -= consumed;
  const double busy = window_capacity > 0.0 ? consumed / window_capacity : 0.0;
  const bool thrashing = detector_.Observe(busy, pager_->oversubscribed());
  if (thrashing && !exclusive_) {
    EnterExclusive();
  } else if (!thrashing && exclusive_) {
    ExitExclusive();
  }
  sim_->ScheduleAfter(options_.sample_period_us, [this]() { SampleThrash(); });
}

void TimeQuantumScheduler::EnterExclusive() {
  exclusive_ = true;
  exclusive_entered_at_ = sim_->now();
  ++exclusive_entries_;
  active_ = -1;
  quantum_expired_ = false;
  if (hub_ != nullptr) {
    hub_->metrics().GetCounter("tq.exclusive_entries")->Inc();
    hub_->metrics().GetGauge("tq.exclusive_mode")->Set(1.0);
    if (hub_->tracing()) {
      hub_->spans().Instant(hub_->spans().Track("nvshare-tq"), "enter_exclusive",
                            sim_->now());
    }
  }
  // In-flight work drains naturally; gating starts with the next Enqueue.
  // Queues are empty here (shared mode passed everything through), so the
  // first buffered op picks the first quantum owner.
}

void TimeQuantumScheduler::ExitExclusive() {
  exclusive_accum_us_ += sim_->now() - exclusive_entered_at_;
  exclusive_ = false;
  active_ = -1;
  quantum_expired_ = false;
  sim_->Cancel(quantum_event_);
  if (hub_ != nullptr) {
    hub_->metrics().GetGauge("tq.exclusive_mode")->Set(0.0);
  }
  for (ClientState& client : clients_) {
    FlushQueue(client);
  }
}

void TimeQuantumScheduler::Activate() {
  if (!exclusive_ || active_ != -1) {
    return;
  }
  const std::size_t n = clients_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t index = (rr_cursor_ + step) % n;
    ClientState& client = clients_[index];
    if (client.crashed || client.queue.empty()) {
      continue;
    }
    rr_cursor_ = (index + 1) % n;
    active_ = client.id;
    quantum_expired_ = false;
    ++client.quanta;
    ++quanta_granted_;
    // Anti-thrashing quantum: a multiple of the measured swap-in cost, so
    // the paging bill amortises over a long burst of uninterrupted work.
    const DurationUs quantum = memsub::QuantumFromSwapCost(
        pager_ != nullptr ? pager_->MeasuredSwapCostUs(client.id) : 0.0,
        options_.quantum);
    sim_->Cancel(quantum_event_);
    quantum_event_ = sim_->ScheduleAfter(quantum, [this]() { OnQuantumExpired(); });
    if (hub_ != nullptr) {
      hub_->metrics().GetCounter("tq.quanta")->Inc();
    }
    FlushQueue(client);
    return;
  }
  // Nobody pending: the GPU idles until the next Enqueue.
}

void TimeQuantumScheduler::MaybeRotate() {
  if (!exclusive_ || active_ == -1) {
    return;
  }
  ClientState* state = FindClient(active_);
  ORION_CHECK(state != nullptr);
  if (state->inflight_requests > 0 || state->open_request) {
    return;  // never rotate mid-request; the end completion retries
  }
  sim_->Cancel(quantum_event_);
  active_ = -1;
  Activate();
}

void TimeQuantumScheduler::OnQuantumExpired() {
  quantum_expired_ = true;
  MaybeRotate();
}

void TimeQuantumScheduler::ArmIdleCheck() {
  // Early release: if the active client shows no progress (no enqueue, no
  // completion) for idle_release_us, it forfeits the rest of its quantum.
  sim_->ScheduleAfter(options_.idle_release_us,
                      [this, seq = activity_seq_, id = active_]() {
                        if (!exclusive_ || active_ != id || activity_seq_ != seq) {
                          return;
                        }
                        ClientState* state = FindClient(id);
                        if (state == nullptr || !state->queue.empty() ||
                            state->inflight_requests > 0 || state->open_request) {
                          return;
                        }
                        // A fault stall is not idleness: the client is waiting
                        // for its working set, which is the very thing the
                        // quantum exists to amortise. Its fault completion
                        // resumes progress and re-arms the check.
                        if (pager_ != nullptr && pager_->HasPendingFaults(id)) {
                          return;
                        }
                        quantum_expired_ = true;
                        MaybeRotate();
                      });
}

void TimeQuantumScheduler::FlushQueue(ClientState& client) {
  while (!client.queue.empty()) {
    core::SchedOp op = std::move(client.queue.front());
    client.queue.pop_front();
    Submit(client, std::move(op));
  }
}

void TimeQuantumScheduler::OnClientCrash(core::ClientId client) {
  ClientState* state = FindClient(client);
  if (state == nullptr) {
    return;
  }
  state->crashed = true;
  state->queue.clear();
  rt_->memory().ReleaseClient(static_cast<std::uint64_t>(client));
  if (exclusive_ && active_ == client) {
    sim_->Cancel(quantum_event_);
    active_ = -1;
    Activate();
  }
}

std::size_t TimeQuantumScheduler::client_quanta(core::ClientId client) const {
  for (const ClientState& state : clients_) {
    if (state.id == client) {
      return state.quanta;
    }
  }
  return 0;
}

DurationUs TimeQuantumScheduler::exclusive_us() const {
  const TimeUs now = sim_ != nullptr ? sim_->now() : exclusive_entered_at_;
  return exclusive_accum_us_ + (exclusive_ ? now - exclusive_entered_at_ : 0.0);
}

}  // namespace baselines
}  // namespace orion
