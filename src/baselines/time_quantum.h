// nvshare-style time-quantum scheduler baseline (ROADMAP "memory
// oversubscription + time-quantum sharing").
//
// nvshare shares one GPU between processes that each believe they own the
// full GPU memory; a unified-memory pager (src/memsub) keeps the illusion by
// paging over PCIe. Its scheduler has two regimes:
//
//   * SHARED — the default. Every client submits freely on its own stream
//     (MPS-like spatial sharing, no priorities); the pager absorbs memory
//     pressure. This is also the behaviour with no pager attached.
//   * EXCLUSIVE — entered when the thrash detector (src/memsub/thrash.h)
//     sees sustained paging traffic while memory is oversubscribed. One
//     client at a time owns the GPU for a quantum sized from the measured
//     swap cost (long enough to amortise paging its working set back in);
//     the others' ops buffer in software queues. Anti-thrashing heuristics:
//     quantum sizing from measured swap cost, rotation only at request
//     boundaries (never mid-request), and early release when the active
//     client goes idle, so an idle tenant cannot hold the GPU hostage.
//
// Priority-agnostic by design: nvshare predates priority hints, so the
// high-priority client waits its turn like everyone else — exactly the
// isolation gap the oversubscription study measures against Orion.
#ifndef SRC_BASELINES_TIME_QUANTUM_H_
#define SRC_BASELINES_TIME_QUANTUM_H_

#include <deque>
#include <vector>

#include "src/core/scheduler.h"
#include "src/memsub/pager.h"
#include "src/memsub/thrash.h"

namespace orion {
namespace baselines {

struct TimeQuantumOptions {
  // Thrash sampling cadence. Samples read pager counters only, so they never
  // perturb the rest of the event stream.
  DurationUs sample_period_us = MsToUs(20.0);
  memsub::ThrashDetector::Options thrash;
  memsub::QuantumOptions quantum;
  // Early release: an active client with nothing queued and nothing in
  // flight for this long forfeits the rest of its quantum.
  DurationUs idle_release_us = MsToUs(2.0);
};

class TimeQuantumScheduler : public core::Scheduler {
 public:
  explicit TimeQuantumScheduler(TimeQuantumOptions options = {});

  // Binds the unified-memory pager whose fault telemetry drives the thrash
  // detector and quantum sizing. May be called before or after Attach (the
  // harness binds it post-attach so the pager's stream does not perturb
  // scheduler stream ids); without a pager the scheduler stays in SHARED
  // mode forever.
  void set_pager(memsub::UnifiedMemoryPager* pager);

  std::string name() const override { return "nvshare-tq"; }
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<core::SchedClientInfo> clients) override;
  void Enqueue(core::ClientId client, core::SchedOp op) override;
  void set_telemetry(telemetry::Hub* hub) override { hub_ = hub; }
  void OnClientCrash(core::ClientId client) override;

  // --- Introspection (tests / benches). ---
  bool exclusive_mode() const { return exclusive_; }
  std::size_t exclusive_entries() const { return exclusive_entries_; }
  std::size_t quanta_granted() const { return quanta_granted_; }
  // Per-client quanta received since entering exclusive mode (fairness).
  std::size_t client_quanta(core::ClientId client) const;
  DurationUs exclusive_us() const;

 private:
  struct ClientState {
    core::ClientId id = 0;
    gpusim::StreamId stream = gpusim::kInvalidStream;
    std::deque<core::SchedOp> queue;  // buffered while not active (exclusive)
    int inflight_requests = 0;        // end-of-request ops submitted, not done
    // A request's ops were submitted but its end-of-request op was not yet:
    // rotation waits for the boundary (never preempt mid-request).
    bool open_request = false;
    bool crashed = false;
    std::size_t quanta = 0;
  };

  ClientState* FindClient(core::ClientId id);
  void Submit(ClientState& client, core::SchedOp op);
  void SampleThrash();
  void EnterExclusive();
  void ExitExclusive();
  // Hands the GPU to the next pending client (round-robin after `after`).
  void Activate();
  // Rotates away from the active client if its quantum expired or it idled.
  void MaybeRotate();
  void OnQuantumExpired();
  void ArmIdleCheck();
  void FlushQueue(ClientState& client);

  TimeQuantumOptions options_;
  memsub::UnifiedMemoryPager* pager_ = nullptr;
  telemetry::Hub* hub_ = nullptr;
  Simulator* sim_ = nullptr;
  runtime::GpuRuntime* rt_ = nullptr;
  std::vector<ClientState> clients_;

  memsub::ThrashDetector detector_;
  bool sampler_started_ = false;
  std::size_t sampled_paging_bytes_ = 0;  // pager byte counter at last sample
  double backlog_bytes_ = 0.0;            // enqueued paging bytes not yet drained

  bool exclusive_ = false;
  core::ClientId active_ = -1;
  bool quantum_expired_ = false;
  std::size_t rr_cursor_ = 0;
  EventHandle quantum_event_;
  std::uint64_t activity_seq_ = 0;  // bumped on active-client progress

  std::size_t exclusive_entries_ = 0;
  std::size_t quanta_granted_ = 0;
  DurationUs exclusive_accum_us_ = 0.0;
  TimeUs exclusive_entered_at_ = 0.0;
};

}  // namespace baselines
}  // namespace orion

#endif  // SRC_BASELINES_TIME_QUANTUM_H_
