// Temporal sharing baseline (§4, §6.1).
//
// Time-slices the GPU at request granularity: one job's request (inference
// batch or training iteration) runs at a time; the high-priority client is
// picked first whenever it has pending work, best-effort clients are served
// round-robin. This is the baseline that suffers head-of-line blocking: an
// incoming inference request must wait for the ongoing training iteration to
// finish (§6.2.1).
#ifndef SRC_BASELINES_TEMPORAL_H_
#define SRC_BASELINES_TEMPORAL_H_

#include <deque>
#include <vector>

#include "src/core/scheduler.h"

namespace orion {
namespace baselines {

class TemporalScheduler : public core::Scheduler {
 public:
  std::string name() const override { return "temporal"; }
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<core::SchedClientInfo> clients) override;
  void Enqueue(core::ClientId client, core::SchedOp op) override;

 private:
  struct ClientState {
    core::ClientId id = 0;
    bool high_priority = false;
    std::deque<core::SchedOp> queue;
  };

  // Picks the next request owner if the device is free.
  void MaybeActivate();
  // Submits buffered ops of the active request.
  void DrainActive();
  ClientState* FindClient(core::ClientId id);

  runtime::GpuRuntime* rt_ = nullptr;
  gpusim::StreamId stream_ = gpusim::kInvalidStream;
  std::vector<ClientState> clients_;
  core::ClientId active_ = -1;
  // The active request's last op has been submitted; nothing more from this
  // client may run until that op completes and releases the device.
  bool active_end_submitted_ = false;
  std::size_t rr_cursor_ = 0;
};

}  // namespace baselines
}  // namespace orion

#endif  // SRC_BASELINES_TEMPORAL_H_
