// Tick-Tock scheduling baseline (Wavelet [94]; Zico [67] is the same idea).
//
// Collocates two training jobs by offsetting their iteration halves: while
// job A runs its forward pass, job B runs its backward pass, and vice versa,
// with a synchronisation barrier at every half-iteration boundary. The
// barrier is the behaviour the paper highlights: the faster job always waits
// for the slower one, which costs the high-priority job up to 1.93x
// throughput (§6.2.2).
//
// Halves are identified from the kernel phase tags the workload generator
// emits (forward vs backward/update); memory ops ride along with the forward
// half (the input copy precedes the forward pass).
#ifndef SRC_BASELINES_TICKTOCK_H_
#define SRC_BASELINES_TICKTOCK_H_

#include <deque>
#include <vector>

#include "src/core/scheduler.h"

namespace orion {
namespace baselines {

class TickTockScheduler : public core::Scheduler {
 public:
  std::string name() const override { return "ticktock"; }
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<core::SchedClientInfo> clients) override;
  void Enqueue(core::ClientId client, core::SchedOp op) override;

 private:
  // 0 = forward half, 1 = backward (+update) half.
  static int HalfOf(const runtime::Op& op);

  struct ClientState {
    core::ClientId id = 0;
    gpusim::StreamId stream = gpusim::kInvalidStream;
    std::deque<core::SchedOp> queue;
    int outstanding = 0;      // submitted-but-not-completed ops
    bool submitted_any = false;  // submitted something during this round
  };

  // Which half `client_index` may run during the current round: clients
  // alternate, offset by their index (A fwd + B bwd, then swapped).
  int AllowedHalf(std::size_t client_index) const;
  // Submits every queued op that belongs to the client's allowed half.
  void Drain();
  // Barrier check: advance the round when both clients are at a boundary.
  void MaybeAdvanceRound();
  bool AtBoundary(std::size_t client_index) const;

  runtime::GpuRuntime* rt_ = nullptr;
  std::vector<ClientState> clients_;
  std::uint64_t round_ = 0;
};

}  // namespace baselines
}  // namespace orion

#endif  // SRC_BASELINES_TICKTOCK_H_
