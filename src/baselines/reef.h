// REEF-N baseline (§6.1).
//
// REEF [50] targets AMD GPUs with host-controlled preemption; its NVIDIA
// variant REEF-N restricts preemption to the software queues: high-priority
// kernels bypass buffered best-effort kernels before submission. Best-effort
// kernels are dispatched with REEF's dynamic kernel padding: a best-effort
// kernel may launch alongside the high-priority job when it fits in the SMs
// the current high-priority kernel leaves free. Per the paper's setup we use
// a software queue depth of 12 outstanding best-effort kernels.
//
// What REEF-N deliberately lacks compared to Orion: compute/memory profile
// awareness and duration-based throttling — the two omissions behind its
// high tail latency in inf-train (§6.2.1) and its best-effort starvation in
// train-train (§6.2.2).
#ifndef SRC_BASELINES_REEF_H_
#define SRC_BASELINES_REEF_H_

#include <deque>
#include <vector>

#include "src/core/scheduler.h"

namespace orion {
namespace baselines {

class ReefScheduler : public core::Scheduler {
 public:
  static constexpr int kQueueDepth = 12;  // from discussion with REEF authors (§6.1)

  std::string name() const override { return "reef"; }
  // Best-effort kernels currently submitted-but-not-completed (tests/stats).
  int be_outstanding() const { return be_outstanding_; }
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<core::SchedClientInfo> clients) override;
  void Enqueue(core::ClientId client, core::SchedOp op) override;

 private:
  struct BeClient {
    core::ClientId id = 0;
    gpusim::StreamId stream = gpusim::kInvalidStream;
    const profiler::WorkloadProfile* profile = nullptr;
    std::deque<core::SchedOp> queue;
  };

  void PollBestEffort();
  int SmsNeededFor(const BeClient& be, const gpusim::KernelDesc& kernel) const;

  runtime::GpuRuntime* rt_ = nullptr;
  core::ClientId hp_client_ = -1;
  gpusim::StreamId hp_stream_ = gpusim::kInvalidStream;
  int hp_outstanding_ = 0;
  std::vector<BeClient> be_clients_;
  std::size_t rr_cursor_ = 0;
  int be_outstanding_ = 0;  // best-effort kernels submitted but not completed
};

}  // namespace baselines
}  // namespace orion

#endif  // SRC_BASELINES_REEF_H_
