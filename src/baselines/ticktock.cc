#include "src/baselines/ticktock.h"

#include <utility>

#include "src/common/check.h"

namespace orion {
namespace baselines {

int TickTockScheduler::HalfOf(const runtime::Op& op) {
  if (op.type == runtime::OpType::kGraphLaunch && !op.graph_kernels.empty()) {
    // A captured graph belongs to the half its first kernel starts in.
    runtime::Op probe;
    probe.type = runtime::OpType::kKernelLaunch;
    probe.kernel = op.graph_kernels.front();
    return HalfOf(probe);
  }
  if (op.type != runtime::OpType::kKernelLaunch) {
    return 0;  // input copies precede the forward pass
  }
  switch (op.kernel.phase) {
    case gpusim::KernelPhase::kForward:
    case gpusim::KernelPhase::kNone:
      return 0;
    case gpusim::KernelPhase::kBackward:
    case gpusim::KernelPhase::kUpdate:
      return 1;
  }
  return 0;
}

void TickTockScheduler::Attach(Simulator* sim, runtime::GpuRuntime* rt,
                               std::vector<core::SchedClientInfo> clients) {
  (void)sim;
  ORION_CHECK(rt != nullptr);
  ORION_CHECK_MSG(clients.size() == 2, "Tick-Tock collocates exactly two training jobs");
  rt_ = rt;
  for (const core::SchedClientInfo& info : clients) {
    ClientState state;
    state.id = info.id;
    state.stream = rt_->CreateStream(gpusim::kPriorityDefault);
    clients_.push_back(std::move(state));
  }
}

int TickTockScheduler::AllowedHalf(std::size_t client_index) const {
  return static_cast<int>((round_ + client_index) % 2);
}

void TickTockScheduler::Enqueue(core::ClientId client, core::SchedOp op) {
  for (ClientState& state : clients_) {
    if (state.id == client) {
      state.queue.push_back(std::move(op));
      Drain();
      MaybeAdvanceRound();
      return;
    }
  }
  ORION_CHECK_MSG(false, "enqueue from unknown client " << client);
}

void TickTockScheduler::Drain() {
  for (std::size_t index = 0; index < clients_.size(); ++index) {
    ClientState& state = clients_[index];
    const int allowed = AllowedHalf(index);
    while (!state.queue.empty() && HalfOf(state.queue.front().op) == allowed) {
      core::SchedOp op = std::move(state.queue.front());
      state.queue.pop_front();
      ++state.outstanding;
      state.submitted_any = true;
      auto on_complete = std::move(op.on_complete);
      rt_->Submit(op.op, state.stream, [this, &state, on_complete = std::move(on_complete)]() {
        ORION_CHECK(state.outstanding > 0);
        --state.outstanding;
        if (on_complete) {
          on_complete();
        }
        MaybeAdvanceRound();
      });
    }
  }
}

bool TickTockScheduler::AtBoundary(std::size_t client_index) const {
  const ClientState& state = clients_[client_index];
  if (state.outstanding > 0) {
    return false;
  }
  // At a boundary when the next buffered op belongs to the other half. An
  // empty queue also counts: the client is either between requests or still
  // feeding ops — treating it as a boundary keeps the barrier live (the
  // occasional premature flip only delays that client by one round).
  return state.queue.empty() || HalfOf(state.queue.front().op) != AllowedHalf(client_index);
}

void TickTockScheduler::MaybeAdvanceRound() {
  // The barrier: every client must reach its half boundary before any client
  // starts the next half. This is the synchronisation the paper blames for
  // Tick-Tock's low throughput (§6.2.2).
  for (int guard = 0; guard < 8; ++guard) {
    bool all_boundary = true;
    bool any_work = false;
    for (std::size_t index = 0; index < clients_.size(); ++index) {
      if (!AtBoundary(index)) {
        all_boundary = false;
      }
      if (!clients_[index].queue.empty()) {
        any_work = true;
      }
    }
    if (!all_boundary || !any_work) {
      return;
    }
    ++round_;
    for (ClientState& state : clients_) {
      state.submitted_any = false;
    }
    Drain();
  }
}

}  // namespace baselines
}  // namespace orion
