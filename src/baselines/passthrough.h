// GPU Streams and MPS baselines (§6.1).
//
// Both submit every intercepted op immediately on a per-client stream — the
// hardware alone resolves contention. They differ in two ways the paper
// calls out:
//   * Streams clients are threads of one Python process and contend on the
//     GIL, inflating per-op host overhead with client count; MPS clients are
//     separate processes (§6.2.1).
//   * Streams gives the high-priority client a high-priority CUDA stream;
//     MPS does not support stream priorities (§6.4).
#ifndef SRC_BASELINES_PASSTHROUGH_H_
#define SRC_BASELINES_PASSTHROUGH_H_

#include <vector>

#include "src/core/scheduler.h"

namespace orion {
namespace baselines {

class PassthroughScheduler : public core::Scheduler {
 public:
  // `use_priorities`: map the hp client to a high-priority stream.
  // `gil_penalty`: per-extra-client host overhead multiplier increment.
  PassthroughScheduler(std::string name, bool use_priorities, double gil_penalty);

  std::string name() const override { return name_; }
  double HostOverheadMultiplier(int num_clients) const override;
  void Attach(Simulator* sim, runtime::GpuRuntime* rt,
              std::vector<core::SchedClientInfo> clients) override;
  void Enqueue(core::ClientId client, core::SchedOp op) override;

 private:
  std::string name_;
  bool use_priorities_;
  double gil_penalty_;
  runtime::GpuRuntime* rt_ = nullptr;
  std::vector<gpusim::StreamId> streams_;  // indexed by ClientId
};

// Factory helpers for the two named baselines.
std::unique_ptr<core::Scheduler> MakeStreamsBaseline();
std::unique_ptr<core::Scheduler> MakeMpsBaseline();

}  // namespace baselines
}  // namespace orion

#endif  // SRC_BASELINES_PASSTHROUGH_H_
