#include "src/profiler/profiler.h"

#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/gpu_runtime.h"
#include "src/sim/simulator.h"

namespace orion {
namespace profiler {
namespace {

// Replays requests of one workload back-to-back on a dedicated device with
// host-side launch pacing: each op submission costs `launch_overhead_us` of
// host time; blocking ops stall the host until the device completes them.
class Replayer {
 public:
  using RequestDone = std::function<void(int request, TimeUs start, TimeUs end)>;

  Replayer(Simulator* sim, runtime::GpuRuntime* rt, gpusim::StreamId stream,
           std::vector<runtime::Op> ops, DurationUs overhead, int total_requests,
           RequestDone on_done)
      : sim_(sim),
        rt_(rt),
        stream_(stream),
        ops_(std::move(ops)),
        overhead_(overhead),
        total_requests_(total_requests),
        on_done_(std::move(on_done)) {
    ORION_CHECK(!ops_.empty());
  }

  void Start() { BeginRequest(); }

 private:
  void BeginRequest() {
    if (request_ >= total_requests_) {
      return;
    }
    next_op_ = 0;
    request_start_ = sim_->now();
    SubmitNext();
  }

  void SubmitNext() {
    if (next_op_ >= ops_.size()) {
      return;  // all submitted; completion callback drives the next request
    }
    const runtime::Op& op = ops_[next_op_];
    const bool last = next_op_ + 1 == ops_.size();
    ++next_op_;
    runtime::GpuRuntime::CompletionCb done;
    if (last) {
      done = [this]() { OnRequestComplete(); };
    } else if (op.blocking) {
      done = [this]() { sim_->ScheduleAfter(overhead_, [this]() { SubmitNext(); }); };
    }
    rt_->Submit(op, stream_, std::move(done));
    if (!last && !op.blocking) {
      sim_->ScheduleAfter(overhead_, [this]() { SubmitNext(); });
    }
  }

  void OnRequestComplete() {
    const int finished = request_++;
    on_done_(finished, request_start_, sim_->now());
    // Closed loop: next request follows immediately.
    sim_->ScheduleAfter(overhead_, [this]() { BeginRequest(); });
  }

  Simulator* sim_;
  runtime::GpuRuntime* rt_;
  gpusim::StreamId stream_;
  std::vector<runtime::Op> ops_;
  DurationUs overhead_;
  int total_requests_;
  RequestDone on_done_;
  int request_ = 0;
  std::size_t next_op_ = 0;
  TimeUs request_start_ = 0.0;
};

}  // namespace

const KernelProfile* WorkloadProfile::Find(std::uint64_t kernel_id) const {
  auto it = index_.find(kernel_id);
  return it == index_.end() ? nullptr : &kernels[it->second];
}

void WorkloadProfile::RebuildIndex() {
  index_.clear();
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    index_.emplace(kernels[i].kernel_id, i);
  }
}

WorkloadProfile ProfileWorkload(const gpusim::DeviceSpec& device,
                                const workloads::WorkloadSpec& spec,
                                const ProfileOptions& options) {
  ORION_CHECK(options.measured_requests > 0);

  Simulator sim;
  runtime::GpuRuntime rt(&sim, device);
  const gpusim::StreamId stream = rt.CreateStream();

  std::vector<runtime::Op> ops = workloads::BuildRequestOps(device, spec);

  // Accumulate measured durations per kernel id.
  std::unordered_map<std::uint64_t, std::pair<double, int>> measured;  // sum, count
  rt.device().set_kernel_trace_sink([&measured](const gpusim::KernelExecRecord& rec) {
    auto& slot = measured[rec.kernel_id];
    slot.first += rec.end - rec.start;
    slot.second += 1;
  });

  const int total = options.warmup_requests + options.measured_requests;
  LatencyRecorder latencies;
  TimeUs measure_start = 0.0;
  Replayer replayer(&sim, &rt, stream, ops, options.launch_overhead_us, total,
                    [&](int request, TimeUs start, TimeUs end) {
                      if (request == options.warmup_requests) {
                        measure_start = start;
                      }
                      if (request >= options.warmup_requests) {
                        latencies.Add(end - start);
                      }
                    });
  replayer.Start();
  sim.RunUntilIdle();

  WorkloadProfile profile;
  profile.workload_name = workloads::WorkloadName(spec);
  profile.device_name = device.name;
  profile.request_latency_us = latencies.mean();

  const gpusim::UtilizationSample avg =
      rt.device().utilization().AverageOver(measure_start, sim.now());
  profile.avg_compute_util = avg.compute;
  profile.avg_membw_util = avg.membw;
  profile.avg_sm_busy = avg.sm_busy;

  for (const runtime::Op& op : ops) {
    if (op.type != runtime::OpType::kKernelLaunch) {
      continue;
    }
    const gpusim::KernelDesc& kernel = op.kernel;
    KernelProfile kp;
    kp.kernel_id = kernel.kernel_id;
    kp.name = kernel.name;
    auto it = measured.find(kernel.kernel_id);
    ORION_CHECK_MSG(it != measured.end(), "kernel never executed: " << kernel.name);
    kp.duration_us = it->second.first / it->second.second;
    kp.compute_util = kernel.compute_util;
    kp.membw_util = kernel.membw_util;
    kp.profile = gpusim::ClassifyKernel(kernel);
    kp.sm_needed = gpusim::SmsNeeded(device, kernel.geometry);
    profile.kernels.push_back(std::move(kp));
  }
  profile.RebuildIndex();
  return profile;
}

void SaveProfile(const WorkloadProfile& profile, std::ostream& os) {
  os.precision(17);  // round-trip-exact doubles
  os << "workload=" << profile.workload_name << "\n";
  os << "device=" << profile.device_name << "\n";
  os << "request_latency_us=" << profile.request_latency_us << "\n";
  os << "avg_compute_util=" << profile.avg_compute_util << "\n";
  os << "avg_membw_util=" << profile.avg_membw_util << "\n";
  os << "avg_sm_busy=" << profile.avg_sm_busy << "\n";
  os << "kernels=" << profile.kernels.size() << "\n";
  for (const KernelProfile& kp : profile.kernels) {
    os << kp.kernel_id << "," << kp.name << "," << kp.duration_us << "," << kp.compute_util
       << "," << kp.membw_util << "," << static_cast<int>(kp.profile) << "," << kp.sm_needed
       << "\n";
  }
}

namespace {

std::string ReadValue(std::istream& is, const std::string& key) {
  std::string line;
  ORION_CHECK_MSG(std::getline(is, line).good(), "truncated profile file at key " << key);
  const auto eq = line.find('=');
  ORION_CHECK_MSG(eq != std::string::npos && line.substr(0, eq) == key,
                  "expected key " << key << ", got line: " << line);
  return line.substr(eq + 1);
}

}  // namespace

WorkloadProfile LoadProfile(std::istream& is) {
  WorkloadProfile profile;
  profile.workload_name = ReadValue(is, "workload");
  profile.device_name = ReadValue(is, "device");
  profile.request_latency_us = std::stod(ReadValue(is, "request_latency_us"));
  profile.avg_compute_util = std::stod(ReadValue(is, "avg_compute_util"));
  profile.avg_membw_util = std::stod(ReadValue(is, "avg_membw_util"));
  profile.avg_sm_busy = std::stod(ReadValue(is, "avg_sm_busy"));
  const std::size_t count = std::stoul(ReadValue(is, "kernels"));
  for (std::size_t i = 0; i < count; ++i) {
    std::string line;
    ORION_CHECK_MSG(std::getline(is, line).good(), "truncated kernel list");
    std::istringstream fields(line);
    std::string field;
    KernelProfile kp;
    ORION_CHECK(std::getline(fields, field, ','));
    kp.kernel_id = std::stoull(field);
    ORION_CHECK(std::getline(fields, kp.name, ','));
    ORION_CHECK(std::getline(fields, field, ','));
    kp.duration_us = std::stod(field);
    ORION_CHECK(std::getline(fields, field, ','));
    kp.compute_util = std::stod(field);
    ORION_CHECK(std::getline(fields, field, ','));
    kp.membw_util = std::stod(field);
    ORION_CHECK(std::getline(fields, field, ','));
    kp.profile = static_cast<gpusim::ResourceProfile>(std::stoi(field));
    ORION_CHECK(std::getline(fields, field, ','));
    kp.sm_needed = std::stoi(field);
    profile.kernels.push_back(std::move(kp));
  }
  profile.RebuildIndex();
  return profile;
}

}  // namespace profiler
}  // namespace orion
