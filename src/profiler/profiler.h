// Offline workload profiler (§5.2 of the paper).
//
// Before collocation, Orion profiles each DNN workload alone on a dedicated
// (simulated) GPU — the stand-in for the paper's Nsight Compute + Nsight
// Systems runs. The profiler:
//   * replays `measured_requests` requests (default 10, like the paper's
//     first-10-minibatches methodology) through the device with realistic
//     host-side launch pacing,
//   * records each kernel's measured execution time,
//   * classifies kernels as compute-/memory-bound/unknown via the roofline
//     (>60% rule) described in §5.2,
//   * computes sm_needed from the occupancy formula,
//   * measures the run-alone request latency used to set DUR_THRESHOLD.
//
// The result is a lookup table indexed by kernel id, exactly what the Orion
// scheduler loads at startup. Profiles can be saved to / loaded from files.
#ifndef SRC_PROFILER_PROFILER_H_
#define SRC_PROFILER_PROFILER_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/time_types.h"
#include "src/gpusim/device_spec.h"
#include "src/gpusim/kernel.h"
#include "src/workloads/models.h"

namespace orion {
namespace profiler {

struct KernelProfile {
  std::uint64_t kernel_id = 0;
  std::string name;
  DurationUs duration_us = 0.0;  // measured run-alone execution time
  double compute_util = 0.0;
  double membw_util = 0.0;
  gpusim::ResourceProfile profile = gpusim::ResourceProfile::kUnknown;
  int sm_needed = 0;
};

struct WorkloadProfile {
  std::string workload_name;
  std::string device_name;
  std::vector<KernelProfile> kernels;  // request order
  DurationUs request_latency_us = 0.0;  // mean run-alone request latency

  // Aggregate utilization measured during the profiling run (Table 1).
  double avg_compute_util = 0.0;
  double avg_membw_util = 0.0;
  double avg_sm_busy = 0.0;

  const KernelProfile* Find(std::uint64_t kernel_id) const;
  void RebuildIndex();

 private:
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

struct ProfileOptions {
  int warmup_requests = 2;
  int measured_requests = 10;
  // Host-side per-op submission overhead (framework + wrapper cost).
  DurationUs launch_overhead_us = 6.0;
};

// Runs the offline profiling phase on a dedicated simulated device.
WorkloadProfile ProfileWorkload(const gpusim::DeviceSpec& device,
                                const workloads::WorkloadSpec& spec,
                                const ProfileOptions& options = {});

// Text (key=value / CSV hybrid) serialisation, the analogue of the profile
// files Orion generates per model.
void SaveProfile(const WorkloadProfile& profile, std::ostream& os);
WorkloadProfile LoadProfile(std::istream& is);

}  // namespace profiler
}  // namespace orion

#endif  // SRC_PROFILER_PROFILER_H_
