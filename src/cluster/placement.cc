#include "src/cluster/placement.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace orion {
namespace cluster {

JobSignature MakeSignature(const gpusim::DeviceSpec& device,
                           const workloads::WorkloadSpec& workload, bool high_priority) {
  JobSignature sig;
  sig.name = workloads::WorkloadName(workload);
  sig.workload = workload;
  sig.high_priority = high_priority;
  sig.state_bytes = workloads::ApproxModelStateBytes(workload);

  // Time-weighted aggregates over the kernel sequence: this is what the
  // offline profile provides without running any collocation.
  const auto kernels = workloads::BuildKernels(device, workload);
  double total_time = 0.0;
  double compute_weighted = 0.0;
  double memory_weighted = 0.0;
  double compute_bound_time = 0.0;
  for (const auto& kernel : kernels) {
    total_time += kernel.duration_us;
    compute_weighted += kernel.duration_us * kernel.compute_util;
    memory_weighted += kernel.duration_us * kernel.membw_util;
    if (gpusim::ClassifyKernel(kernel) == gpusim::ResourceProfile::kComputeBound) {
      compute_bound_time += kernel.duration_us;
    }
  }
  if (total_time > 0.0) {
    sig.compute_intensity = compute_weighted / total_time;
    sig.memory_intensity = memory_weighted / total_time;
    sig.compute_bound_fraction = compute_bound_time / total_time;
  }
  return sig;
}

double PairInterference(const JobSignature& a, const JobSignature& b) {
  // Same-resource pressure: the smaller of the two jobs' demands on each
  // resource is the contended share (the rest would fit anyway). Weight the
  // dominant-phase overlap as well: two jobs that are compute-bound most of
  // the time collide in time, not just in aggregate.
  const double compute_clash = std::min(a.compute_intensity, b.compute_intensity);
  const double memory_clash = std::min(a.memory_intensity, b.memory_intensity);
  const double phase_clash =
      std::min(a.compute_bound_fraction, b.compute_bound_fraction) +
      std::min(1.0 - a.compute_bound_fraction, 1.0 - b.compute_bound_fraction);
  return compute_clash + memory_clash + 0.5 * phase_clash;
}

std::optional<Placement> PlacementEngine::Place(const std::vector<JobSignature>& jobs,
                                                const PlacementOptions& options) {
  ORION_CHECK(options.num_gpus >= 1);
  ORION_CHECK(options.max_jobs_per_gpu >= 1);
  const std::size_t capacity =
      options.gpu_memory_bytes > 0 ? options.gpu_memory_bytes : options.device.memory_bytes;

  Placement placement;
  placement.gpu_jobs.assign(static_cast<std::size_t>(options.num_gpus), {});
  std::vector<std::size_t> used_bytes(static_cast<std::size_t>(options.num_gpus), 0);
  std::vector<bool> has_hp(static_cast<std::size_t>(options.num_gpus), false);

  // Greedy in a stable order: latency-critical jobs first (they anchor
  // GPUs), then by memory footprint descending (hardest to pack first).
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].high_priority != jobs[b].high_priority) {
      return jobs[a].high_priority;
    }
    return jobs[a].state_bytes > jobs[b].state_bytes;
  });

  for (const std::size_t job : order) {
    const JobSignature& sig = jobs[job];
    int best_gpu = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (int gpu = 0; gpu < options.num_gpus; ++gpu) {
      const auto g = static_cast<std::size_t>(gpu);
      if (static_cast<int>(placement.gpu_jobs[g].size()) >= options.max_jobs_per_gpu) {
        continue;
      }
      if (used_bytes[g] + sig.state_bytes > capacity) {
        continue;
      }
      if (sig.high_priority && has_hp[g]) {
        continue;  // one latency-critical job per GPU
      }
      double added = 0.0;
      for (const std::size_t other : placement.gpu_jobs[g]) {
        added += PairInterference(sig, jobs[other]);
      }
      // Prefer emptier GPUs on ties so hp jobs spread out.
      const double score = added + 1e-3 * static_cast<double>(placement.gpu_jobs[g].size());
      if (score < best_score) {
        best_score = score;
        best_gpu = gpu;
      }
    }
    if (best_gpu < 0) {
      return std::nullopt;  // infeasible under the given limits
    }
    const auto g = static_cast<std::size_t>(best_gpu);
    for (const std::size_t other : placement.gpu_jobs[g]) {
      placement.predicted_interference += PairInterference(sig, jobs[other]);
    }
    placement.gpu_jobs[g].push_back(job);
    used_bytes[g] += sig.state_bytes;
    has_hp[g] = has_hp[g] || sig.high_priority;
  }
  return placement;
}

std::optional<Placement> PlacementEngine::PlaceRoundRobin(const std::vector<JobSignature>& jobs,
                                                          const PlacementOptions& options) {
  ORION_CHECK(options.num_gpus >= 1);
  const std::size_t capacity =
      options.gpu_memory_bytes > 0 ? options.gpu_memory_bytes : options.device.memory_bytes;
  Placement placement;
  placement.gpu_jobs.assign(static_cast<std::size_t>(options.num_gpus), {});
  std::vector<std::size_t> used_bytes(static_cast<std::size_t>(options.num_gpus), 0);
  for (std::size_t job = 0; job < jobs.size(); ++job) {
    const auto g = job % static_cast<std::size_t>(options.num_gpus);
    if (static_cast<int>(placement.gpu_jobs[g].size()) >= options.max_jobs_per_gpu ||
        used_bytes[g] + jobs[job].state_bytes > capacity) {
      return std::nullopt;
    }
    placement.gpu_jobs[g].push_back(job);
    used_bytes[g] += jobs[job].state_bytes;
  }
  placement.predicted_interference = ScorePlacement(jobs, placement);
  return placement;
}

double PlacementEngine::ScorePlacement(const std::vector<JobSignature>& jobs,
                                       const Placement& placement) {
  double total = 0.0;
  for (const auto& gpu : placement.gpu_jobs) {
    for (std::size_t i = 0; i < gpu.size(); ++i) {
      for (std::size_t j = i + 1; j < gpu.size(); ++j) {
        total += PairInterference(jobs[gpu[i]], jobs[gpu[j]]);
      }
    }
  }
  return total;
}

}  // namespace cluster
}  // namespace orion
