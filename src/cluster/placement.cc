#include "src/cluster/placement.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/check.h"

namespace orion {
namespace cluster {

JobSignature MakeSignature(const gpusim::DeviceSpec& device,
                           const workloads::WorkloadSpec& workload, bool high_priority) {
  JobSignature sig;
  sig.name = workloads::WorkloadName(workload);
  sig.workload = workload;
  sig.high_priority = high_priority;
  sig.state_bytes = workloads::ApproxModelStateBytes(workload);

  // Time-weighted aggregates over the kernel sequence: this is what the
  // offline profile provides without running any collocation.
  const auto kernels = workloads::BuildKernels(device, workload);
  double total_time = 0.0;
  double compute_weighted = 0.0;
  double memory_weighted = 0.0;
  double compute_bound_time = 0.0;
  for (const auto& kernel : kernels) {
    total_time += kernel.duration_us;
    compute_weighted += kernel.duration_us * kernel.compute_util;
    memory_weighted += kernel.duration_us * kernel.membw_util;
    if (gpusim::ClassifyKernel(kernel) == gpusim::ResourceProfile::kComputeBound) {
      compute_bound_time += kernel.duration_us;
    }
  }
  if (total_time > 0.0) {
    sig.compute_intensity = compute_weighted / total_time;
    sig.memory_intensity = memory_weighted / total_time;
    sig.compute_bound_fraction = compute_bound_time / total_time;
  }
  return sig;
}

double PairInterference(const JobSignature& a, const JobSignature& b) {
  // Same-resource pressure: the smaller of the two jobs' demands on each
  // resource is the contended share (the rest would fit anyway). Weight the
  // dominant-phase overlap as well: two jobs that are compute-bound most of
  // the time collide in time, not just in aggregate.
  const double compute_clash = std::min(a.compute_intensity, b.compute_intensity);
  const double memory_clash = std::min(a.memory_intensity, b.memory_intensity);
  const double phase_clash =
      std::min(a.compute_bound_fraction, b.compute_bound_fraction) +
      std::min(1.0 - a.compute_bound_fraction, 1.0 - b.compute_bound_fraction);
  return compute_clash + memory_clash + 0.5 * phase_clash;
}

namespace {

// Visits the k-combinations of {0..n-1} in lexicographic order.
template <typename Fn>
void ForEachCombination(int n, int k, Fn visit) {
  std::vector<int> set(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    set[static_cast<std::size_t>(i)] = i;
  }
  while (true) {
    visit(set);
    int i = k - 1;
    while (i >= 0 && set[static_cast<std::size_t>(i)] == n - k + i) {
      --i;
    }
    if (i < 0) {
      return;
    }
    ++set[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      set[static_cast<std::size_t>(j)] = set[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

std::optional<Placement> PlacementEngine::Place(const std::vector<JobSignature>& jobs,
                                                const PlacementOptions& options) {
  ORION_CHECK(options.num_gpus >= 1);
  ORION_CHECK(options.max_jobs_per_gpu >= 1);
  if (options.topology.has_value()) {
    ORION_CHECK_MSG(options.topology->num_gpus() == options.num_gpus,
                    "topology GPU count does not match num_gpus");
  }
  const std::size_t capacity =
      options.gpu_memory_bytes > 0 ? options.gpu_memory_bytes : options.device.memory_bytes;

  Placement placement;
  placement.gpu_jobs.assign(static_cast<std::size_t>(options.num_gpus), {});
  placement.job_gpus.assign(jobs.size(), {});
  std::vector<std::size_t> used_bytes(static_cast<std::size_t>(options.num_gpus), 0);
  std::vector<bool> has_hp(static_cast<std::size_t>(options.num_gpus), false);

  // Greedy in a stable order: latency-critical jobs first (they anchor
  // GPUs), then by memory footprint descending (hardest to pack first),
  // width as the final tie-break.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs[a].high_priority != jobs[b].high_priority) {
      return jobs[a].high_priority;
    }
    if (jobs[a].state_bytes != jobs[b].state_bytes) {
      return jobs[a].state_bytes > jobs[b].state_bytes;
    }
    return jobs[a].gpus_required > jobs[b].gpus_required;
  });

  for (const std::size_t job : order) {
    const JobSignature& sig = jobs[job];
    const int width = std::max(1, sig.gpus_required);
    if (width > options.num_gpus) {
      return std::nullopt;
    }

    // Best candidate set: fewest PCIe-crossing ring hops first (NVLink
    // pairs beat cross-pair sets), then least added interference with a
    // small emptier-is-better tie-break, then lexicographic GPU order.
    std::vector<int> best_set;
    auto best_score = std::make_pair(std::numeric_limits<int>::max(),
                                     std::numeric_limits<double>::infinity());
    ForEachCombination(options.num_gpus, width, [&](const std::vector<int>& set) {
      double added = 0.0;
      std::size_t occupants = 0;
      for (const int gpu : set) {
        const auto g = static_cast<std::size_t>(gpu);
        if (static_cast<int>(placement.gpu_jobs[g].size()) >= options.max_jobs_per_gpu) {
          return;
        }
        if (used_bytes[g] + sig.state_bytes > capacity) {
          return;
        }
        if (sig.high_priority && has_hp[g]) {
          return;  // one latency-critical job per GPU
        }
        for (const std::size_t other : placement.gpu_jobs[g]) {
          added += PairInterference(sig, jobs[other]);
        }
        occupants += placement.gpu_jobs[g].size();
      }
      const int cross_hops =
          options.topology.has_value() && width > 1
              ? options.topology->CrossPcieHops(options.topology->PreferredRing(set))
              : 0;
      const auto score =
          std::make_pair(cross_hops, added + 1e-3 * static_cast<double>(occupants));
      if (score < best_score) {
        best_score = score;
        best_set = set;
      }
    });
    if (best_set.empty()) {
      return std::nullopt;  // infeasible under the given limits
    }
    for (const int gpu : best_set) {
      const auto g = static_cast<std::size_t>(gpu);
      for (const std::size_t other : placement.gpu_jobs[g]) {
        placement.predicted_interference += PairInterference(sig, jobs[other]);
      }
      placement.gpu_jobs[g].push_back(job);
      used_bytes[g] += sig.state_bytes;
      has_hp[g] = has_hp[g] || sig.high_priority;
    }
    placement.job_gpus[job] = best_set;
  }
  return placement;
}

std::optional<Placement> PlacementEngine::PlaceRoundRobin(const std::vector<JobSignature>& jobs,
                                                          const PlacementOptions& options) {
  ORION_CHECK(options.num_gpus >= 1);
  const std::size_t capacity =
      options.gpu_memory_bytes > 0 ? options.gpu_memory_bytes : options.device.memory_bytes;
  Placement placement;
  placement.gpu_jobs.assign(static_cast<std::size_t>(options.num_gpus), {});
  placement.job_gpus.assign(jobs.size(), {});
  std::vector<std::size_t> used_bytes(static_cast<std::size_t>(options.num_gpus), 0);
  // Multi-GPU jobs take consecutive GPU indices from the rotating cursor,
  // link topology ignored (that is the point of the baseline).
  std::size_t cursor = 0;
  for (std::size_t job = 0; job < jobs.size(); ++job) {
    const int width = std::max(1, jobs[job].gpus_required);
    if (width > options.num_gpus) {
      return std::nullopt;
    }
    for (int i = 0; i < width; ++i) {
      const auto g = (cursor + static_cast<std::size_t>(i)) %
                     static_cast<std::size_t>(options.num_gpus);
      if (static_cast<int>(placement.gpu_jobs[g].size()) >= options.max_jobs_per_gpu ||
          used_bytes[g] + jobs[job].state_bytes > capacity) {
        return std::nullopt;
      }
      placement.gpu_jobs[g].push_back(job);
      used_bytes[g] += jobs[job].state_bytes;
      placement.job_gpus[job].push_back(static_cast<int>(g));
    }
    std::sort(placement.job_gpus[job].begin(), placement.job_gpus[job].end());
    cursor = (cursor + static_cast<std::size_t>(width)) %
             static_cast<std::size_t>(options.num_gpus);
  }
  placement.predicted_interference = ScorePlacement(jobs, placement);
  return placement;
}

std::optional<int> PlacementEngine::BestGpuFor(const JobSignature& job,
                                               const std::vector<GpuResidents>& gpus,
                                               std::size_t gpu_memory_bytes,
                                               int max_jobs_per_gpu) {
  return BestGpuFor(job, gpus, gpu_memory_bytes, max_jobs_per_gpu, nullptr);
}

std::optional<int> PlacementEngine::BestGpuFor(const JobSignature& job,
                                               const std::vector<GpuResidents>& gpus,
                                               std::size_t gpu_memory_bytes,
                                               int max_jobs_per_gpu,
                                               PlacementScore* score_out) {
  ORION_CHECK(max_jobs_per_gpu >= 1);
  std::optional<int> best;
  auto best_score = std::make_pair(std::numeric_limits<double>::infinity(),
                                   std::numeric_limits<std::size_t>::max());
  for (std::size_t g = 0; g < gpus.size(); ++g) {
    const GpuResidents& gpu = gpus[g];
    if (!gpu.alive || static_cast<int>(gpu.jobs.size()) >= max_jobs_per_gpu ||
        gpu.used_bytes + job.state_bytes > gpu_memory_bytes) {
      continue;
    }
    double added = 0.0;
    bool has_hp = false;
    for (const JobSignature& other : gpu.jobs) {
      added += PairInterference(job, other);
      has_hp = has_hp || other.high_priority;
    }
    if (job.high_priority && has_hp) {
      continue;  // one latency-critical job per GPU
    }
    const auto score = std::make_pair(added, gpu.jobs.size());
    if (score < best_score) {
      best_score = score;
      best = static_cast<int>(g);
    }
  }
  if (score_out != nullptr) {
    *score_out = best_score;
  }
  return best;
}

double PlacementEngine::ScorePlacement(const std::vector<JobSignature>& jobs,
                                       const Placement& placement) {
  double total = 0.0;
  for (const auto& gpu : placement.gpu_jobs) {
    for (std::size_t i = 0; i < gpu.size(); ++i) {
      for (std::size_t j = i + 1; j < gpu.size(); ++j) {
        total += PairInterference(jobs[gpu[i]], jobs[gpu[j]]);
      }
    }
  }
  return total;
}

}  // namespace cluster
}  // namespace orion
