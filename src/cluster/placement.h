// Cluster-manager co-design prototype (paper §7, Discussion).
//
// The paper proposes letting the cluster manager use each job's
// compute/memory kernel profiles to place jobs with complementary resource
// profiles on the same GPU(s). This module implements that idea at the
// cluster level:
//   * a JobSignature summarises a workload's offline profile into aggregate
//     compute/memory intensity plus its GPU-memory footprint,
//   * PairInterference predicts how much two jobs sharing a GPU will
//     contend (same-resource pressure scores high, complementary low),
//   * PlacementEngine assigns jobs to GPUs greedily, minimising predicted
//     interference subject to memory capacity and at most one
//     latency-critical (high-priority) job per GPU.
// The ext_cluster_placement bench validates predictions against full
// collocation simulations.
#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/interconnect/topology.h"
#include "src/profiler/profiler.h"
#include "src/workloads/models.h"

namespace orion {
namespace cluster {

struct JobSignature {
  std::string name;
  workloads::WorkloadSpec workload;
  bool high_priority = false;
  // Multi-GPU (data-parallel) jobs occupy a slot and `state_bytes` on each
  // of `gpus_required` GPUs; the engine prefers link-adjacent GPU sets
  // (NVLink pairs) so the job's all-reduce ring avoids the PCIe root.
  int gpus_required = 1;

  // Time-weighted mean utilization over the job's kernels (offline profile).
  double compute_intensity = 0.0;
  double memory_intensity = 0.0;
  // Fraction of its kernel time spent in compute-bound kernels.
  double compute_bound_fraction = 0.0;

  std::size_t state_bytes = 0;
};

// Builds a signature from the offline profiling phase (§5.2).
JobSignature MakeSignature(const gpusim::DeviceSpec& device,
                           const workloads::WorkloadSpec& workload, bool high_priority);

// Predicted contention if `a` and `b` share one GPU. Higher is worse. The
// score is the pressure both jobs put on the same resource: two
// compute-heavy jobs or two memory-heavy jobs score high; a compute-heavy
// plus a memory-heavy job scores low (§3.2's collocation insight).
double PairInterference(const JobSignature& a, const JobSignature& b);

struct Placement {
  // gpu_jobs[g] lists indices into the input job vector; a multi-GPU job
  // appears under every GPU it occupies.
  std::vector<std::vector<std::size_t>> gpu_jobs;
  // job_gpus[j] lists the GPUs job j landed on (ascending; size 1 for
  // single-GPU jobs).
  std::vector<std::vector<int>> job_gpus;
  // Sum of PairInterference over all collocated pairs.
  double predicted_interference = 0.0;
};

struct PlacementOptions {
  int num_gpus = 1;
  std::size_t gpu_memory_bytes = 0;  // 0 = use device preset
  gpusim::DeviceSpec device = gpusim::DeviceSpec::V100_16GB();
  int max_jobs_per_gpu = 2;
  // Node link topology, used to score candidate GPU sets for multi-GPU jobs
  // (fewer PCIe-crossing ring hops wins). Unset = all sets link-equivalent.
  // When set, its GPU count must equal num_gpus.
  std::optional<interconnect::NodeTopology> topology;
};

// Incremental placement: the serving tier adds and removes replicas one at
// a time against live GPU state rather than re-packing the whole cluster.
struct GpuResidents {
  bool alive = true;                // dead GPUs never receive placements
  std::vector<JobSignature> jobs;   // current residents
  std::size_t used_bytes = 0;
};

class PlacementEngine {
 public:
  // Returns std::nullopt when the jobs cannot be packed (memory or slot
  // limits). Deterministic for a given input order.
  static std::optional<Placement> Place(const std::vector<JobSignature>& jobs,
                                        const PlacementOptions& options);

  // Baseline for comparison: round-robin placement ignoring profiles.
  static std::optional<Placement> PlaceRoundRobin(const std::vector<JobSignature>& jobs,
                                                  const PlacementOptions& options);

  // Predicted interference of an existing placement (for scoring baselines).
  static double ScorePlacement(const std::vector<JobSignature>& jobs,
                               const Placement& placement);

  // Picks the alive GPU that can host `job` with the least added
  // PairInterference, subject to memory capacity, max_jobs_per_gpu, and the
  // one-latency-critical-job-per-GPU rule; an emptier GPU breaks ties, then
  // the lowest index. Returns std::nullopt when no GPU fits.
  static std::optional<int> BestGpuFor(const JobSignature& job,
                                       const std::vector<GpuResidents>& gpus,
                                       std::size_t gpu_memory_bytes, int max_jobs_per_gpu);

  // The comparable goodness of a BestGpuFor pick: (added interference,
  // resident count), lower is better. The datacenter control plane compares
  // the best placement of several nodes with it — comparing each node's
  // winning score reproduces exactly the pick a flat BestGpuFor over the
  // concatenated GPU list would make (ties resolve to the lower node, then
  // the lower GPU index, matching the flat scan order).
  using PlacementScore = std::pair<double, std::size_t>;
  static std::optional<int> BestGpuFor(const JobSignature& job,
                                       const std::vector<GpuResidents>& gpus,
                                       std::size_t gpu_memory_bytes, int max_jobs_per_gpu,
                                       PlacementScore* score_out);
};

}  // namespace cluster
}  // namespace orion

#endif  // SRC_CLUSTER_PLACEMENT_H_
