// Anti-thrashing policy for nvshare-style time-quantum sharing.
//
// nvshare's scheduler watches the unified-memory fault stream: as long as
// the collocation's working sets co-fit, everyone shares the GPU freely;
// once sustained fault traffic shows the clients evicting each other's pages
// (thrashing), it falls back to an exclusive time-quantum schedule — one
// client resident at a time, quanta long enough to amortise the swap-in.
//
// The two policy pieces live here as pure logic so the unit suite can drive
// them without a simulator:
//
//   * ThrashDetector — hysteresis over sampled paging-busy fractions. Enters
//     thrashing only when memory is actually oversubscribed AND the PCIe
//     paging duty-cycle stays above the enter threshold for
//     `enter_windows` consecutive samples (one cold-start burst is not
//     thrash). Exits only when oversubscription itself has ended (a client
//     released/crashed) and the duty-cycle has stayed low for
//     `exit_windows` samples — while memory stays oversubscribed the
//     exclusive schedule holds, because leaving it would immediately thrash
//     again (the oscillation nvshare avoids by never reverting).
//
//   * QuantumPolicy — sizes the exclusive quantum from the measured swap
//     cost: quantum = clamp(swap_cost_factor * measured_swap_us, min, max),
//     so a client always gets enough uninterrupted time to amortise paging
//     its working set back in.
#ifndef SRC_MEMSUB_THRASH_H_
#define SRC_MEMSUB_THRASH_H_

#include "src/common/time_types.h"

namespace orion {
namespace memsub {

class ThrashDetector {
 public:
  struct Options {
    // Paging-busy fraction (paging bytes / PCIe capacity of the window) at
    // or above which a window counts as "high".
    double enter_busy = 0.20;
    // Fraction at or below which a window counts as "low".
    double exit_busy = 0.05;
    int enter_windows = 2;  // consecutive high windows before entering
    int exit_windows = 5;   // consecutive low windows before exiting
  };

  ThrashDetector() : ThrashDetector(Options{}) {}
  explicit ThrashDetector(Options options);

  // Feeds one sampling window; returns the (possibly updated) state.
  bool Observe(double paging_busy_fraction, bool oversubscribed);

  bool thrashing() const { return thrashing_; }
  void Reset();

 private:
  Options options_;
  bool thrashing_ = false;
  int high_streak_ = 0;
  int low_streak_ = 0;
};

struct QuantumOptions {
  DurationUs min_quantum_us = MsToUs(50.0);
  DurationUs max_quantum_us = SecToUs(2.0);
  // Quantum as a multiple of the measured working-set swap cost: the client
  // runs swap_cost_factor times longer than it took to page back in.
  double swap_cost_factor = 8.0;
};

// Quantum length for a client whose last working-set swap-in took
// `measured_swap_us` (0 when never measured: the minimum quantum applies).
DurationUs QuantumFromSwapCost(DurationUs measured_swap_us, const QuantumOptions& options);

}  // namespace memsub
}  // namespace orion

#endif  // SRC_MEMSUB_THRASH_H_
