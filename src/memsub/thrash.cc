#include "src/memsub/thrash.h"

#include <algorithm>

#include "src/common/check.h"

namespace orion {
namespace memsub {

ThrashDetector::ThrashDetector(Options options) : options_(options) {
  ORION_CHECK(options_.enter_busy > options_.exit_busy);
  ORION_CHECK(options_.enter_windows >= 1 && options_.exit_windows >= 1);
}

bool ThrashDetector::Observe(double paging_busy_fraction, bool oversubscribed) {
  const bool high = paging_busy_fraction >= options_.enter_busy;
  const bool low = paging_busy_fraction <= options_.exit_busy;
  high_streak_ = high ? high_streak_ + 1 : 0;
  low_streak_ = low ? low_streak_ + 1 : 0;
  if (!thrashing_) {
    if (oversubscribed && high_streak_ >= options_.enter_windows) {
      thrashing_ = true;
      low_streak_ = 0;
    }
  } else {
    // One-way while oversubscribed: reverting to free sharing would thrash
    // again immediately. Only a real capacity change (client exit) plus a
    // sustained quiet period ends the exclusive schedule.
    if (!oversubscribed && low_streak_ >= options_.exit_windows) {
      thrashing_ = false;
      high_streak_ = 0;
    }
  }
  return thrashing_;
}

void ThrashDetector::Reset() {
  thrashing_ = false;
  high_streak_ = 0;
  low_streak_ = 0;
}

DurationUs QuantumFromSwapCost(DurationUs measured_swap_us, const QuantumOptions& options) {
  ORION_CHECK(options.min_quantum_us > 0.0 &&
              options.max_quantum_us >= options.min_quantum_us);
  ORION_CHECK(options.swap_cost_factor > 0.0);
  return std::clamp(options.swap_cost_factor * measured_swap_us, options.min_quantum_us,
                    options.max_quantum_us);
}

}  // namespace memsub
}  // namespace orion
